"""Figure 4 — correlated-read counts vs distance.

Paper's shape: correlated-read counts decay as distance grows; at
distance 0 intra-class counts exceed cross-class counts by orders of
magnitude; BareTrace shows far more correlated reads than CacheTrace
(caching absorbs correlated reads); TrieNodeAccount-TrieNodeStorage is
a strong cross-class pair in BareTrace.
"""

from __future__ import annotations

from repro.core.classes import KVClass
from repro.core.correlation import class_pair, format_class_pair
from repro.core.report import render_correlation_distance_series
from repro.core.trace import OpType


def test_fig4_read_correlation_distance(benchmark, cache_analysis, bare_analysis):
    def analyze():
        return {
            "cache": cache_analysis.correlation(OpType.READ),
            "bare": bare_analysis.correlation(OpType.READ),
        }

    results = benchmark.pedantic(analyze, rounds=1, iterations=1)
    print()
    for name, analysis in (("CacheTrace", cache_analysis), ("BareTrace", bare_analysis)):
        res = results["cache" if name == "CacheTrace" else "bare"]
        top_cross = res[0].top_pairs(3, cross_class=True)
        top_intra = res[0].top_pairs(3, cross_class=False)
        pairs = [p for p, _ in top_cross] + [p for p, _ in top_intra]
        print(
            render_correlation_distance_series(
                res, pairs, f"Figure 4 analog — {name} (top cross + intra pairs)"
            )
        )

    for key in ("cache", "bare"):
        res = results[key]
        distances = sorted(res)
        top_intra = res[0].top_pairs(1, cross_class=False)
        assert top_intra, f"{key}: no intra-class correlated reads"
        pair, count_d0 = top_intra[0]
        # Decay: distance-0 count dominates the largest distance.
        count_dmax = res[distances[-1]].class_pair_counts.get(pair, 0)
        assert count_d0 > count_dmax, (key, pair)
        # Intra-class beats cross-class at distance 0.
        top_cross = res[0].top_pairs(1, cross_class=True)
        cross_d0 = top_cross[0][1] if top_cross else 0
        assert count_d0 > cross_d0

    # BareTrace >> CacheTrace in total correlated reads at distance 0.
    bare_total = sum(results["bare"][0].class_pair_counts.values())
    cache_total = sum(results["cache"][0].class_pair_counts.values())
    print(f"d0 correlated reads: bare={bare_total} cache={cache_total}")
    assert bare_total > cache_total

    # The paper's Figure 4(c) legend pairs — TA-TS, C-TA, C-TS — are the
    # strongest BareTrace cross-class pairs among the world-state/Code
    # classes.  TA-TS peaks away from distance 0 (paper: at distance 4,
    # because code reads sit between the account and storage reads of a
    # call), so check its presence across the distance profile.
    figure_classes = {
        KVClass.TRIE_NODE_ACCOUNT,
        KVClass.TRIE_NODE_STORAGE,
        KVClass.CODE,
        KVClass.SNAPSHOT_ACCOUNT,
        KVClass.SNAPSHOT_STORAGE,
        KVClass.BLOCK_HEADER,
    }
    ta_ts = class_pair(KVClass.TRIE_NODE_ACCOUNT, KVClass.TRIE_NODE_STORAGE)
    c_ta = class_pair(KVClass.CODE, KVClass.TRIE_NODE_ACCOUNT)
    c_ts = class_pair(KVClass.CODE, KVClass.TRIE_NODE_STORAGE)
    bare_d0 = results["bare"][0]
    ranked = [
        pair
        for pair, _ in bare_d0.top_pairs(10, cross_class=True)
        if pair[0] in figure_classes and pair[1] in figure_classes
    ]
    assert c_ta in ranked[:3] and c_ts in ranked[:3], [
        format_class_pair(p) for p in ranked[:3]
    ]
    ta_ts_profile = [
        results["bare"][d].class_pair_counts.get(ta_ts, 0)
        for d in sorted(results["bare"])
    ]
    print(f"bare TA-TS profile across distances: {ta_ts_profile}")
    assert max(ta_ts_profile) > 0, "TA-TS never correlates in BareTrace"
