"""Ablation C (§II-A) — path-based vs legacy hash-keyed storage model.

The paper motivates Geth's move to the path-based model: hash-keyed
node storage "introduces redundant entries and frequent recomputations
during trie updates".  This bench runs one sync with the legacy scheme
shadow-mirrored and compares the two models directly:

* storage redundancy — node versions retained by the hash scheme vs
  live nodes in the path scheme;
* pruning cost — what a mark-and-sweep GC must traverse to reclaim the
  redundancy (the recomputation bill the path scheme never pays).
"""

from __future__ import annotations

from repro.sync.driver import DBConfig, FullSyncDriver, SyncConfig
from repro.workload.generator import WorkloadConfig, WorkloadGenerator

WORKLOAD = WorkloadConfig(
    seed=17, initial_eoa_accounts=1500, initial_contracts=200, txs_per_block=16
)


def test_ablation_path_vs_hash(benchmark, record_rate):
    def run_mirrored():
        config = SyncConfig(
            db=DBConfig.bare_trace_config(),
            warmup_blocks=20,
            mirror_hash_scheme=True,
        )
        driver = FullSyncDriver(config, WorkloadGenerator(WORKLOAD), name="mirror")
        result = driver.run(80)
        return driver, result

    driver, result = benchmark.pedantic(run_mirrored, rounds=1, iterations=1)
    record_rate(
        "ablation_path_vs_hash", len(result.records) / benchmark.stats.stats.mean
    )
    mirror = driver.hash_scheme_mirror

    path_nodes = sum(1 for key, _ in result.store_snapshot if key[:1] in (b"A", b"O"))
    path_bytes = sum(
        len(key) + len(value)
        for key, value in result.store_snapshot
        if key[:1] in (b"A", b"O")
    )
    hash_nodes = mirror.total_nodes
    hash_bytes = mirror.total_bytes

    print()
    print(f"{'model':<22} {'trie nodes':>12} {'bytes':>12}")
    print(f"{'path-based (live)':<22} {path_nodes:>12,} {path_bytes:>12,}")
    print(f"{'hash-keyed (all)':<22} {hash_nodes:>12,} {hash_bytes:>12,}")
    print(
        f"redundancy factor: {hash_nodes / path_nodes:.2f}x nodes, "
        f"{hash_bytes / path_bytes:.2f}x bytes"
    )

    # The legacy scheme retains every stale node version (§II-A).
    assert hash_nodes > 1.5 * path_nodes
    assert hash_bytes > 1.5 * path_bytes

    # Reclaiming the redundancy requires a full live-set traversal —
    # the pruning cost the path-based model eliminates.
    mirror.set_retention(1)
    swept = mirror.collect_garbage()
    print(
        f"GC with 1 live root: swept {swept:,} stale versions, "
        f"traversed {mirror.stats.gc_nodes_traversed:,} live nodes"
    )
    assert swept > 0
    assert mirror.stats.gc_nodes_traversed >= path_nodes * 0.5
    # After GC the live sets converge (both models hold one version).
    assert mirror.total_nodes <= 1.5 * path_nodes
