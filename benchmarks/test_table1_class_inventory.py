"""Table I — class inventory of the KV store after CacheTrace.

Paper's shape: five dominant classes (TrieNodeStorage, SnapshotStorage,
TxLookup, TrieNodeAccount, SnapshotAccount) hold >99.2% of pairs with a
small mean KV size (79.1 B); 15 classes are singletons; Code/BlockBody/
BlockReceipts values are KiB-scale; 29 classes total.
"""

from __future__ import annotations

from repro.core.classes import DOMINANT_CLASSES, KVClass
from repro.core.report import render_table1
from repro.core.sizes import SizeAnalyzer


def test_table1_class_inventory(benchmark, bench_trace_pair):
    cache_result, _ = bench_trace_pair

    def analyze():
        analyzer = SizeAnalyzer()
        analyzer.add_store_snapshot(cache_result.store_snapshot)
        return analyzer

    sizes: SizeAnalyzer = benchmark(analyze)
    print()
    print(render_table1(sizes, "Table I analog (store after CacheTrace)"))
    print(
        f"dominant share = {sizes.dominant_share():.2f}% (paper: 99.2%)  "
        f"dominant mean KV = {sizes.mean_kv_size(DOMINANT_CLASSES):.1f} B (paper: 79.1 B)  "
        f"singletons = {len(sizes.singleton_classes())} (paper: 15)"
    )

    # Shape assertions (who dominates, by roughly what factor).
    assert len(sizes.observed_classes()) == 29
    assert sizes.dominant_share() > 90.0
    assert len(sizes.singleton_classes()) >= 13
    assert sizes.mean_kv_size(DOMINANT_CLASSES) < 200.0
    ranked = sorted(
        (cls for cls in sizes.observed_classes()),
        key=lambda c: -sizes.stats_for(c).num_pairs,
    )
    assert set(ranked[:5]) == set(DOMINANT_CLASSES)
    # Large-value classes are KiB-scale, orders above the dominant mean.
    assert sizes.stats_for(KVClass.CODE).mean_kv_size > 1024
    assert sizes.stats_for(KVClass.BLOCK_BODY).mean_kv_size > 1024
    assert sizes.stats_for(KVClass.BLOCK_RECEIPTS).mean_kv_size > 1024
