"""Figure 2 — KV size distributions of the four dominant variable-size classes.

Paper's shape: TrieNodeAccount/TrieNodeStorage peak at small sizes
(113 B / 71 B) with long tails (to ~540/570 B); SnapshotAccount and
SnapshotStorage are tighter with a few distinct modes and smaller
maxima than the trie classes.
"""

from __future__ import annotations

from repro.core.classes import KVClass
from repro.core.report import render_size_distribution
from repro.core.sizes import SizeAnalyzer

PANELS = (
    KVClass.TRIE_NODE_ACCOUNT,
    KVClass.TRIE_NODE_STORAGE,
    KVClass.SNAPSHOT_ACCOUNT,
    KVClass.SNAPSHOT_STORAGE,
)


def test_fig2_size_distribution(benchmark, bench_trace_pair):
    cache_result, _ = bench_trace_pair

    def analyze():
        analyzer = SizeAnalyzer()
        analyzer.add_store_snapshot(cache_result.store_snapshot)
        return {cls: analyzer.size_distribution(cls) for cls in PANELS}, analyzer

    distributions, sizes = benchmark(analyze)
    print()
    for kv_class in PANELS:
        print(render_size_distribution(sizes, kv_class, max_points=8))

    for kv_class in PANELS:
        points = distributions[kv_class]
        assert len(points) > 3, f"{kv_class}: distribution has too few size points"

    # Trie classes have long tails: max size far above the dominant mode.
    for kv_class in (KVClass.TRIE_NODE_ACCOUNT, KVClass.TRIE_NODE_STORAGE):
        mode = sizes.size_distribution_modes(kv_class, top=1)[0]
        maximum = max(size for size, _ in distributions[kv_class])
        assert maximum > 2 * mode, f"{kv_class}: no long tail"

    # Snapshot classes are tighter: smaller maxima than their trie peers.
    ts_max = max(s for s, _ in distributions[KVClass.TRIE_NODE_STORAGE])
    ss_max = max(s for s, _ in distributions[KVClass.SNAPSHOT_STORAGE])
    assert ss_max < ts_max
    ta_max = max(s for s, _ in distributions[KVClass.TRIE_NODE_ACCOUNT])
    sa_max = max(s for s, _ in distributions[KVClass.SNAPSHOT_ACCOUNT])
    assert sa_max < ta_max

    # Snapshot values are small and multi-modal (slim encoding).
    sa_modes = sizes.size_distribution_modes(KVClass.SNAPSHOT_ACCOUNT, top=3)
    assert all(mode < 120 for mode in sa_modes)
