"""Figure 6 — correlated-update counts vs distance.

Paper's shape: the top cross-class correlated updates are between the
head-pointer singletons (LastFast-LastHeader, LastBlock-LastFast),
peaking at distance 0 with one occurrence per block and collapsing to
zero within a few positions (batched once-per-block updates); intra-
class updates concentrate in the world-state classes and decay with
distance; updates cluster more tightly than reads.
"""

from __future__ import annotations

from repro.core.classes import KVClass
from repro.core.correlation import class_pair, format_class_pair
from repro.core.report import render_correlation_distance_series
from repro.core.trace import OpType

HEAD_POINTERS = {
    KVClass.LAST_FAST,
    KVClass.LAST_HEADER,
    KVClass.LAST_BLOCK,
    KVClass.LAST_STATE_ID,
}


def test_fig6_update_correlation_distance(benchmark, bench_trace_pair, cache_analysis, bare_analysis):
    def analyze():
        return {
            "cache": cache_analysis.correlation(OpType.UPDATE),
            "bare": bare_analysis.correlation(OpType.UPDATE),
        }

    results = benchmark.pedantic(analyze, rounds=1, iterations=1)
    cache_result, _ = bench_trace_pair
    blocks = cache_result.blocks_processed

    print()
    for name in ("cache", "bare"):
        res = results[name]
        pairs = [p for p, _ in res[0].top_pairs(3, cross_class=True)]
        pairs += [p for p, _ in res[0].top_pairs(3, cross_class=False)]
        print(
            render_correlation_distance_series(
                res, pairs, f"Figure 6 analog — {name} (top cross + intra pairs)"
            )
        )

    for name in ("cache", "bare"):
        res = results[name]
        top_cross = res[0].top_pairs(3, cross_class=True)
        assert top_cross, name
        # Head-pointer singleton pairs lead the cross-class ranking.
        lead_pair, lead_count = top_cross[0]
        assert lead_pair[0] in HEAD_POINTERS and lead_pair[1] in HEAD_POINTERS, (
            name,
            format_class_pair(lead_pair),
        )
        # One occurrence per block, at distance 0 (batched head update).
        assert lead_count == blocks, (name, lead_count, blocks)
        # ... and the pair vanishes within a few positions (paper: zero
        # by distance 4).
        lh_lf = class_pair(KVClass.LAST_HEADER, KVClass.LAST_FAST)
        assert res[4].class_pair_counts.get(lh_lf, 0) == 0

        # Intra-class updates concentrate in world-state classes.
        top_intra = [p for p, _ in res[0].top_pairs(3, cross_class=False)]
        world_state = {
            KVClass.TRIE_NODE_ACCOUNT,
            KVClass.TRIE_NODE_STORAGE,
            KVClass.SNAPSHOT_ACCOUNT,
            KVClass.SNAPSHOT_STORAGE,
            KVClass.CODE,
        }
        assert any(p[0] in world_state for p in top_intra), name

        # Decay with distance for the top intra pair.
        pair, d0_count = res[0].top_pairs(1, cross_class=False)[0]
        dmax = sorted(res)[-1]
        assert d0_count >= res[dmax].class_pair_counts.get(pair, 0)
