"""Quantified shape fidelity — measured tables vs the paper's tables.

Turns "the shape should hold" into numbers: for every class the paper
reports in Tables II and III, compute the total-variation distance
between our measured operation mix and the published one (0 = same mix,
1 = disjoint).  The share-weighted mean — dominated by the world-state
classes — is the headline fidelity score.

Checked shape: share-weighted mean mix distance under 0.25 in both
capture modes, every dominant class under 0.35, and the structural
facts (zero-read TxLookup/StateID, the scan-class set, pure-update head
pointers) reproduced exactly.
"""

from __future__ import annotations

from repro.core.classes import DOMINANT_CLASSES, KVClass
from repro.core.opdist import OpDistAnalyzer
from repro.core.paperdata import (
    PAPER_TABLE2,
    PAPER_TABLE3,
    similarity_report,
    weighted_mean_distance,
)
from repro.core.trace import OpType


def test_paper_similarity(benchmark, bench_trace_pair):
    cache_result, bare_result = bench_trace_pair

    def build():
        cache_ops = OpDistAnalyzer(track_keys=False).consume(cache_result.records)
        bare_ops = OpDistAnalyzer(track_keys=False).consume(bare_result.records)
        return {
            "cache": (cache_ops, similarity_report(cache_ops, PAPER_TABLE2)),
            "bare": (bare_ops, similarity_report(bare_ops, PAPER_TABLE3)),
        }

    results = benchmark.pedantic(build, rounds=1, iterations=1)

    print()
    for name, paper_table in (("cache", PAPER_TABLE2), ("bare", PAPER_TABLE3)):
        opdist, report = results[name]
        mean = weighted_mean_distance(report, paper_table)
        print(f"{name}: share-weighted mean op-mix distance = {mean:.3f}")
        worst = sorted(report.items(), key=lambda kv: -kv[1])[:5]
        for kv_class, distance in worst:
            print(f"  worst: {kv_class.display_name:<22} {distance:.3f}")
        assert mean < 0.25, (name, mean)
        for kv_class in DOMINANT_CLASSES:
            if kv_class in report:
                assert report[kv_class] < 0.35, (name, kv_class, report[kv_class])

    # Structural facts, exact.
    cache_ops, _ = results["cache"]
    assert cache_ops.distribution(KVClass.TX_LOOKUP).reads == 0
    assert cache_ops.distribution(KVClass.STATE_ID).reads == 0
    assert set(cache_ops.scanned_classes()) <= {
        KVClass.SNAPSHOT_ACCOUNT,
        KVClass.SNAPSHOT_STORAGE,
        KVClass.BLOCK_HEADER,
    }
    for head in (KVClass.LAST_HEADER, KVClass.LAST_FAST):
        dist = cache_ops.distribution(head)
        assert dist.pct(OpType.UPDATE) == 100.0
