"""Ablation D (§V, principle vi) — correlation-aware storage co-location.

The paper suggests co-locating frequently co-accessed KV pairs so that
correlated reads hit the same storage region instead of scattering
random I/O.  This bench builds a correlation-clustered placement from
the first 30% of the BareTrace read stream and compares region-switch
rates against the placements real stores give for free (key-order for
LSM/B+-tree, hash for hash stores) over the remaining 70%.

Checked shape: the correlation-aware placement yields the lowest
region-switch rate on the world-state read stream.
"""

from __future__ import annotations

from collections import Counter

from repro.bench.suite import REGION_CAPACITY, TRAIN_FRACTION, world_state_reads
from repro.cachesim.correlation_cache import CorrelationTable
from repro.hybrid import (
    CorrelationLayout,
    LayoutEvaluator,
    hash_layout,
    key_order_layout,
)


def test_ablation_colocation(benchmark, bench_trace_pair, record_rate):
    _, bare_result = bench_trace_pair
    reads = world_state_reads(bare_result.records)
    cutoff = int(len(reads) * TRAIN_FRACTION)
    train, replay = reads[:cutoff], reads[cutoff:]

    def build_and_evaluate():
        table = CorrelationTable(window=2, max_partners=4)
        table.learn(train)
        layout = CorrelationLayout(region_capacity=REGION_CAPACITY)
        layout.build(table, train, Counter(train))
        # Keys without learned correlations fall back to key-order
        # packing, so the hybrid placement degrades gracefully to the
        # LSM baseline for cold data.
        layout.place_remaining(reads)
        evaluator = LayoutEvaluator()
        return {
            "correlation-aware": evaluator.evaluate(
                "correlation-aware", replay, layout.region_of
            ),
            "key-order (LSM)": evaluator.evaluate(
                "key-order", replay, key_order_layout(reads, REGION_CAPACITY)
            ),
            "hash store": evaluator.evaluate(
                "hash",
                replay,
                hash_layout(reads, max(1, len(set(reads)) // REGION_CAPACITY)),
            ),
        }

    reports = benchmark.pedantic(build_and_evaluate, rounds=1, iterations=1)
    record_rate("ablation_colocation", len(reads) / benchmark.stats.stats.mean)

    print()
    print(f"{'placement':<20} {'switch rate':>12} {'regions':>9}")
    for name, report in reports.items():
        print(f"{name:<20} {report.switch_rate:>12.3f} {report.regions_used:>9}")
    print(f"(replayed {len(replay):,} world-state reads)")

    correlated = reports["correlation-aware"]
    assert len(replay) > 5_000
    assert correlated.switch_rate < reports["key-order (LSM)"].switch_rate
    assert correlated.switch_rate < reports["hash store"].switch_rate
