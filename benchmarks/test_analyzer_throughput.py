"""Analyzer throughput benchmarks.

The paper's full traces hold billions of operations; the analyses must
stream.  These benches measure the per-record cost of each analyzer on
the benchmark trace so regressions in the hot loops are visible:

* classification + op-distribution accounting (Tables II/III) — both
  the record-at-a-time reference path and the columnar chunk path;
* trace (de)serialization round-trip (binary v1 and columnar v2);
* the vectorized correlation pair counter (Figures 4-7);
* per-block statistics;
* the process-parallel sharded scheduler at ``workers=2,4``.

Set ``BENCH_JSON=/path/to/BENCH_throughput.json`` to emit a JSON
artifact mapping each benchmark to records/s (the CI perf trajectory).
"""

from __future__ import annotations

import io
import json
import os
import time

import numpy as np
import pytest

from repro.core.blockstats import BlockStatsAnalyzer
from repro.core.columnar import ColumnarTrace, TraceChunk
from repro.core.correlation import CorrelationAnalyzer, CorrelationConfig
from repro.core.opdist import OpDistAnalyzer
from repro.core.parallel import analyze_chunks, analyze_trace
from repro.obs.registry import MetricsRegistry
from repro.core.trace import (
    ColumnarTraceReader,
    ColumnarTraceWriter,
    OpType,
    TraceReader,
    records_to_bytes,
)

#: records/s per benchmark, emitted as BENCH_throughput.json when the
#: BENCH_JSON env var is set.
RATES: dict[str, float] = {}


@pytest.fixture(scope="session", autouse=True)
def _emit_bench_json():
    yield
    path = os.environ.get("BENCH_JSON")
    if path:
        with open(path, "w", encoding="ascii") as stream:
            json.dump(
                {name: round(rate, 1) for name, rate in sorted(RATES.items())},
                stream,
                indent=2,
            )
            stream.write("\n")


@pytest.fixture(scope="session")
def bench_columnar(bench_trace_pair):
    _, bare_result = bench_trace_pair
    return ColumnarTrace.from_records(bare_result.records)


def test_opdist_throughput(benchmark, bench_trace_pair):
    _, bare_result = bench_trace_pair
    records = bare_result.records

    def analyze():
        return OpDistAnalyzer(track_keys=False).consume(records).total_ops

    total = benchmark(analyze)
    assert total == len(records)
    rate = len(records) / benchmark.stats.stats.mean
    RATES["opdist_reference"] = rate
    print(f"\nopdist: {rate / 1e6:.2f} M records/s over {len(records):,} records")
    assert rate > 100_000  # floor: 100k records/s (record-at-a-time path)


def test_opdist_columnar_throughput(benchmark, bench_columnar):
    trace = bench_columnar
    total_records = len(trace)

    def analyze():
        return OpDistAnalyzer(track_keys=False).consume_chunks(trace.chunks).total_ops

    total = benchmark(analyze)
    assert total == total_records
    rate = total_records / benchmark.stats.stats.mean
    RATES["opdist_columnar"] = rate
    print(
        f"\nopdist columnar: {rate / 1e6:.2f} M records/s "
        f"over {total_records:,} records"
    )
    # floor: 1M records/s — 10x the reference path's floor.  The
    # bincount reduction actually sustains >50M records/s; 1M keeps the
    # assertion robust on slow CI runners while still catching any
    # regression back to per-record dispatch.
    assert rate > 1_000_000


def test_opdist_columnar_tracked_throughput(benchmark, bench_columnar):
    trace = bench_columnar
    total_records = len(trace)

    def analyze():
        return OpDistAnalyzer(track_keys=True).consume_chunks(trace.chunks).total_ops

    total = benchmark(analyze)
    assert total == total_records
    rate = total_records / benchmark.stats.stats.mean
    RATES["opdist_columnar_tracked"] = rate
    print(f"\nopdist columnar+keys: {rate / 1e6:.2f} M records/s")
    assert rate > 500_000  # per-key tracking still beats the reference floor 5x


def test_trace_serialization_throughput(benchmark, bench_trace_pair):
    _, bare_result = bench_trace_pair
    records = bare_result.records

    def roundtrip():
        blob = records_to_bytes(records)
        count = sum(1 for _ in TraceReader(io.BytesIO(blob)))
        return count, len(blob)

    count, size = benchmark(roundtrip)
    assert count == len(records)
    rate = len(records) / benchmark.stats.stats.mean
    RATES["serialization_v1"] = rate
    print(
        f"\nserialization: {size / len(records):.1f} B/record, "
        f"{rate / 1e6:.2f} M records/s round-trip"
    )


def test_trace_v2_serialization_throughput(benchmark, bench_columnar):
    trace = bench_columnar
    total_records = len(trace)

    def roundtrip():
        buffer = io.BytesIO()
        writer = ColumnarTraceWriter(buffer)
        for chunk in trace.chunks:
            writer.write_chunk(chunk)
        writer.finish()
        blob = buffer.getvalue()
        reader = ColumnarTraceReader(io.BytesIO(blob))
        count = sum(len(chunk) for chunk in reader.chunks())
        return count, len(blob)

    count, size = benchmark(roundtrip)
    assert count == total_records
    rate = total_records / benchmark.stats.stats.mean
    RATES["serialization_v2"] = rate
    print(
        f"\nv2 serialization: {size / total_records:.1f} B/record, "
        f"{rate / 1e6:.2f} M records/s round-trip"
    )
    assert rate > 1_000_000  # columnar blocks (de)serialize at array speed


def test_correlation_throughput(benchmark, bench_trace_pair):
    _, bare_result = bench_trace_pair
    records = bare_result.records

    def correlate():
        analyzer = CorrelationAnalyzer(
            CorrelationConfig(op=OpType.READ, distances=(0, 4, 64, 1024))
        )
        analyzer.consume(records)
        results = analyzer.compute()
        return sum(sum(r.class_pair_counts.values()) for r in results.values())

    total = benchmark.pedantic(correlate, rounds=2, iterations=1)
    assert total > 0


def test_blockstats_throughput(benchmark, bench_trace_pair):
    _, bare_result = bench_trace_pair
    records = bare_result.records

    def analyze():
        return BlockStatsAnalyzer().consume(records).num_blocks

    blocks = benchmark(analyze)
    assert blocks >= 150


def test_blockstats_columnar_throughput(benchmark, bench_columnar):
    trace = bench_columnar
    total_records = len(trace)

    def analyze():
        analyzer = BlockStatsAnalyzer()
        for chunk in trace.chunks:
            analyzer.consume_chunk(chunk)
        return analyzer.num_blocks

    blocks = benchmark(analyze)
    assert blocks >= 150
    rate = total_records / benchmark.stats.stats.mean
    RATES["blockstats_columnar"] = rate
    print(f"\nblockstats columnar: {rate / 1e6:.2f} M records/s")


def test_instrumentation_overhead(bench_columnar):
    """Metrics accounting must stay off the hot path: the per-chunk
    counter increments in ``analyze_chunks`` may cost < 5% of columnar
    analysis throughput.  Best-of-5 each way filters scheduler noise."""
    trace = bench_columnar
    # Repeat the chunk stream so each timed run lasts long enough for
    # the comparison to rise above timer noise.
    repeats = 50
    chunks = list(trace.chunks) * repeats

    def run(registry):
        start = time.perf_counter()
        built = analyze_chunks(
            chunks, analyzers=("opdist",), track_keys=False, registry=registry
        )
        elapsed = time.perf_counter() - start
        assert built["opdist"].total_ops == len(trace) * repeats
        return elapsed

    bare = min(run(None) for _ in range(5))
    instrumented = min(run(MetricsRegistry()) for _ in range(5))
    overhead_pct = max(0.0, (instrumented - bare) / bare * 100.0)
    RATES["obs_overhead_pct"] = overhead_pct
    print(
        f"\ninstrumentation overhead: {overhead_pct:.2f}% "
        f"(bare {bare * 1e3:.2f} ms, instrumented {instrumented * 1e3:.2f} ms)"
    )
    assert overhead_pct < 5.0, f"instrumentation overhead {overhead_pct:.2f}% >= 5%"


# ---------------------------------------------------------------------------
# Parallel scheduler
# ---------------------------------------------------------------------------

#: Synthetic shard-bench shape: enough per-chunk per-key Python work for
#: process parallelism to pay for its fork/IPC overhead.
_PAR_CHUNKS = 12
_PAR_RECORDS_PER_CHUNK = 100_000
_PAR_KEYS_PER_CHUNK = 30_000


@pytest.fixture(scope="session")
def parallel_trace_path(tmp_path_factory):
    """A synthetic multi-chunk v2 trace for scheduler scaling benches."""
    rng = np.random.default_rng(7)
    prefixes = np.frombuffer(b"AOaohlcB", dtype=np.uint8)
    path = tmp_path_factory.mktemp("bench") / "parallel.v2"
    with ColumnarTraceWriter.open(path) as writer:
        for chunk_index in range(_PAR_CHUNKS):
            blob = rng.integers(0, 256, size=_PAR_KEYS_PER_CHUNK * 7, dtype=np.uint8)
            blob[::7] = prefixes[rng.integers(0, len(prefixes), _PAR_KEYS_PER_CHUNK)]
            raw = blob.tobytes()
            keys = [raw[i : i + 7] for i in range(0, len(raw), 7)]
            writer.write_chunk(
                TraceChunk(
                    ops=rng.integers(0, 5, _PAR_RECORDS_PER_CHUNK, dtype=np.uint8),
                    value_sizes=rng.integers(
                        0, 2048, _PAR_RECORDS_PER_CHUNK, dtype=np.uint32
                    ),
                    blocks=np.full(
                        _PAR_RECORDS_PER_CHUNK, chunk_index, dtype=np.uint32
                    ),
                    key_ids=rng.integers(
                        0, _PAR_KEYS_PER_CHUNK, _PAR_RECORDS_PER_CHUNK, dtype=np.uint32
                    ),
                    keys=keys,
                )
            )
    return path


@pytest.fixture(scope="session")
def sequential_baseline(parallel_trace_path):
    start = time.perf_counter()
    results = analyze_trace(parallel_trace_path, workers=1)
    elapsed = time.perf_counter() - start
    total = results["opdist"].total_ops
    assert total == _PAR_CHUNKS * _PAR_RECORDS_PER_CHUNK
    RATES["parallel_workers1"] = total / elapsed
    return elapsed, total


@pytest.mark.parametrize("workers", [2, 4])
def test_parallel_scheduler_throughput(
    parallel_trace_path, sequential_baseline, workers
):
    seq_elapsed, seq_total = sequential_baseline
    start = time.perf_counter()
    results = analyze_trace(parallel_trace_path, workers=workers)
    elapsed = time.perf_counter() - start
    total = results["opdist"].total_ops
    assert total == seq_total  # sharded reduction covers every record
    rate = total / elapsed
    RATES[f"parallel_workers{workers}"] = rate
    speedup = seq_elapsed / elapsed
    print(
        f"\nparallel workers={workers}: {rate / 1e6:.2f} M records/s "
        f"({speedup:.2f}x vs workers=1)"
    )
    cores = os.cpu_count() or 1
    if cores >= workers:
        # With enough cores the sharded scheduler must show a measurable
        # speedup over the in-process pass.
        assert speedup > 1.1, (
            f"no parallel speedup at workers={workers}: {speedup:.2f}x"
        )
    elif cores == 1:
        pytest.skip(
            f"single-core machine: measured {speedup:.2f}x, not asserting speedup"
        )
