"""Analyzer throughput benchmarks.

The paper's full traces hold billions of operations; the analyses must
stream.  These benches measure the per-record cost of each analyzer on
the benchmark trace so regressions in the hot loops are visible:

* classification + op-distribution accounting (Tables II/III);
* trace (de)serialization round-trip (the binary format);
* the vectorized correlation pair counter (Figures 4-7);
* per-block statistics.
"""

from __future__ import annotations

import io

from repro.core.blockstats import BlockStatsAnalyzer
from repro.core.correlation import CorrelationAnalyzer, CorrelationConfig
from repro.core.opdist import OpDistAnalyzer
from repro.core.trace import OpType, TraceReader, TraceWriter, records_to_bytes


def test_opdist_throughput(benchmark, bench_trace_pair):
    _, bare_result = bench_trace_pair
    records = bare_result.records

    def analyze():
        return OpDistAnalyzer(track_keys=False).consume(records).total_ops

    total = benchmark(analyze)
    assert total == len(records)
    rate = len(records) / benchmark.stats.stats.mean
    print(f"\nopdist: {rate / 1e6:.2f} M records/s over {len(records):,} records")
    assert rate > 100_000  # floor: 100k records/s


def test_trace_serialization_throughput(benchmark, bench_trace_pair):
    _, bare_result = bench_trace_pair
    records = bare_result.records

    def roundtrip():
        blob = records_to_bytes(records)
        count = sum(1 for _ in TraceReader(io.BytesIO(blob)))
        return count, len(blob)

    count, size = benchmark(roundtrip)
    assert count == len(records)
    print(
        f"\nserialization: {size / len(records):.1f} B/record, "
        f"{len(records) / benchmark.stats.stats.mean / 1e6:.2f} M records/s round-trip"
    )


def test_correlation_throughput(benchmark, bench_trace_pair):
    _, bare_result = bench_trace_pair
    records = bare_result.records

    def correlate():
        analyzer = CorrelationAnalyzer(
            CorrelationConfig(op=OpType.READ, distances=(0, 4, 64, 1024))
        )
        analyzer.consume(records)
        results = analyzer.compute()
        return sum(sum(r.class_pair_counts.values()) for r in results.values())

    total = benchmark.pedantic(correlate, rounds=2, iterations=1)
    assert total > 0


def test_blockstats_throughput(benchmark, bench_trace_pair):
    _, bare_result = bench_trace_pair
    records = bare_result.records

    def analyze():
        return BlockStatsAnalyzer().consume(records).num_blocks

    blocks = benchmark(analyze)
    assert blocks >= 150
