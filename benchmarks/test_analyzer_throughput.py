"""Analyzer throughput benchmarks.

The paper's full traces hold billions of operations; the analyses must
stream.  These benches measure the per-record cost of each analyzer on
the benchmark trace so regressions in the hot loops are visible:

* classification + op-distribution accounting (Tables II/III) — both
  the record-at-a-time reference path and the columnar chunk path;
* trace (de)serialization round-trip (binary v1 and columnar v2);
* the vectorized correlation pair counter (Figures 4-7);
* per-block statistics;
* the process-parallel sharded scheduler at ``workers=2,4``.

The timed kernels are the registered workloads from
:mod:`repro.bench.suite` — the same definitions ``repro bench run``
executes and baselines — so the pytest floors and the CI perf-gate
gate one implementation.  Set ``BENCH_JSON=...`` to emit records/s as
a JSON artifact (merged across bench files; see conftest).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.bench import load_default_suite
from repro.core.parallel import analyze_chunks, analyze_trace
from repro.obs.registry import MetricsRegistry

REGISTRY = load_default_suite()


def _workload(name, bench_ctx):
    return REGISTRY.get(name).setup(bench_ctx)


def test_opdist_throughput(benchmark, bench_ctx, record_rate):
    workload = _workload("opdist_reference", bench_ctx)
    total = benchmark(workload.run)
    assert total == workload.ops == len(bench_ctx.bare_records)
    rate = workload.ops / benchmark.stats.stats.mean
    record_rate("opdist_reference", rate)
    print(f"\nopdist: {rate / 1e6:.2f} M records/s over {workload.ops:,} records")
    assert rate > 100_000  # floor: 100k records/s (record-at-a-time path)


def test_opdist_columnar_throughput(benchmark, bench_ctx, record_rate):
    workload = _workload("opdist_columnar", bench_ctx)
    total = benchmark(workload.run)
    assert total == workload.ops == len(bench_ctx.columnar_trace)
    rate = workload.ops / benchmark.stats.stats.mean
    record_rate("opdist_columnar", rate)
    print(
        f"\nopdist columnar: {rate / 1e6:.2f} M records/s "
        f"over {workload.ops:,} records"
    )
    # floor: 1M records/s — 10x the reference path's floor.  The
    # bincount reduction actually sustains >50M records/s; 1M keeps the
    # assertion robust on slow CI runners while still catching any
    # regression back to per-record dispatch.
    assert rate > 1_000_000


def test_opdist_columnar_tracked_throughput(benchmark, bench_ctx, record_rate):
    workload = _workload("opdist_columnar_tracked", bench_ctx)
    total = benchmark(workload.run)
    assert total == workload.ops
    rate = workload.ops / benchmark.stats.stats.mean
    record_rate("opdist_columnar_tracked", rate)
    print(f"\nopdist columnar+keys: {rate / 1e6:.2f} M records/s")
    assert rate > 500_000  # per-key tracking still beats the reference floor 5x


def test_trace_serialization_throughput(benchmark, bench_ctx, record_rate):
    workload = _workload("serialization_v1", bench_ctx)
    count = benchmark(workload.run)
    assert count == workload.ops
    rate = workload.ops / benchmark.stats.stats.mean
    record_rate("serialization_v1", rate)
    print(f"\nserialization: {rate / 1e6:.2f} M records/s round-trip")


def test_trace_v2_serialization_throughput(benchmark, bench_ctx, record_rate):
    workload = _workload("serialization_v2", bench_ctx)
    count = benchmark(workload.run)
    assert count == workload.ops
    rate = workload.ops / benchmark.stats.stats.mean
    record_rate("serialization_v2", rate)
    print(f"\nv2 serialization: {rate / 1e6:.2f} M records/s round-trip")
    assert rate > 1_000_000  # columnar blocks (de)serialize at array speed


def test_correlation_throughput(benchmark, bench_ctx):
    workload = _workload("correlation_read", bench_ctx)
    total = benchmark.pedantic(workload.run, rounds=2, iterations=1)
    assert total > 0


def test_blockstats_throughput(benchmark, bench_trace_pair):
    from repro.core.blockstats import BlockStatsAnalyzer

    _, bare_result = bench_trace_pair
    records = bare_result.records

    def analyze():
        return BlockStatsAnalyzer().consume(records).num_blocks

    blocks = benchmark(analyze)
    assert blocks >= 150


def test_blockstats_columnar_throughput(benchmark, bench_ctx, record_rate):
    workload = _workload("blockstats_columnar", bench_ctx)
    blocks = benchmark(workload.run)
    assert blocks >= 150
    rate = workload.ops / benchmark.stats.stats.mean
    record_rate("blockstats_columnar", rate)
    print(f"\nblockstats columnar: {rate / 1e6:.2f} M records/s")


def test_instrumentation_overhead(bench_ctx, record_rate):
    """Metrics accounting must stay off the hot path: the per-chunk
    counter increments in ``analyze_chunks`` may cost < 5% of columnar
    analysis throughput.  Best-of-5 each way filters scheduler noise."""
    trace = bench_ctx.columnar_trace
    # Repeat the chunk stream so each timed run lasts long enough for
    # the comparison to rise above timer noise.
    repeats = 50
    chunks = list(trace.chunks) * repeats

    def run(registry):
        start = time.perf_counter()
        built = analyze_chunks(
            chunks, analyzers=("opdist",), track_keys=False, registry=registry
        )
        elapsed = time.perf_counter() - start
        assert built["opdist"].total_ops == len(trace) * repeats
        return elapsed

    bare = min(run(None) for _ in range(5))
    instrumented = min(run(MetricsRegistry()) for _ in range(5))
    overhead_pct = max(0.0, (instrumented - bare) / bare * 100.0)
    record_rate("obs_overhead_pct", overhead_pct)
    print(
        f"\ninstrumentation overhead: {overhead_pct:.2f}% "
        f"(bare {bare * 1e3:.2f} ms, instrumented {instrumented * 1e3:.2f} ms)"
    )
    assert overhead_pct < 5.0, f"instrumentation overhead {overhead_pct:.2f}% >= 5%"


# ---------------------------------------------------------------------------
# Parallel scheduler
# ---------------------------------------------------------------------------
#
# The synthetic multi-chunk trace shape lives in the full profile of
# repro.bench.context (enough per-chunk per-key Python work for process
# parallelism to pay for its fork/IPC overhead).


@pytest.fixture(scope="session")
def sequential_baseline(bench_ctx, record_rate):
    path = bench_ctx.parallel_trace_path
    start = time.perf_counter()
    results = analyze_trace(path, workers=1)
    elapsed = time.perf_counter() - start
    total = results["opdist"].total_ops
    profile = bench_ctx.profile
    assert total == profile.parallel_chunks * profile.parallel_records_per_chunk
    record_rate("parallel_workers1", total / elapsed)
    return elapsed, total


@pytest.mark.parametrize("workers", [2, 4])
def test_parallel_scheduler_throughput(
    bench_ctx, sequential_baseline, record_rate, workers
):
    seq_elapsed, seq_total = sequential_baseline
    start = time.perf_counter()
    results = analyze_trace(bench_ctx.parallel_trace_path, workers=workers)
    elapsed = time.perf_counter() - start
    total = results["opdist"].total_ops
    assert total == seq_total  # sharded reduction covers every record
    rate = total / elapsed
    record_rate(f"parallel_workers{workers}", rate)
    speedup = seq_elapsed / elapsed
    print(
        f"\nparallel workers={workers}: {rate / 1e6:.2f} M records/s "
        f"({speedup:.2f}x vs workers=1)"
    )
    cores = os.cpu_count() or 1
    if cores >= workers:
        # With enough cores the sharded scheduler must show a measurable
        # speedup over the in-process pass.
        assert speedup > 1.1, (
            f"no parallel speedup at workers={workers}: {speedup:.2f}x"
        )
    elif cores == 1:
        pytest.skip(
            f"single-core machine: measured {speedup:.2f}x, not asserting speedup"
        )


# ---------------------------------------------------------------------------
# Analysis hot path: partial-aggregate cache + prefetch pipeline
# ---------------------------------------------------------------------------


def _best_of(workload, rounds=3):
    """Min-of-N wall time for one workload (same filtering as the
    parallel benches use against scheduler noise)."""
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        total = workload.run()
        times.append(time.perf_counter() - start)
        assert total == workload.ops
    return min(times)


def test_aggcache_warm_speedup(bench_ctx, record_rate):
    """Warm cached re-analysis must be >= 2x the cold (compute + store)
    run — the headline target of the partial-aggregate cache."""
    cold = _workload("aggcache_cold", bench_ctx)
    warm = _workload("aggcache_warm", bench_ctx)
    cold_elapsed = _best_of(cold)
    warm_elapsed = _best_of(warm)
    record_rate("aggcache_cold", cold.ops / cold_elapsed)
    record_rate("aggcache_warm", warm.ops / warm_elapsed)
    speedup = cold_elapsed / warm_elapsed
    print(
        f"\naggcache: cold {cold_elapsed * 1e3:.1f} ms, "
        f"warm {warm_elapsed * 1e3:.1f} ms ({speedup:.2f}x)"
    )
    assert speedup >= 2.0, f"warm cache only {speedup:.2f}x over cold (< 2x)"


def test_pipelined_vs_phased(bench_ctx, record_rate):
    """The prefetch pipeline must never cost serial throughput versus
    the read-everything-then-analyze baseline (it should gain whenever
    chunk I/O isn't free, but the floor here is no-regression)."""
    pipelined = _workload("pipelined_serial", bench_ctx)
    phased = _workload("phased_serial", bench_ctx)
    pipelined_elapsed = _best_of(pipelined)
    phased_elapsed = _best_of(phased)
    record_rate("pipelined_serial", pipelined.ops / pipelined_elapsed)
    record_rate("phased_serial", phased.ops / phased_elapsed)
    ratio = phased_elapsed / pipelined_elapsed
    print(
        f"\npipeline: phased {phased_elapsed * 1e3:.1f} ms, "
        f"pipelined {pipelined_elapsed * 1e3:.1f} ms ({ratio:.2f}x)"
    )
    assert ratio > 0.75, f"prefetch pipeline regressed serial path: {ratio:.2f}x"
