"""Replay-engine throughput benchmarks.

The replay engine's reason to exist is driving recorded workloads at
rates a serial loop can't reach.  These benches measure closed-loop
replay of the synthetic replay trace (~120k ops at the full profile,
realistic op mix) on memdb and the LSM simulator:

* the serial inline baseline;
* process-sharded replay at ``workers=2,4`` — on a multi-core machine
  4 workers must beat the serial baseline by ≥2x on memdb (the issue's
  acceptance bar); single-core machines measure but skip the speedup
  assertion, exactly like the parallel-scheduler benches;
* a correctness guard: the sharded run's final state must fingerprint
  identically to the serial run's, so the throughput being measured is
  the *order-preserving* engine, not a racy one.

The timed kernels are the registered ``replay`` group workloads from
:mod:`repro.bench.suite` — the same definitions ``repro bench run``
executes and baselines.  Set ``BENCH_JSON=...`` to emit ops/s.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.bench import load_default_suite
from repro.obs.registry import MetricsRegistry
from repro.replay import ReplayConfig, differential_replay, replay_trace

REGISTRY = load_default_suite()


def _workload(name, bench_ctx):
    return REGISTRY.get(name).setup(bench_ctx)


def _timed(workload):
    start = time.perf_counter()
    total = workload.run()
    elapsed = time.perf_counter() - start
    assert total == workload.ops
    return workload.ops / elapsed


@pytest.fixture(scope="session")
def serial_memdb_rate(bench_ctx, record_rate):
    rate = _timed(_workload("replay_serial_memdb", bench_ctx))
    record_rate("replay_serial_memdb", rate)
    return rate


@pytest.mark.parametrize("workers", [2, 4])
def test_replay_sharded_throughput(bench_ctx, serial_memdb_rate, record_rate, workers):
    rate = _timed(_workload(f"replay_workers{workers}_memdb", bench_ctx))
    record_rate(f"replay_workers{workers}_memdb", rate)
    speedup = rate / serial_memdb_rate
    print(
        f"\nreplay workers={workers}: {rate / 1e3:.0f} k ops/s "
        f"({speedup:.2f}x vs serial)"
    )
    cores = os.cpu_count() or 1
    if cores >= workers:
        # The acceptance bar: with the cores to back it, 4-way sharded
        # replay doubles serial throughput; 2-way must at least win.
        floor = 2.0 if workers >= 4 else 1.2
        assert speedup > floor, (
            f"insufficient replay speedup at workers={workers}: {speedup:.2f}x"
        )
    elif cores == 1:
        pytest.skip(
            f"single-core machine: measured {speedup:.2f}x, not asserting speedup"
        )


def test_replay_lsm_throughput(bench_ctx, record_rate):
    serial = _timed(_workload("replay_serial_lsm", bench_ctx))
    record_rate("replay_serial_lsm", serial)
    sharded = _timed(_workload("replay_workers4_lsm", bench_ctx))
    record_rate("replay_workers4_lsm", sharded)
    print(
        f"\nreplay lsm: serial {serial / 1e3:.0f} k ops/s, "
        f"4 workers {sharded / 1e3:.0f} k ops/s"
    )
    assert serial > 1_000  # floor: the LSM simulator replays >1k ops/s


def test_replay_sharded_state_matches_serial(bench_ctx):
    """Throughput counts only if sharded replay is still order-safe."""
    result = differential_replay(
        bench_ctx.replay_trace_path,
        ReplayConfig(backend="memdb", workers=4, executor="process"),
        registry=MetricsRegistry(),
    )
    assert result.match, result.render()


def test_replay_pacing_overhead(bench_ctx, record_rate):
    """Open-loop pacing at an unreachable rate must not throttle."""
    path = bench_ctx.replay_trace_path
    config = ReplayConfig(
        backend="memdb", pace=10_000_000.0, fingerprint=False, latency_sample=64
    )
    start = time.perf_counter()
    report = replay_trace(path, config, registry=MetricsRegistry())
    elapsed = time.perf_counter() - start
    rate = report.total_records / elapsed
    record_rate("replay_paced_memdb", rate)
    assert report.total_records == bench_ctx.profile.replay_records
