"""Table III — per-class operation distribution in BareTrace.

Paper's shape: without caching/snapshot acceleration the trie classes
become read-dominated (TrieNodeStorage 60.2% reads) and carry ~96% of
all operations; the snapshot classes are absent entirely; TxLookup's
write/delete split matches CacheTrace (the indexer is cache-agnostic).
"""

from __future__ import annotations

from repro.core.classes import KVClass
from repro.core.opdist import OpDistAnalyzer
from repro.core.report import render_op_table
from repro.core.trace import OpType


def test_table3_baretrace_ops(benchmark, bench_trace_pair):
    cache_result, bare_result = bench_trace_pair

    def analyze():
        return OpDistAnalyzer(track_keys=False).consume(bare_result.records)

    opdist: OpDistAnalyzer = benchmark(analyze)
    print()
    print(render_op_table(opdist, "Table III analog (BareTrace)"))

    # Snapshot classes never appear without snapshot acceleration.
    observed = set(opdist.observed_classes())
    assert not (observed & {KVClass.SNAPSHOT_ACCOUNT, KVClass.SNAPSHOT_STORAGE})

    # Trie classes dominate and are read-heavy (no cache absorbs reads).
    trie_share = opdist.class_share(KVClass.TRIE_NODE_STORAGE) + opdist.class_share(
        KVClass.TRIE_NODE_ACCOUNT
    )
    assert trie_share > 70.0  # paper: 95.9
    for cls in (KVClass.TRIE_NODE_STORAGE, KVClass.TRIE_NODE_ACCOUNT):
        dist = opdist.distribution(cls)
        assert dist.pct(OpType.READ) >= dist.pct(OpType.UPDATE) * 0.8, cls
        assert dist.pct(OpType.READ) > 40, cls  # paper: 60.2 / 41.3

    # BareTrace carries more total operations than CacheTrace.
    cache_ops = len(cache_result.records)
    assert opdist.total_ops > cache_ops

    # TxLookup split is cache-independent.
    txl = opdist.distribution(KVClass.TX_LOOKUP)
    cache_txl = OpDistAnalyzer(track_keys=False).consume(
        r for r in cache_result.records if r.key[:1] == b"l"
    ).distribution(KVClass.TX_LOOKUP)
    assert abs(txl.pct(OpType.DELETE) - cache_txl.pct(OpType.DELETE)) < 3

    # BlockHeader keeps its scan share in both traces (paper: 5.47/5.63).
    bh = opdist.distribution(KVClass.BLOCK_HEADER)
    assert 1.0 < bh.pct(OpType.SCAN) < 15.0
