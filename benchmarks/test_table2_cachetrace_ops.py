"""Table II — per-class operation distribution in CacheTrace.

Paper's shape: TrieNodeStorage is the largest class of operations; the
five dominant storage classes carry the vast majority of traffic;
TxLookup is ~half writes / ~half deletes with zero reads; trie classes
are update-dominated (updates > writes); Code is read-dominated;
head pointers (LastHeader/LastFast) are pure updates.
"""

from __future__ import annotations

from repro.core.classes import KVClass
from repro.core.opdist import OpDistAnalyzer
from repro.core.report import render_op_table
from repro.core.trace import OpType


def test_table2_cachetrace_ops(benchmark, bench_trace_pair):
    cache_result, _ = bench_trace_pair

    def analyze():
        return OpDistAnalyzer(track_keys=False).consume(cache_result.records)

    opdist: OpDistAnalyzer = benchmark(analyze)
    print()
    print(render_op_table(opdist, "Table II analog (CacheTrace)"))

    # World-state + TxLookup classes dominate operations.
    top_share = sum(
        opdist.class_share(cls)
        for cls in (
            KVClass.TRIE_NODE_STORAGE,
            KVClass.TRIE_NODE_ACCOUNT,
            KVClass.SNAPSHOT_STORAGE,
            KVClass.SNAPSHOT_ACCOUNT,
            KVClass.TX_LOOKUP,
        )
    )
    assert top_share > 80.0

    txl = opdist.distribution(KVClass.TX_LOOKUP)
    assert txl.reads == 0  # no app queries during sync (paper §IV-B)
    assert 35 < txl.pct(OpType.DELETE) < 60  # paper: 48.0
    assert 40 < txl.pct(OpType.WRITE) < 65  # paper: 52.0

    for cls, paper_updates in (
        (KVClass.TRIE_NODE_STORAGE, 50.9),
        (KVClass.TRIE_NODE_ACCOUNT, 59.7),
        (KVClass.SNAPSHOT_ACCOUNT, 64.9),
    ):
        dist = opdist.distribution(cls)
        assert dist.pct(OpType.UPDATE) > dist.pct(OpType.WRITE), cls

    code = opdist.distribution(KVClass.CODE)
    assert code.pct(OpType.READ) > 70  # paper: 87.2

    for cls in (KVClass.LAST_HEADER, KVClass.LAST_FAST):
        dist = opdist.distribution(cls)
        assert dist.pct(OpType.UPDATE) == 100.0  # paper: 100.0

    state_id = opdist.distribution(KVClass.STATE_ID)
    assert abs(state_id.pct(OpType.WRITE) - state_id.pct(OpType.DELETE)) < 5
