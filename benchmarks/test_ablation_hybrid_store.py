"""Ablation A (§V) — hybrid KV storage vs a single LSM store.

Replays the BareTrace mutation+read stream into (a) one LSM store (the
Geth/Pebble baseline) and (b) the paper's hybrid design.  The paper's
argument: LSM stores pay tombstones and compaction for delete-heavy and
scan-free classes; the hybrid design routes those classes to structures
with in-place deletes and lazy per-key indexing, cutting background I/O.

Checked shape: the hybrid store writes no tombstones for TxLookup-style
traffic, performs less total background I/O (compaction+GC bytes), has
lower write amplification, and leaves most world-state pairs unpromoted
(they are never read — Finding 3).
"""

from __future__ import annotations

from repro.bench.suite import replay_store as replay
from repro.hybrid import HybridKVStore, Route
from repro.kvstore.lsm import LSMConfig, LSMStore

LSM_CONFIG = LSMConfig(
    memtable_bytes=64 * 1024, l0_compaction_trigger=4, level_base_bytes=256 * 1024
)


def test_ablation_hybrid_store(benchmark, bench_trace_pair, record_rate):
    _, bare_result = bench_trace_pair
    records = bare_result.records

    lsm = replay(LSMStore(LSM_CONFIG), records)

    def build_hybrid():
        return replay(HybridKVStore(lsm_config=LSM_CONFIG), records)

    hybrid = benchmark.pedantic(build_hybrid, rounds=1, iterations=1)
    record_rate("ablation_hybrid_store", len(records) / benchmark.stats.stats.mean)

    lsm_metrics = lsm.metrics
    hybrid_metrics = hybrid.combined_metrics()
    print()
    print(f"{'metric':<28} {'LSM':>14} {'Hybrid':>14}")
    for name in (
        "user_puts",
        "user_deletes",
        "tombstones_written",
        "compaction_bytes_read",
        "compaction_bytes_written",
        "gc_bytes_written",
        "total_bytes_written",
        "write_amplification",
    ):
        lsm_value = getattr(lsm_metrics, name)
        hybrid_value = getattr(hybrid_metrics, name)
        if callable(lsm_value):
            lsm_value, hybrid_value = lsm_value(), hybrid_value()
        print(f"{name:<28} {lsm_value:>14.2f} {hybrid_value:>14.2f}")
    per_route = hybrid.per_route_metrics()
    print(
        f"log-then-hash promotions: {hybrid.log_then_hash.promotions} "
        f"({hybrid.log_then_hash.promoted_fraction:.1%} of live world-state pairs)"
    )
    print(f"hash-log GC bytes: {per_route[Route.HASH_LOG].gc_bytes_written}")

    # Same logical state in both stores.
    assert len(hybrid) == len(lsm)

    # LSM pays tombstones for every delete; the hybrid's routed classes
    # (TxLookup, block data, world state) delete in place.
    assert lsm_metrics.tombstones_written > 1000
    assert hybrid_metrics.tombstones_written < lsm_metrics.tombstones_written / 10

    # Background I/O (compaction vs GC) is lower for the hybrid.
    lsm_background = (
        lsm_metrics.compaction_bytes_written + lsm_metrics.gc_bytes_written
    )
    hybrid_background = (
        hybrid_metrics.compaction_bytes_written + hybrid_metrics.gc_bytes_written
    )
    print(f"background bytes: lsm={lsm_background} hybrid={hybrid_background}")
    assert hybrid_background < lsm_background

    # Write amplification: hybrid below the LSM baseline.
    assert hybrid_metrics.write_amplification < lsm_metrics.write_amplification

    # Finding 3 realized: most world-state pairs are never promoted.
    assert hybrid.log_then_hash.promoted_fraction < 0.5
