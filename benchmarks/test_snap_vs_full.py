"""Ablation G (§II-A) — snap vs full synchronization traffic profiles.

The paper measures full synchronization; new nodes default to snap
sync.  This bench quantifies the contrast the paper's background
describes: snap sync replaces per-block execution with a bulk ranged
state download plus trie heal, then switches to full sync at the head.

Checked shape: the snap trace is put-dominated while the full trace is
read-dominated; the snap node's healed state root matches the peer's;
after the switch, the snap node's tail blocks look like full sync
(reads flow again).
"""

from __future__ import annotations

from repro.core.opdist import OpDistAnalyzer
from repro.core.trace import OpType
from repro.sync.driver import DBConfig, FullSyncDriver, SyncConfig
from repro.sync.snapsync import SnapSyncDriver
from repro.workload.generator import WorkloadConfig, WorkloadGenerator

WORKLOAD = WorkloadConfig(
    seed=47, initial_eoa_accounts=2000, initial_contracts=300, txs_per_block=16
)


def test_snap_vs_full(benchmark):
    peer = FullSyncDriver(
        SyncConfig(db=DBConfig.bare_trace_config(), warmup_blocks=20),
        WorkloadGenerator(WORKLOAD),
        name="peer",
    )
    full_result = peer.run(60)

    def snap_sync():
        snap = SnapSyncDriver(
            SyncConfig(db=DBConfig.bare_trace_config(), warmup_blocks=0),
            WORKLOAD,
        )
        return snap.sync_from_peer(peer, tail_blocks=12)

    snap_result = benchmark.pedantic(snap_sync, rounds=1, iterations=1)

    full_ops = OpDistAnalyzer(track_keys=False).consume(full_result.records)
    snap_ops = OpDistAnalyzer(track_keys=False).consume(snap_result.records)

    def profile(analyzer):
        total = analyzer.total_ops
        return (
            total,
            100 * analyzer.total_reads() / total,
            100 * analyzer.total_puts() / total,
        )

    full_total, full_reads, full_puts = profile(full_ops)
    snap_total, snap_reads, snap_puts = profile(snap_ops)
    print()
    print(f"{'mode':<10} {'ops':>9} {'reads %':>8} {'puts %':>8}")
    print(f"{'full':<10} {full_total:>9,} {full_reads:>8.1f} {full_puts:>8.1f}")
    print(f"{'snap':<10} {snap_total:>9,} {snap_reads:>8.1f} {snap_puts:>8.1f}")
    print(
        f"downloaded: {snap_result.accounts_downloaded:,} accounts, "
        f"{snap_result.slots_downloaded:,} slots, "
        f"{snap_result.codes_downloaded} bytecodes; "
        f"root verified: {snap_result.state_root_matches}"
    )

    # Integrity: the healed state equals the peer's.
    assert snap_result.state_root_matches

    # Profile inversion: full sync reads more than it writes; snap sync
    # writes more than it reads.
    assert full_reads > full_puts
    assert snap_puts > snap_reads

    # The download covers the peer's full population.
    assert snap_result.accounts_downloaded >= 2000 + 300

    # After the pivot, the snap node behaves like a full-sync node.
    tail = [r for r in snap_result.records if r.block > snap_result.pivot_number]
    tail_reads = sum(1 for r in tail if r.op is OpType.READ)
    tail_puts = sum(1 for r in tail if r.op in (OpType.WRITE, OpType.UPDATE))
    print(f"tail profile: {tail_reads} reads vs {tail_puts} puts")
    assert tail_reads > tail_puts
