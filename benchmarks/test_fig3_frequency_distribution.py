"""Figure 3 — per-key operation frequency distributions (world state).

Paper's shape: among pairs read at least once, most are read exactly
once (CacheTrace: 71.5% SnapshotAccount, 81.8% SnapshotStorage, 48.1%
TrieNodeAccount, 63.1% TrieNodeStorage); frequency histograms decay
heavy-tailed; some keys have delete frequency > 1 (repeated
delete+reinsert from trie restructuring).
"""

from __future__ import annotations

from repro.core.classes import KVClass
from repro.core.report import render_frequency_distribution
from repro.core.trace import OpType

WORLD_STATE = (
    KVClass.SNAPSHOT_ACCOUNT,
    KVClass.SNAPSHOT_STORAGE,
    KVClass.TRIE_NODE_ACCOUNT,
    KVClass.TRIE_NODE_STORAGE,
)


def test_fig3_frequency_distribution(benchmark, cache_analysis, bare_analysis):
    def analyze():
        out = {}
        for cls in WORLD_STATE:
            activity = cache_analysis.opdist.activity(cls)
            out[cls] = {
                "read_hist": activity.frequency_distribution(OpType.READ),
                "read_once_pct": activity.fraction_with_frequency(OpType.READ, 1),
                "delete_repeat_keys": activity.keys_with_op_at_least(OpType.DELETE, 2),
            }
        return out

    panels = benchmark(analyze)
    print()
    paper_read_once = {
        KVClass.SNAPSHOT_ACCOUNT: 71.5,
        KVClass.SNAPSHOT_STORAGE: 81.8,
        KVClass.TRIE_NODE_ACCOUNT: 48.1,
        KVClass.TRIE_NODE_STORAGE: 63.1,
    }
    for cls in WORLD_STATE:
        print(render_frequency_distribution(cache_analysis.opdist, cls, OpType.READ, 8))
        print(
            f"  read-once share = {panels[cls]['read_once_pct']:.1f}% "
            f"(paper: {paper_read_once[cls]}%)  "
            f"keys deleted 2+ times = {panels[cls]['delete_repeat_keys']}"
        )

    for cls in WORLD_STATE:
        histogram = panels[cls]["read_hist"]
        assert histogram, f"{cls}: no read frequency data"
        # Read-once bucket is the largest (heavy-tailed decay).
        assert histogram[0][0] == 1
        assert histogram[0][1] == max(count for _, count in histogram)
        # Most read pairs are read only a small number of times.
        assert panels[cls]["read_once_pct"] > 30.0

    # Finding 5's repeated delete+reinsert appears in the trie classes.
    assert panels[KVClass.TRIE_NODE_STORAGE]["delete_repeat_keys"] > 0

    # BareTrace read-once shares are lower (paper: 8.4%/15.2% for the
    # trie classes) because every traversal re-reads interior nodes.
    for cls in (KVClass.TRIE_NODE_ACCOUNT, KVClass.TRIE_NODE_STORAGE):
        bare_once = bare_analysis.opdist.activity(cls).fraction_with_frequency(
            OpType.READ, 1
        )
        assert bare_once < panels[cls]["read_once_pct"]
