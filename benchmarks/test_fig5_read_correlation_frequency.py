"""Figure 5 — frequency distribution of correlated reads (d=0 vs d=1024).

Paper's shape: key-pair co-occurrence frequencies at distance 0 are far
higher than at distance 1024; intra-class TA-TA shows the highest
frequencies in both traces; BareTrace frequencies exceed CacheTrace
(caching reduces the skew).
"""

from __future__ import annotations

from repro.core.classes import KVClass
from repro.core.correlation import class_pair
from repro.core.report import render_correlation_frequency
from repro.core.trace import OpType

TA_TA = class_pair(KVClass.TRIE_NODE_ACCOUNT, KVClass.TRIE_NODE_ACCOUNT)
TS_TS = class_pair(KVClass.TRIE_NODE_STORAGE, KVClass.TRIE_NODE_STORAGE)


def test_fig5_read_correlation_frequency(benchmark, cache_analysis, bare_analysis):
    def analyze():
        cache_res = cache_analysis.correlation(OpType.READ)
        bare_res = bare_analysis.correlation(OpType.READ)
        return {
            "cache_d0": cache_res[0],
            "cache_dmax": cache_res[1024],
            "bare_d0": bare_res[0],
            "bare_dmax": bare_res[1024],
        }

    results = benchmark.pedantic(analyze, rounds=1, iterations=1)
    print()
    for name, analysis in (("CacheTrace", cache_analysis), ("BareTrace", bare_analysis)):
        res = analysis.correlation(OpType.READ)
        top = res[0].top_pairs(3)
        pairs = [p for p, _ in top]
        print(
            render_correlation_frequency(
                res, pairs, [0, 1024], f"Figure 5 analog — {name}", max_points=5
            )
        )

    # Distance-0 frequencies dominate distance-1024 frequencies.
    for trace in ("cache", "bare"):
        d0 = results[f"{trace}_d0"].max_pair_frequency(TA_TA)
        dmax = results[f"{trace}_dmax"].max_pair_frequency(TA_TA)
        print(f"{trace}: TA-TA max freq d0={d0} d1024={dmax}")
        assert d0 >= dmax, trace
        assert d0 > 1

    # Caching reduces frequency skew: bare max >= cache max at d0
    # (paper: 1.95M vs 405 for TA-TA).
    assert results["bare_d0"].max_pair_frequency(TA_TA) >= results[
        "cache_d0"
    ].max_pair_frequency(TA_TA)

    # Histograms themselves are heavy-tailed: most qualifying pairs sit
    # at the minimum frequency (2).
    histogram = results["bare_d0"].frequency_histograms.get(TA_TA) or results[
        "bare_d0"
    ].frequency_histograms.get(TS_TS)
    assert histogram is not None
    assert histogram[min(histogram)] == max(histogram.values())
