"""Benchmark fixtures.

One full-sync trace pair is produced per session at the calibrated
benchmark scale (a scaled-down analog of the paper's 1M-block window:
~150 measured blocks over a state pre-populated by genesis allocation
plus 60 warmup blocks).  Every table/figure bench analyzes this pair.
"""

from __future__ import annotations

import pytest

from repro.core.analysis import TraceAnalysis
from repro.sync.driver import run_trace_pair
from repro.workload.generator import WorkloadConfig

BENCH_WORKLOAD = WorkloadConfig(
    seed=2024,
    initial_eoa_accounts=6000,
    initial_contracts=700,
    txs_per_block=24,
)

#: Distances used by the correlation figures (log-scale x-axis, 0..1024).
DISTANCES = (0, 1, 4, 16, 64, 256, 1024)


@pytest.fixture(scope="session")
def bench_trace_pair():
    return run_trace_pair(
        BENCH_WORKLOAD, num_blocks=150, warmup_blocks=60, cache_bytes=256 * 1024
    )


@pytest.fixture(scope="session")
def cache_analysis(bench_trace_pair):
    cache_result, _ = bench_trace_pair
    return TraceAnalysis(
        "CacheTrace",
        cache_result.records,
        cache_result.store_snapshot,
        correlation_distances=DISTANCES,
    )


@pytest.fixture(scope="session")
def bare_analysis(bench_trace_pair):
    _, bare_result = bench_trace_pair
    return TraceAnalysis(
        "BareTrace",
        bare_result.records,
        bare_result.store_snapshot,
        correlation_distances=DISTANCES,
    )
