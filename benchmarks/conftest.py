"""Benchmark fixtures.

One full-sync trace pair is produced per session at the calibrated
benchmark scale (a scaled-down analog of the paper's 1M-block window:
~150 measured blocks over a state pre-populated by genesis allocation
plus 60 warmup blocks).  Every table/figure bench analyzes this pair.

The pair also seeds a :class:`repro.bench.BenchContext` (``bench_ctx``)
so the pytest benches and ``repro bench run`` time exactly the same
workload definitions from :mod:`repro.bench.suite`.

Set ``BENCH_JSON=/path/to/BENCH_file.json`` to emit recorded rates as
a JSON artifact.  Emission *merges* into an existing file instead of
overwriting it, so running several bench files back to back (or one
``-k``-filtered subset after another) accumulates one artifact instead
of clobbering earlier results.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.core.analysis import TraceAnalysis
from repro.sync.driver import run_trace_pair
from repro.workload.generator import WorkloadConfig

BENCH_WORKLOAD = WorkloadConfig(
    seed=2024,
    initial_eoa_accounts=6000,
    initial_contracts=700,
    txs_per_block=24,
)

#: Distances used by the correlation figures (log-scale x-axis, 0..1024).
DISTANCES = (0, 1, 4, 16, 64, 256, 1024)


@pytest.fixture(scope="session")
def bench_trace_pair():
    return run_trace_pair(
        BENCH_WORKLOAD, num_blocks=150, warmup_blocks=60, cache_bytes=256 * 1024
    )


@pytest.fixture(scope="session")
def cache_analysis(bench_trace_pair):
    cache_result, _ = bench_trace_pair
    return TraceAnalysis(
        "CacheTrace",
        cache_result.records,
        cache_result.store_snapshot,
        correlation_distances=DISTANCES,
    )


@pytest.fixture(scope="session")
def bare_analysis(bench_trace_pair):
    _, bare_result = bench_trace_pair
    return TraceAnalysis(
        "BareTrace",
        bare_result.records,
        bare_result.store_snapshot,
        correlation_distances=DISTANCES,
    )


@pytest.fixture(scope="session")
def bench_ctx(bench_trace_pair, tmp_path_factory):
    """A full-profile harness context seeded with the session trace pair."""
    from repro.bench import BenchContext

    ctx = BenchContext(
        "full",
        seed=BENCH_WORKLOAD.seed,
        tmpdir=tmp_path_factory.mktemp("bench-ctx"),
    )
    ctx.preload("trace_pair", bench_trace_pair)
    return ctx


# ---------------------------------------------------------------------------
# BENCH_JSON emission (merging)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="session")
def bench_rates() -> dict[str, float]:
    """Session-wide name → rate store; emitted as BENCH_JSON at exit."""
    return {}


@pytest.fixture(scope="session")
def record_rate(bench_rates):
    """``record_rate(name, value)`` — publish one benchmark's rate."""

    def record(name: str, value: float) -> None:
        bench_rates[name] = value

    return record


@pytest.fixture(scope="session", autouse=True)
def _emit_bench_json(bench_rates):
    yield
    path = os.environ.get("BENCH_JSON")
    if not path or not bench_rates:
        return
    target = Path(path)
    merged: dict[str, float] = {}
    if target.exists():
        # Merge with whatever a previous bench invocation wrote; a
        # corrupt/partial file is replaced rather than propagated.
        try:
            existing = json.loads(target.read_text(encoding="utf-8"))
            if isinstance(existing, dict):
                merged.update(existing)
        except ValueError:
            pass
    merged.update({name: round(rate, 1) for name, rate in bench_rates.items()})
    with open(target, "w", encoding="ascii") as stream:
        json.dump(dict(sorted(merged.items())), stream, indent=2)
        stream.write("\n")
