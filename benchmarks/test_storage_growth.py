"""Ablation F (§I motivation) — unbounded storage growth and its remedies.

The paper's opening problem statement: blockchain data grows without
bound (~200 GiB/year on mainnet) and LSM compaction cannot remove it
because history is immutable.  This bench measures the growth curve
directly, and quantifies the two mechanisms Geth deploys against it:

* the **freezer** bounds the *KV store's* block data (headers, bodies,
  receipts migrate out), but total storage still grows — the data just
  moves to flat files;
* **EIP-4444 history expiry** bounds the flat files too; only the world
  state keeps growing.

Checked shape: KV-pair count grows monotonically and roughly linearly
with block height; the freezer keeps the block-data classes' resident
count bounded; history expiry keeps ancient bytes bounded while the
unbounded run's ancient bytes keep climbing.
"""

from __future__ import annotations

from repro.core.classes import KVClass, classify_key
from repro.sync.driver import DBConfig, FullSyncDriver, SyncConfig
from repro.workload.generator import WorkloadConfig, WorkloadGenerator

WORKLOAD = WorkloadConfig(
    seed=41, initial_eoa_accounts=1200, initial_contracts=180, txs_per_block=14
)
BLOCKS = 120
SAMPLE = 10


def run_growth(history_expiry: int):
    driver = FullSyncDriver(
        SyncConfig(
            db=DBConfig.bare_trace_config(),
            warmup_blocks=10,
            freezer_threshold=24,
            freezer_batch=8,
            growth_sample_interval=SAMPLE,
            history_expiry=history_expiry,
        ),
        WorkloadGenerator(WORKLOAD),
        name=f"growth-expiry-{history_expiry}",
    )
    result = driver.run(BLOCKS)
    return driver, result


def test_storage_growth(benchmark):
    unbounded_driver, unbounded = benchmark.pedantic(
        run_growth, args=(0,), rounds=1, iterations=1
    )
    bounded_driver, bounded = run_growth(40)

    samples = unbounded.growth_samples
    print()
    print(f"{'block':>6} {'KV pairs':>9} {'KV MB':>7} {'frozen':>7} {'ancient MB':>11}")
    for sample in samples:
        print(
            f"{sample.block:>6} {sample.kv_pairs:>9,} "
            f"{sample.kv_bytes / 1e6:>7.2f} {sample.frozen_blocks:>7} "
            f"{sample.ancient_bytes / 1e6:>11.3f}"
        )

    assert len(samples) >= 10
    # KV pairs grow monotonically (world state accretes forever).
    pairs = [s.kv_pairs for s in samples]
    assert all(b >= a for a, b in zip(pairs, pairs[1:]))
    # Roughly linear at coarse granularity: the second half of the run
    # accretes a comparable amount to the first half (no saturation, no
    # super-linear blow-up).  Per-sample increments are noisy (tx mix,
    # trie restructuring), so compare half-window totals.
    half = len(pairs) // 2
    first_half_growth = pairs[half] - pairs[0]
    second_half_growth = pairs[-1] - pairs[half]
    assert first_half_growth > 0 and second_half_growth > 0
    ratio = second_half_growth / first_half_growth
    print(f"half-window growth ratio: {ratio:.2f}")
    assert 0.25 < ratio < 4.0

    # The freezer bounds resident block data in the KV store.
    resident_block_data = sum(
        1
        for key, _ in unbounded.store_snapshot
        if classify_key(key)
        in (KVClass.BLOCK_HEADER, KVClass.BLOCK_BODY, KVClass.BLOCK_RECEIPTS)
    )
    threshold = 24
    assert resident_block_data <= 5 * (threshold + 8 + 1)

    # History expiry bounds ancient bytes; the unbounded run keeps growing.
    unbounded_ancient = unbounded.growth_samples[-1].ancient_bytes
    bounded_ancient = bounded.growth_samples[-1].ancient_bytes
    print(
        f"final ancient bytes: unbounded={unbounded_ancient:,} "
        f"bounded(EIP-4444)={bounded_ancient:,}"
    )
    assert bounded_driver.freezer.expired_blocks > 0
    assert bounded_ancient < unbounded_ancient
    # And expiry does not touch the world state: same KV store content.
    assert bounded.total_store_pairs == unbounded.total_store_pairs
