"""Ablation B (§V) — correlation-aware caching vs LRU baselines.

The paper's cache-management suggestions: (i) stop admitting never-read
pairs on the write path (Findings 3+6); (ii) exploit read correlations
with prefetch and group eviction (Findings 8-9).  This bench replays
the BareTrace read stream (the cache-less capture — exactly what a
cache in front of the store would see) against four policies at equal
entry budgets, training the correlation table on a leading window.

Checked shape: no-write-admission beats plain LRU; the correlation-
aware cache achieves the highest hit rate of all policies.
"""

from __future__ import annotations

from repro.bench.suite import CACHE_CAPACITY as CAPACITY
from repro.bench.suite import TRAIN_FRACTION, world_state_reads
from repro.cachesim import (
    ARCPolicy,
    CacheSimulator,
    CorrelationAwareCache,
    CorrelationTable,
    LRUPolicy,
    NoWriteAdmissionPolicy,
    SegmentedLRUPolicy,
)
from repro.core.classes import WORLD_STATE_CLASSES, KVClass


def test_ablation_correlation_cache(benchmark, bench_trace_pair, record_rate):
    _, bare_result = bench_trace_pair
    records = bare_result.records
    classes = set(WORLD_STATE_CLASSES) | {KVClass.CODE}

    cutoff = int(len(records) * TRAIN_FRACTION)
    train_reads = world_state_reads(records[:cutoff])

    table = CorrelationTable(window=4, max_partners=3)
    table.learn(train_reads)

    reports = {}
    for policy in (
        LRUPolicy(CAPACITY),
        NoWriteAdmissionPolicy(CAPACITY),
        SegmentedLRUPolicy(CAPACITY),
        ARCPolicy(CAPACITY),
    ):
        reports[policy.name] = CacheSimulator(policy).replay(records, classes=classes)

    def run_correlation_aware():
        policy = CorrelationAwareCache(CAPACITY, table)
        return CacheSimulator(policy).replay(records, classes=classes)

    reports["correlation-aware"] = benchmark.pedantic(
        run_correlation_aware, rounds=1, iterations=1
    )
    record_rate(
        "ablation_correlation_cache", len(records) / benchmark.stats.stats.mean
    )

    print()
    print(f"{'policy':<26} {'hit rate':>9} {'store reads':>12} {'prefetches':>11}")
    for name, report in reports.items():
        print(
            f"{name:<26} {report.hit_rate:>9.3f} {report.store_reads:>12} "
            f"{report.prefetches:>11}"
        )
    print(f"(learned correlated pairs: {table.num_correlated_pairs})")

    lru = reports["lru"]
    assert lru.reads > 10_000  # enough signal to compare policies

    # Write-path admission filtering helps (Findings 3+6).
    assert reports["lru-no-write-admission"].hit_rate >= lru.hit_rate

    # Correlation-awareness wins on hit rate (Findings 8-9 exploited).
    correlation = reports["correlation-aware"]
    assert correlation.hit_rate > lru.hit_rate
    assert correlation.hit_rate == max(r.hit_rate for r in reports.values())
    assert correlation.prefetch_hits > 0
