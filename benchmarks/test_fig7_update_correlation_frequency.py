"""Figure 7 — frequency distribution of intra-class correlated updates.

Paper's shape: TrieNodeStorage shows the highest intra-class update
frequencies at distance 0, collapsing by distance 1024; Code shows no
intra-class update correlation; updates are more tightly coupled than
reads (frequencies fall off faster with distance).
"""

from __future__ import annotations

from repro.core.classes import KVClass
from repro.core.correlation import class_pair
from repro.core.report import render_correlation_frequency
from repro.core.trace import OpType

TS_TS = class_pair(KVClass.TRIE_NODE_STORAGE, KVClass.TRIE_NODE_STORAGE)
TA_TA = class_pair(KVClass.TRIE_NODE_ACCOUNT, KVClass.TRIE_NODE_ACCOUNT)
CODE_CODE = class_pair(KVClass.CODE, KVClass.CODE)


def test_fig7_update_correlation_frequency(benchmark, cache_analysis, bare_analysis):
    def analyze():
        return {
            "cache": cache_analysis.correlation(OpType.UPDATE),
            "bare": bare_analysis.correlation(OpType.UPDATE),
        }

    results = benchmark.pedantic(analyze, rounds=1, iterations=1)
    print()
    for name in ("cache", "bare"):
        res = results[name]
        print(
            render_correlation_frequency(
                res,
                [TS_TS, TA_TA],
                [0, 1024],
                f"Figure 7 analog — {name} intra-class updates",
                max_points=5,
            )
        )

    for name in ("cache", "bare"):
        res = results[name]
        ts_d0 = res[0].max_pair_frequency(TS_TS)
        ts_dmax = res[1024].max_pair_frequency(TS_TS)
        print(f"{name}: TS-TS max freq d0={ts_d0} d1024={ts_dmax}")
        # Frequencies peak at distance 0 and collapse at the largest
        # distance (paper: 1M at d0 vs 10 at d1024 for mainnet).
        assert ts_d0 > 0
        assert ts_d0 >= ts_dmax

        # Code has no (or negligible) intra-class update correlation:
        # code blobs are immutable and re-deployments are rare.
        code_d0 = res[0].class_pair_counts.get(CODE_CODE, 0)
        ts_count_d0 = res[0].class_pair_counts.get(TS_TS, 0)
        assert code_d0 <= ts_count_d0 / 10

    # Updates cluster more tightly than reads, in the paper's sense:
    # the strongest cross-class *update* pair (the batched head
    # pointers) collapses to zero within a few positions, while the
    # strongest *read* pairs persist across distances (Figure 4 shows
    # TA-TS reads peaking at distance four on mainnet).
    update_res = results["cache"]
    read_res = cache_analysis.correlation(OpType.READ)
    top_update_pair = update_res[0].top_pairs(1, cross_class=True)[0][0]
    top_read_pair = read_res[0].top_pairs(1)[0][0]
    update_d4 = update_res[4].class_pair_counts.get(top_update_pair, 0)
    read_d4 = read_res[4].class_pair_counts.get(top_read_pair, 0)
    print(f"top pairs at d4: updates={update_d4} reads={read_d4}")
    assert update_d4 == 0
    assert read_d4 > 0
