"""End-to-end findings report — all 11 findings on the benchmark traces.

This is the paper's summary deliverable: every finding's qualitative
claim, checked against the synthetic CacheTrace/BareTrace pair, with
the measured values printed next to the paper's numbers.
"""

from __future__ import annotations

from repro.core.findings import evaluate_findings


def test_findings_report(benchmark, cache_analysis, bare_analysis):
    report = benchmark.pedantic(
        evaluate_findings, args=(cache_analysis, bare_analysis), rounds=1, iterations=1
    )
    print()
    print(report.render())
    failed = [f for f in report if not f.passed]
    assert not failed, [f.summary_line() for f in failed]
