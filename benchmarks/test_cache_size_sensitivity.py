"""Ablation E (Finding 6 extension) — cache-size sensitivity sweep.

Finding 6 says caching helps the hottest keys but not the medium-
frequency band.  A natural design question follows: does throwing more
cache at the problem fix it?  This bench syncs the same workload under
increasing cache budgets and measures how the world-state read traffic
(the trace volume a cache absorbs) responds.

Checked shape: read traffic decreases monotonically(ish) with cache
size, with a knee where the hot working set starts to fit, and then a
*plateau*: past the knee the remaining reads are the long Zipf tail of
cold, once-read keys that no LRU capacity can anticipate — the paper's
argument for smarter (correlation-aware, admission-filtered) caching
over simply bigger caches (Findings 3 + 6).
"""

from __future__ import annotations

from repro.core.classes import WORLD_STATE_CLASSES
from repro.core.opdist import OpDistAnalyzer
from repro.sync.driver import DBConfig, FullSyncDriver, SyncConfig
from repro.workload.generator import WorkloadConfig, WorkloadGenerator

WORKLOAD = WorkloadConfig(
    seed=23, initial_eoa_accounts=2500, initial_contracts=350, txs_per_block=18
)
CACHE_SIZES = (
    32 * 1024,
    128 * 1024,
    512 * 1024,
    2 * 1024 * 1024,
    8 * 1024 * 1024,
)
BLOCKS = 80
WARMUP = 40


def run_with_cache(cache_bytes: int) -> int:
    driver = FullSyncDriver(
        SyncConfig(db=DBConfig.cache_trace_config(cache_bytes), warmup_blocks=WARMUP),
        WorkloadGenerator(WORKLOAD),
        name=f"cache-{cache_bytes}",
    )
    result = driver.run(BLOCKS)
    opdist = OpDistAnalyzer(track_keys=False).consume(result.records)
    return opdist.reads_in(WORLD_STATE_CLASSES)


def test_cache_size_sensitivity(benchmark):
    reads_by_size = {}
    for cache_bytes in CACHE_SIZES[:-1]:
        reads_by_size[cache_bytes] = run_with_cache(cache_bytes)

    largest = CACHE_SIZES[-1]
    reads_by_size[largest] = benchmark.pedantic(
        run_with_cache, args=(largest,), rounds=1, iterations=1
    )

    print()
    print(f"{'cache budget':>14} {'world-state reads':>18} {'reduction vs prev':>18}")
    previous = None
    for cache_bytes in CACHE_SIZES:
        reads = reads_by_size[cache_bytes]
        if previous is None:
            delta = "-"
        else:
            delta = f"{100 * (previous - reads) / previous:.1f}%"
        print(f"{cache_bytes:>14,} {reads:>18,} {delta:>18}")
        previous = reads

    sizes = list(CACHE_SIZES)
    reads = [reads_by_size[s] for s in sizes]
    # More cache never hurts much (allow 5% noise) ...
    for smaller, larger in zip(reads, reads[1:]):
        assert larger <= smaller * 1.05
    # ... and helps substantially overall ...
    assert reads[-1] < 0.8 * reads[0]
    # ... with a knee-then-plateau shape: some middle step's relative
    # reduction (the knee, where the hot set starts fitting) exceeds the
    # final step's (the plateau, where only the cold Zipf tail remains).
    steps = [
        (reads[i] - reads[i + 1]) / reads[i] for i in range(len(reads) - 1)
    ]
    print("step reductions:", [f"{s:.3f}" for s in steps])
    assert max(steps[:-1]) > steps[-1]
    # Even an effectively unbounded cache cannot eliminate world-state
    # reads: cold keys miss on first touch no matter the capacity.
    assert reads[-1] > 0
