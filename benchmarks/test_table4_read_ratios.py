"""Table IV — read ratios of KV pairs in both traces.

Paper's shape: only a small fraction of each world-state class's pairs
is ever read (TrieNodeAccount 14.7%/13.0%, TrieNodeStorage 8.34%/6.59%,
SnapshotAccount 11.0%, SnapshotStorage 12.0%); snapshot classes have no
entries in BareTrace.  Our synthetic state is far smaller than
mainnet's 3.94B pairs, so our absolute ratios sit higher; the *shape*
(small minority read; TrieNodeStorage < TrieNodeAccount) must hold.
"""

from __future__ import annotations

from repro.core.classes import KVClass
from repro.core.report import render_read_ratio_table

CLASSES = (
    KVClass.SNAPSHOT_ACCOUNT,
    KVClass.SNAPSHOT_STORAGE,
    KVClass.TRIE_NODE_ACCOUNT,
    KVClass.TRIE_NODE_STORAGE,
)


def test_table4_read_ratios(benchmark, cache_analysis, bare_analysis):
    def analyze():
        return {
            "cache": {cls: cache_analysis.read_ratio(cls) for cls in CLASSES},
            "bare": {cls: bare_analysis.read_ratio(cls) for cls in CLASSES},
        }

    ratios = benchmark(analyze)
    print()
    print(render_read_ratio_table(bare_analysis, cache_analysis, CLASSES))
    print("(paper: TA 14.7/13.0, TS 8.34/6.59, SA -/11.0, SS -/12.0)")

    # Most pairs are never read, in every class and both traces.
    for trace in ("cache", "bare"):
        for cls, ratio in ratios[trace].items():
            assert ratio < 60.0, (trace, cls, ratio)

    # TrieNodeStorage read ratio below TrieNodeAccount (paper ordering).
    assert (
        ratios["cache"][KVClass.TRIE_NODE_STORAGE]
        < ratios["cache"][KVClass.TRIE_NODE_ACCOUNT]
    )
    assert (
        ratios["bare"][KVClass.TRIE_NODE_STORAGE]
        < ratios["bare"][KVClass.TRIE_NODE_ACCOUNT]
    )

    # Snapshot classes absent from BareTrace.
    assert ratios["bare"][KVClass.SNAPSHOT_ACCOUNT] == 0.0
    assert ratios["bare"][KVClass.SNAPSHOT_STORAGE] == 0.0
    assert ratios["cache"][KVClass.SNAPSHOT_ACCOUNT] > 0.0
