"""Account state objects.

An Ethereum account is the 4-tuple ``(nonce, balance, storage_root,
code_hash)``; its RLP encoding is what the account trie's leaf values
and (in trimmed "slim" form) the snapshot layer store.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro import rlp

#: Hash of empty code (sha3-256 of b"", standing in for Keccak).
EMPTY_CODE_HASH = hashlib.sha3_256(b"").digest()

#: Root hash of an empty storage trie.
from repro.trie.trie import EMPTY_ROOT as EMPTY_STORAGE_ROOT  # noqa: E402


@dataclass
class Account:
    """World-state account record."""

    nonce: int = 0
    balance: int = 0
    storage_root: bytes = EMPTY_STORAGE_ROOT
    code_hash: bytes = EMPTY_CODE_HASH

    @property
    def is_contract(self) -> bool:
        return self.code_hash != EMPTY_CODE_HASH

    def encode(self) -> bytes:
        """Full consensus RLP encoding (account-trie leaf value)."""
        return rlp.encode(
            [self.nonce, self.balance, self.storage_root, self.code_hash]
        )

    @classmethod
    def decode(cls, blob: bytes) -> "Account":
        nonce, balance, storage_root, code_hash = rlp.decode(blob)
        return cls(
            nonce=rlp.decode_uint(nonce),
            balance=rlp.decode_uint(balance),
            storage_root=storage_root,
            code_hash=code_hash,
        )

    def encode_slim(self) -> bytes:
        """Snapshot ("slim") encoding: empty roots/hashes are elided.

        Geth's snapshot layer stores accounts in this trimmed form,
        which is why SnapshotAccount values (Table I: 15.9 bytes mean)
        are far smaller than TrieNodeAccount leaf payloads.
        """
        storage_root = b"" if self.storage_root == EMPTY_STORAGE_ROOT else self.storage_root
        code_hash = b"" if self.code_hash == EMPTY_CODE_HASH else self.code_hash
        return rlp.encode([self.nonce, self.balance, storage_root, code_hash])

    @classmethod
    def decode_slim(cls, blob: bytes) -> "Account":
        nonce, balance, storage_root, code_hash = rlp.decode(blob)
        return cls(
            nonce=rlp.decode_uint(nonce),
            balance=rlp.decode_uint(balance),
            storage_root=storage_root if storage_root else EMPTY_STORAGE_ROOT,
            code_hash=code_hash if code_hash else EMPTY_CODE_HASH,
        )
