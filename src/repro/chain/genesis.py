"""Genesis construction and chain configuration.

The genesis block seeds the world state (pre-funded accounts) and
determines the two ``ethereum-genesis-*`` / ``ethereum-config-*``
singleton KV pairs Geth writes at database initialization.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.chain.blocks import Block, BlockBody, Header


@dataclass
class GenesisConfig:
    """Parameters of the simulated network's genesis."""

    chain_id: int = 1
    #: number of pre-funded externally owned accounts
    prefunded_accounts: int = 64
    initial_balance: int = 10**21
    timestamp: int = 1_438_269_973
    #: synthetic genesis allocation payload size (the real mainnet
    #: genesis state blob is ~0.68 MiB; Table I's Ethereum-genesis row)
    alloc_blob_bytes: int = 710_909

    def config_json(self) -> bytes:
        """The chain-config value stored under ``ethereum-config-<hash>``."""
        config = {
            "chainId": self.chain_id,
            "homesteadBlock": 0,
            "byzantiumBlock": 0,
            "constantinopleBlock": 0,
            "petersburgBlock": 0,
            "istanbulBlock": 0,
            "berlinBlock": 0,
            "londonBlock": 0,
            "terminalTotalDifficulty": 0,
            "shanghaiTime": 0,
            "cancunTime": 0,
        }
        blob = json.dumps(config, separators=(",", ":")).encode()
        # Pad to the observed mainnet config size (603 bytes) so the
        # Ethereum-config singleton lands on Table I's value size.
        if len(blob) < 603:
            blob += b" " * (603 - len(blob))
        return blob

    def genesis_state_blob(self, state_root: bytes) -> bytes:
        """Synthetic genesis allocation blob (size-faithful)."""
        seed = hashlib.sha3_256(b"genesis-alloc" + state_root).digest()
        repeats = self.alloc_blob_bytes // len(seed) + 1
        return (seed * repeats)[: self.alloc_blob_bytes]


def make_genesis(config: GenesisConfig, state_root: bytes) -> Block:
    """Build the genesis block over an already-initialized state root."""
    header = Header(
        number=0,
        parent_hash=b"\x00" * 32,
        state_root=state_root,
        timestamp=config.timestamp,
        extra_data=b"repro-genesis",
    )
    return Block(header=header, body=BlockBody())
