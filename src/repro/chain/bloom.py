"""2048-bit log bloom filters.

Each block header carries a 256-byte bloom over the addresses and
topics of all logs in the block; Geth's bloombits indexer later
transposes these per-section for fast log search (the BloomBits class).
"""

from __future__ import annotations

import hashlib
from typing import Iterable

BLOOM_BITS = 2048
BLOOM_BYTES = BLOOM_BITS // 8


class Bloom:
    """Ethereum-style log bloom: 3 bit positions per element."""

    def __init__(self, data: bytes = b"") -> None:
        if data and len(data) != BLOOM_BYTES:
            raise ValueError(f"bloom must be {BLOOM_BYTES} bytes, got {len(data)}")
        self._bits = bytearray(data) if data else bytearray(BLOOM_BYTES)

    @staticmethod
    def _positions(element: bytes) -> Iterable[int]:
        digest = hashlib.sha3_256(element).digest()
        # Three 11-bit positions from the first three 2-byte words.
        for i in (0, 2, 4):
            yield int.from_bytes(digest[i : i + 2], "big") % BLOOM_BITS

    def add(self, element: bytes) -> None:
        for pos in self._positions(element):
            self._bits[pos >> 3] |= 1 << (pos & 7)

    def may_contain(self, element: bytes) -> bool:
        return all(
            self._bits[pos >> 3] & (1 << (pos & 7)) for pos in self._positions(element)
        )

    def merge(self, other: "Bloom") -> None:
        for i in range(BLOOM_BYTES):
            self._bits[i] |= other._bits[i]

    def bit(self, index: int) -> bool:
        """Whether bloom bit ``index`` (0..2047) is set."""
        return bool(self._bits[index >> 3] & (1 << (index & 7)))

    def to_bytes(self) -> bytes:
        return bytes(self._bits)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Bloom) and self._bits == other._bits

    def bit_count(self) -> int:
        return sum(bin(b).count("1") for b in self._bits)
