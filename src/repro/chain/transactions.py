"""Transactions, logs, and receipts.

Transactions model the post-merge mainnet mix (EOA transfers, contract
calls, contract creations); receipts carry status, gas, logs, and a
per-receipt bloom.  RLP encodings match the consensus layouts closely
enough that block-body and receipt-list value sizes land in the ranges
the paper reports (tens of KiB per block).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from repro import rlp
from repro.chain.bloom import Bloom


@dataclass
class Transaction:
    """A simplified dynamic-fee transaction."""

    nonce: int
    sender: bytes  # 20 bytes
    to: Optional[bytes]  # 20 bytes, or None for contract creation
    value: int
    gas_limit: int
    data: bytes = b""
    max_fee_per_gas: int = 30_000_000_000
    priority_fee_per_gas: int = 1_000_000_000

    def encode(self) -> bytes:
        to_field = self.to if self.to is not None else b""
        # 65 bytes of signature material (v, r, s) round out the size.
        signature = hashlib.sha3_256(
            self.sender + self.nonce.to_bytes(8, "big")
        ).digest()
        return rlp.encode(
            [
                self.nonce,
                self.max_fee_per_gas,
                self.priority_fee_per_gas,
                self.gas_limit,
                to_field,
                self.value,
                self.data,
                1,  # v parity
                signature,  # r
                signature[::-1],  # s
            ]
        )

    @property
    def hash(self) -> bytes:
        return hashlib.sha3_256(self.encode()).digest()

    @property
    def is_creation(self) -> bool:
        return self.to is None


@dataclass
class Log:
    """One contract event log."""

    address: bytes  # 20 bytes
    topics: list[bytes] = field(default_factory=list)  # 32 bytes each
    data: bytes = b""

    def encode(self) -> bytes:
        return rlp.encode([self.address, list(self.topics), self.data])

    def bloom_elements(self) -> list[bytes]:
        return [self.address, *self.topics]


@dataclass
class Receipt:
    """Execution outcome of one transaction."""

    status: int
    cumulative_gas_used: int
    logs: list[Log] = field(default_factory=list)

    def bloom(self) -> Bloom:
        bloom = Bloom()
        for log in self.logs:
            for element in log.bloom_elements():
                bloom.add(element)
        return bloom

    def encode(self) -> bytes:
        return rlp.encode(
            [
                self.status,
                self.cumulative_gas_used,
                self.bloom().to_bytes(),
                [log.encode() for log in self.logs],
            ]
        )


def encode_receipts(receipts: list[Receipt]) -> bytes:
    """Encode a block's receipt list (the BlockReceipts value)."""
    return rlp.encode([r.encode() for r in receipts])


def block_bloom(receipts: list[Receipt]) -> Bloom:
    """Union of all receipt blooms (the header's logsBloom)."""
    bloom = Bloom()
    for receipt in receipts:
        bloom.merge(receipt.bloom())
    return bloom
