"""Block validation.

Full synchronization "reads KV pairs ... to verify downloaded blocks by
processing their transactions" (paper §II-A).  This module implements
the verification rules themselves:

* **derived roots** — transactions_root and receipts_root are MPT roots
  over RLP(index) -> encoded item, exactly the Yellow Paper's
  construction (computed here over an in-memory trie);
* **header-chain rules** — number/parent linkage, timestamp ordering,
  gas accounting;
* **post-execution checks** — the executed state root, receipts root,
  and logs bloom must match what the header commits to.

The sync driver stamps the derived roots into every block it builds and
re-validates on import, so a corrupted block (tampered body, wrong
state root) raises :class:`~repro.errors.InvalidBlockError` rather than
silently entering the database.
"""

from __future__ import annotations

from typing import Optional

from repro import rlp
from repro.chain.blocks import Block, Header
from repro.chain.transactions import Receipt, block_bloom
from repro.errors import InvalidBlockError
from repro.trie.nibbles import Nibbles, bytes_to_nibbles
from repro.trie.trie import NodeBackend, PathTrie


class _EphemeralBackend(NodeBackend):
    """Throwaway in-memory node store for derived-root computation."""

    def __init__(self) -> None:
        self._data: dict[Nibbles, bytes] = {}

    def get(self, path: Nibbles) -> Optional[bytes]:
        return self._data.get(path)

    def peek(self, path: Nibbles) -> Optional[bytes]:
        return self._data.get(path)

    def put(self, path: Nibbles, blob: bytes) -> None:
        self._data[path] = blob

    def delete(self, path: Nibbles) -> None:
        self._data.pop(path, None)


def derive_list_root(items: list[bytes]) -> bytes:
    """MPT root of ``RLP(index) -> item`` (tx/receipt root construction)."""
    trie = PathTrie(_EphemeralBackend())
    for index, item in enumerate(items):
        key = bytes_to_nibbles(rlp.encode(index))
        trie.update(key, item if item else b"\x80")
    return trie.commit()


def derive_transactions_root(block_or_body) -> bytes:
    """transactions_root over the body's encoded transactions."""
    transactions = getattr(block_or_body, "transactions", block_or_body)
    return derive_list_root([tx.encode() for tx in transactions])


def derive_receipts_root(receipts: list[Receipt]) -> bytes:
    """receipts_root over the encoded receipts."""
    return derive_list_root([receipt.encode() for receipt in receipts])


def validate_header_chain(header: Header, parent: Header) -> None:
    """Header-chain rules: linkage, ordering, gas accounting."""
    if header.number != parent.number + 1:
        raise InvalidBlockError(
            f"block {header.number} does not extend parent {parent.number}"
        )
    if header.parent_hash != parent.hash:
        raise InvalidBlockError(
            f"block {header.number} parent hash mismatch: "
            f"{header.parent_hash.hex()[:12]} != {parent.hash.hex()[:12]}"
        )
    if header.timestamp <= parent.timestamp:
        raise InvalidBlockError(
            f"block {header.number} timestamp {header.timestamp} not after "
            f"parent's {parent.timestamp}"
        )
    if header.gas_used > header.gas_limit:
        raise InvalidBlockError(
            f"block {header.number} gas used {header.gas_used} exceeds "
            f"limit {header.gas_limit}"
        )


def validate_body(block: Block) -> None:
    """The body must match the header's transactions_root."""
    derived = derive_transactions_root(block.body)
    if derived != block.header.transactions_root:
        raise InvalidBlockError(
            f"block {block.number} transactions root mismatch: body does "
            f"not match header commitment"
        )


def validate_execution_outcome(
    block: Block, state_root: bytes, receipts: list[Receipt]
) -> None:
    """Post-execution checks: state root, receipts root, logs bloom."""
    if state_root != block.header.state_root:
        raise InvalidBlockError(
            f"block {block.number} state root mismatch after execution"
        )
    derived = derive_receipts_root(receipts)
    if derived != block.header.receipts_root:
        raise InvalidBlockError(f"block {block.number} receipts root mismatch")
    bloom = block_bloom(receipts).to_bytes()
    if block.header.logs_bloom and block.header.logs_bloom != bloom:
        raise InvalidBlockError(f"block {block.number} logs bloom mismatch")
