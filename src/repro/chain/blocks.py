"""Block headers, bodies, and assembled blocks."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro import rlp
from repro.chain.bloom import Bloom
from repro.chain.transactions import Receipt, Transaction


@dataclass
class Header:
    """Block header (post-merge field set)."""

    number: int
    parent_hash: bytes
    state_root: bytes
    timestamp: int
    gas_limit: int = 30_000_000
    gas_used: int = 0
    transactions_root: bytes = b"\x00" * 32
    receipts_root: bytes = b"\x00" * 32
    logs_bloom: bytes = b""
    base_fee: int = 10_000_000_000
    coinbase: bytes = b"\x00" * 20
    extra_data: bytes = b""
    mix_digest: bytes = b"\x00" * 32
    withdrawals_root: bytes = b"\x00" * 32

    def encode(self) -> bytes:
        bloom = self.logs_bloom if self.logs_bloom else Bloom().to_bytes()
        return rlp.encode(
            [
                self.parent_hash,
                b"\x00" * 32,  # ommers hash (empty post-merge)
                self.coinbase,
                self.state_root,
                self.transactions_root,
                self.receipts_root,
                bloom,
                0,  # difficulty (zero post-merge)
                self.number,
                self.gas_limit,
                self.gas_used,
                self.timestamp,
                self.extra_data,
                self.mix_digest,
                b"\x00" * 8,  # nonce
                self.base_fee,
                self.withdrawals_root,
            ]
        )

    @property
    def hash(self) -> bytes:
        return hashlib.sha3_256(self.encode()).digest()


@dataclass
class BlockBody:
    """Transactions (and post-merge withdrawals) of one block."""

    transactions: list[Transaction] = field(default_factory=list)
    withdrawals: list[tuple[int, bytes, int]] = field(default_factory=list)

    def encode(self) -> bytes:
        return rlp.encode(
            [
                [tx.encode() for tx in self.transactions],
                [],  # ommers (empty post-merge)
                [list(w) for w in self.withdrawals],
            ]
        )


@dataclass
class Block:
    """Assembled block: header + body + execution receipts.

    Receipts are produced by the state processor; workload-generated
    blocks arrive with an empty receipt list that the sync driver fills.
    """

    header: Header
    body: BlockBody
    receipts: list[Receipt] = field(default_factory=list)

    @property
    def number(self) -> int:
        return self.header.number

    @property
    def hash(self) -> bytes:
        return self.header.hash

    @property
    def transactions(self) -> list[Transaction]:
        return self.body.transactions
