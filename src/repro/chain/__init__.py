"""Blockchain substrate: the logical data model of an Ethereum chain.

Defines the objects Geth persists — accounts, transactions, receipts,
block headers/bodies, and log bloom filters — with RLP serialization
that makes the stored value sizes mechanically realistic (headers a few
hundred bytes, bodies/receipts tens of KiB for full blocks, accounts
~70-110 bytes).
"""

from repro.chain.account import Account
from repro.chain.blocks import Block, BlockBody, Header
from repro.chain.bloom import Bloom
from repro.chain.genesis import GenesisConfig, make_genesis
from repro.chain.transactions import Log, Receipt, Transaction

__all__ = [
    "Account",
    "Transaction",
    "Receipt",
    "Log",
    "Header",
    "BlockBody",
    "Block",
    "Bloom",
    "GenesisConfig",
    "make_genesis",
]
