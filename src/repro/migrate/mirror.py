"""Write interception for online migration: the mirror tap and the gate.

:class:`MirroringStore` is the :class:`~repro.kvstore.api.KVStore`
wrapper a live workload keeps using while the migration engine works
underneath it.  Every mutation crossing the wrapper is applied to the
*active* store (source before cutover, destination after) **and**
appended to a :class:`DeltaLog` — the accumulated writes the delta
catch-up loop drains in rounds.  Deltas are sharded by the same CRC32
key hash replay's partitioner uses (:func:`repro.replay.partition.shard_of`):
one key always lands in one shard list, appended in arrival order, so
applying each shard's list in order preserves per-key write order no
matter how rounds interleave.

The :class:`AdmissionGate` is the cutover pause: a paused gate blocks
new operations at admission (the token-bucket analog of serve/replay's
admission control — traffic queues instead of failing) while the
engine waits for the in-flight count to drain to zero.  Pause → drain
→ flip → resume is what makes the store swap atomic from the
workload's point of view.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.kvstore.api import KVStore
from repro.replay.partition import shard_of


class AdmissionGate:
    """Pause/resume barrier with an in-flight operation count."""

    def __init__(self) -> None:
        self._open = threading.Event()
        self._open.set()
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._in_flight = 0
        #: serializes exclusive() windows (parallel range snapshots)
        self._exclusive_lock = threading.Lock()
        self.pauses = 0

    def admit(self) -> None:
        """Block while paused, then count one in-flight operation."""
        while True:
            self._open.wait()
            with self._lock:
                if self._open.is_set():
                    self._in_flight += 1
                    return

    def release(self) -> None:
        with self._idle:
            self._in_flight -= 1
            if self._in_flight == 0:
                self._idle.notify_all()

    def pause(self, timeout: Optional[float] = None) -> bool:
        """Stop admitting and wait for in-flight ops to drain.

        Returns ``True`` once the wrapper is quiescent; ``False`` if
        in-flight operations did not drain within ``timeout``.
        """
        self._open.clear()
        self.pauses += 1
        with self._idle:
            return self._idle.wait_for(lambda: self._in_flight == 0, timeout=timeout)

    def resume(self) -> None:
        self._open.set()

    @contextmanager
    def exclusive(self, timeout: Optional[float] = None):
        """Pause, drain, run the body quiescent, then resume.

        The bulk copier snapshots each key range inside this window (a
        range lock in miniature): no backend in the suite guarantees
        scan stability under concurrent mutation, so the engine buys a
        consistent range view with a micro-pause instead of trusting
        iterator semantics that only memdb happens to provide.
        """
        with self._exclusive_lock:
            drained = self.pause(timeout=timeout)
            try:
                if not drained:
                    raise TimeoutError("admission gate did not drain in-flight ops")
                yield
            finally:
                self.resume()

    @property
    def paused(self) -> bool:
        return not self._open.is_set()

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight


class DeltaLog:
    """CRC32-sharded, order-preserving log of mirrored mutations.

    ``value is None`` records a delete.  ``drain()`` atomically swaps
    the accumulated shard lists out, so appends racing a drain land in
    the next round rather than being lost.
    """

    def __init__(self, num_shards: int = 4) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = num_shards
        self._lock = threading.Lock()
        self._shards: list[list[tuple[bytes, Optional[bytes]]]] = [
            [] for _ in range(num_shards)
        ]
        self._pending = 0
        self.total_appended = 0

    def append(self, key: bytes, value: Optional[bytes]) -> None:
        with self._lock:
            self._shards[shard_of(key, self.num_shards)].append((key, value))
            self._pending += 1
            self.total_appended += 1

    def drain(self) -> list[list[tuple[bytes, Optional[bytes]]]]:
        """Swap out and return the per-shard delta lists."""
        with self._lock:
            shards = self._shards
            self._shards = [[] for _ in range(self.num_shards)]
            self._pending = 0
        return shards

    @property
    def pending(self) -> int:
        return self._pending


class MirroringStore(KVStore):
    """KVStore facade over the active store with a write-mirror tap.

    Reads and scans pass through to the active store; mutations are
    applied there and appended to the delta log while mirroring is
    enabled.  :meth:`flip` switches the active store (the cutover) and
    stops mirroring — after the flip the destination *is* the truth,
    so there is nothing left to mirror.
    """

    def __init__(self, source: KVStore, delta_shards: int = 4) -> None:
        self._active = source
        self.source = source
        self.gate = AdmissionGate()
        self.deltas = DeltaLog(delta_shards)
        self._mirroring = True
        self._flip_lock = threading.Lock()

    # -- engine side ----------------------------------------------------------

    @property
    def active(self) -> KVStore:
        return self._active

    @property
    def mirroring(self) -> bool:
        return self._mirroring

    @property
    def lag(self) -> int:
        """Mirrored mutations not yet applied to the destination."""
        return self.deltas.pending

    def flip(self, destination: KVStore) -> None:
        """Cut the active store over to ``destination``.

        Only safe while the gate is paused and drained; the engine
        owns that discipline.
        """
        with self._flip_lock:
            self._active = destination
            self._mirroring = False

    # -- workload side (KVStore API) ------------------------------------------

    def get(self, key: bytes) -> bytes:
        self.gate.admit()
        try:
            return self._active.get(key)
        finally:
            self.gate.release()

    def put(self, key: bytes, value: bytes) -> None:
        self.gate.admit()
        try:
            self._active.put(key, value)
            if self._mirroring:
                self.deltas.append(key, value)
        finally:
            self.gate.release()

    def delete(self, key: bytes) -> None:
        self.gate.admit()
        try:
            self._active.delete(key)
            if self._mirroring:
                self.deltas.append(key, None)
        finally:
            self.gate.release()

    def has(self, key: bytes) -> bool:
        self.gate.admit()
        try:
            return self._active.has(key)
        finally:
            self.gate.release()

    def scan(
        self, start: bytes, end: Optional[bytes] = None
    ) -> Iterator[tuple[bytes, bytes]]:
        # The admission slot is held for the whole iteration (released
        # when the generator is exhausted or closed), so a cutover
        # cannot flip the active store out from under a live iterator.
        self.gate.admit()

        def _held() -> Iterator[tuple[bytes, bytes]]:
            try:
                yield from self._active.scan(start, end)
            finally:
                self.gate.release()

        return _held()

    def __len__(self) -> int:
        return len(self._active)

    def close(self) -> None:
        self._active.close()
