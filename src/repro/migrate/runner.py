"""File-level migration jobs: what ``repro migrate SRC DST`` runs.

The engine (:mod:`repro.migrate.engine`) moves pairs between two live
in-memory stores; this module wraps it in the durable artifacts a CLI
invocation works with:

* **SRC** — a published ``repro-kvimage-v1`` image (see
  :mod:`repro.migrate.image`), loaded into a fresh ``--backend-from``
  store at job start.  It is never modified.
* **DST** — the destination image path.  It only ever appears by an
  atomic temp-then-rename publish after a completed, verified cutover;
  a crashed or aborted job leaves no DST behind (rollback: the SRC
  image remains the only source of truth).
* **spill** — ``DST + ".migtmp"``, the bulk copier's durable block
  log.  ``--resume`` salvages its CRC-valid prefix into the
  destination store and the engine's repair pass re-checks every range
  against the source, so a resumed job converges even though the
  in-memory stores died with the previous process.

Optionally a paced traffic thread replays a trace through the engine's
:class:`~repro.migrate.mirror.MirroringStore` for the whole run — live
workload against a store that is being migrated out from under it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Union

from repro.core.trace import read_trace
from repro.errors import MigrationError
from repro.obs import MetricsRegistry, get_registry
from repro.replay.apply import apply_op
from repro.replay.backends import make_store
from repro.replay.pacing import make_pacer

from repro.migrate.engine import MigrationConfig, MigrationEngine, MigrationReport
from repro.migrate.image import (
    ImageWriter,
    load_image,
    read_image_pairs,
    spill_path,
    write_image,
)
from repro.migrate.mirror import MirroringStore

#: pairs per batch when reloading a salvaged spill into the destination
_RELOAD_BATCH = 4096


@dataclass(frozen=True)
class MigrateJob:
    """One CLI-level migration: SRC image → DST image."""

    src: Union[str, Path]
    dst: Union[str, Path]
    config: MigrationConfig = field(default_factory=MigrationConfig)
    #: enable the write-mirror tap / live-traffic mode
    mirror: bool = False
    #: trace replayed through the mirror while the migration runs
    traffic: Optional[Union[str, Path]] = None
    #: traffic pacing in ops/s (None = as fast as the gate admits)
    traffic_pace: Optional[float] = None
    #: max keys touched by one mirrored SCAN
    traffic_scan_limit: int = 64
    #: continue from a durable spill left by a killed migration
    resume: bool = False


@dataclass
class MigrateJobReport:
    """Outcome of one migration job."""

    src: str
    dst: str
    loaded_pairs: int
    resumed_pairs: int
    published_pairs: int
    traffic_ops: int
    engine: MigrationReport

    @property
    def completed(self) -> bool:
        return self.engine.completed

    def render(self) -> str:
        lines = [
            f"source image  {self.src} ({self.loaded_pairs:,} pairs)",
        ]
        if self.resumed_pairs:
            lines.append(f"spill resume  {self.resumed_pairs:,} pairs salvaged")
        if self.traffic_ops:
            lines.append(f"live traffic  {self.traffic_ops:,} mirrored ops")
        lines.append(self.engine.render())
        if self.completed:
            lines.append(f"published     {self.dst} ({self.published_pairs:,} pairs)")
        else:
            lines.append(f"not published: {self.src} remains the source of truth")
        return "\n".join(lines)


class TrafficDriver:
    """Background thread replaying a trace through the mirror.

    The trace is cycled until :meth:`stop` — a migration should never
    win its race against the workload just because the trace ran out.
    Operations go through :func:`repro.replay.apply.apply_op`, so the
    synthetic values are the same deterministic function of (key, size)
    replay writes: any ordering violation between mirror and engine is
    byte-visible to the verifier.
    """

    def __init__(
        self,
        mirror: MirroringStore,
        trace: Union[str, Path],
        *,
        pace: Optional[float] = None,
        scan_limit: int = 64,
    ) -> None:
        self.mirror = mirror
        self.trace = Path(trace)
        self.pacer = make_pacer(pace) if pace else None
        self.scan_limit = scan_limit
        self.ops = 0
        self.error: Optional[BaseException] = None
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="migrate-traffic", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        """Stop the driver and re-raise anything it tripped over."""
        self._stop.set()
        self._thread.join()
        if self.error is not None:
            raise self.error

    def _run(self) -> None:
        try:
            while not self._stop.is_set():
                for record in read_trace(self.trace):
                    if self._stop.is_set():
                        return
                    if self.pacer is not None:
                        while not self.pacer.try_acquire():
                            if self._stop.wait(0.0005):
                                return
                    apply_op(
                        self.mirror,
                        int(record.op),
                        record.key,
                        record.value_size,
                        self.scan_limit,
                    )
                    self.ops += 1
        except BaseException as exc:  # surfaced by stop()
            self.error = exc


def run_migrate_job(
    job: MigrateJob,
    *,
    registry: Optional[MetricsRegistry] = None,
    on_event: Optional[Callable[[str, MigrationEngine], None]] = None,
) -> MigrateJobReport:
    """Run one migration job end to end.

    Raises :class:`~repro.errors.MigrationError` for bad inputs and
    propagates :class:`~repro.errors.SimulatedCrash` from an armed
    fault plan — in both cases DST is left unpublished.
    """
    registry = registry if registry is not None else get_registry()
    config = job.config.validated()
    src = Path(job.src)
    dst = Path(job.dst)
    if not src.exists():
        raise MigrationError(f"source image not found: {src}")
    if src.resolve() == dst.resolve():
        raise MigrationError("SRC and DST must be different paths")
    if job.traffic is not None and not job.mirror:
        raise MigrationError("--traffic requires --mirror (live-migration mode)")

    source = make_store(config.backend_from)
    loaded = load_image(src, source)
    destination = make_store(config.backend_to)

    # Salvage a durable spill *before* opening the writer (which
    # truncates it); the engine's repair pass re-validates every
    # reloaded range against the source of truth.
    spill = spill_path(dst)
    resumed_pairs = 0
    resumed = False
    if job.resume and spill.exists():
        batch = destination.write_batch()
        staged = 0
        for key, value in read_image_pairs(spill, salvage=True):
            batch.put(key, value)
            staged += 1
            resumed_pairs += 1
            if staged >= _RELOAD_BATCH:
                batch.commit()
                staged = 0
        if staged:
            batch.commit()
        else:
            batch.reset()
        resumed = True

    writer = ImageWriter(spill)
    engine = MigrationEngine(
        source,
        destination,
        config,
        spill=writer,
        registry=registry,
        on_event=on_event,
        resumed=resumed,
    )
    traffic: Optional[TrafficDriver] = None
    if job.mirror and job.traffic is not None:
        traffic = TrafficDriver(
            engine.live,
            job.traffic,
            pace=job.traffic_pace,
            scan_limit=job.traffic_scan_limit,
        )
    try:
        if traffic is not None:
            traffic.start()
        report = engine.run()
    except BaseException:
        if traffic is not None:
            try:
                traffic.stop()
            except BaseException:
                pass  # the engine's crash outranks a traffic error
        writer.close()
        raise
    if traffic is not None:
        traffic.stop()
    writer.close()

    published = 0
    if report.completed:
        # The publish rewrites DST's temp path (== the spill) with the
        # destination's final contents and atomically renames it into
        # place, which both publishes DST and retires the spill.
        published = write_image(dst, destination.scan(b""))
    return MigrateJobReport(
        src=str(src),
        dst=str(dst),
        loaded_pairs=loaded,
        resumed_pairs=resumed_pairs,
        published_pairs=published,
        traffic_ops=traffic.ops if traffic is not None else 0,
        engine=report,
    )
