"""Online backend migration: bulk copy, mirrored catch-up, verified cutover.

Public surface of ``repro migrate``:

* :mod:`repro.migrate.image` — the durable ``repro-kvimage-v1`` store
  image format (atomic publish, resumable spill);
* :mod:`repro.migrate.mirror` — the write-intercepting store facade a
  live workload keeps using during migration, plus the admission gate
  that makes the cutover atomic;
* :mod:`repro.migrate.copier` — range-planned bulk snapshot copier;
* :mod:`repro.migrate.verify` — three-level (count → fingerprint →
  byte diff) store equivalence checks;
* :mod:`repro.migrate.engine` — the phase machine (bulk → catch-up →
  pause → cutover → verify);
* :mod:`repro.migrate.runner` — file-level jobs over SRC/DST images
  with optional paced live traffic;
* :mod:`repro.migrate.harness` — the crash-and-resume sweep behind
  ``repro crashtest``.
"""

from repro.migrate.copier import BulkCopier, KeyRange, RangeCopyResult, plan_ranges
from repro.migrate.engine import MigrationConfig, MigrationEngine, MigrationReport
from repro.migrate.harness import (
    MigrateCrashCase,
    MigrateCrashReport,
    build_source_image,
    migrate_sweep_points,
    run_migrate_crash_sweep,
)
from repro.migrate.image import (
    ImageInfo,
    ImageWriter,
    dump_store,
    image_info,
    load_image,
    read_image_pairs,
    spill_path,
    write_image,
)
from repro.migrate.metrics import MigrateMetrics
from repro.migrate.mirror import AdmissionGate, DeltaLog, MirroringStore
from repro.migrate.runner import (
    MigrateJob,
    MigrateJobReport,
    TrafficDriver,
    run_migrate_job,
)
from repro.migrate.verify import KeyDiff, VerifyReport, byte_diff, verify_stores

__all__ = [
    "AdmissionGate",
    "BulkCopier",
    "DeltaLog",
    "ImageInfo",
    "ImageWriter",
    "KeyDiff",
    "KeyRange",
    "MigrateCrashCase",
    "MigrateCrashReport",
    "MigrateJob",
    "MigrateJobReport",
    "MigrateMetrics",
    "MigrationConfig",
    "MigrationEngine",
    "MigrationReport",
    "MirroringStore",
    "RangeCopyResult",
    "TrafficDriver",
    "VerifyReport",
    "build_source_image",
    "byte_diff",
    "dump_store",
    "image_info",
    "load_image",
    "migrate_sweep_points",
    "plan_ranges",
    "read_image_pairs",
    "run_migrate_crash_sweep",
    "run_migrate_job",
    "spill_path",
    "verify_stores",
    "write_image",
]
