"""Migration metric families on the process-wide obs registry.

Fixed names, labels, and fixed exponential buckets — the same
discipline every other subsystem follows — so ``--metrics-out`` dumps
from any migration run merge associatively under ``repro stats`` with
replay/serve/analysis dumps from the same pipeline.
"""

from __future__ import annotations

from typing import Optional

from repro.obs import MetricsRegistry, exponential_buckets

#: 100 µs .. ~400 s in powers of two: range copies and delta rounds sit
#: low, cutover pauses (which include the final drain and verify) mid.
MIGRATE_TIME_BUCKETS = exponential_buckets(1e-4, 2.0, 22)

#: numeric phase codes for the repro_migrate_phase gauge
PHASE_CODES = {
    "idle": 0,
    "bulk-copy": 1,
    "catch-up": 2,
    "pause": 3,
    "cutover": 4,
    "verify": 5,
    "done": 6,
}


class MigrateMetrics:
    """Cached children for the migration families on one registry."""

    def __init__(self, registry: MetricsRegistry, *, pair: Optional[str] = None) -> None:
        self.registry = registry
        labels = ("pair",)
        self.pair = pair if pair is not None else "unknown"
        kw = {"pair": self.pair}
        self.ranges = registry.counter(
            "repro_migrate_ranges_total", "bulk-copy ranges published", labels
        ).labels(**kw)
        self.pairs_copied = registry.counter(
            "repro_migrate_pairs_copied_total", "pairs published by the bulk copier", labels
        ).labels(**kw)
        self.bytes_copied = registry.counter(
            "repro_migrate_bytes_copied_total",
            "payload bytes published by the bulk copier",
            labels,
        ).labels(**kw)
        self.delta_rounds = registry.counter(
            "repro_migrate_delta_rounds_total", "delta catch-up rounds drained", labels
        ).labels(**kw)
        self.delta_ops = registry.counter(
            "repro_migrate_delta_ops_total",
            "mirrored mutations applied by catch-up rounds",
            labels,
        ).labels(**kw)
        self.cutovers = registry.counter(
            "repro_migrate_cutovers_total", "successful active-store flips", labels
        ).labels(**kw)
        self.resumes = registry.counter(
            "repro_migrate_resumes_total",
            "migrations that continued from a durable spill",
            labels,
        ).labels(**kw)
        self.crashes = registry.counter(
            "repro_migrate_crashes_total",
            "simulated crashes taken at migration crash points",
            labels,
        ).labels(**kw)
        self._diffs = registry.counter(
            "repro_migrate_diff_total",
            "three-level verification outcomes",
            ("pair", "level", "outcome"),
        )
        self.lag = registry.gauge(
            "repro_migrate_lag", "mirrored mutations not yet applied", labels
        ).labels(**kw)
        self.phase = registry.gauge(
            "repro_migrate_phase",
            "engine phase (0 idle, 1 bulk, 2 catch-up, 3 pause, 4 cutover, "
            "5 verify, 6 done)",
            labels,
        ).labels(**kw)
        self.range_seconds = registry.histogram(
            "repro_migrate_range_seconds",
            "per-range snapshot+publish duration",
            labels,
            buckets=MIGRATE_TIME_BUCKETS,
        ).labels(**kw)
        self.delta_round_seconds = registry.histogram(
            "repro_migrate_delta_round_seconds",
            "per-round delta drain+apply duration",
            labels,
            buckets=MIGRATE_TIME_BUCKETS,
        ).labels(**kw)
        self.cutover_pause_seconds = registry.histogram(
            "repro_migrate_cutover_pause_seconds",
            "admission pause duration around the cutover",
            labels,
            buckets=MIGRATE_TIME_BUCKETS,
        ).labels(**kw)

    def set_phase(self, phase: str) -> None:
        self.phase.set(PHASE_CODES[phase])

    def observe_verify(self, report) -> None:
        """Fold a VerifyReport into the per-level/outcome counters."""
        outcome = "match" if report.match else "diverged"
        self._diffs.labels(
            pair=self.pair, level=str(report.level), outcome=outcome
        ).inc()
        if report.diff_count:
            self._diffs.labels(pair=self.pair, level="3", outcome="diff-key").inc(
                report.diff_count
            )
