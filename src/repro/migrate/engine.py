"""The live-migration engine: bulk copy → delta catch-up → cutover.

:class:`MigrationEngine` re-homes a live store from one backend to
another while a workload keeps writing through the
:class:`~repro.migrate.mirror.MirroringStore` facade:

1. **bulk copy** — the :class:`~repro.migrate.copier.BulkCopier` moves
   the existing keyspace range by range (atomic batches + durable
   spill blocks).  When the destination starts non-empty (a resumed
   migration reloaded a spill), the copy runs as a *repair pass*:
   every range is re-snapshotted from the source of truth and only
   divergent keys are written, so a resume is correct even when the
   source drifted while the migration was down;
2. **delta catch-up** — rounds of draining the mirror's CRC32-sharded
   delta log into the destination until the lag falls under the
   configured threshold (at least one round always runs);
3. **cutover** — pause admission, drain in-flight ops and the final
   deltas, optionally run the three-level verifier
   (:mod:`repro.migrate.verify`) while the world is stopped, flip the
   active store, resume.  A verification divergence *aborts* the flip:
   the source remains the active source of truth (rollback).

Crash points (``migrate-bulk-copy``, ``migrate-delta-round``,
``migrate-pre-cutover``, ``migrate-post-cutover``) are evaluated
against the PR-2 fault plan with the range/round ordinal as the block
number, so ``repro crashtest`` can kill a migration at any phase and
prove the spill-driven resume converges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Optional

from repro.errors import CrashPoint, MigrationError
from repro.kvstore.api import KVStore
from repro.obs import MetricsRegistry, get_registry

from repro.migrate.copier import (
    DEFAULT_RANGE_PAIRS,
    BulkCopier,
    RangeCopyResult,
    plan_ranges,
)
from repro.migrate.image import ImageWriter
from repro.migrate.metrics import MigrateMetrics
from repro.migrate.mirror import MirroringStore
from repro.migrate.verify import DEFAULT_MAX_DIFFS, VerifyReport, verify_stores

#: engine events surfaced to the ``on_event`` hook, in phase order
EVENTS = ("bulk-range", "delta-round", "pre-cutover", "post-cutover")


@dataclass(frozen=True)
class MigrationConfig:
    """How to run one migration."""

    backend_from: str = "memdb"
    backend_to: str = "memdb"
    #: target pairs per bulk-copy range
    range_pairs: int = DEFAULT_RANGE_PAIRS
    #: parallel range-snapshot threads (publishes stay in order)
    copy_workers: int = 1
    #: pairs per atomic destination write batch
    batch_pairs: int = DEFAULT_RANGE_PAIRS
    #: shards in the mirror's delta log
    delta_shards: int = 4
    #: cut over once a drained round leaves at most this much lag
    lag_threshold: int = 64
    #: force the cutover after this many catch-up rounds
    max_delta_rounds: int = 16
    #: run the three-level verifier inside the cutover pause
    verify: bool = True
    #: diff records kept verbatim by a level-3 walk
    max_diffs: int = DEFAULT_MAX_DIFFS
    #: give up if in-flight ops do not drain within this window
    pause_timeout: float = 30.0
    #: optional PR-2 fault plan (migration crash points)
    fault_plan: object = None

    @property
    def pair_label(self) -> str:
        return f"{self.backend_from}->{self.backend_to}"

    def validated(self) -> "MigrationConfig":
        from repro.replay.backends import BACKEND_NAMES

        for side, name in (("from", self.backend_from), ("to", self.backend_to)):
            if name not in BACKEND_NAMES:
                known = ", ".join(BACKEND_NAMES)
                raise MigrationError(
                    f"unknown --backend-{side} {name!r}; known: {known}"
                )
        if self.range_pairs < 1:
            raise MigrationError(f"range_pairs must be >= 1, got {self.range_pairs}")
        if self.copy_workers < 1:
            raise MigrationError(f"copy_workers must be >= 1, got {self.copy_workers}")
        if self.lag_threshold < 0:
            raise MigrationError(
                f"lag_threshold must be >= 0, got {self.lag_threshold}"
            )
        if self.max_delta_rounds < 1:
            raise MigrationError(
                f"max_delta_rounds must be >= 1, got {self.max_delta_rounds}"
            )
        if self.pause_timeout <= 0:
            raise MigrationError(
                f"pause_timeout must be > 0, got {self.pause_timeout}"
            )
        return self


@dataclass
class MigrationReport:
    """Outcome of one engine run."""

    pair: str
    completed: bool
    resumed: bool
    ranges: int
    pairs_copied: int
    bytes_copied: int
    repaired_keys: int
    delta_rounds: int
    delta_ops: int
    final_lag: int
    cutover_pause_s: float
    elapsed_s: float
    verify: Optional[VerifyReport] = None
    #: per-range copy outcomes (diagnostics; not rendered by default)
    range_results: list[RangeCopyResult] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            f"migration {self.pair}: "
            + ("COMPLETE" if self.completed else "ABORTED (source remains active)")
            + (" [resumed]" if self.resumed else ""),
            f"  bulk          {self.pairs_copied:,} pairs in {self.ranges} ranges "
            f"({self.bytes_copied:,} payload bytes"
            + (f", {self.repaired_keys:,} repaired" if self.repaired_keys else "")
            + ")",
            f"  catch-up      {self.delta_ops:,} mirrored ops in {self.delta_rounds} "
            f"rounds (final lag {self.final_lag})",
            f"  cutover pause {self.cutover_pause_s * 1e3:.2f} ms",
            f"  elapsed       {self.elapsed_s:.3f}s",
        ]
        if self.verify is not None:
            lines.append("  " + self.verify.render().replace("\n", "\n  "))
        return "\n".join(lines)


class MigrationEngine:
    """One migration from a live source store to a fresh destination.

    The caller routes workload traffic through :attr:`live` (the
    mirror) for the engine's whole lifetime; the engine never sees the
    workload, only its delta log.
    """

    def __init__(
        self,
        source: KVStore,
        destination: KVStore,
        config: MigrationConfig,
        *,
        spill: Optional[ImageWriter] = None,
        registry: Optional[MetricsRegistry] = None,
        on_event: Optional[Callable[[str, "MigrationEngine"], None]] = None,
        resumed: bool = False,
    ) -> None:
        self.config = config.validated()
        self.destination = destination
        self.mirror = MirroringStore(source, delta_shards=config.delta_shards)
        self.spill = spill
        self.registry = registry if registry is not None else get_registry()
        self.metrics = MigrateMetrics(self.registry, pair=config.pair_label)
        self.on_event = on_event
        self.resumed = resumed
        #: repair mode: destination preloaded from a spill, so ranges
        #: diff against existing contents instead of blind-putting
        self.repair = len(destination) > 0
        self.repaired_keys = 0
        if resumed:
            self.metrics.resumes.inc()

    @property
    def live(self) -> MirroringStore:
        """The store handle live traffic must use during the migration."""
        return self.mirror

    # -- fault-plan / hook plumbing -------------------------------------------

    def _crash_point(self, point: CrashPoint, ordinal: int) -> None:
        plan = self.config.fault_plan
        if plan is None:
            return
        try:
            plan.on_crash_point(point, block=ordinal)
        except BaseException:
            self.metrics.crashes.inc()
            raise

    def _emit(self, event: str) -> None:
        if self.on_event is not None:
            self.on_event(event, self)

    # -- phases ---------------------------------------------------------------

    def _publish_repair(
        self, key_range, pairs: list[tuple[bytes, bytes]]
    ) -> RangeCopyResult:
        """Repair-mode publish: write only keys that differ, delete strays."""
        start = perf_counter()
        dest = self.destination
        payload = 0
        if self.spill is not None:
            payload = self.spill.append_block(pairs)
        source_keys = {key for key, _ in pairs}
        stray = [
            key
            for key, _ in dest.scan(key_range.start, key_range.end)
            if key not in source_keys
        ]
        batch = dest.write_batch()
        staged = 0
        for key, value in pairs:
            if dest.get_or_none(key) != value:
                batch.put(key, value)
                staged += 1
                self.repaired_keys += 1
        for key in stray:
            batch.delete(key)
            staged += 1
            self.repaired_keys += 1
        if staged:
            batch.commit()
        else:
            batch.reset()
        return RangeCopyResult(
            range=key_range,
            pairs=len(pairs),
            payload_bytes=payload,
            elapsed_s=perf_counter() - start,
        )

    def _bulk_copy(self) -> list[RangeCopyResult]:
        config = self.config
        self.metrics.set_phase("bulk-copy")
        copier = BulkCopier(
            self.mirror,
            self.destination,
            spill=self.spill,
            copy_workers=config.copy_workers,
            batch_pairs=config.batch_pairs,
        )
        if self.repair:
            copier.publish_range = self._publish_repair  # type: ignore[method-assign]
        ranges = plan_ranges(self.mirror.source, range_pairs=config.range_pairs)

        def on_range(result: RangeCopyResult) -> None:
            self.metrics.ranges.inc()
            self.metrics.pairs_copied.inc(result.pairs)
            self.metrics.bytes_copied.inc(result.payload_bytes)
            self.metrics.range_seconds.observe(result.elapsed_s)
            self.metrics.lag.set(self.mirror.lag)
            self._emit("bulk-range")
            self._crash_point(CrashPoint.MIGRATE_BULK_COPY, result.range.index)

        return copier.copy(ranges, on_range=on_range)

    def _apply_deltas(
        self, shards: list[list[tuple[bytes, Optional[bytes]]]]
    ) -> int:
        """Apply one drained round shard by shard, preserving per-key order.

        A key's mutations all live in one shard, appended in arrival
        order; each shard lands in one atomic batch (write-batch
        semantics make the last op per key win, identical to replaying
        the list in order).
        """
        applied = 0
        for shard in shards:
            if not shard:
                continue
            batch = self.destination.write_batch()
            for key, value in shard:
                if value is None:
                    batch.delete(key)
                else:
                    batch.put(key, value)
            batch.commit()
            applied += len(shard)
        return applied

    def _catch_up(self) -> tuple[int, int]:
        config = self.config
        self.metrics.set_phase("catch-up")
        rounds = 0
        total_ops = 0
        while True:
            start = perf_counter()
            drained = self.mirror.deltas.drain()
            ops = self._apply_deltas(drained)
            rounds += 1
            total_ops += ops
            self.metrics.delta_rounds.inc()
            self.metrics.delta_ops.inc(ops)
            self.metrics.delta_round_seconds.observe(perf_counter() - start)
            self.metrics.lag.set(self.mirror.lag)
            self._emit("delta-round")
            self._crash_point(CrashPoint.MIGRATE_DELTA_ROUND, rounds)
            if self.mirror.lag <= config.lag_threshold and ops <= max(
                config.lag_threshold, 1
            ):
                break
            if rounds >= config.max_delta_rounds:
                break
        return rounds, total_ops

    def _cutover(self) -> tuple[float, Optional[VerifyReport], bool]:
        config = self.config
        gate = self.mirror.gate
        self._emit("pre-cutover")
        self._crash_point(CrashPoint.MIGRATE_PRE_CUTOVER, 0)
        self.metrics.set_phase("pause")
        pause_start = perf_counter()
        if not gate.pause(timeout=config.pause_timeout):
            gate.resume()
            raise MigrationError(
                f"cutover aborted: in-flight operations did not drain within "
                f"{config.pause_timeout}s"
            )
        flipped = False
        verify_report: Optional[VerifyReport] = None
        try:
            # Final drain: the world is stopped, so this empties the log.
            final_ops = self._apply_deltas(self.mirror.deltas.drain())
            if final_ops:
                self.metrics.delta_ops.inc(final_ops)
            self.metrics.lag.set(0)
            if config.verify:
                self.metrics.set_phase("verify")
                verify_report = verify_stores(
                    self.mirror.source,
                    self.destination,
                    max_diffs=config.max_diffs,
                    metrics=self.metrics,
                )
                if not verify_report.match:
                    return perf_counter() - pause_start, verify_report, False
            self.metrics.set_phase("cutover")
            self.mirror.flip(self.destination)
            flipped = True
            self.metrics.cutovers.inc()
            self._crash_point(CrashPoint.MIGRATE_POST_CUTOVER, 0)
        finally:
            gate.resume()
            pause_s = perf_counter() - pause_start
            self.metrics.cutover_pause_seconds.observe(pause_s)
        self._emit("post-cutover")
        return pause_s, verify_report, flipped

    def run(self) -> MigrationReport:
        """Run all phases; returns the report (completed or aborted)."""
        start = perf_counter()
        range_results = self._bulk_copy()
        rounds, delta_ops = self._catch_up()
        pause_s, verify_report, flipped = self._cutover()
        self.metrics.set_phase("done" if flipped else "idle")
        return MigrationReport(
            pair=self.config.pair_label,
            completed=flipped,
            resumed=self.resumed,
            ranges=len(range_results),
            pairs_copied=sum(r.pairs for r in range_results),
            bytes_copied=sum(r.payload_bytes for r in range_results),
            repaired_keys=self.repaired_keys,
            delta_rounds=rounds,
            delta_ops=delta_ops,
            final_lag=self.mirror.lag,
            cutover_pause_s=pause_s,
            elapsed_s=perf_counter() - start,
            verify=verify_report,
            range_results=range_results,
        )
