"""Three-level migration verification: count → fingerprint → byte diff.

Each level is strictly stronger and strictly more expensive than the
one before it, so the verifier stops at the first level that proves
equality — the common case pays one ``len()`` comparison and one
fingerprint scan — and only descends to the per-key byte diff when a
cheaper level already said the stores disagree, to say *where*.

* **Level 1 — count**: live pair counts match.
* **Level 2 — fingerprint**: the order-independent sha256-sum
  :class:`~repro.replay.verify.StateFingerprint` (reused from replay)
  of both stores match.  Equal fingerprints with equal counts mean
  byte-identical contents up to sha256 collisions.
* **Level 3 — byte diff**: a merged ordered walk of both stores,
  reporting every key that is missing on either side or maps to
  different bytes (capped at ``max_diffs``; the count of *all*
  divergent keys is still exact).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional

from repro.kvstore.api import KVStore
from repro.replay.verify import StateFingerprint, store_fingerprint

#: diff records kept verbatim in the report (the total stays exact)
DEFAULT_MAX_DIFFS = 32


@dataclass(frozen=True)
class KeyDiff:
    """One divergent key found by the level-3 walk."""

    key: bytes
    #: "missing-in-destination", "missing-in-source", or "value-mismatch"
    outcome: str
    source_len: int = -1
    destination_len: int = -1

    def __str__(self) -> str:
        sizes = ""
        if self.outcome == "value-mismatch":
            sizes = f" (src {self.source_len}B, dst {self.destination_len}B)"
        return f"{self.key.hex()[:24]}: {self.outcome}{sizes}"


@dataclass
class VerifyReport:
    """Outcome of one three-level verification."""

    #: deepest level that ran (1, 2, or 3)
    level: int
    match: bool
    source_count: int
    destination_count: int
    source_fingerprint: Optional[StateFingerprint] = None
    destination_fingerprint: Optional[StateFingerprint] = None
    #: total divergent keys (level 3 only; exact even when truncated)
    diff_count: int = 0
    diffs: list[KeyDiff] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            f"verify: level {self.level}, "
            + ("MATCH" if self.match else f"DIVERGED ({self.diff_count} keys)"),
            f"  counts        src={self.source_count:,} dst={self.destination_count:,}",
        ]
        if self.source_fingerprint is not None:
            lines.append(f"  src state     {self.source_fingerprint}")
            lines.append(f"  dst state     {self.destination_fingerprint}")
        for diff in self.diffs:
            lines.append(f"    {diff}")
        if self.diff_count > len(self.diffs):
            lines.append(f"    … {self.diff_count - len(self.diffs)} more")
        return "\n".join(lines)


def byte_diff(
    source: KVStore, destination: KVStore, *, max_diffs: int = DEFAULT_MAX_DIFFS
) -> tuple[int, list[KeyDiff]]:
    """Level 3: merged ordered walk over both stores' live pairs."""
    diffs: list[KeyDiff] = []
    count = 0

    def record(diff: KeyDiff) -> None:
        nonlocal count
        count += 1
        if len(diffs) < max_diffs:
            diffs.append(diff)

    # Tag each side and merge by (key, side); equal keys surface adjacently.
    merged = heapq.merge(
        ((key, 0, value) for key, value in source.scan(b"")),
        ((key, 1, value) for key, value in destination.scan(b"")),
    )
    pending: Optional[tuple[bytes, bytes]] = None  # an unmatched source pair
    for key, side, value in merged:
        if side == 0:
            if pending is not None:
                record(KeyDiff(pending[0], "missing-in-destination"))
            pending = (key, value)
            continue
        if pending is not None and pending[0] == key:
            if pending[1] != value:
                record(
                    KeyDiff(
                        key,
                        "value-mismatch",
                        source_len=len(pending[1]),
                        destination_len=len(value),
                    )
                )
            pending = None
        else:
            if pending is not None:
                record(KeyDiff(pending[0], "missing-in-destination"))
                pending = None
            record(KeyDiff(key, "missing-in-source"))
    if pending is not None:
        record(KeyDiff(pending[0], "missing-in-destination"))
    return count, diffs


def verify_stores(
    source: KVStore,
    destination: KVStore,
    *,
    max_diffs: int = DEFAULT_MAX_DIFFS,
    metrics=None,
) -> VerifyReport:
    """Run the levels in order, descending only on mismatch."""
    source_count = len(source)
    destination_count = len(destination)
    counts_match = source_count == destination_count
    src_fp = store_fingerprint(source)
    dst_fp = store_fingerprint(destination)
    if counts_match and src_fp == dst_fp:
        report = VerifyReport(
            level=2,
            match=True,
            source_count=source_count,
            destination_count=destination_count,
            source_fingerprint=src_fp,
            destination_fingerprint=dst_fp,
        )
        if metrics is not None:
            metrics.observe_verify(report)
        return report
    diff_count, diffs = byte_diff(source, destination, max_diffs=max_diffs)
    report = VerifyReport(
        level=3,
        match=diff_count == 0,
        source_count=source_count,
        destination_count=destination_count,
        source_fingerprint=src_fp,
        destination_fingerprint=dst_fp,
        diff_count=diff_count,
        diffs=diffs,
    )
    if metrics is not None:
        metrics.observe_verify(report)
    return report
