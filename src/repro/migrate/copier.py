"""Bulk snapshot copier: move a store's existing contents in key ranges.

The copier splits the source keyspace into contiguous ranges (by
sampling the sorted live keys, so ranges are balanced by pair count,
not by key distribution), snapshots each range under a micro-pause of
the admission gate, and publishes it to the destination as one atomic
write batch plus one CRC-framed spill block.  Range snapshotting is
parallelizable — scans of distinct ranges run on a thread pool — while
batch commits and spill appends stay serialized in ascending range
order, which is what makes a killed copy resumable: the spill always
holds a prefix of the keyspace, so resume reloads it and continues
from the first un-spilled range.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Optional

from repro.kvstore.api import KVStore

from repro.migrate.image import ImageWriter
from repro.migrate.mirror import MirroringStore

#: target pairs per bulk-copy range (and therefore per atomic batch)
DEFAULT_RANGE_PAIRS = 2048


@dataclass(frozen=True)
class KeyRange:
    """One contiguous ``[start, end)`` slice of the keyspace."""

    index: int
    start: bytes
    end: Optional[bytes]  # None = to the end of the keyspace

    def __str__(self) -> str:
        upper = self.end.hex()[:12] if self.end is not None else "∞"
        return f"range[{self.index}] {self.start.hex()[:12]}..{upper}"


def plan_ranges(
    store: KVStore, *, range_pairs: int = DEFAULT_RANGE_PAIRS
) -> list[KeyRange]:
    """Split the live keyspace into ranges of ~``range_pairs`` keys.

    Planning reads only keys (no values).  A store that grows after
    planning is fine: new keys land in the mirror's delta log, and keys
    inside planned ranges are re-read at copy time.
    """
    if range_pairs < 1:
        raise ValueError(f"range_pairs must be >= 1, got {range_pairs}")
    boundaries: list[bytes] = []
    for index, key in enumerate(store.keys()):
        if index % range_pairs == 0 and index > 0:
            boundaries.append(key)
    ranges = []
    start = b""
    for index, boundary in enumerate(boundaries):
        ranges.append(KeyRange(index=index, start=start, end=boundary))
        start = boundary
    ranges.append(KeyRange(index=len(boundaries), start=start, end=None))
    return ranges


@dataclass
class RangeCopyResult:
    """Outcome of one copied range."""

    range: KeyRange
    pairs: int
    payload_bytes: int
    elapsed_s: float


class BulkCopier:
    """Copy planned ranges from a mirrored source into a destination."""

    def __init__(
        self,
        mirror: MirroringStore,
        destination: KVStore,
        spill: Optional[ImageWriter] = None,
        *,
        copy_workers: int = 1,
        batch_pairs: int = DEFAULT_RANGE_PAIRS,
    ) -> None:
        if copy_workers < 1:
            raise ValueError(f"copy_workers must be >= 1, got {copy_workers}")
        self.mirror = mirror
        self.destination = destination
        self.spill = spill
        self.copy_workers = copy_workers
        self.batch_pairs = batch_pairs

    def snapshot_range(self, key_range: KeyRange) -> list[tuple[bytes, bytes]]:
        """A consistent view of one range, taken under the gate."""
        with self.mirror.gate.exclusive():
            return list(self.mirror.source.scan(key_range.start, key_range.end))

    def publish_range(
        self, key_range: KeyRange, pairs: list[tuple[bytes, bytes]]
    ) -> RangeCopyResult:
        """Apply one snapshotted range to the destination atomically.

        The destination sees the range as whole write batches; the
        spill gets one CRC block per range, flushed before the batch
        commits, so the durable spill is never behind the destination.
        """
        from time import perf_counter

        start = perf_counter()
        payload = 0
        if self.spill is not None:
            payload = self.spill.append_block(pairs)
        batch = self.destination.write_batch()
        staged = 0
        for key, value in pairs:
            batch.put(key, value)
            staged += 1
            if staged >= self.batch_pairs:
                batch.commit()
                staged = 0
        if staged:
            batch.commit()
        return RangeCopyResult(
            range=key_range,
            pairs=len(pairs),
            payload_bytes=payload,
            elapsed_s=perf_counter() - start,
        )

    def copy(
        self,
        ranges: list[KeyRange],
        *,
        on_range: Optional[Callable[[RangeCopyResult], None]] = None,
    ) -> list[RangeCopyResult]:
        """Copy every range; snapshots parallel, publishes in order.

        ``on_range`` runs after each in-order publish — the engine
        hangs its metrics, crash point, and traffic hooks there.
        """
        results: list[RangeCopyResult] = []
        if self.copy_workers == 1:
            for key_range in ranges:
                result = self.publish_range(key_range, self.snapshot_range(key_range))
                results.append(result)
                if on_range is not None:
                    on_range(result)
            return results
        with ThreadPoolExecutor(
            max_workers=self.copy_workers, thread_name_prefix="migrate-copy"
        ) as pool:
            futures = [pool.submit(self.snapshot_range, r) for r in ranges]
            for key_range, future in zip(ranges, futures):
                result = self.publish_range(key_range, future.result())
                results.append(result)
                if on_range is not None:
                    on_range(result)
        return results
