"""Serialized store images: the durable form a migration reads and writes.

An **image** is a flat file holding every live ``(key, value)`` pair of
a KV store, the unit ``repro migrate SRC DST`` moves between backends.
The format (``repro-kvimage-v1``) is a sequence of CRC-framed pair
blocks followed by a footer carrying the pair count and the
order-independent :class:`~repro.replay.verify.StateFingerprint` of the
whole image::

    "RKVIMG1\\n"                                  8-byte magic
    repeat: "B" u32 pairs  u64 payload_len  payload  u32 crc32(payload)
    once:   "F" u64 pairs  u32 digest_len   digest   u32 crc32(footer)

A *published* image always ends with the footer; an image is only ever
made visible by writing ``<path>.migtmp`` and atomically
``os.replace``-ing it over the destination, so readers never observe a
half-written file (the ``bnnair__synctool`` temp-then-rename idiom).

A **spill** is the same block framing without the footer: the bulk
copier appends one block per completed key range and flushes, so a
killed migration leaves a prefix of CRC-valid blocks behind.
:func:`read_image_pairs` in salvage mode drops a torn tail block, which
is exactly what resume needs — completed ranges are reloaded, the torn
range is re-copied from the source of truth.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator, Optional, Union
from zlib import crc32

from repro.errors import ImageFormatError
from repro.kvstore.api import KVStore
from repro.replay.verify import StateFingerprint, fingerprint_pairs, pair_hash

MAGIC = b"RKVIMG1\n"
_BLOCK_TAG = b"B"
_FOOTER_TAG = b"F"
_BLOCK_HEAD = struct.Struct("<IQ")  # pair count, payload length
_PAIR_HEAD = struct.Struct("<II")  # key length, value length
_FOOTER_HEAD = struct.Struct("<QI")  # pair count, digest length
_CRC = struct.Struct("<I")

#: suffix of the temp file an atomic publish goes through
TMP_SUFFIX = ".migtmp"

#: pairs per block when writing a whole store in one call
DEFAULT_BLOCK_PAIRS = 4096


def _encode_pairs(pairs: list[tuple[bytes, bytes]]) -> bytes:
    parts = []
    for key, value in pairs:
        parts.append(_PAIR_HEAD.pack(len(key), len(value)))
        parts.append(key)
        parts.append(value)
    return b"".join(parts)


def _decode_pairs(payload: bytes, count: int, where: str) -> list[tuple[bytes, bytes]]:
    pairs = []
    offset = 0
    for _ in range(count):
        if offset + _PAIR_HEAD.size > len(payload):
            raise ImageFormatError(f"truncated pair header in {where}")
        klen, vlen = _PAIR_HEAD.unpack_from(payload, offset)
        offset += _PAIR_HEAD.size
        if offset + klen + vlen > len(payload):
            raise ImageFormatError(f"truncated pair bytes in {where}")
        pairs.append((payload[offset : offset + klen], payload[offset + klen : offset + klen + vlen]))
        offset += klen + vlen
    if offset != len(payload):
        raise ImageFormatError(f"{len(payload) - offset} trailing payload bytes in {where}")
    return pairs


class ImageWriter:
    """Incremental block-at-a-time image writer (spill or full image).

    Blocks become durable as they are appended (``flush`` after each),
    so a crash mid-write loses at most the block being written.  Call
    :meth:`finalize` to append the footer that marks the image
    complete; a writer closed without finalizing leaves a valid spill.
    """

    def __init__(self, path: Union[str, Path], append: bool = False) -> None:
        self.path = Path(path)
        self.pairs_written = 0
        self.bytes_written = 0
        self.fingerprint = StateFingerprint()
        self.finalized = False
        if append and self.path.exists():
            self._fh: BinaryIO = open(self.path, "ab")
        else:
            self._fh = open(self.path, "wb")
            self._fh.write(MAGIC)

    def resume_from(self, pairs: Iterable[tuple[bytes, bytes]]) -> int:
        """Fold already-durable pairs into the running footer totals."""
        count = 0
        for key, value in pairs:
            self.fingerprint = self.fingerprint.combine(
                StateFingerprint(count=1, digest=pair_hash(key, value))
            )
            self.pairs_written += 1
            count += 1
        return count

    def append_block(self, pairs: list[tuple[bytes, bytes]]) -> int:
        """Append one CRC-framed block; returns its payload size."""
        if self.finalized:
            raise ImageFormatError("image already finalized")
        if not pairs:
            return 0
        payload = _encode_pairs(pairs)
        self._fh.write(_BLOCK_TAG)
        self._fh.write(_BLOCK_HEAD.pack(len(pairs), len(payload)))
        self._fh.write(payload)
        self._fh.write(_CRC.pack(crc32(payload)))
        self._fh.flush()
        self.pairs_written += len(pairs)
        self.bytes_written += len(payload)
        self.fingerprint = self.fingerprint.combine(fingerprint_pairs(pairs))
        return len(payload)

    def finalize(self) -> None:
        """Append the footer and close; the file is now a complete image."""
        digest = self.fingerprint.digest.to_bytes(32, "big")
        footer = _FOOTER_HEAD.pack(self.pairs_written, len(digest)) + digest
        self._fh.write(_FOOTER_TAG)
        self._fh.write(footer)
        self._fh.write(_CRC.pack(crc32(footer)))
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()
        self.finalized = True

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()


@dataclass(frozen=True)
class ImageInfo:
    """Footer metadata of a complete image."""

    pairs: int
    fingerprint: StateFingerprint
    complete: bool


def read_image_pairs(
    path: Union[str, Path], *, salvage: bool = False
) -> Iterator[tuple[bytes, bytes]]:
    """Yield every pair of an image in file order.

    Strict mode (default) requires every block CRC to match and the
    footer to be present and consistent.  ``salvage=True`` accepts a
    footer-less spill and stops silently at the first torn or
    CRC-damaged tail block — the resume path for a killed bulk copy.
    """
    path = Path(path)
    with open(path, "rb") as fh:
        if fh.read(len(MAGIC)) != MAGIC:
            raise ImageFormatError(f"{path}: bad magic (not a repro-kvimage-v1 file)")
        total = 0
        fingerprint = StateFingerprint()
        while True:
            tag = fh.read(1)
            if not tag:
                if salvage:
                    return
                raise ImageFormatError(f"{path}: missing footer (incomplete image)")
            if tag == _FOOTER_TAG:
                footer = fh.read(_FOOTER_HEAD.size)
                if len(footer) < _FOOTER_HEAD.size:
                    if salvage:
                        return
                    raise ImageFormatError(f"{path}: truncated footer")
                pairs, digest_len = _FOOTER_HEAD.unpack(footer)
                digest = fh.read(digest_len)
                crc_raw = fh.read(_CRC.size)
                if len(digest) < digest_len or len(crc_raw) < _CRC.size:
                    if salvage:
                        return
                    raise ImageFormatError(f"{path}: truncated footer")
                if _CRC.unpack(crc_raw)[0] != crc32(footer + digest):
                    if salvage:
                        return
                    raise ImageFormatError(f"{path}: footer CRC mismatch")
                if not salvage:
                    if pairs != total:
                        raise ImageFormatError(
                            f"{path}: footer claims {pairs} pairs, read {total}"
                        )
                    if int.from_bytes(digest, "big") != fingerprint.digest:
                        raise ImageFormatError(f"{path}: footer fingerprint mismatch")
                return
            if tag != _BLOCK_TAG:
                if salvage:
                    return
                raise ImageFormatError(f"{path}: unknown block tag {tag!r}")
            head = fh.read(_BLOCK_HEAD.size)
            if len(head) < _BLOCK_HEAD.size:
                if salvage:
                    return
                raise ImageFormatError(f"{path}: truncated block header")
            count, payload_len = _BLOCK_HEAD.unpack(head)
            payload = fh.read(payload_len)
            crc_raw = fh.read(_CRC.size)
            if len(payload) < payload_len or len(crc_raw) < _CRC.size:
                if salvage:
                    return
                raise ImageFormatError(f"{path}: truncated block payload")
            if _CRC.unpack(crc_raw)[0] != crc32(payload):
                if salvage:
                    return
                raise ImageFormatError(f"{path}: block CRC mismatch")
            pairs = _decode_pairs(payload, count, str(path))
            if not salvage:
                total += count
                fingerprint = fingerprint.combine(fingerprint_pairs(pairs))
            yield from pairs


def image_info(path: Union[str, Path]) -> ImageInfo:
    """Scan an image and report its footer totals (strict)."""
    pairs = 0
    fingerprint = StateFingerprint()
    for key, value in read_image_pairs(path):
        fingerprint = fingerprint.combine(
            StateFingerprint(count=1, digest=pair_hash(key, value))
        )
        pairs += 1
    return ImageInfo(pairs=pairs, fingerprint=fingerprint, complete=True)


def write_image(
    path: Union[str, Path],
    pairs: Iterable[tuple[bytes, bytes]],
    *,
    block_pairs: int = DEFAULT_BLOCK_PAIRS,
) -> int:
    """Write a complete image atomically (temp-then-rename publish)."""
    path = Path(path)
    tmp = path.with_name(path.name + TMP_SUFFIX)
    writer = ImageWriter(tmp)
    try:
        block: list[tuple[bytes, bytes]] = []
        for pair in pairs:
            block.append(pair)
            if len(block) >= block_pairs:
                writer.append_block(block)
                block = []
        if block:
            writer.append_block(block)
        writer.finalize()
    except BaseException:
        writer.close()
        tmp.unlink(missing_ok=True)
        raise
    os.replace(tmp, path)
    return writer.pairs_written


def dump_store(
    path: Union[str, Path], store: KVStore, *, block_pairs: int = DEFAULT_BLOCK_PAIRS
) -> int:
    """Dump a store's live contents as a published image."""
    return write_image(path, store.scan(b""), block_pairs=block_pairs)


def load_image(path: Union[str, Path], store: KVStore) -> int:
    """Load a published image's pairs into ``store``; returns the count."""
    loaded = 0
    for key, value in read_image_pairs(path):
        store.put(key, value)
        loaded += 1
    return loaded


def publish_image(tmp_path: Union[str, Path], path: Union[str, Path]) -> None:
    """Atomically rename a finalized temp image over its destination."""
    os.replace(tmp_path, path)


def spill_path(dst: Union[str, Path]) -> Path:
    """The durable spill/temp path a migration to ``dst`` writes through."""
    dst = Path(dst)
    return dst.with_name(dst.name + TMP_SUFFIX)
