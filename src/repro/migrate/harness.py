"""Crash-and-resume sweep for the migration engine.

``repro crashtest`` proves, for every migration crash point, that a
migration killed mid-flight either **resumes** (a second ``--resume``
run converges to a verified, published destination image) or **rolls
back** (the crash leaves no published DST — the SRC image remains the
only source of truth).  Each case:

1. builds a deterministic source image,
2. runs a migration armed with a ``kill_at(point)`` fault plan while a
   scripted hook writes live traffic through the mirror at every
   engine event,
3. asserts the simulated crash fired and DST was **not** published
   (rollback property of the atomic temp-then-rename publish),
4. re-runs with ``resume=True`` and a disarmed plan, and asserts the
   resumed migration completes with a level ≤ 2 verification match and
   a footer-consistent published image.

The sync-engine sweep (:func:`repro.faults.harness.run_crash_sweep`)
excludes these points; this module is their home.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.errors import MIGRATION_POINTS, CrashPoint, SimulatedCrash
from repro.faults.plan import FaultPlan
from repro.kvstore.memdb import MemoryKVStore
from repro.obs import MetricsRegistry

from repro.migrate.engine import MigrationConfig, MigrationEngine
from repro.migrate.image import dump_store, image_info, spill_path
from repro.migrate.runner import MigrateJob, MigrateJobReport, run_migrate_job

#: keys in the harness's deterministic source store
DEFAULT_STORE_KEYS = 600
#: pairs per bulk range (small → several ranges → mid-copy kills land)
DEFAULT_RANGE_PAIRS = 128


def build_source_image(
    path: Path, *, num_keys: int = DEFAULT_STORE_KEYS, seed: int = 0
) -> int:
    """Write a deterministic source image of ``num_keys`` pairs."""
    store = MemoryKVStore()
    for i in range(num_keys):
        key = b"k" + i.to_bytes(4, "big") + bytes([seed & 0xFF])
        value = (key * 7)[: 32 + (i % 96)]
        store.put(key, value)
    return dump_store(path, store)


def _scripted_traffic(seed: int):
    """An ``on_event`` hook writing deterministic live traffic.

    Every engine event (range published, delta round drained,
    pre-cutover) pushes a few writes and a delete through the mirror,
    so each phase of every case runs against a store that is actually
    changing underneath the copy.
    """
    counter = [0]

    def hook(event: str, engine: MigrationEngine) -> None:
        if event == "post-cutover":
            return  # mirroring is off; the migration is over
        for _ in range(4):
            n = counter[0]
            counter[0] += 1
            key = b"t" + n.to_bytes(4, "big") + bytes([seed & 0xFF])
            engine.live.put(key, key * 3)
        if counter[0] % 8 == 0:
            stale = counter[0] - 8
            engine.live.delete(b"t" + stale.to_bytes(4, "big") + bytes([seed & 0xFF]))

    return hook


@dataclass
class MigrateCrashCase:
    """Outcome of one kill-and-resume case."""

    point: CrashPoint
    triggered: bool = False
    rolled_back: bool = False  # DST unpublished after the crash
    spill_pairs: int = 0  # durable progress salvaged by the resume
    resumed: Optional[MigrateJobReport] = None
    published_ok: bool = False  # DST footer strict-reads consistent
    failure: Optional[str] = None

    @property
    def ok(self) -> bool:
        return (
            self.failure is None
            and self.triggered
            and self.rolled_back
            and self.resumed is not None
            and self.resumed.completed
            and self.resumed.engine.verify is not None
            and self.resumed.engine.verify.match
            and self.published_ok
        )


@dataclass
class MigrateCrashReport:
    """All cases of one migration crash sweep."""

    pair: str
    cases: list[MigrateCrashCase] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.cases)

    @property
    def passed(self) -> int:
        return sum(1 for case in self.cases if case.ok)

    @property
    def ok(self) -> bool:
        return self.passed == self.total

    def render(self) -> str:
        lines = [
            f"migration crash sweep ({self.pair}): "
            f"{self.passed}/{self.total} points killed, resumed, and verified"
        ]
        for case in self.cases:
            if case.ok:
                verify = case.resumed.engine.verify
                detail = (
                    f"spill {case.spill_pairs:,} pairs, resumed verify level "
                    f"{verify.level} MATCH, image published"
                )
                status = "ok  "
            else:
                detail = case.failure or "assertions failed"
                if not case.triggered:
                    detail = "crash point never fired"
                elif not case.rolled_back:
                    detail = "DST published despite crash"
                status = "FAIL"
            lines.append(f"  {status} {case.point.value:<22} {detail}")
        return "\n".join(lines)


def migrate_sweep_points() -> list[CrashPoint]:
    """The crash points this sweep owns."""
    return list(MIGRATION_POINTS)


def run_migrate_crash_sweep(
    points: Optional[Sequence[CrashPoint]] = None,
    *,
    backend_from: str = "lsm",
    backend_to: str = "hybrid",
    num_keys: int = DEFAULT_STORE_KEYS,
    range_pairs: int = DEFAULT_RANGE_PAIRS,
    seed: int = 0,
    registry: Optional[MetricsRegistry] = None,
) -> MigrateCrashReport:
    """Kill a migration at each point, then prove the resume converges."""
    if points is None:
        points = migrate_sweep_points()
    for point in points:
        if point not in MIGRATION_POINTS:
            raise ValueError(f"{point.value} is not a migration crash point")
    report = MigrateCrashReport(pair=f"{backend_from}->{backend_to}")
    for case_index, point in enumerate(points):
        case = MigrateCrashCase(point=point)
        report.cases.append(case)
        with tempfile.TemporaryDirectory(prefix="repro-migrate-crash-") as tmp:
            workdir = Path(tmp)
            src = workdir / "src.kvimg"
            dst = workdir / "dst.kvimg"
            build_source_image(src, num_keys=num_keys, seed=seed + case_index)

            def config_for(plan: Optional[FaultPlan]) -> MigrationConfig:
                return MigrationConfig(
                    backend_from=backend_from,
                    backend_to=backend_to,
                    range_pairs=range_pairs,
                    lag_threshold=0,
                    max_delta_rounds=8,
                    verify=True,
                    fault_plan=plan,
                )

            plan = FaultPlan.kill_at(point)
            plan.validate()
            job = MigrateJob(
                src=src,
                dst=dst,
                config=config_for(plan),
                mirror=True,
            )
            try:
                run_migrate_job(
                    job, registry=registry, on_event=_scripted_traffic(seed)
                )
                case.failure = "migration completed without crashing"
                continue
            except SimulatedCrash:
                case.triggered = True
            except Exception as exc:  # pragma: no cover - diagnostics
                case.failure = f"unexpected error before crash: {exc!r}"
                continue
            case.rolled_back = not dst.exists()
            if not case.rolled_back:
                continue

            # Act 2: come back from the dead and finish the job.
            resume_job = MigrateJob(
                src=src,
                dst=dst,
                config=config_for(None),
                mirror=True,
                resume=True,
            )
            spill = spill_path(dst)
            try:
                if spill.exists():
                    from repro.migrate.image import read_image_pairs

                    case.spill_pairs = sum(
                        1 for _ in read_image_pairs(spill, salvage=True)
                    )
                case.resumed = run_migrate_job(
                    resume_job, registry=registry, on_event=_scripted_traffic(seed + 97)
                )
                info = image_info(dst)  # strict read: footer must be consistent
                case.published_ok = (
                    dst.exists()
                    and info.pairs == case.resumed.published_pairs
                    and not spill.exists()
                )
            except Exception as exc:  # pragma: no cover - diagnostics
                case.failure = f"resume failed: {exc!r}"
    return report
