"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type to handle all library failures.  Subsystem
errors form a shallow tree mirroring the package layout.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class RLPError(ReproError):
    """Malformed RLP input or an unencodable Python object."""


class RLPDecodingError(RLPError):
    """The byte string is not a valid RLP item."""


class RLPEncodingError(RLPError):
    """The Python object cannot be represented in RLP."""


class KVStoreError(ReproError):
    """Base class for key-value store failures."""


class KeyNotFoundError(KVStoreError, KeyError):
    """A get/delete targeted a key that is not in the store."""

    def __init__(self, key: bytes) -> None:
        super().__init__(key)
        self.key = key

    def __str__(self) -> str:
        return f"key not found: {self.key.hex()}"


class StoreClosedError(KVStoreError):
    """An operation was issued to a store after close()."""


class CorruptionError(KVStoreError):
    """On-disk or in-memory structures failed an integrity check."""


class TrieError(ReproError):
    """Base class for Merkle Patricia Trie failures."""


class MissingTrieNodeError(TrieError):
    """A trie traversal referenced a node absent from backing storage."""

    def __init__(self, node_ref: bytes, path: str = "") -> None:
        super().__init__(node_ref, path)
        self.node_ref = node_ref
        self.path = path

    def __str__(self) -> str:
        return f"missing trie node {self.node_ref.hex()} at path {self.path!r}"


class InvalidNibblesError(TrieError):
    """A nibble sequence contained values outside 0..15."""


class ChainError(ReproError):
    """Base class for blockchain substrate failures."""


class InvalidBlockError(ChainError):
    """A block failed validation during synchronization."""


class UnknownBlockError(ChainError):
    """A block lookup (by hash or number) found nothing."""


class GethDBError(ReproError):
    """Base class for the Geth data-management layer."""


class FreezerError(GethDBError):
    """Freezer (ancient store) consistency violation."""


class SnapshotError(GethDBError):
    """Snapshot layer inconsistency (e.g. stale root, missing layer)."""


class TraceError(ReproError):
    """Base class for trace model / IO failures."""


class TraceFormatError(TraceError):
    """A serialized trace record could not be parsed."""


class AnalysisError(ReproError):
    """A trace analysis was configured or invoked incorrectly."""


class WorkloadError(ReproError):
    """Invalid workload generator configuration."""


class CacheSimError(ReproError):
    """Invalid cache simulation configuration."""


class HybridStoreError(ReproError):
    """Hybrid KV storage routing or consistency failure."""
