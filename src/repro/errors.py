"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type to handle all library failures.  Subsystem
errors form a shallow tree mirroring the package layout.

This module also hosts :class:`CrashPoint` — the catalog of named
locations where the fault-injection layer (``repro.faults``) may kill a
run — so that low-level subsystems can reference crash points without
importing the faults package.
"""

from __future__ import annotations

import enum


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class RLPError(ReproError):
    """Malformed RLP input or an unencodable Python object."""


class RLPDecodingError(RLPError):
    """The byte string is not a valid RLP item."""


class RLPEncodingError(RLPError):
    """The Python object cannot be represented in RLP."""


class KVStoreError(ReproError):
    """Base class for key-value store failures."""


class KeyNotFoundError(KVStoreError, KeyError):
    """A get/delete targeted a key that is not in the store."""

    def __init__(self, key: bytes) -> None:
        super().__init__(key)
        self.key = key

    def __str__(self) -> str:
        return f"key not found: {self.key.hex()}"


class StoreClosedError(KVStoreError):
    """An operation was issued to a store after close()."""


class CorruptionError(KVStoreError):
    """On-disk or in-memory structures failed an integrity check."""


class TrieError(ReproError):
    """Base class for Merkle Patricia Trie failures."""


class MissingTrieNodeError(TrieError):
    """A trie traversal referenced a node absent from backing storage."""

    def __init__(self, node_ref: bytes, path: str = "") -> None:
        super().__init__(node_ref, path)
        self.node_ref = node_ref
        self.path = path

    def __str__(self) -> str:
        return f"missing trie node {self.node_ref.hex()} at path {self.path!r}"


class InvalidNibblesError(TrieError):
    """A nibble sequence contained values outside 0..15."""


class ChainError(ReproError):
    """Base class for blockchain substrate failures."""


class InvalidBlockError(ChainError):
    """A block failed validation during synchronization."""


class UnknownBlockError(ChainError):
    """A block lookup (by hash or number) found nothing."""


class GethDBError(ReproError):
    """Base class for the Geth data-management layer."""


class FreezerError(GethDBError):
    """Freezer (ancient store) consistency violation."""


class SnapshotError(GethDBError):
    """Snapshot layer inconsistency (e.g. stale root, missing layer)."""


class TraceError(ReproError):
    """Base class for trace model / IO failures."""


class TraceFormatError(TraceError):
    """A serialized trace record could not be parsed."""


class AnalysisError(ReproError):
    """A trace analysis was configured or invoked incorrectly."""


class WorkloadError(ReproError):
    """Invalid workload generator configuration."""


class CacheSimError(ReproError):
    """Invalid cache simulation configuration."""


class HybridStoreError(ReproError):
    """Hybrid KV storage routing or consistency failure."""


class ReplayError(ReproError):
    """Trace replay was configured incorrectly or a worker failed."""


class ReplayOverloadError(ReplayError):
    """The replay engine's admission policy aborted on a full queue."""


class CrashPoint(enum.Enum):
    """Named locations where a fault plan may kill the process.

    The values are stable strings used by the ``repro crashtest`` CLI
    (``--crash-points``) and the fault-plan event log.
    """

    #: before any of the block batch is applied
    BATCH_COMMIT_BEFORE = "batch-commit-before"
    #: mid-commit: a prefix of the batch is applied, the rest is lost
    BATCH_COMMIT_TORN = "batch-commit-torn"
    #: after the block batch is fully durable
    BATCH_COMMIT_AFTER = "batch-commit-after"
    #: before an unbatched singleton write lands
    WRITE_NOW = "write-now"
    #: around the trie dirty-buffer flush boundary
    TRIE_FLUSH_BEFORE = "trie-flush-before"
    TRIE_FLUSH_AFTER = "trie-flush-after"
    #: around the freezer migration step
    FREEZE_BEFORE = "freeze-before"
    FREEZE_AFTER = "freeze-after"
    #: around the tx-lookup unindexing step
    TXINDEX_BEFORE = "txindex-before"
    TXINDEX_AFTER = "txindex-after"
    #: in clean shutdown, after journals/markers but before the final
    #: batch commit (tests that journals subsume the torn flush)
    SHUTDOWN_BEFORE_COMMIT = "shutdown-before-commit"
    #: inside snapshot regeneration: during the stale-snapshot wipe
    SNAPSHOT_REGEN_WIPE = "snapshot-regen-wipe"
    #: inside snapshot regeneration: during the trie walk
    SNAPSHOT_REGEN_WALK = "snapshot-regen-walk"
    #: inside snapshot regeneration: before the done marker is written
    SNAPSHOT_REGEN_FINALIZE = "snapshot-regen-finalize"
    #: live migration: after a bulk-copy range lands in the destination
    MIGRATE_BULK_COPY = "migrate-bulk-copy"
    #: live migration: after one delta catch-up round is applied
    MIGRATE_DELTA_ROUND = "migrate-delta-round"
    #: live migration: admission is about to pause for the cutover
    MIGRATE_PRE_CUTOVER = "migrate-pre-cutover"
    #: live migration: the active store flipped, destination not yet published
    MIGRATE_POST_CUTOVER = "migrate-post-cutover"

    @classmethod
    def from_name(cls, name: str) -> "CrashPoint":
        for point in cls:
            if point.value == name or point.name == name.upper().replace("-", "_"):
                return point
        raise ValueError(f"unknown crash point: {name!r}")


#: Crash points that fire only inside the live-migration engine
#: (``repro.migrate``); the sync crash harness never reaches them, so
#: ``repro crashtest`` routes them to the migration harness instead.
MIGRATION_POINTS = (
    CrashPoint.MIGRATE_BULK_COPY,
    CrashPoint.MIGRATE_DELTA_ROUND,
    CrashPoint.MIGRATE_PRE_CUTOVER,
    CrashPoint.MIGRATE_POST_CUTOVER,
)


class MigrationError(ReproError):
    """A live backend migration was misconfigured or failed."""


class ImageFormatError(MigrationError):
    """A serialized store image could not be parsed or failed its CRC."""


class PeerNetworkError(ReproError):
    """The simulated peer network could not serve a request.

    Raised when the request scheduler exhausts its retry budget (every
    candidate peer dropped, timed out, or answered with a blob failing
    hash verification) or when a snap-sync range download is severed by
    a peer-drop fault rule.
    """


class BeamSyncError(ReproError):
    """Beam sync was misconfigured or failed to converge."""


class FaultInjectionError(ReproError):
    """Base class for the deterministic fault-injection layer."""


class SimulatedCrash(FaultInjectionError):
    """A fault plan killed the run at a crash point.

    Stands in for ``kill -9``: whatever was durable stays, everything
    in memory is lost.  Harnesses catch this, re-attach via
    :func:`repro.sync.recovery.resume`, and compare against a reference.
    """

    def __init__(self, point: CrashPoint, block: int = 0, detail: str = "") -> None:
        super().__init__(point, block, detail)
        self.point = point
        self.block = block
        self.detail = detail

    def __str__(self) -> str:
        suffix = f" ({self.detail})" if self.detail else ""
        return f"simulated crash at {self.point.value}, block {self.block}{suffix}"


class TransientIOError(FaultInjectionError, IOError):
    """An injected transient I/O failure on one store operation."""
