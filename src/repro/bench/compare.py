"""Noise-aware baseline comparison — the perf-gate's brain.

A naive "fail if >X% slower" gate flips on every noisy CI runner; a
pure statistical test fails to flag a real regression that sits just
inside a wide interval.  The comparator demands **both** signals
before confirming a regression:

* the median delta exceeds the threshold (practical significance), and
* the candidate's bootstrap CI lies entirely above the baseline's
  (statistical separation).

A large-but-noisy delta is reported as ``suspect`` (visible, non
fatal); a separated-but-small delta is ``ok`` by construction.
Improvements are confirmed symmetrically and never fail the gate.
Results from different profiles time different workloads and refuse to
compare at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.bench.schema import BenchmarkResult, RunResult

DEFAULT_THRESHOLD_PCT = 25.0

#: comparison outcomes, ordered worst-first for rendering
STATUS_ORDER = ("regression", "suspect", "missing", "new", "improvement", "ok")


@dataclass(frozen=True)
class BenchDelta:
    """One benchmark's baseline-vs-candidate verdict."""

    name: str
    status: str  # one of STATUS_ORDER
    base_median: Optional[float] = None
    cand_median: Optional[float] = None
    delta_pct: Optional[float] = None
    ci_separated: bool = False

    def describe(self) -> str:
        if self.status == "new":
            return "no baseline entry"
        if self.status == "missing":
            return "present in baseline, absent from candidate"
        sign = "+" if (self.delta_pct or 0.0) >= 0 else ""
        ci = "CIs separate" if self.ci_separated else "CIs overlap"
        return (
            f"{_format_seconds(self.base_median)} -> "
            f"{_format_seconds(self.cand_median)} "
            f"({sign}{self.delta_pct:.1f}%, {ci})"
        )


def _format_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.1f}us"


@dataclass
class CompareReport:
    """All per-benchmark deltas plus the gate verdict."""

    threshold_pct: float
    deltas: list[BenchDelta] = field(default_factory=list)

    @property
    def regressions(self) -> list[BenchDelta]:
        return [delta for delta in self.deltas if delta.status == "regression"]

    @property
    def regressed(self) -> bool:
        return bool(self.regressions)

    def render(self) -> str:
        order = {status: index for index, status in enumerate(STATUS_ORDER)}
        rows = sorted(self.deltas, key=lambda d: (order[d.status], d.name))
        width = max((len(delta.name) for delta in rows), default=4)
        lines = [
            f"perf comparison (threshold {self.threshold_pct:.0f}%, "
            f"regression = delta > threshold AND CIs separate)",
            f"{'benchmark':<{width}}  {'status':<11}  detail",
        ]
        for delta in rows:
            lines.append(
                f"{delta.name:<{width}}  {delta.status:<11}  {delta.describe()}"
            )
        verdict = (
            f"FAIL: {len(self.regressions)} confirmed regression(s)"
            if self.regressed
            else "PASS: no confirmed regressions"
        )
        lines.append(verdict)
        return "\n".join(lines)


def _compare_one(
    name: str,
    base: BenchmarkResult,
    cand: BenchmarkResult,
    threshold_pct: float,
) -> BenchDelta:
    delta_pct = (cand.stats.median - base.stats.median) / base.stats.median * 100.0
    slower_separated = cand.stats.ci_low > base.stats.ci_high
    faster_separated = cand.stats.ci_high < base.stats.ci_low
    if delta_pct > threshold_pct:
        status = "regression" if slower_separated else "suspect"
        separated = slower_separated
    elif delta_pct < -threshold_pct and faster_separated:
        status, separated = "improvement", True
    else:
        status = "ok"
        separated = slower_separated or faster_separated
    return BenchDelta(
        name=name,
        status=status,
        base_median=base.stats.median,
        cand_median=cand.stats.median,
        delta_pct=delta_pct,
        ci_separated=separated,
    )


def compare_results(
    base: RunResult,
    candidate: RunResult,
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
) -> CompareReport:
    """Diff a candidate run against a baseline run.

    Raises ``ValueError`` when the runs measured different profiles
    (their medians are not comparable).
    """
    if base.profile != candidate.profile:
        raise ValueError(
            f"profile mismatch: baseline is {base.profile!r}, "
            f"candidate is {candidate.profile!r}"
        )
    if threshold_pct <= 0:
        raise ValueError("threshold must be > 0")
    report = CompareReport(threshold_pct=threshold_pct)
    for name in sorted(set(base.benchmarks) | set(candidate.benchmarks)):
        base_entry = base.benchmarks.get(name)
        cand_entry = candidate.benchmarks.get(name)
        if base_entry is None:
            report.deltas.append(BenchDelta(name=name, status="new"))
        elif cand_entry is None:
            report.deltas.append(BenchDelta(name=name, status="missing"))
        else:
            report.deltas.append(
                _compare_one(name, base_entry, cand_entry, threshold_pct)
            )
    return report
