"""Calibrated benchmark runner.

Timing discipline (the usual micro-benchmark playbook, applied per
spec):

1. **Setup** builds the workload from the shared context — trace
   synthesis never lands inside a measurement.
2. **Check**: the workload runs once and its correctness check is
   validated, so a benchmark that silently computes the wrong thing
   cannot publish a (fast, meaningless) number.
3. **Calibration** grows an inner loop count geometrically until one
   measurement lasts at least ``min_time``, lifting sub-millisecond
   kernels above timer granularity; the calibration runs double as
   cache/JIT warmup.
4. **Warmup** measurements are taken and discarded.
5. **Repeats**: ``repeats`` measurements are recorded as per-iteration
   wall seconds (elapsed / loops) and summarized with robust stats.

During the measured phase a fresh :class:`MetricsRegistry` is swapped
in process-wide, and the counter deltas between the snapshots taken
just before and just after are attributed to the benchmark (normalized
per iteration), so a result file shows *what the kernel did* — chunks
consumed, records classified, bytes moved — next to how long it took.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.bench.context import BenchContext
from repro.bench.registry import BenchmarkSpec, Workload
from repro.bench.schema import BenchmarkResult, RunResult, environment_info
from repro.bench.stats import (
    DEFAULT_BOOTSTRAP_SAMPLES,
    DEFAULT_BOOTSTRAP_SEED,
    DEFAULT_CI_LEVEL,
    summarize,
)
from repro.obs import MetricsRegistry, counter_deltas, diff_snapshots, use_registry


@dataclass(frozen=True)
class RunnerConfig:
    """Measurement knobs; recorded verbatim into the result file."""

    repeats: int = 5
    warmup: int = 1
    #: target seconds per measurement; the calibrator raises loops to hit it
    min_time: float = 0.05
    max_loops: int = 4096
    bootstrap_samples: int = DEFAULT_BOOTSTRAP_SAMPLES
    ci_level: float = DEFAULT_CI_LEVEL
    bootstrap_seed: int = DEFAULT_BOOTSTRAP_SEED

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise ValueError("repeats must be >= 1")
        if self.warmup < 0:
            raise ValueError("warmup must be >= 0")
        if self.min_time < 0:
            raise ValueError("min_time must be >= 0")

    def to_json(self) -> dict:
        return {
            "repeats": self.repeats,
            "warmup": self.warmup,
            "min_time": self.min_time,
            "max_loops": self.max_loops,
            "bootstrap_samples": self.bootstrap_samples,
            "ci_level": self.ci_level,
        }


def _timed(run: Callable[[], object], loops: int) -> float:
    start = time.perf_counter()
    for _ in range(loops):
        run()
    return time.perf_counter() - start


def _calibrate_loops(workload: Workload, config: RunnerConfig) -> int:
    """Smallest power-of-two-ish loop count whose measurement spans
    ``min_time``.  Long-running workloads calibrate to 1 immediately."""
    loops = 1
    while loops < config.max_loops:
        elapsed = _timed(workload.run, loops)
        if elapsed >= config.min_time:
            return loops
        if elapsed <= 0:
            loops *= 2
            continue
        # Jump most of the way to the target, at least doubling.
        loops = min(
            config.max_loops,
            max(loops * 2, int(loops * config.min_time / elapsed * 1.2) + 1),
        )
    return loops


def run_benchmark(
    spec: BenchmarkSpec,
    ctx: BenchContext,
    config: RunnerConfig = RunnerConfig(),
) -> BenchmarkResult:
    """Measure one spec against a context."""
    workload = spec.setup(ctx)
    if workload.check is not None:
        workload.check(workload.run())

    registry = MetricsRegistry()
    with use_registry(registry):
        loops = _calibrate_loops(workload, config)
        for _ in range(config.warmup):
            _timed(workload.run, loops)
        before = registry.snapshot()
        times = []
        for _ in range(config.repeats):
            times.append(_timed(workload.run, loops) / loops)
        after = registry.snapshot()

    iterations = config.repeats * loops
    metrics = {
        name: value / iterations
        for name, value in counter_deltas(diff_snapshots(before, after)).items()
    }
    stats = summarize(
        times,
        n_boot=config.bootstrap_samples,
        level=config.ci_level,
        seed=config.bootstrap_seed,
    )
    return BenchmarkResult(
        name=spec.name,
        group=spec.group,
        loops=loops,
        repeats=config.repeats,
        warmup=config.warmup,
        times=tuple(times),
        stats=stats,
        ops=workload.ops,
        rate=workload.ops / stats.median if workload.ops else None,
        metrics=metrics,
    )


ProgressFn = Callable[[BenchmarkSpec, BenchmarkResult], None]


def run_suite(
    specs: Iterable[BenchmarkSpec],
    ctx: BenchContext,
    config: RunnerConfig = RunnerConfig(),
    *,
    progress: Optional[ProgressFn] = None,
) -> RunResult:
    """Run every spec against one shared context → a :class:`RunResult`."""
    benchmarks: dict[str, BenchmarkResult] = {}
    for spec in specs:
        result = run_benchmark(spec, ctx, config)
        benchmarks[spec.name] = result
        if progress is not None:
            progress(spec, result)
    return RunResult(
        profile=ctx.profile.name,
        seed=ctx.seed,
        benchmarks=benchmarks,
        created_unix=time.time(),
        env=environment_info(),
        runner=config.to_json(),
    )
