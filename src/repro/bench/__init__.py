"""Statistical benchmark harness (``repro bench``).

The perf counterpart to the crash harness and the observability layer:
a registry of ``@benchmark``-decorated workloads
(:mod:`repro.bench.suite`), a calibrated runner that records
per-iteration wall times plus obs-registry counter deltas
(:mod:`repro.bench.runner`), robust statistics with bootstrapped
confidence intervals (:mod:`repro.bench.stats`), a versioned
``bench-result-v1`` schema (:mod:`repro.bench.schema`), and a
noise-aware baseline comparator (:mod:`repro.bench.compare`) that only
fails CI when a slowdown is both large and statistically separated
from the baseline.

Importing :func:`load_default_suite` (or the CLI) pulls in
:mod:`repro.bench.suite`, which registers the migrated analyzer,
parallel-scaling, and ablation benchmarks.
"""

from __future__ import annotations

from repro.bench.compare import (
    DEFAULT_THRESHOLD_PCT,
    BenchDelta,
    CompareReport,
    compare_results,
)
from repro.bench.context import DEFAULT_PROFILE, PROFILES, BenchContext, BenchProfile
from repro.bench.registry import (
    DEFAULT_REGISTRY,
    BenchmarkRegistry,
    BenchmarkSpec,
    Workload,
    benchmark,
)
from repro.bench.report import render_result, render_trajectory
from repro.bench.runner import RunnerConfig, run_benchmark, run_suite
from repro.bench.schema import (
    RESULT_FORMAT,
    BenchmarkResult,
    RunResult,
    read_result_json,
    write_result_json,
)
from repro.bench.stats import SummaryStats, bootstrap_ci, mad, median, summarize

__all__ = [
    "DEFAULT_PROFILE",
    "DEFAULT_REGISTRY",
    "DEFAULT_THRESHOLD_PCT",
    "PROFILES",
    "RESULT_FORMAT",
    "BenchContext",
    "BenchDelta",
    "BenchProfile",
    "BenchmarkRegistry",
    "BenchmarkResult",
    "BenchmarkSpec",
    "CompareReport",
    "RunResult",
    "RunnerConfig",
    "SummaryStats",
    "Workload",
    "benchmark",
    "bootstrap_ci",
    "compare_results",
    "load_default_suite",
    "mad",
    "median",
    "read_result_json",
    "render_result",
    "render_trajectory",
    "run_benchmark",
    "run_suite",
    "summarize",
    "write_result_json",
]


def load_default_suite() -> BenchmarkRegistry:
    """Import the migrated suite and return the populated registry."""
    from repro.bench import suite  # noqa: F401  (import populates the registry)

    return DEFAULT_REGISTRY
