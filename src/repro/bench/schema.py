"""The versioned ``bench-result-v1`` JSON schema.

One run of the suite serializes to a single JSON document::

    {
      "format": "bench-result-v1",
      "profile": "quick",
      "seed": 2024,
      "created_unix": 1754500000.0,
      "env": {"python": "3.11.7", "platform": "...", "cpu_count": 8},
      "runner": {"repeats": 5, "warmup": 1, "min_time": 0.05},
      "benchmarks": {
        "opdist_columnar": {
          "group": "analyzer",
          "loops": 8, "repeats": 5, "ops": 123456,
          "times": [...],              # per-iteration wall seconds
          "stats": {"median": ..., "mad": ..., "ci_low": ..., ...},
          "rate": 51234567.0,          # ops / median-second
          "metrics": {"parallel_chunks_total": 12.0, ...}
        }, ...
      }
    }

Readers validate the ``format`` tag and the per-benchmark invariants
(times non-empty, stats consistent) and raise ``ValueError`` on any
malformed document, which the CLI maps to exit code 2.  The format tag
is bumped on any incompatible change so stale committed baselines fail
loudly instead of comparing garbage.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional, Union

from repro.bench.stats import SummaryStats

RESULT_FORMAT = "bench-result-v1"


@dataclass(frozen=True)
class BenchmarkResult:
    """One benchmark's measurements within a run."""

    name: str
    group: str
    loops: int
    repeats: int
    warmup: int
    times: tuple[float, ...]
    stats: SummaryStats
    ops: Optional[int] = None
    rate: Optional[float] = None
    metrics: dict[str, float] = field(default_factory=dict)

    def to_json(self) -> dict:
        out: dict = {
            "group": self.group,
            "loops": self.loops,
            "repeats": self.repeats,
            "warmup": self.warmup,
            "times": list(self.times),
            "stats": self.stats.to_json(),
        }
        if self.ops is not None:
            out["ops"] = self.ops
        if self.rate is not None:
            out["rate"] = self.rate
        if self.metrics:
            out["metrics"] = dict(sorted(self.metrics.items()))
        return out

    @classmethod
    def from_json(cls, name: str, data: Mapping) -> "BenchmarkResult":
        if not isinstance(data, Mapping):
            raise ValueError(f"benchmark {name!r}: entry must be an object")
        try:
            times = tuple(float(value) for value in data["times"])
            result = cls(
                name=name,
                group=str(data.get("group", "default")),
                loops=int(data["loops"]),
                repeats=int(data["repeats"]),
                warmup=int(data.get("warmup", 0)),
                times=times,
                stats=SummaryStats.from_json(data["stats"]),
                ops=int(data["ops"]) if "ops" in data else None,
                rate=float(data["rate"]) if "rate" in data else None,
                metrics={
                    str(key): float(value)
                    for key, value in data.get("metrics", {}).items()
                },
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"benchmark {name!r}: malformed entry: {exc}") from exc
        if not result.times:
            raise ValueError(f"benchmark {name!r}: no recorded times")
        if result.stats.n != len(result.times):
            raise ValueError(
                f"benchmark {name!r}: stats.n={result.stats.n} "
                f"!= len(times)={len(result.times)}"
            )
        if result.loops < 1 or result.repeats < 1:
            raise ValueError(f"benchmark {name!r}: loops/repeats must be >= 1")
        return result


@dataclass(frozen=True)
class RunResult:
    """One full suite run — what ``repro bench run`` writes."""

    profile: str
    seed: int
    benchmarks: dict[str, BenchmarkResult]
    created_unix: float = 0.0
    env: dict[str, object] = field(default_factory=dict)
    runner: dict[str, object] = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "format": RESULT_FORMAT,
            "profile": self.profile,
            "seed": self.seed,
            "created_unix": self.created_unix,
            "env": self.env,
            "runner": self.runner,
            "benchmarks": {
                name: self.benchmarks[name].to_json()
                for name in sorted(self.benchmarks)
            },
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "RunResult":
        if not isinstance(data, Mapping):
            raise ValueError("not a bench-result object")
        if data.get("format") != RESULT_FORMAT:
            raise ValueError(
                f"not a {RESULT_FORMAT} document (format={data.get('format')!r})"
            )
        try:
            profile = str(data["profile"])
            seed = int(data.get("seed", 0))
            raw_benchmarks = data["benchmarks"]
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed bench result: {exc}") from exc
        if not isinstance(raw_benchmarks, Mapping):
            raise ValueError("'benchmarks' must be an object")
        benchmarks = {
            str(name): BenchmarkResult.from_json(str(name), entry)
            for name, entry in raw_benchmarks.items()
        }
        return cls(
            profile=profile,
            seed=seed,
            benchmarks=benchmarks,
            created_unix=float(data.get("created_unix", 0.0)),
            env=dict(data.get("env", {})),
            runner=dict(data.get("runner", {})),
        )


def environment_info() -> dict[str, object]:
    """Host facts recorded alongside a run (informational, not compared)."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "argv": " ".join(sys.argv[:1]),
    }


def write_result_json(path: Union[str, Path], result: RunResult) -> None:
    payload = json.dumps(result.to_json(), indent=2, sort_keys=False) + "\n"
    Path(path).write_text(payload, encoding="ascii")


def read_result_json(path: Union[str, Path]) -> RunResult:
    """Load and validate a result file; ``ValueError`` on bad documents."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON: {exc}") from exc
    return RunResult.from_json(data)


def stamp(result: RunResult) -> RunResult:
    """A copy of ``result`` carrying the current wall-clock timestamp."""
    return RunResult(
        profile=result.profile,
        seed=result.seed,
        benchmarks=result.benchmarks,
        created_unix=time.time(),
        env=result.env,
        runner=result.runner,
    )
