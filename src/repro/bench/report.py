"""Render bench results as ascii or markdown tables.

Two shapes:

* :func:`render_result` — one run, one row per benchmark (median, MAD,
  CI, records/s);
* :func:`render_trajectory` — several runs side by side (oldest
  first), one column per run and a trailing delta of the newest median
  against the oldest — the "perf trajectory" view CHANGES.md-style
  history never gave the repo.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.bench.schema import RunResult


def _fmt_time(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds * 1e6:.1f} us"


def _fmt_rate(rate: Optional[float]) -> str:
    if rate is None:
        return "-"
    if rate >= 1e6:
        return f"{rate / 1e6:.2f} M/s"
    if rate >= 1e3:
        return f"{rate / 1e3:.1f} k/s"
    return f"{rate:.1f} /s"


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]], fmt: str) -> str:
    if fmt == "md":
        lines = [
            "| " + " | ".join(headers) + " |",
            "| " + " | ".join("---" for _ in headers) + " |",
        ]
        lines.extend("| " + " | ".join(row) + " |" for row in rows)
        return "\n".join(lines)
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in rows)) if rows else len(headers[col])
        for col in range(len(headers))
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def render_result(result: RunResult, fmt: str = "ascii") -> str:
    """One run as a per-benchmark summary table."""
    headers = ["benchmark", "group", "median", "mad", "95% CI", "rate", "loops"]
    rows = []
    for name in sorted(result.benchmarks):
        bench = result.benchmarks[name]
        stats = bench.stats
        rows.append(
            [
                name,
                bench.group,
                _fmt_time(stats.median),
                _fmt_time(stats.mad),
                f"[{_fmt_time(stats.ci_low)}, {_fmt_time(stats.ci_high)}]",
                _fmt_rate(bench.rate),
                f"{bench.loops}x{bench.repeats}",
            ]
        )
    title = f"bench results — profile={result.profile}, seed={result.seed}"
    return title + "\n" + _table(headers, rows, fmt)


def render_trajectory(results: Sequence[RunResult], fmt: str = "ascii") -> str:
    """Several runs of one profile side by side, oldest first."""
    if not results:
        raise ValueError("no results to render")
    profiles = {result.profile for result in results}
    if len(profiles) > 1:
        raise ValueError(
            f"trajectory mixes profiles {sorted(profiles)}; render them separately"
        )
    ordered = sorted(results, key=lambda r: r.created_unix)

    def column_label(result: RunResult, index: int) -> str:
        if result.created_unix:
            stamp = time.strftime("%m-%d %H:%M", time.localtime(result.created_unix))
            return f"run{index} ({stamp})"
        return f"run{index}"

    headers = ["benchmark"] + [
        column_label(result, index) for index, result in enumerate(ordered)
    ]
    if len(ordered) > 1:
        headers.append("newest vs oldest")
    names = sorted({name for result in ordered for name in result.benchmarks})
    rows = []
    for name in names:
        medians = [
            result.benchmarks[name].stats.median if name in result.benchmarks else None
            for result in ordered
        ]
        row = [name] + [_fmt_time(median) for median in medians]
        if len(ordered) > 1:
            first, last = medians[0], medians[-1]
            if first and last is not None:
                delta = (last - first) / first * 100.0
                row.append(f"{'+' if delta >= 0 else ''}{delta:.1f}%")
            else:
                row.append("-")
        rows.append(row)
    title = f"perf trajectory — profile={ordered[0].profile}, {len(ordered)} run(s)"
    return title + "\n" + _table(headers, rows, fmt)
