"""Robust summary statistics for benchmark timings.

Wall-clock samples from a shared CI runner are contaminated by
scheduler noise that is one-sided (interruptions only ever add time),
so the harness summarizes with order statistics — the median locates
the typical iteration, the MAD scales the noise — and brackets the
median with a percentile-bootstrap confidence interval.  The
comparator (:mod:`repro.bench.compare`) only confirms a regression
when two runs' intervals separate, which is what keeps an unlucky
sample from failing a PR.

The bootstrap is deterministically seeded: the same ``times`` list
always yields the same interval, so results files are reproducible
byte-for-byte given identical measurements.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Sequence

DEFAULT_BOOTSTRAP_SAMPLES = 400
DEFAULT_CI_LEVEL = 0.95
DEFAULT_BOOTSTRAP_SEED = 0x5EED


def median(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: Sequence[float], center: float | None = None) -> float:
    """Median absolute deviation around ``center`` (default: the median)."""
    if center is None:
        center = median(values)
    return median([abs(value - center) for value in values])


def bootstrap_ci(
    values: Sequence[float],
    *,
    n_boot: int = DEFAULT_BOOTSTRAP_SAMPLES,
    level: float = DEFAULT_CI_LEVEL,
    seed: int = DEFAULT_BOOTSTRAP_SEED,
) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval for the median.

    Resamples ``values`` with replacement ``n_boot`` times and takes
    the central ``level`` mass of the resampled medians.  With a single
    sample the interval collapses to a point.
    """
    if not values:
        raise ValueError("bootstrap of empty sequence")
    if not 0.0 < level < 1.0:
        raise ValueError("CI level must be in (0, 1)")
    n = len(values)
    if n == 1:
        return float(values[0]), float(values[0])
    rng = random.Random(seed)
    medians = sorted(
        median([values[rng.randrange(n)] for _ in range(n)]) for _ in range(n_boot)
    )
    alpha = (1.0 - level) / 2.0
    low_index = int(alpha * (n_boot - 1))
    high_index = int((1.0 - alpha) * (n_boot - 1))
    return medians[low_index], medians[high_index]


@dataclass(frozen=True)
class SummaryStats:
    """Robust location/scale summary of one benchmark's iteration times."""

    n: int
    mean: float
    median: float
    mad: float
    min: float
    max: float
    ci_low: float
    ci_high: float
    ci_level: float = DEFAULT_CI_LEVEL
    bootstrap_samples: int = DEFAULT_BOOTSTRAP_SAMPLES

    def to_json(self) -> dict:
        return {
            "n": self.n,
            "mean": self.mean,
            "median": self.median,
            "mad": self.mad,
            "min": self.min,
            "max": self.max,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "ci_level": self.ci_level,
            "bootstrap_samples": self.bootstrap_samples,
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "SummaryStats":
        try:
            return cls(
                n=int(data["n"]),
                mean=float(data["mean"]),
                median=float(data["median"]),
                mad=float(data["mad"]),
                min=float(data["min"]),
                max=float(data["max"]),
                ci_low=float(data["ci_low"]),
                ci_high=float(data["ci_high"]),
                ci_level=float(data.get("ci_level", DEFAULT_CI_LEVEL)),
                bootstrap_samples=int(
                    data.get("bootstrap_samples", DEFAULT_BOOTSTRAP_SAMPLES)
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed stats block: {exc}") from exc


def summarize(
    values: Sequence[float],
    *,
    n_boot: int = DEFAULT_BOOTSTRAP_SAMPLES,
    level: float = DEFAULT_CI_LEVEL,
    seed: int = DEFAULT_BOOTSTRAP_SEED,
) -> SummaryStats:
    """Summarize per-iteration times into a :class:`SummaryStats`."""
    if not values:
        raise ValueError("cannot summarize zero samples")
    center = median(values)
    ci_low, ci_high = bootstrap_ci(values, n_boot=n_boot, level=level, seed=seed)
    return SummaryStats(
        n=len(values),
        mean=sum(values) / len(values),
        median=center,
        mad=mad(values, center),
        min=min(values),
        max=max(values),
        ci_low=ci_low,
        ci_high=ci_high,
        ci_level=level,
        bootstrap_samples=n_boot,
    )
