"""The migrated benchmark suite.

These are the workloads that previously lived only as pytest-benchmark
tests under ``benchmarks/`` — the analyzer hot loops
(``test_analyzer_throughput.py``), the parallel-scheduler scaling
points, and the §V ablation kernels — re-expressed as registry
entries so ``repro bench run`` can execute them standalone, baseline
them, and gate CI on them.  The pytest files keep their semantic
assertions and now drive the same setup functions, so there is exactly
one definition of each timed kernel.

Importing this module populates
:data:`repro.bench.registry.DEFAULT_REGISTRY`.
"""

from __future__ import annotations

import io
from collections import Counter

from repro.bench.context import BenchContext
from repro.bench.registry import Workload, benchmark
from repro.core.trace import OpType

#: Cache-simulation shape shared with benchmarks/test_ablation_*.py.
CACHE_CAPACITY = 2048
REGION_CAPACITY = 32
TRAIN_FRACTION = 0.3


def replay_store(store, records):
    """Drive a KV store with the logical operation stream of a trace.

    Shared by the hybrid-store ablation here and in
    ``benchmarks/test_ablation_hybrid_store.py``.
    """
    value_cache: dict[int, bytes] = {}
    for record in records:
        op = record.op
        if op is OpType.WRITE or op is OpType.UPDATE:
            value = value_cache.get(record.value_size)
            if value is None:
                value = b"\xab" * record.value_size
                value_cache[record.value_size] = value
            store.put(record.key, value)
        elif op is OpType.DELETE:
            store.delete(record.key)
        elif op is OpType.READ:
            store.get_or_none(record.key)
        else:  # scan
            for index, _ in enumerate(store.scan(record.key)):
                if index >= 64:
                    break
    return store


def world_state_reads(records):
    """READ keys in the world-state classes (correlation/cache benches)."""
    from repro.core.classes import WORLD_STATE_CLASSES, KVClass, classify_key

    classes = set(WORLD_STATE_CLASSES) | {KVClass.CODE}
    return [
        record.key
        for record in records
        if record.op is OpType.READ and classify_key(record.key) in classes
    ]


# ---------------------------------------------------------------------------
# analyzer throughput (from benchmarks/test_analyzer_throughput.py)
# ---------------------------------------------------------------------------


@benchmark(group="analyzer")
def opdist_reference(ctx: BenchContext) -> Workload:
    """Record-at-a-time classification + op-distribution accounting."""
    from repro.core.opdist import OpDistAnalyzer

    records = ctx.bare_records
    return Workload(
        run=lambda: OpDistAnalyzer(track_keys=False).consume(records).total_ops,
        ops=len(records),
        check=lambda total: _expect(total, len(records)),
    )


@benchmark(group="analyzer")
def opdist_columnar(ctx: BenchContext) -> Workload:
    """Vectorized chunked op-distribution (the bincount reduction)."""
    from repro.core.opdist import OpDistAnalyzer

    trace = ctx.columnar_trace
    return Workload(
        run=lambda: OpDistAnalyzer(track_keys=False)
        .consume_chunks(trace.chunks)
        .total_ops,
        ops=len(trace),
        check=lambda total: _expect(total, len(trace)),
    )


@benchmark(group="analyzer")
def opdist_columnar_tracked(ctx: BenchContext) -> Workload:
    """Chunked op-distribution with per-key tracking enabled."""
    from repro.core.opdist import OpDistAnalyzer

    trace = ctx.columnar_trace
    return Workload(
        run=lambda: OpDistAnalyzer(track_keys=True)
        .consume_chunks(trace.chunks)
        .total_ops,
        ops=len(trace),
        check=lambda total: _expect(total, len(trace)),
    )


@benchmark(group="analyzer")
def serialization_v1(ctx: BenchContext) -> Workload:
    """Binary v1 trace write + streamed read round trip."""
    from repro.core.trace import TraceReader, records_to_bytes

    records = ctx.bare_records

    def roundtrip():
        blob = records_to_bytes(records)
        return sum(1 for _ in TraceReader(io.BytesIO(blob)))

    return Workload(
        run=roundtrip,
        ops=len(records),
        check=lambda count: _expect(count, len(records)),
    )


@benchmark(group="analyzer")
def serialization_v2(ctx: BenchContext) -> Workload:
    """Chunked columnar v2 trace write + read round trip."""
    from repro.core.trace import ColumnarTraceReader, ColumnarTraceWriter

    trace = ctx.columnar_trace

    def roundtrip():
        buffer = io.BytesIO()
        writer = ColumnarTraceWriter(buffer)
        for chunk in trace.chunks:
            writer.write_chunk(chunk)
        writer.finish()
        reader = ColumnarTraceReader(io.BytesIO(buffer.getvalue()))
        return sum(len(chunk) for chunk in reader.chunks())

    return Workload(
        run=roundtrip,
        ops=len(trace),
        check=lambda count: _expect(count, len(trace)),
    )


@benchmark(group="analyzer")
def blockstats_columnar(ctx: BenchContext) -> Workload:
    """Chunked per-block statistics."""
    from repro.core.blockstats import BlockStatsAnalyzer

    trace = ctx.columnar_trace

    def analyze():
        analyzer = BlockStatsAnalyzer()
        for chunk in trace.chunks:
            analyzer.consume_chunk(chunk)
        return analyzer.num_blocks

    return Workload(
        run=analyze,
        ops=len(trace),
        check=lambda blocks: _expect_at_least(blocks, ctx.profile.blocks),
    )


@benchmark(group="analyzer")
def correlation_read(ctx: BenchContext) -> Workload:
    """Vectorized read-correlation pair counting (Figures 4-5 kernel)."""
    from repro.core.correlation import CorrelationAnalyzer, CorrelationConfig

    records = ctx.bare_records

    def correlate():
        analyzer = CorrelationAnalyzer(
            CorrelationConfig(op=OpType.READ, distances=(0, 4, 64, 1024))
        )
        analyzer.consume(records)
        results = analyzer.compute()
        return sum(sum(r.class_pair_counts.values()) for r in results.values())

    return Workload(
        run=correlate,
        ops=len(records),
        check=lambda total: _expect_at_least(total, 1),
    )


# ---------------------------------------------------------------------------
# parallel scheduler scaling (from test_analyzer_throughput.py)
# ---------------------------------------------------------------------------


def _parallel_workload(ctx: BenchContext, workers: int) -> Workload:
    from repro.core.parallel import analyze_trace

    path = ctx.parallel_trace_path
    expected = ctx.profile.parallel_chunks * ctx.profile.parallel_records_per_chunk
    return Workload(
        run=lambda: analyze_trace(path, workers=workers, analyzers=("opdist",))[
            "opdist"
        ].total_ops,
        ops=expected,
        check=lambda total: _expect(total, expected),
    )


@benchmark(group="parallel")
def parallel_workers1(ctx: BenchContext) -> Workload:
    """Sharded analysis, in-process path (the scaling baseline)."""
    return _parallel_workload(ctx, workers=1)


@benchmark(group="parallel")
def parallel_workers2(ctx: BenchContext) -> Workload:
    """Sharded analysis across 2 worker processes."""
    return _parallel_workload(ctx, workers=2)


@benchmark(group="parallel")
def parallel_workers4(ctx: BenchContext) -> Workload:
    """Sharded analysis across 4 worker processes."""
    return _parallel_workload(ctx, workers=4)


# ---------------------------------------------------------------------------
# analysis hot path: partial-aggregate cache + prefetch pipeline
# ---------------------------------------------------------------------------


def _cached_analysis_workload(ctx: BenchContext, warm: bool) -> Workload:
    """Cache-enabled analysis of the synthetic parallel trace.

    ``warm=False`` clears the cache at the top of every measured run, so
    each iteration pays compute + entry stores (the first-run cost);
    ``warm=True`` pre-populates once in setup and every measured run is
    served from cached per-chunk partials (read + CRC + merge only).
    The warm/cold ratio is the cache's whole value proposition and is
    asserted in ``benchmarks/test_analyzer_throughput.py``.
    """
    from repro.core.aggcache import AggregateCache, analyze_trace_cached
    from repro.obs import MetricsRegistry

    path = ctx.parallel_trace_path
    expected = ctx.profile.parallel_chunks * ctx.profile.parallel_records_per_chunk
    registry = MetricsRegistry()
    cache = AggregateCache(
        ctx.tmpdir / ("aggcache-warm" if warm else "aggcache-cold"), registry=registry
    )
    if warm:
        analyze_trace_cached(
            path, cache=cache, analyzers=("opdist",), registry=registry
        )

    def run():
        if not warm:
            cache.clear()
        return analyze_trace_cached(
            path, cache=cache, analyzers=("opdist",), registry=registry
        )["opdist"].total_ops

    return Workload(
        run=run, ops=expected, check=lambda total: _expect(total, expected)
    )


@benchmark(group="aggcache")
def aggcache_cold(ctx: BenchContext) -> Workload:
    """Cache-enabled analysis from an empty cache (compute + store)."""
    return _cached_analysis_workload(ctx, warm=False)


@benchmark(group="aggcache")
def aggcache_warm(ctx: BenchContext) -> Workload:
    """Warm re-analysis served entirely from cached per-chunk partials."""
    return _cached_analysis_workload(ctx, warm=True)


@benchmark(group="pipeline")
def pipelined_serial(ctx: BenchContext) -> Workload:
    """Serial file analysis with the bounded prefetch pipeline
    (reader thread overlaps chunk I/O with analyzer compute)."""
    from repro.core.parallel import analyze_trace
    from repro.obs import MetricsRegistry

    path = ctx.parallel_trace_path
    expected = ctx.profile.parallel_chunks * ctx.profile.parallel_records_per_chunk
    return Workload(
        run=lambda: analyze_trace(
            path, workers=1, analyzers=("opdist",), registry=MetricsRegistry()
        )["opdist"].total_ops,
        ops=expected,
        check=lambda total: _expect(total, expected),
    )


@benchmark(group="pipeline")
def phased_serial(ctx: BenchContext) -> Workload:
    """Read-then-analyze phases with no I/O/compute overlap — the
    pipelining baseline the prefetch path is measured against."""
    from repro.core.parallel import analyze_chunks
    from repro.core.trace import open_trace_chunks

    path = ctx.parallel_trace_path
    expected = ctx.profile.parallel_chunks * ctx.profile.parallel_records_per_chunk

    def run():
        chunks = list(open_trace_chunks(path))
        return analyze_chunks(chunks, analyzers=("opdist",))["opdist"].total_ops

    return Workload(
        run=run, ops=expected, check=lambda total: _expect(total, expected)
    )


# ---------------------------------------------------------------------------
# replay engine (from benchmarks/test_replay_throughput.py)
# ---------------------------------------------------------------------------


def _replay_workload(ctx: BenchContext, backend: str, workers: int) -> Workload:
    """Closed-loop replay of the synthetic replay trace.

    Serial runs use the inline executor; sharded runs use the process
    executor (thread sharding is the pacing/backpressure mode, not a
    throughput mode under the GIL).  Fingerprinting is disabled so the
    timed region is the replay itself; latency is sampled 1-in-64 to
    keep the observation overhead out of the measured kernel.
    """
    from repro.obs import MetricsRegistry
    from repro.replay import ReplayConfig, replay_trace

    path = ctx.replay_trace_path
    expected = ctx.profile.replay_records
    config = ReplayConfig(
        backend=backend,
        workers=workers,
        executor="process" if workers > 1 else "thread",
        fingerprint=False,
        latency_sample=64,
    )
    return Workload(
        run=lambda: replay_trace(
            path, config, registry=MetricsRegistry()
        ).total_records,
        ops=expected,
        check=lambda total: _expect(total, expected),
    )


@benchmark(group="replay")
def replay_serial_memdb(ctx: BenchContext) -> Workload:
    """Serial inline replay on memdb (the sharding baseline)."""
    return _replay_workload(ctx, "memdb", workers=1)


@benchmark(group="replay")
def replay_workers2_memdb(ctx: BenchContext) -> Workload:
    """Process-sharded replay on memdb, 2 workers."""
    return _replay_workload(ctx, "memdb", workers=2)


@benchmark(group="replay")
def replay_workers4_memdb(ctx: BenchContext) -> Workload:
    """Process-sharded replay on memdb, 4 workers."""
    return _replay_workload(ctx, "memdb", workers=4)


@benchmark(group="replay")
def replay_serial_lsm(ctx: BenchContext) -> Workload:
    """Serial inline replay on the LSM simulator."""
    return _replay_workload(ctx, "lsm", workers=1)


@benchmark(group="replay")
def replay_workers4_lsm(ctx: BenchContext) -> Workload:
    """Process-sharded replay on the LSM simulator, 4 workers."""
    return _replay_workload(ctx, "lsm", workers=4)


# ---------------------------------------------------------------------------
# §V ablation kernels (from benchmarks/test_ablation_*.py)
# ---------------------------------------------------------------------------


@benchmark(group="ablation")
def ablation_hybrid_store(ctx: BenchContext) -> Workload:
    """Replay the BareTrace stream into the paper's hybrid KV design."""
    from repro.hybrid import HybridKVStore
    from repro.kvstore.lsm import LSMConfig

    lsm_config = LSMConfig(
        memtable_bytes=64 * 1024, l0_compaction_trigger=4, level_base_bytes=256 * 1024
    )
    records = ctx.bare_records
    return Workload(
        run=lambda: len(replay_store(HybridKVStore(lsm_config=lsm_config), records)),
        ops=len(records),
        check=lambda live: _expect_at_least(live, 1),
    )


@benchmark(group="ablation")
def ablation_correlation_cache(ctx: BenchContext) -> Workload:
    """Correlation-aware cache replay over the BareTrace read stream."""
    from repro.cachesim import (
        CacheSimulator,
        CorrelationAwareCache,
        CorrelationTable,
    )
    from repro.core.classes import WORLD_STATE_CLASSES, KVClass

    records = ctx.bare_records
    classes = set(WORLD_STATE_CLASSES) | {KVClass.CODE}
    cutoff = int(len(records) * TRAIN_FRACTION)
    table = CorrelationTable(window=4, max_partners=3)
    table.learn(world_state_reads(records[:cutoff]))

    def run():
        policy = CorrelationAwareCache(CACHE_CAPACITY, table)
        return CacheSimulator(policy).replay(records, classes=classes).reads

    return Workload(run=run, ops=len(records), check=lambda r: _expect_at_least(r, 1))


@benchmark(group="ablation")
def ablation_colocation(ctx: BenchContext) -> Workload:
    """Build + evaluate a correlation-clustered storage placement."""
    from repro.cachesim.correlation_cache import CorrelationTable
    from repro.hybrid import CorrelationLayout, LayoutEvaluator

    reads = world_state_reads(ctx.bare_records)
    cutoff = int(len(reads) * TRAIN_FRACTION)
    train, replay = reads[:cutoff], reads[cutoff:]

    def run():
        table = CorrelationTable(window=2, max_partners=4)
        table.learn(train)
        layout = CorrelationLayout(region_capacity=REGION_CAPACITY)
        layout.build(table, train, Counter(train))
        layout.place_remaining(reads)
        report = LayoutEvaluator().evaluate(
            "correlation-aware", replay, layout.region_of
        )
        return report.regions_used

    return Workload(run=run, ops=len(reads), check=lambda used: _expect_at_least(used, 1))


@benchmark(group="ablation", slow=True)
def ablation_path_vs_hash(ctx: BenchContext) -> Workload:
    """Full sync with the legacy hash scheme shadow-mirrored (slow)."""
    from repro.sync.driver import DBConfig, FullSyncDriver, SyncConfig
    from repro.workload.generator import WorkloadGenerator

    profile = ctx.profile

    def run():
        config = SyncConfig(
            db=DBConfig.bare_trace_config(),
            warmup_blocks=profile.warmup_blocks,
            mirror_hash_scheme=True,
        )
        driver = FullSyncDriver(
            config, WorkloadGenerator(ctx.workload_config), name="mirror"
        )
        result = driver.run(profile.blocks)
        return driver.hash_scheme_mirror.total_nodes + len(result.records)

    return Workload(run=run, check=lambda total: _expect_at_least(total, 1))


# ---------------------------------------------------------------------------
# check helpers
# ---------------------------------------------------------------------------


def _expect(actual, expected) -> None:
    if actual != expected:
        raise AssertionError(f"benchmark check failed: {actual!r} != {expected!r}")


def _expect_at_least(actual, floor) -> None:
    if actual < floor:
        raise AssertionError(f"benchmark check failed: {actual!r} < {floor!r}")


# ---------------------------------------------------------------------------
# migration engine (repro migrate)
# ---------------------------------------------------------------------------


def _migrate_source_pairs(profile) -> int:
    """Pairs in the synthetic migration source, scaled like replay_keys."""
    return profile.replay_keys


def _migrate_workload(ctx: BenchContext, backend_from: str, backend_to: str) -> Workload:
    """In-memory bulk migration throughput for one backend pair.

    The timed region is a whole engine run — ranged bulk copy, one
    quiesced catch-up round, and the paused cutover — against a
    deterministic source store, with verification off so the measured
    kernel is the data movement, not the sha256 pass.
    """
    from repro.migrate import MigrationConfig, MigrationEngine
    from repro.obs import MetricsRegistry
    from repro.replay.backends import make_store

    num_pairs = _migrate_source_pairs(ctx.profile)
    pairs = [
        (b"m" + i.to_bytes(4, "big"), (b"m" + i.to_bytes(4, "big")) * 9)
        for i in range(num_pairs)
    ]

    def run() -> int:
        source = make_store(backend_from)
        for key, value in pairs:
            source.put(key, value)
        engine = MigrationEngine(
            source,
            make_store(backend_to),
            MigrationConfig(
                backend_from=backend_from,
                backend_to=backend_to,
                range_pairs=2048,
                lag_threshold=0,
                verify=False,
            ),
            registry=MetricsRegistry(),
        )
        report = engine.run()
        if not report.completed:
            raise AssertionError("migration did not complete")
        return report.pairs_copied

    return Workload(
        run=run, ops=num_pairs, check=lambda copied: _expect(copied, num_pairs)
    )


@benchmark(group="migrate")
def migrate_bulk_memdb_to_lsm(ctx: BenchContext) -> Workload:
    """Bulk migration throughput: memdb source into the LSM simulator."""
    return _migrate_workload(ctx, "memdb", "lsm")


@benchmark(group="migrate")
def migrate_bulk_lsm_to_hybrid(ctx: BenchContext) -> Workload:
    """Bulk migration throughput: LSM source into the hybrid store."""
    return _migrate_workload(ctx, "lsm", "hybrid")


@benchmark(group="migrate")
def migrate_bulk_btree_to_hashlog(ctx: BenchContext) -> Workload:
    """Bulk migration throughput: B+tree source into the hash log."""
    return _migrate_workload(ctx, "btree", "hashlog")


@benchmark(group="migrate")
def migrate_cutover_verified(ctx: BenchContext) -> Workload:
    """Cutover cost: pause + final drain + three-level verify + flip.

    A small pre-copied store keeps the bulk phase trivial, so the
    measured time is dominated by what the workload actually blocks on
    during a live migration: the admission pause window.  The check
    reads the measured pause back out of the report.
    """
    from repro.migrate import MigrationConfig, MigrationEngine
    from repro.obs import MetricsRegistry
    from repro.replay.backends import make_store

    num_pairs = max(512, _migrate_source_pairs(ctx.profile) // 8)
    pairs = [
        (b"c" + i.to_bytes(4, "big"), (b"c" + i.to_bytes(4, "big")) * 5)
        for i in range(num_pairs)
    ]

    def run() -> float:
        source = make_store("memdb")
        for key, value in pairs:
            source.put(key, value)
        engine = MigrationEngine(
            source,
            make_store("memdb"),
            MigrationConfig(lag_threshold=0, verify=True),
            registry=MetricsRegistry(),
        )
        report = engine.run()
        if not (report.completed and report.verify is not None and report.verify.match):
            raise AssertionError("verified cutover did not complete cleanly")
        return report.cutover_pause_s

    return Workload(run=run, ops=1, check=lambda pause: _expect_at_least(pause, 0.0))


# ---------------------------------------------------------------------------
# beam sync
# ---------------------------------------------------------------------------


def _beamsync_workload(ctx: BenchContext, profiles: list[str]) -> Workload:
    """Beam-sync a block window from simulated peers over a cached pivot.

    The serving peer is built once per context; each timed run rebuilds
    the peer wrappers and the beam node, so what's measured is the
    fetch/heal/execute path itself (the peer network runs in virtual
    time — no real sleeps inflate the numbers).
    """
    from repro.peers import SchedulerConfig, build_peer_network
    from repro.sync.beamsync import BeamSyncConfig, BeamSyncDriver

    peer_node = ctx.beam_peer_node
    beam_blocks = max(2, ctx.profile.blocks // 5)

    def run() -> int:
        peers = build_peer_network(peer_node, profiles, seed=7)
        driver = BeamSyncDriver(
            workload_config=ctx.workload_config,
            beam_config=BeamSyncConfig(scheduler=SchedulerConfig(max_attempts=12)),
        )
        result = driver.sync_from(peers, beam_blocks=beam_blocks)
        return result.nodes_fetched

    return Workload(run=run, check=lambda fetched: _expect_at_least(fetched, 1))


@benchmark(group="beamsync")
def beamsync_healthy(ctx: BenchContext) -> Workload:
    """Beam sync from three healthy peers (the fast-path baseline)."""
    return _beamsync_workload(ctx, ["healthy", "healthy", "healthy"])


@benchmark(group="beamsync")
def beamsync_degraded(ctx: BenchContext) -> Workload:
    """Beam sync through a degraded network: one slow, one dropping peer."""
    return _beamsync_workload(ctx, ["healthy", "slow", "dropping"])
