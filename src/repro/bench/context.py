"""Shared benchmark fixtures at a named scale profile.

Mirrors ``benchmarks/conftest.py``: one full-sync trace pair (and the
columnar/parallel artifacts derived from it) is built lazily and cached
for the whole run, so every benchmark in a suite times its kernel over
identical inputs.  Three profiles trade fidelity for wall time:

* ``full`` — the calibrated pytest-benchmark scale (the paper-analog
  window the committed figures use);
* ``quick`` — the CI perf-gate scale: the same workload shape at ~1/5
  the block count, small enough to run on every PR;
* ``smoke`` — a seconds-long scale for the harness's own tests.

Baselines are only comparable within one profile; the result schema
records the profile and the comparator refuses cross-profile diffs.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

#: Distances used by the correlation benches (matches conftest.py).
DISTANCES = (0, 1, 4, 16, 64, 256, 1024)


@dataclass(frozen=True)
class BenchProfile:
    """One workload scale for the whole suite."""

    name: str
    blocks: int
    warmup_blocks: int
    accounts: int
    contracts: int
    txs_per_block: int
    cache_bytes: int
    #: synthetic multi-chunk trace shape for the parallel-scheduler benches
    parallel_chunks: int
    parallel_records_per_chunk: int
    parallel_keys_per_chunk: int
    #: synthetic replay workload shape for the replay-engine benches
    replay_records: int
    replay_keys: int


PROFILES: dict[str, BenchProfile] = {
    # benchmarks/conftest.py scale: ~150 measured blocks over a
    # pre-populated state — the paper-analog window.
    "full": BenchProfile(
        name="full",
        blocks=150,
        warmup_blocks=60,
        accounts=6000,
        contracts=700,
        txs_per_block=24,
        cache_bytes=256 * 1024,
        parallel_chunks=12,
        parallel_records_per_chunk=100_000,
        parallel_keys_per_chunk=30_000,
        replay_records=120_000,
        replay_keys=24_000,
    ),
    "quick": BenchProfile(
        name="quick",
        blocks=40,
        warmup_blocks=12,
        accounts=1200,
        contracts=150,
        txs_per_block=12,
        cache_bytes=128 * 1024,
        parallel_chunks=6,
        parallel_records_per_chunk=40_000,
        parallel_keys_per_chunk=12_000,
        replay_records=50_000,
        replay_keys=12_000,
    ),
    "smoke": BenchProfile(
        name="smoke",
        blocks=12,
        warmup_blocks=4,
        accounts=250,
        contracts=40,
        txs_per_block=6,
        cache_bytes=64 * 1024,
        parallel_chunks=3,
        parallel_records_per_chunk=5_000,
        parallel_keys_per_chunk=2_000,
        replay_records=6_000,
        replay_keys=1_500,
    ),
}

DEFAULT_PROFILE = "quick"


class BenchContext:
    """Lazily built, cached workload artifacts for one profile."""

    def __init__(
        self,
        profile: BenchProfile | str = DEFAULT_PROFILE,
        *,
        seed: int = 2024,
        tmpdir: Optional[Path] = None,
    ) -> None:
        if isinstance(profile, str):
            try:
                profile = PROFILES[profile]
            except KeyError:
                raise ValueError(
                    f"unknown profile {profile!r}; known: {', '.join(sorted(PROFILES))}"
                ) from None
        self.profile = profile
        self.seed = seed
        self._tmpdir = tmpdir
        self._tmpdir_handle: Optional[tempfile.TemporaryDirectory] = None
        self._cache: dict[str, object] = {}

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    @property
    def tmpdir(self) -> Path:
        if self._tmpdir is None:
            self._tmpdir_handle = tempfile.TemporaryDirectory(prefix="repro-bench-")
            self._tmpdir = Path(self._tmpdir_handle.name)
        return self._tmpdir

    def close(self) -> None:
        if self._tmpdir_handle is not None:
            self._tmpdir_handle.cleanup()
            self._tmpdir_handle = None
            self._tmpdir = None
        self._cache.clear()

    def __enter__(self) -> "BenchContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _cached(self, key: str, build):
        value = self._cache.get(key)
        if value is None:
            value = self._cache[key] = build()
        return value

    def preload(self, key: str, value: object) -> None:
        """Seed a cached artifact (``trace_pair``, ``columnar_trace``,
        ``parallel_trace_path``) built elsewhere — e.g. the pytest
        session fixtures in ``benchmarks/conftest.py`` hand their trace
        pair to a context so nothing is synthesized twice."""
        self._cache[key] = value

    # ------------------------------------------------------------------
    # workload artifacts
    # ------------------------------------------------------------------

    @property
    def workload_config(self):
        from repro.workload.generator import WorkloadConfig

        return WorkloadConfig(
            seed=self.seed,
            initial_eoa_accounts=self.profile.accounts,
            initial_contracts=self.profile.contracts,
            txs_per_block=self.profile.txs_per_block,
        )

    @property
    def trace_pair(self):
        """(cache_result, bare_result) — one sync per capture mode."""

        def build():
            from repro.sync.driver import run_trace_pair

            return run_trace_pair(
                self.workload_config,
                num_blocks=self.profile.blocks,
                warmup_blocks=self.profile.warmup_blocks,
                cache_bytes=self.profile.cache_bytes,
            )

        return self._cached("trace_pair", build)

    @property
    def cache_records(self):
        return self.trace_pair[0].records

    @property
    def bare_records(self):
        return self.trace_pair[1].records

    @property
    def beam_peer_node(self):
        """A bare full node synced to the beam pivot (the serving peer).

        Built once per context; the beamsync benches re-sync from it on
        every timed run, so peer construction stays out of the loop.
        """

        def build():
            from repro.gethdb.database import DBConfig
            from repro.sync.driver import FullSyncDriver, SyncConfig
            from repro.workload.generator import WorkloadGenerator

            driver = FullSyncDriver(
                SyncConfig(
                    db=DBConfig.bare_trace_config(),
                    warmup_blocks=self.profile.warmup_blocks,
                ),
                WorkloadGenerator(self.workload_config),
                name="bench-beam-peer",
            )
            driver.run(0)
            return driver

        return self._cached("beam_peer_node", build)

    @property
    def columnar_trace(self):
        def build():
            from repro.core.columnar import ColumnarTrace

            return ColumnarTrace.from_records(self.bare_records)

        return self._cached("columnar_trace", build)

    @property
    def parallel_trace_path(self) -> Path:
        """A synthetic multi-chunk v2 trace for scheduler scaling benches."""

        def build():
            import numpy as np

            from repro.core.columnar import TraceChunk
            from repro.core.trace import ColumnarTraceWriter

            profile = self.profile
            rng = np.random.default_rng(7)
            prefixes = np.frombuffer(b"AOaohlcB", dtype=np.uint8)
            path = self.tmpdir / "parallel.v2"
            with ColumnarTraceWriter.open(path) as writer:
                for chunk_index in range(profile.parallel_chunks):
                    num_keys = profile.parallel_keys_per_chunk
                    num_records = profile.parallel_records_per_chunk
                    blob = rng.integers(0, 256, size=num_keys * 7, dtype=np.uint8)
                    blob[::7] = prefixes[rng.integers(0, len(prefixes), num_keys)]
                    raw = blob.tobytes()
                    keys = [raw[i : i + 7] for i in range(0, len(raw), 7)]
                    writer.write_chunk(
                        TraceChunk(
                            ops=rng.integers(0, 5, num_records, dtype=np.uint8),
                            value_sizes=rng.integers(
                                0, 2048, num_records, dtype=np.uint32
                            ),
                            blocks=np.full(num_records, chunk_index, dtype=np.uint32),
                            key_ids=rng.integers(0, num_keys, num_records, dtype=np.uint32),
                            keys=keys,
                        )
                    )
            return path

        return self._cached("parallel_trace_path", build)

    @property
    def replay_trace_path(self) -> Path:
        """A synthetic v2 trace with a realistic op mix for the
        replay-engine benches (read-heavy, write-significant, a few
        deletes and scans — the paper's Table II shape, loosely)."""

        def build():
            import numpy as np

            from repro.core.columnar import TraceChunk
            from repro.core.trace import ColumnarTraceWriter

            profile = self.profile
            rng = np.random.default_rng(11)
            prefixes = np.frombuffer(b"AOaohlcB", dtype=np.uint8)
            num_keys = profile.replay_keys
            blob = rng.integers(0, 256, size=num_keys * 9, dtype=np.uint8)
            blob[::9] = prefixes[rng.integers(0, len(prefixes), num_keys)]
            raw = blob.tobytes()
            pool = [raw[i : i + 9] for i in range(0, len(raw), 9)]
            op_weights = (0.20, 0.25, 0.45, 0.08, 0.02)
            path = self.tmpdir / "replay.v2"
            chunk_records = 16_384
            remaining = profile.replay_records
            with ColumnarTraceWriter.open(path) as writer:
                block = 0
                while remaining > 0:
                    n = min(chunk_records, remaining)
                    remaining -= n
                    pool_ids = rng.integers(0, num_keys, n, dtype=np.uint32)
                    unique_ids, key_ids = np.unique(pool_ids, return_inverse=True)
                    writer.write_chunk(
                        TraceChunk(
                            ops=rng.choice(
                                5, size=n, p=op_weights
                            ).astype(np.uint8),
                            value_sizes=rng.integers(16, 1024, n, dtype=np.uint32),
                            blocks=np.full(n, block, dtype=np.uint32),
                            key_ids=key_ids.astype(np.uint32),
                            keys=[pool[i] for i in unique_ids.tolist()],
                        )
                    )
                    block += 1
            return path

        return self._cached("replay_trace_path", build)
