"""Benchmark registry: named, grouped, discoverable workloads.

A benchmark is a *setup function* decorated with :func:`benchmark`.
Setup receives a :class:`~repro.bench.context.BenchContext` (shared,
lazily built workload artifacts at one scale profile) and returns a
:class:`Workload` — the zero-argument closure the runner times, plus
optional metadata (logical ops per call for records/s rates, a
correctness check run once before timing).

Keeping setup separate from the timed closure mirrors the
pytest-benchmark split the repo's ``benchmarks/test_*.py`` files
already use: trace synthesis and columnar conversion happen once per
context, only the kernel under test is measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Callable, Optional

from repro.bench.context import BenchContext


@dataclass(frozen=True)
class Workload:
    """One ready-to-time benchmark instance."""

    #: the closure the runner times; its return value feeds ``check``
    run: Callable[[], object]
    #: logical operations per ``run()`` call (enables records/s rates)
    ops: Optional[int] = None
    #: validated once against ``run()``'s result before any timing
    check: Optional[Callable[[object], None]] = None


SetupFn = Callable[[BenchContext], Workload]


@dataclass(frozen=True)
class BenchmarkSpec:
    """A registered benchmark: its setup function plus metadata."""

    name: str
    setup: SetupFn
    group: str = "default"
    #: slow specs are skipped unless the runner opts in (--include-slow)
    slow: bool = False
    doc: str = ""


class BenchmarkRegistry:
    """Ordered name → :class:`BenchmarkSpec` table."""

    def __init__(self) -> None:
        self._specs: dict[str, BenchmarkSpec] = {}

    def register(self, spec: BenchmarkSpec) -> BenchmarkSpec:
        if spec.name in self._specs:
            raise ValueError(f"benchmark {spec.name!r} already registered")
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> BenchmarkSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise KeyError(
                f"unknown benchmark {name!r}; known: {', '.join(sorted(self._specs))}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._specs)

    def select(
        self,
        pattern: Optional[str] = None,
        *,
        include_slow: bool = False,
    ) -> list[BenchmarkSpec]:
        """Specs sorted by (group, name), optionally glob-filtered.

        ``pattern`` matches the bare name or ``group/name`` with
        :func:`fnmatch.fnmatchcase` semantics; a plain substring (no
        glob metacharacters) is treated as ``*substring*``.
        """
        if pattern and not any(ch in pattern for ch in "*?["):
            pattern = f"*{pattern}*"
        selected = []
        for spec in sorted(self._specs.values(), key=lambda s: (s.group, s.name)):
            if spec.slow and not include_slow:
                continue
            if pattern and not (
                fnmatchcase(spec.name, pattern)
                or fnmatchcase(f"{spec.group}/{spec.name}", pattern)
            ):
                continue
            selected.append(spec)
        return selected

    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs


#: The process-wide registry the ``@benchmark`` decorator fills and the
#: CLI discovers from (populated by importing :mod:`repro.bench.suite`).
DEFAULT_REGISTRY = BenchmarkRegistry()


def benchmark(
    name: Optional[str] = None,
    *,
    group: str = "default",
    slow: bool = False,
    registry: Optional[BenchmarkRegistry] = None,
) -> Callable[[SetupFn], SetupFn]:
    """Register a setup function as a benchmark.

    ::

        @benchmark(group="analyzer")
        def opdist_columnar(ctx):
            trace = ctx.columnar_trace
            return Workload(
                run=lambda: OpDistAnalyzer().consume_chunks(trace.chunks),
                ops=len(trace),
            )
    """

    def decorate(setup: SetupFn) -> SetupFn:
        spec = BenchmarkSpec(
            name=name or setup.__name__,
            setup=setup,
            group=group,
            slow=slow,
            doc=(setup.__doc__ or "").strip().splitlines()[0]
            if setup.__doc__
            else "",
        )
        (registry if registry is not None else DEFAULT_REGISTRY).register(spec)
        return setup

    return decorate
