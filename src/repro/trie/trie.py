"""The path-addressed Merkle Patricia Trie.

Nodes are addressed by their *absolute nibble path from the root*, the
defining property of Geth's path-based storage model: one live node per
path, no duplicate hash-keyed entries, and structural updates delete or
overwrite the small set of paths they touch.

A key fact that makes path addressing work: when an insert splits a
leaf/extension, or a delete collapses a branch, the absolute paths of
*descendant* nodes never change — only nodes on the touched path are
created, rewritten, or deleted.  The implementation below leans on this
invariant throughout.

Backing storage is abstracted behind :class:`NodeBackend`.  Reads during
key lookup/update go through ``get`` (traced — these are the paper's
TrieNode reads); commit-time hashing of *clean* children uses ``peek``
(untraced — in Geth these hits come from the in-memory node set, not
the database).
"""

from __future__ import annotations

import abc
import hashlib
from typing import Iterator, Optional

from repro.errors import TrieError
from repro.trie.nibbles import Nibbles, common_prefix_length
from repro.trie.nodes import (
    BranchNode,
    ExtensionNode,
    LeafNode,
    Node,
    decode_node,
    encode_node,
)


def node_hash(encoded: bytes) -> bytes:
    """32-byte digest of an encoded node (sha3-256 standing in for Keccak)."""
    return hashlib.sha3_256(encoded).digest()


#: Root hash of the empty trie.
EMPTY_ROOT = node_hash(b"\x80")  # rlp.encode(b"")


class NodeBackend(abc.ABC):
    """Storage seam between a trie and the KV layer."""

    @abc.abstractmethod
    def get(self, path: Nibbles) -> Optional[bytes]:
        """Read a node blob by path (traced: a TrieNode* read)."""

    @abc.abstractmethod
    def peek(self, path: Nibbles) -> Optional[bytes]:
        """Read a node blob without tracing (commit-time hashing only)."""

    @abc.abstractmethod
    def put(self, path: Nibbles, blob: bytes) -> None:
        """Stage a node write (flushed with the enclosing block batch)."""

    @abc.abstractmethod
    def delete(self, path: Nibbles) -> None:
        """Stage a node deletion."""


class _Deleted:
    """Sentinel marking a dirty-deleted path."""


_DELETED = _Deleted()


class PathTrie:
    """MPT with path-based node storage.

    Mutations accumulate in a dirty overlay; :meth:`commit` encodes and
    flushes dirty nodes to the backend, recomputes hashes bottom-up,
    and returns the new root hash.  Between commits, lookups see the
    overlay first, so intra-block reads of freshly written nodes do not
    touch the database — matching Geth's behaviour of flushing trie
    changes once per block.
    """

    def __init__(self, backend: NodeBackend, sparse: bool = False) -> None:
        self._backend = backend
        # A sparse trie is partially populated (beam sync): locally
        # absent children are untouched remote subtrees, so commit-time
        # hashing may fall back to the hash stored in the parent node
        # instead of peeking the child blob.
        self._sparse = sparse
        # path -> Node (dirty) or _DELETED
        self._dirty: dict[Nibbles, object] = {}
        # path -> node hash, maintained across commits (structural cache)
        self._hash_cache: dict[Nibbles, bytes] = {}
        # Nodes resolved from the backend since the last commit.  Geth
        # keeps resolved nodes in the trie object for the lifetime of a
        # block, so a node is read from the database at most once per
        # block; re-resolutions are memory hits.  Cleared at commit.
        self._clean: dict[Nibbles, Node] = {}
        #: nodes resolved by the most recent get() (lookup cost)
        self.last_lookup_depth = 0

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------

    def _resolve(self, path: Nibbles) -> Optional[Node]:
        entry = self._dirty.get(path)
        if entry is _DELETED:
            return None
        if entry is not None:
            return entry  # type: ignore[return-value]
        cached = self._clean.get(path)
        if cached is not None:
            return cached
        blob = self._backend.get(path)
        if blob is None:
            return None
        node = decode_node(blob)
        self._clean[path] = node
        return node

    def _resolve_untraced(self, path: Nibbles) -> Optional[Node]:
        entry = self._dirty.get(path)
        if entry is _DELETED:
            return None
        if entry is not None:
            return entry  # type: ignore[return-value]
        blob = self._backend.peek(path)
        if blob is None:
            return None
        return decode_node(blob)

    def _stage(self, path: Nibbles, node: Node) -> None:
        self._dirty[path] = node

    def _stage_delete(self, path: Nibbles) -> None:
        self._dirty[path] = _DELETED

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def get(self, key: Nibbles) -> Optional[bytes]:
        """Return the value stored under ``key`` or None.

        Sets :attr:`last_lookup_depth` to the number of nodes resolved —
        the per-lookup request count the paper's snapshot-acceleration
        discussion is about ("up to 64 requests per lookup").
        """
        path: Nibbles = ()
        remaining = key
        depth = 0
        while True:
            depth += 1
            self.last_lookup_depth = depth
            node = self._resolve(path)
            if node is None:
                return None
            if isinstance(node, LeafNode):
                return node.value if node.suffix == remaining else None
            if isinstance(node, ExtensionNode):
                n = len(node.suffix)
                if remaining[:n] != node.suffix:
                    return None
                path = path + node.suffix
                remaining = remaining[n:]
                continue
            # branch
            if not remaining:
                return node.value
            nibble = remaining[0]
            if not node.children[nibble]:
                return None
            path = path + (nibble,)
            remaining = remaining[1:]

    def __contains__(self, key: Nibbles) -> bool:
        return self.get(key) is not None

    # ------------------------------------------------------------------
    # insert / update
    # ------------------------------------------------------------------

    def update(self, key: Nibbles, value: bytes) -> None:
        """Insert or overwrite ``key`` with ``value`` (must be non-empty)."""
        if not value:
            raise TrieError("empty values are not storable; use delete()")
        self._insert((), key, value)

    def _insert(self, path: Nibbles, remaining: Nibbles, value: bytes) -> None:
        node = self._resolve(path)
        if node is None:
            self._stage(path, LeafNode(suffix=remaining, value=value))
            return
        if isinstance(node, LeafNode):
            if node.suffix == remaining:
                self._stage(path, LeafNode(suffix=remaining, value=value))
                return
            self._split(path, node, remaining, value)
            return
        if isinstance(node, ExtensionNode):
            n = len(node.suffix)
            if remaining[:n] == node.suffix:
                # Restage so commit re-encodes us with the child's new hash.
                self._stage(path, ExtensionNode(suffix=node.suffix))
                self._insert(path + node.suffix, remaining[n:], value)
                return
            self._split(path, node, remaining, value)
            return
        # branch
        branch = node
        if not remaining:
            self._stage(
                path,
                BranchNode(
                    children=list(branch.children),
                    value=value,
                    child_hashes=list(branch.child_hashes),
                ),
            )
            return
        nibble = remaining[0]
        had_child = branch.children[nibble]
        if not had_child:
            new_children = list(branch.children)
            new_children[nibble] = True
            self._stage(
                path,
                BranchNode(
                    children=new_children,
                    value=branch.value,
                    child_hashes=list(branch.child_hashes),
                ),
            )
        else:
            # child hash will change; restage so commit re-encodes us
            self._stage(
                path,
                BranchNode(
                    children=list(branch.children),
                    value=branch.value,
                    child_hashes=list(branch.child_hashes),
                ),
            )
        self._insert(path + (nibble,), remaining[1:], value)

    def _split(
        self, path: Nibbles, old: Node, remaining: Nibbles, value: bytes
    ) -> None:
        """Split a leaf/extension whose suffix diverges from ``remaining``."""
        assert isinstance(old, (LeafNode, ExtensionNode))
        common = common_prefix_length(old.suffix, remaining)
        branch_path = path + remaining[:common]
        branch = BranchNode()

        # Re-root the old node under the branch.  Its descendants keep
        # their absolute paths; only the node at `path` is rewritten.
        old_rest = old.suffix[common:]
        if isinstance(old, LeafNode):
            if not old_rest:
                branch.value = old.value
            else:
                nib = old_rest[0]
                branch.children[nib] = True
                self._stage(
                    branch_path + (nib,),
                    LeafNode(suffix=old_rest[1:], value=old.value),
                )
        else:  # extension
            if not old_rest:
                # common == suffix would have been handled as descend;
                # an extension's suffix is never empty.
                raise TrieError("extension suffix fully matched in split")
            nib = old_rest[0]
            branch.children[nib] = True
            if len(old_rest) == 1:
                # The extension collapses away: its child (a branch) sits
                # exactly at branch_path + (nib,) already.  Keep its known
                # hash so a sparse commit need not resolve the child.
                branch.child_hashes[nib] = old.child_hash
            else:
                self._stage(
                    branch_path + (nib,),
                    ExtensionNode(suffix=old_rest[1:], child_hash=old.child_hash),
                )

        # Place the new value.
        new_rest = remaining[common:]
        if not new_rest:
            branch.value = value
        else:
            nib = new_rest[0]
            branch.children[nib] = True
            self._stage(branch_path + (nib,), LeafNode(suffix=new_rest[1:], value=value))

        self._stage(branch_path, branch)
        if common > 0:
            self._stage(path, ExtensionNode(suffix=remaining[:common]))
        elif branch_path != path:
            raise TrieError("zero common prefix must place branch at the node path")

    # ------------------------------------------------------------------
    # delete
    # ------------------------------------------------------------------

    def delete(self, key: Nibbles) -> bool:
        """Remove ``key``; returns True when the key existed."""
        result = self._delete((), key)
        return result is not None

    def _delete(self, path: Nibbles, remaining: Nibbles) -> Optional[bool]:
        """Delete under the node at ``path``.

        Returns None when the key was absent, otherwise True.  After the
        recursive step, the node at ``path`` has been restaged, deleted,
        or collapsed as required.
        """
        node = self._resolve(path)
        if node is None:
            return None
        if isinstance(node, LeafNode):
            if node.suffix != remaining:
                return None
            self._stage_delete(path)
            return True
        if isinstance(node, ExtensionNode):
            n = len(node.suffix)
            if remaining[:n] != node.suffix:
                return None
            child_path = path + node.suffix
            result = self._delete(child_path, remaining[n:])
            if result is None:
                return None
            self._absorb_extension_child(path, node, child_path)
            return True
        # branch
        branch = node
        if not remaining:
            if branch.value is None:
                return None
            branch = BranchNode(
                children=list(branch.children),
                value=None,
                child_hashes=list(branch.child_hashes),
            )
            self._stage(path, branch)
        else:
            nibble = remaining[0]
            if not branch.children[nibble]:
                return None
            child_path = path + (nibble,)
            result = self._delete(child_path, remaining[1:])
            if result is None:
                return None
            branch = BranchNode(
                children=list(branch.children),
                value=branch.value,
                child_hashes=list(branch.child_hashes),
            )
            if self._resolve(child_path) is None:
                branch.children[nibble] = False
                branch.child_hashes[nibble] = b""
            self._stage(path, branch)
        self._collapse_branch(path, branch)
        return True

    def _absorb_extension_child(
        self, path: Nibbles, ext: ExtensionNode, child_path: Nibbles
    ) -> None:
        """After a delete below an extension, merge with a shrunken child.

        The child (previously a branch) may have collapsed into a leaf,
        an extension, or vanished; fold it into the extension so no
        extension ever points at a non-branch node.
        """
        child = self._resolve(child_path)
        if child is None:
            self._stage_delete(path)
            return
        if isinstance(child, BranchNode):
            self._stage(path, ExtensionNode(suffix=ext.suffix))
            return
        if isinstance(child, LeafNode):
            merged: Node = LeafNode(suffix=ext.suffix + child.suffix, value=child.value)
        else:
            merged = ExtensionNode(
                suffix=ext.suffix + child.suffix, child_hash=child.child_hash
            )
        self._stage(path, merged)
        self._stage_delete(child_path)

    def _collapse_branch(self, path: Nibbles, branch: BranchNode) -> None:
        """Collapse a branch left with <= 1 child after a delete."""
        count = branch.child_count()
        if count == 0:
            if branch.value is None:
                self._stage_delete(path)
            else:
                self._stage(path, LeafNode(suffix=(), value=branch.value))
            return
        if count > 1 or branch.value is not None:
            return
        nibble = branch.sole_child_nibble()
        child_path = path + (nibble,)
        child = self._resolve(child_path)
        if child is None:
            raise TrieError(f"branch child missing at {child_path}")
        if isinstance(child, LeafNode):
            merged: Node = LeafNode(suffix=(nibble,) + child.suffix, value=child.value)
            self._stage_delete(child_path)
        elif isinstance(child, ExtensionNode):
            merged = ExtensionNode(
                suffix=(nibble,) + child.suffix, child_hash=child.child_hash
            )
            self._stage_delete(child_path)
        else:
            merged = ExtensionNode(suffix=(nibble,))
        self._stage(path, merged)

    # ------------------------------------------------------------------
    # commit
    # ------------------------------------------------------------------

    def commit(self) -> bytes:
        """Flush dirty nodes to the backend and return the new root hash.

        Hashing proceeds bottom-up (deepest dirty path first) so child
        hashes are final before their parents are encoded.  Clean-child
        hashes come from the structural hash cache or an untraced peek.
        """
        if not self._dirty:
            return self.root_hash()

        for path in sorted(self._dirty, key=len, reverse=True):
            entry = self._dirty[path]
            if entry is _DELETED:
                self._backend.delete(path)
                self._hash_cache.pop(path, None)
                continue
            node: Node = entry  # type: ignore[assignment]
            self._fill_child_hashes(path, node)
            encoded = encode_node(node)
            self._backend.put(path, encoded)
            self._hash_cache[path] = node_hash(encoded)
        self._dirty.clear()
        self._clean.clear()
        return self.root_hash()

    def _fill_child_hashes(self, path: Nibbles, node: Node) -> None:
        if isinstance(node, LeafNode):
            return
        if isinstance(node, ExtensionNode):
            node.child_hash = self._hash_of(path + node.suffix, node.child_hash)
            return
        for i in range(16):
            if node.children[i]:
                node.child_hashes[i] = self._hash_of(path + (i,), node.child_hashes[i])
            else:
                node.child_hashes[i] = b""

    def _hash_of(self, path: Nibbles, stored: bytes = b"") -> bytes:
        cached = self._hash_cache.get(path)
        if cached is not None:
            return cached
        entry = self._dirty.get(path)
        if entry is not None and entry is not _DELETED:
            # A dirty child deeper than us would already be hashed by the
            # bottom-up ordering; reaching here means ordering broke.
            raise TrieError(f"dirty child {path} not yet hashed")
        blob = self._backend.peek(path)
        if blob is None:
            if self._sparse and stored:
                # Locally absent child of a sparse trie: an untouched
                # remote subtree.  Its stored hash is still authoritative
                # because descendant paths never change, so any local
                # mutation below it would have made this child dirty.
                return stored
            raise TrieError(f"missing child node at path {path}")
        digest = node_hash(blob)
        self._hash_cache[path] = digest
        return digest

    def root_hash(self) -> bytes:
        """Hash of the root node (EMPTY_ROOT for an empty trie)."""
        if self._dirty:
            raise TrieError("commit() before reading the root hash")
        root = self._hash_cache.get(())
        if root is not None:
            return root
        blob = self._backend.peek(())
        if blob is None:
            return EMPTY_ROOT
        digest = node_hash(blob)
        self._hash_cache[()] = digest
        return digest

    # ------------------------------------------------------------------
    # iteration (test/diagnostic support)
    # ------------------------------------------------------------------

    def items(self) -> Iterator[tuple[Nibbles, bytes]]:
        """Iterate ``(key, value)`` pairs in key order (untraced reads)."""
        yield from self._iter_node((), ())

    def _iter_node(self, path: Nibbles, key_prefix: Nibbles) -> Iterator[tuple[Nibbles, bytes]]:
        node = self._resolve_untraced(path)
        if node is None:
            return
        if isinstance(node, LeafNode):
            yield key_prefix + node.suffix, node.value
            return
        if isinstance(node, ExtensionNode):
            yield from self._iter_node(path + node.suffix, key_prefix + node.suffix)
            return
        if node.value is not None:
            yield key_prefix, node.value
        for i in range(16):
            if node.children[i]:
                yield from self._iter_node(path + (i,), key_prefix + (i,))
