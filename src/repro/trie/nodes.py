"""Trie node types and their RLP codecs.

Three node kinds, per the Yellow Paper:

* **Leaf** — ``[hp(suffix, leaf=True), value]``: terminates a key.
* **Extension** — ``[hp(suffix, leaf=False), child_hash]``: a shared
  path segment leading to exactly one child (always a branch here).
* **Branch** — ``[c0..c15, value]``: a 16-way fan-out; each ``ci`` is
  the child's 32-byte hash or empty, and ``value`` terminates a key
  that ends exactly at this node.

In the path-based storage model, children are *resolved* by path, but
nodes still embed child hashes so that (a) stored node sizes match the
real format and (b) the root hash authenticates the whole trie.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro import rlp
from repro.errors import TrieError
from repro.trie.nibbles import Nibbles, compact_decode, compact_encode

EMPTY_HASH_SLOT = b""


@dataclass
class LeafNode:
    """Terminates a key; ``suffix`` is the remaining path below the node."""

    suffix: Nibbles
    value: bytes


@dataclass
class ExtensionNode:
    """A shared path segment; its single child lives at ``path + suffix``."""

    suffix: Nibbles
    child_hash: bytes = EMPTY_HASH_SLOT


@dataclass
class BranchNode:
    """16-way fan-out; ``children[i]`` truthy means a child exists at nibble i."""

    children: list[bool] = field(default_factory=lambda: [False] * 16)
    value: Optional[bytes] = None
    child_hashes: list[bytes] = field(default_factory=lambda: [EMPTY_HASH_SLOT] * 16)

    def child_count(self) -> int:
        return sum(self.children)

    def sole_child_nibble(self) -> int:
        """Index of the single remaining child (call only when count == 1)."""
        for i, present in enumerate(self.children):
            if present:
                return i
        raise TrieError("branch has no children")


Node = Union[LeafNode, ExtensionNode, BranchNode]


def encode_node(node: Node) -> bytes:
    """RLP-encode a node for storage."""
    if isinstance(node, LeafNode):
        return rlp.encode([compact_encode(node.suffix, True), node.value])
    if isinstance(node, ExtensionNode):
        return rlp.encode([compact_encode(node.suffix, False), node.child_hash])
    if isinstance(node, BranchNode):
        slots: list[bytes] = []
        for i in range(16):
            slots.append(node.child_hashes[i] if node.children[i] else EMPTY_HASH_SLOT)
        slots.append(node.value if node.value is not None else b"")
        return rlp.encode(slots)
    raise TrieError(f"unknown node type: {type(node).__name__}")


def decode_node(blob: bytes) -> Node:
    """Decode a stored node blob back into a node object."""
    items = rlp.decode(blob)
    if not isinstance(items, list):
        raise TrieError("node blob is not an RLP list")
    if len(items) == 2:
        path_blob, payload = items
        if not isinstance(path_blob, bytes) or not isinstance(payload, bytes):
            raise TrieError("two-item node fields must be byte strings")
        suffix, is_leaf = compact_decode(path_blob)
        if is_leaf:
            return LeafNode(suffix=suffix, value=payload)
        return ExtensionNode(suffix=suffix, child_hash=payload)
    if len(items) == 17:
        children = []
        child_hashes = []
        for slot in items[:16]:
            if not isinstance(slot, bytes):
                raise TrieError("branch child slot must be a byte string")
            children.append(len(slot) > 0)
            child_hashes.append(slot)
        value_slot = items[16]
        if not isinstance(value_slot, bytes):
            raise TrieError("branch value slot must be a byte string")
        value = value_slot if value_slot else None
        return BranchNode(children=children, value=value, child_hashes=child_hashes)
    raise TrieError(f"node list has {len(items)} items; expected 2 or 17")
