"""Merkle Patricia Trie (MPT) with path-based storage.

Ethereum's world state lives in MPTs: a single *account trie* maps
hashed addresses to RLP-encoded accounts, and each contract has a
*storage trie* mapping hashed slot keys to values.  Geth's modern
path-based storage model keys each trie node by its traversal path
(``A`` + compact path for account nodes, ``O`` + account hash + compact
path for storage nodes), which is what gives the paper's
TrieNodeAccount / TrieNodeStorage classes their key shapes.

This package implements:

* nibble-path utilities and hex-prefix (compact) encoding
  (:mod:`repro.trie.nibbles`);
* trie node types and their RLP codecs (:mod:`repro.trie.nodes`);
* the path-addressed MPT with full insert/lookup/delete restructuring
  and bottom-up commit hashing (:mod:`repro.trie.trie`).
"""

from repro.trie.nibbles import (
    bytes_to_nibbles,
    compact_decode,
    compact_encode,
    nibbles_to_bytes,
)
from repro.trie.nodes import BranchNode, ExtensionNode, LeafNode, decode_node, encode_node
from repro.trie.proof import Proof, generate_proof, verify_proof
from repro.trie.trie import NodeBackend, PathTrie

__all__ = [
    "Proof",
    "generate_proof",
    "verify_proof",
    "bytes_to_nibbles",
    "nibbles_to_bytes",
    "compact_encode",
    "compact_decode",
    "LeafNode",
    "ExtensionNode",
    "BranchNode",
    "encode_node",
    "decode_node",
    "PathTrie",
    "NodeBackend",
]
