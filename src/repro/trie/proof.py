"""Merkle proofs over the path trie.

The paper's background (§II-A) calls out proof generation as one of the
MPT's deep-traversal costs.  This module implements both sides:

* :func:`generate_proof` — walk the trie for a key and collect the
  RLP-encoded nodes along the path (the classic ``eth_getProof`` node
  list);
* :func:`verify_proof` — check a proof against a state root *without
  any trie access*: each node must hash-link to its parent, and the
  walk must terminate in the claimed value (inclusion) or in a
  demonstrable dead end (exclusion).

Proof node counting also quantifies the traversal depth the snapshot
layer short-circuits ("up to 64 requests per lookup" before snapshot
acceleration, per the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import TrieError
from repro.trie.nibbles import Nibbles
from repro.trie.nodes import ExtensionNode, LeafNode, decode_node, encode_node
from repro.trie.trie import EMPTY_ROOT, PathTrie, node_hash


@dataclass(frozen=True)
class Proof:
    """A Merkle proof: the node blobs from the root toward the key."""

    key: Nibbles
    #: RLP-encoded nodes, root first
    nodes: tuple[bytes, ...]
    #: the proven value, or None for an exclusion proof
    value: Optional[bytes]

    @property
    def depth(self) -> int:
        """Traversal depth — the read cost the proof witnesses."""
        return len(self.nodes)


def generate_proof(trie: PathTrie, key: Nibbles) -> Proof:
    """Collect the proof node list for ``key`` (inclusion or exclusion).

    The trie must be committed (proofs are against a root hash).
    """
    nodes: list[bytes] = []
    path: Nibbles = ()
    remaining = key
    value: Optional[bytes] = None
    while True:
        node = trie._resolve_untraced(path)  # noqa: SLF001 — proof needs raw nodes
        if node is None:
            break
        nodes.append(encode_node(node))
        if isinstance(node, LeafNode):
            if node.suffix == remaining:
                value = node.value
            break
        if isinstance(node, ExtensionNode):
            n = len(node.suffix)
            if remaining[:n] != node.suffix:
                break
            path = path + node.suffix
            remaining = remaining[n:]
            continue
        # branch
        if not remaining:
            value = node.value
            break
        nibble = remaining[0]
        if not node.children[nibble]:
            break
        path = path + (nibble,)
        remaining = remaining[1:]
    return Proof(key=key, nodes=tuple(nodes), value=value)


def verify_proof(root: bytes, proof: Proof) -> bool:
    """Verify a proof against ``root`` using only the supplied nodes.

    Returns True when the node chain is hash-consistent with the root
    and the walk supports the claim (``proof.value`` present at the key,
    or a dead end proving absence).  Raises nothing on malformed input;
    any inconsistency simply yields False.
    """
    if not proof.nodes:
        # Only the empty trie proves absence with zero nodes.
        return root == EMPTY_ROOT and proof.value is None
    try:
        return _verify_chain(root, proof)
    except (TrieError, IndexError, ValueError):
        return False


def _verify_chain(root: bytes, proof: Proof) -> bool:
    expected_hash = root
    remaining = proof.key
    nodes = proof.nodes
    for index, blob in enumerate(nodes):
        if node_hash(blob) != expected_hash:
            return False
        node = decode_node(blob)
        is_last = index == len(nodes) - 1
        if isinstance(node, LeafNode):
            if not is_last:
                return False  # nothing may follow a leaf
            if node.suffix == remaining:
                return proof.value == node.value
            return proof.value is None  # mismatched leaf proves absence
        if isinstance(node, ExtensionNode):
            n = len(node.suffix)
            if remaining[:n] != node.suffix:
                return is_last and proof.value is None
            remaining = remaining[n:]
            expected_hash = node.child_hash
            if is_last:
                # Chain stops inside the trie: proves nothing.
                return False
            continue
        # branch
        if not remaining:
            if not is_last:
                return False
            return proof.value == node.value
        nibble = remaining[0]
        if not node.children[nibble]:
            return is_last and proof.value is None
        expected_hash = node.child_hashes[nibble]
        remaining = remaining[1:]
        if is_last:
            return False
    return False
