"""Nibble paths and hex-prefix (compact) encoding.

Trie keys are sequences of nibbles (4-bit values).  The hex-prefix
encoding packs a nibble sequence into bytes with a flag nibble carrying
(a) the parity of the sequence length and (b) whether the path
terminates at a leaf — exactly the Yellow Paper's HP function, which is
also what Geth's path-based storage model uses to build node keys.
"""

from __future__ import annotations

from repro.errors import InvalidNibblesError

Nibbles = tuple[int, ...]


def bytes_to_nibbles(data: bytes) -> Nibbles:
    """Expand bytes into their nibble sequence (big-endian within a byte)."""
    nibbles = []
    for byte in data:
        nibbles.append(byte >> 4)
        nibbles.append(byte & 0x0F)
    return tuple(nibbles)


def nibbles_to_bytes(nibbles: Nibbles) -> bytes:
    """Pack an even-length nibble sequence back into bytes."""
    if len(nibbles) % 2 != 0:
        raise InvalidNibblesError(f"odd nibble count: {len(nibbles)}")
    _validate(nibbles)
    return bytes((nibbles[i] << 4) | nibbles[i + 1] for i in range(0, len(nibbles), 2))


def _validate(nibbles: Nibbles) -> None:
    for nibble in nibbles:
        if not 0 <= nibble <= 0x0F:
            raise InvalidNibblesError(f"nibble out of range: {nibble}")


def compact_encode(nibbles: Nibbles, is_leaf: bool) -> bytes:
    """Hex-prefix encode a nibble path.

    The first nibble of the output encodes ``2*is_leaf + odd_length``;
    odd-length paths pack their first nibble into the flag byte.
    """
    _validate(nibbles)
    flag = 2 if is_leaf else 0
    if len(nibbles) % 2 == 1:
        prefixed = (flag + 1, *nibbles)
    else:
        prefixed = (flag, 0, *nibbles)
    return nibbles_to_bytes(prefixed)


def compact_decode(data: bytes) -> tuple[Nibbles, bool]:
    """Inverse of :func:`compact_encode`; returns ``(nibbles, is_leaf)``."""
    if not data:
        raise InvalidNibblesError("empty compact encoding")
    nibbles = bytes_to_nibbles(data)
    flag = nibbles[0]
    if flag > 3:
        raise InvalidNibblesError(f"bad hex-prefix flag nibble: {flag}")
    is_leaf = flag >= 2
    if flag % 2 == 1:  # odd length: payload starts at nibble 1
        return nibbles[1:], is_leaf
    if nibbles[1] != 0:
        raise InvalidNibblesError("even-length padding nibble must be zero")
    return nibbles[2:], is_leaf


def common_prefix_length(a: Nibbles, b: Nibbles) -> int:
    """Length of the longest common prefix of two nibble sequences."""
    limit = min(len(a), len(b))
    for i in range(limit):
        if a[i] != b[i]:
            return i
    return limit
