"""Operation-distribution analysis — Tables II/III/IV and Figure 3.

Consumes a trace (iterable of :class:`~repro.core.trace.TraceRecord`)
and produces, per class:

* operation mix (% of writes/updates/reads/scans/deletes) — Tables II/III;
* share of all KV operations — the tables' first column;
* read ratio: the fraction of *pairs ever present* in the class that are
  read at least once — Table IV;
* per-key frequency distributions (reads/updates/deletes per key) —
  Figure 3, including the "read exactly once" shares (Finding 3) and
  repeated delete+reinsert detection (Finding 5).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

import numpy as np

from repro.core.classes import CLASS_LIST, NUM_CLASSES, KVClass, classify_key
from repro.core.trace import OpType, TraceRecord

if TYPE_CHECKING:
    from repro.core.columnar import TraceChunk

_NUM_OPS = len(OpType)


@dataclass
class OperationDistribution:
    """Per-class operation counters (one row of Table II/III)."""

    kv_class: KVClass
    writes: int = 0
    updates: int = 0
    reads: int = 0
    scans: int = 0
    deletes: int = 0

    @property
    def total(self) -> int:
        return self.writes + self.updates + self.reads + self.scans + self.deletes

    def count(self, op: OpType) -> int:
        return {
            OpType.WRITE: self.writes,
            OpType.UPDATE: self.updates,
            OpType.READ: self.reads,
            OpType.SCAN: self.scans,
            OpType.DELETE: self.deletes,
        }[op]

    def pct(self, op: OpType) -> float:
        """Percentage of this class's operations that are ``op``."""
        total = self.total
        if total == 0:
            return 0.0
        return 100.0 * self.count(op) / total


@dataclass
class ClassKeyActivity:
    """Per-class, per-key activity used for Table IV and Figure 3."""

    kv_class: KVClass
    #: per-key read counts (only keys read at least once appear)
    read_counts: Counter = field(default_factory=Counter)
    update_counts: Counter = field(default_factory=Counter)
    delete_counts: Counter = field(default_factory=Counter)
    write_counts: Counter = field(default_factory=Counter)
    #: all keys that ever existed in this class during the trace window
    keys_seen: set = field(default_factory=set)

    def read_ratio(self) -> float:
        """Fraction (%) of keys ever present that are read >= once (Table IV)."""
        if not self.keys_seen:
            return 0.0
        return 100.0 * len(self.read_counts) / len(self.keys_seen)

    def frequency_distribution(self, op: OpType) -> list[tuple[int, int]]:
        """Sorted ``(frequency, num_keys)`` points for Figure 3 panels."""
        counts = self._counter_for(op)
        histogram = Counter(counts.values())
        return sorted(histogram.items())

    def fraction_with_frequency(self, op: OpType, frequency: int) -> float:
        """Share (%) of op-touched keys having exactly ``frequency`` ops.

        E.g. ``fraction_with_frequency(READ, 1)`` is the paper's
        "% of read KV pairs read only once" (Finding 3).
        """
        counts = self._counter_for(op)
        if not counts:
            return 0.0
        matching = sum(1 for c in counts.values() if c == frequency)
        return 100.0 * matching / len(counts)

    def keys_with_op_at_least(self, op: OpType, threshold: int) -> int:
        """Number of keys with >= ``threshold`` operations of type ``op``."""
        counts = self._counter_for(op)
        return sum(1 for c in counts.values() if c >= threshold)

    def _counter_for(self, op: OpType) -> Counter:
        return {
            OpType.READ: self.read_counts,
            OpType.UPDATE: self.update_counts,
            OpType.DELETE: self.delete_counts,
            OpType.WRITE: self.write_counts,
        }[op]


class OpDistAnalyzer:
    """Streaming analyzer over a trace for Tables II/III/IV and Figure 3.

    ``track_keys`` controls whether per-key counters (needed for Table
    IV and Figure 3) are maintained; disable for pure Table II/III runs
    over very large traces.
    """

    #: Partial-aggregate cache version: bump whenever consume_chunk/merge
    #: semantics change, so stale cached partials are never reused.
    CACHE_VERSION = 1

    def __init__(self, track_keys: bool = True) -> None:
        self._dist: dict[KVClass, OperationDistribution] = {}
        self._activity: dict[KVClass, ClassKeyActivity] = {}
        self._track_keys = track_keys
        self._total_ops = 0

    def consume(self, records: Iterable[TraceRecord]) -> "OpDistAnalyzer":
        for record in records:
            self.add(record)
        return self

    def add(self, record: TraceRecord) -> None:
        kv_class = classify_key(record.key)
        dist = self._dist.get(kv_class)
        if dist is None:
            dist = OperationDistribution(kv_class)
            self._dist[kv_class] = dist
        self._total_ops += 1
        op = record.op
        if op is OpType.WRITE:
            dist.writes += 1
        elif op is OpType.UPDATE:
            dist.updates += 1
        elif op is OpType.READ:
            dist.reads += 1
        elif op is OpType.SCAN:
            dist.scans += 1
        else:
            dist.deletes += 1

        if not self._track_keys:
            return
        activity = self._activity.get(kv_class)
        if activity is None:
            activity = ClassKeyActivity(kv_class)
            self._activity[kv_class] = activity
        key = record.key
        activity.keys_seen.add(key)
        if op is OpType.READ:
            activity.read_counts[key] += 1
        elif op is OpType.UPDATE:
            activity.update_counts[key] += 1
        elif op is OpType.DELETE:
            activity.delete_counts[key] += 1
        elif op is OpType.WRITE:
            activity.write_counts[key] += 1

    # -- columnar fast path ---------------------------------------------

    def consume_chunk(self, chunk: "TraceChunk") -> "OpDistAnalyzer":
        """Columnar equivalent of :meth:`consume` for one chunk.

        Reduces the chunk's (class id, op) pairs with one ``bincount``
        instead of per-record Python dispatch; per-key activity is
        accumulated per *unique* key via a (key id, op) bincount.
        Produces results identical to the record-at-a-time path.
        """
        n = len(chunk)
        if n == 0:
            return self
        self._total_ops += n
        ops = chunk.ops
        combined = chunk.class_ids.astype(np.int64) * _NUM_OPS + ops
        counts = np.bincount(combined, minlength=NUM_CLASSES * _NUM_OPS).reshape(
            NUM_CLASSES, _NUM_OPS
        )
        for cid in np.nonzero(counts.sum(axis=1))[0].tolist():
            kv_class = CLASS_LIST[cid]
            dist = self._dist.get(kv_class)
            if dist is None:
                dist = OperationDistribution(kv_class)
                self._dist[kv_class] = dist
            row = counts[cid]
            dist.writes += int(row[OpType.WRITE])
            dist.updates += int(row[OpType.UPDATE])
            dist.reads += int(row[OpType.READ])
            dist.scans += int(row[OpType.SCAN])
            dist.deletes += int(row[OpType.DELETE])

        if not self._track_keys:
            return self
        num_keys = chunk.num_keys
        kcombined = chunk.key_ids.astype(np.int64) * _NUM_OPS + ops
        kcounts = np.bincount(kcombined, minlength=num_keys * _NUM_OPS).reshape(
            num_keys, _NUM_OPS
        )
        totals = kcounts.sum(axis=1)
        reads_col = kcounts[:, OpType.READ].tolist()
        updates_col = kcounts[:, OpType.UPDATE].tolist()
        deletes_col = kcounts[:, OpType.DELETE].tolist()
        writes_col = kcounts[:, OpType.WRITE].tolist()
        keys = chunk.keys
        key_class_ids = chunk.key_class_ids.tolist()
        activity_by_cid: dict[int, ClassKeyActivity] = {}
        for kid in np.nonzero(totals)[0].tolist():
            cid = key_class_ids[kid]
            activity = activity_by_cid.get(cid)
            if activity is None:
                kv_class = CLASS_LIST[cid]
                activity = self._activity.get(kv_class)
                if activity is None:
                    activity = ClassKeyActivity(kv_class)
                    self._activity[kv_class] = activity
                activity_by_cid[cid] = activity
            key = keys[kid]
            activity.keys_seen.add(key)
            if reads_col[kid]:
                activity.read_counts[key] += reads_col[kid]
            if updates_col[kid]:
                activity.update_counts[key] += updates_col[kid]
            if deletes_col[kid]:
                activity.delete_counts[key] += deletes_col[kid]
            if writes_col[kid]:
                activity.write_counts[key] += writes_col[kid]
        return self

    def consume_chunks(self, chunks: Iterable["TraceChunk"]) -> "OpDistAnalyzer":
        for chunk in chunks:
            self.consume_chunk(chunk)
        return self

    def merge(self, other: "OpDistAnalyzer") -> "OpDistAnalyzer":
        """Fold another analyzer's partial aggregates into this one.

        Both analyzers must have been created with the same
        ``track_keys`` setting; ``other`` is left untouched.
        """
        if self._track_keys != other._track_keys:
            raise ValueError("cannot merge analyzers with different track_keys")
        self._total_ops += other._total_ops
        for kv_class, theirs in other._dist.items():
            dist = self._dist.get(kv_class)
            if dist is None:
                dist = OperationDistribution(kv_class)
                self._dist[kv_class] = dist
            dist.writes += theirs.writes
            dist.updates += theirs.updates
            dist.reads += theirs.reads
            dist.scans += theirs.scans
            dist.deletes += theirs.deletes
        for kv_class, theirs in other._activity.items():
            activity = self._activity.get(kv_class)
            if activity is None:
                activity = ClassKeyActivity(kv_class)
                self._activity[kv_class] = activity
            activity.keys_seen |= theirs.keys_seen
            activity.read_counts.update(theirs.read_counts)
            activity.update_counts.update(theirs.update_counts)
            activity.delete_counts.update(theirs.delete_counts)
            activity.write_counts.update(theirs.write_counts)
        return self

    # -- table accessors ------------------------------------------------

    @property
    def total_ops(self) -> int:
        return self._total_ops

    def distribution(self, kv_class: KVClass) -> OperationDistribution:
        return self._dist.get(kv_class, OperationDistribution(kv_class))

    def observed_classes(self) -> list[KVClass]:
        return list(self._dist)

    def class_share(self, kv_class: KVClass) -> float:
        """Share (%) of all KV operations issued to ``kv_class``."""
        if self._total_ops == 0:
            return 0.0
        return 100.0 * self.distribution(kv_class).total / self._total_ops

    def total_reads(self) -> int:
        return sum(d.reads for d in self._dist.values())

    def total_puts(self) -> int:
        """Writes + updates across all classes (Finding 7's write metric)."""
        return sum(d.writes + d.updates for d in self._dist.values())

    def reads_in(self, classes: Iterable[KVClass]) -> int:
        return sum(self.distribution(c).reads for c in classes)

    def puts_in(self, classes: Iterable[KVClass]) -> int:
        return sum(
            self.distribution(c).writes + self.distribution(c).updates for c in classes
        )

    def scanned_classes(self) -> list[KVClass]:
        """Classes with at least one scan (Finding 4)."""
        return [cls for cls, d in self._dist.items() if d.scans > 0]

    # -- per-key accessors ------------------------------------------------

    def activity(self, kv_class: KVClass) -> ClassKeyActivity:
        if not self._track_keys:
            raise ValueError("per-key tracking disabled for this analyzer")
        return self._activity.get(kv_class, ClassKeyActivity(kv_class))

    def read_ratio(self, kv_class: KVClass) -> float:
        """Table IV entry for one class."""
        return self.activity(kv_class).read_ratio()

    def read_ratios(self, classes: Iterable[KVClass]) -> dict[KVClass, float]:
        """Table IV rows."""
        return {cls: self.read_ratio(cls) for cls in classes}

    def top_read_keys(self, kv_class: KVClass, fraction: float) -> list[bytes]:
        """The most-read ``fraction`` of read keys in a class (Finding 6)."""
        counts = self.activity(kv_class).read_counts
        if not counts:
            return []
        top_n = max(1, int(len(counts) * fraction))
        ranked = sorted(counts.items(), key=lambda kv: -kv[1])
        return [key for key, _ in ranked[:top_n]]

    def reads_to_keys(self, kv_class: KVClass, keys: Iterable[bytes]) -> int:
        """Total reads issued to the given keys in a class."""
        counts = self.activity(kv_class).read_counts
        return sum(counts.get(key, 0) for key in keys)

    def reads_to_band(
        self, kv_class: KVClass, low: int, high: Optional[int] = None
    ) -> int:
        """Total reads to keys whose read frequency is in [low, high].

        The paper's "medium-frequency" band (Finding 6) is reads 10-100.
        """
        counts = self.activity(kv_class).read_counts
        return sum(
            c for c in counts.values() if c >= low and (high is None or c <= high)
        )
