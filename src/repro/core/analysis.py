"""One-stop trace analysis bundle.

:class:`TraceAnalysis` runs every analyzer the findings engine needs
over one trace (plus an optional end-of-run store snapshot) and caches
the results.  The findings engine and report renderers consume two of
these — one for the CacheTrace analog, one for the BareTrace analog.

The trace is held internally as a :class:`~repro.core.columnar.ColumnarTrace`
— compact numpy columns instead of millions of Python record objects —
so the input may equally be a record sequence/iterable, a pre-built
columnar trace, or a path to a saved trace file (binary v1 or v2).
Only the columnar chunks are retained for the lazy correlation passes.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Optional, Sequence, Union

from repro.core.columnar import DEFAULT_CHUNK_SIZE, ColumnarTrace
from repro.core.correlation import (
    DEFAULT_DISTANCES,
    CorrelationAnalyzer,
    CorrelationConfig,
    DistanceResult,
)
from repro.core.opdist import OpDistAnalyzer
from repro.core.sizes import SizeAnalyzer
from repro.core.trace import OpType, TraceRecord

if TYPE_CHECKING:
    from repro.core.aggcache import AggregateCache

TraceInput = Union[str, Path, ColumnarTrace, Sequence[TraceRecord], Iterable[TraceRecord]]


class TraceAnalysis:
    """All analyses for one trace, computed in a single pass + on demand.

    Attributes:
        name: label for reports ("CacheTrace" / "BareTrace").
        opdist: operation-distribution analyzer (Tables II/III/IV, Fig 3).
        sizes: size analyzer over the end-of-run store snapshot
            (Table I, Fig 2); populated when a snapshot is supplied.
        trace: the retained columnar trace (feeds the correlation passes).
    """

    def __init__(
        self,
        name: str,
        trace: TraceInput,
        store_snapshot: Optional[Iterable[tuple[bytes, bytes]]] = None,
        correlation_distances: Sequence[int] = DEFAULT_DISTANCES,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        cache: Optional["AggregateCache"] = None,
    ) -> None:
        self.name = name
        self._chunk_size = chunk_size
        self._trace_path: Optional[Path] = None
        self._trace: Optional[ColumnarTrace] = None
        if isinstance(trace, (str, Path)):
            # Keep only the path: the single-pass analyzers stream the
            # file (through the partial-aggregate cache when one is
            # given), and the full columnar trace is materialized only
            # if a lazy correlation pass actually asks for it — a warm
            # cached run never loads the trace at all.
            self._trace_path = Path(trace)
        elif isinstance(trace, ColumnarTrace):
            self._trace = trace
        else:
            self._trace = ColumnarTrace.from_records(trace, chunk_size=chunk_size)
        if self._trace_path is not None:
            from repro.core.aggcache import analyze_trace_maybe_cached

            results = analyze_trace_maybe_cached(
                str(self._trace_path),
                cache=cache,
                chunk_size=chunk_size,
                analyzers=("opdist",),
                track_keys=True,
            )
            self.opdist = results["opdist"]
        else:
            self.opdist = OpDistAnalyzer(track_keys=True).consume_chunks(
                self._trace.chunks
            )
        self.sizes = SizeAnalyzer()
        if store_snapshot is not None:
            self.sizes.add_store_snapshot(store_snapshot)
        self._distances = tuple(correlation_distances)
        self._correlations: dict[OpType, dict[int, DistanceResult]] = {}
        self._analyzers: dict[OpType, CorrelationAnalyzer] = {}

    @property
    def trace(self) -> ColumnarTrace:
        """The retained columnar trace (loaded from file on first use)."""
        if self._trace is None:
            self._trace = ColumnarTrace.from_file(
                self._trace_path, chunk_size=self._chunk_size
            )
        return self._trace

    def read_ratio(self, kv_class) -> float:
        """Table IV read ratio: % of the class's KV pairs read >= once.

        The denominator is the class's *store population* (all pairs in
        the KV store, most of which predate the measurement window and
        are never touched), matching the paper's definition — not just
        the keys that appear in the trace.
        """
        activity = self.opdist.activity(kv_class)
        read_keys = len(activity.read_counts)
        population = self.sizes.stats_for(kv_class).num_pairs
        denominator = max(population, len(activity.keys_seen))
        if denominator == 0:
            return 0.0
        return 100.0 * read_keys / denominator

    def correlation(self, op: OpType) -> dict[int, DistanceResult]:
        """Distance-indexed correlation results for ``op`` (cached)."""
        cached = self._correlations.get(op)
        if cached is None:
            analyzer = CorrelationAnalyzer(
                CorrelationConfig(op=op, distances=self._distances)
            )
            analyzer.consume_chunks(self.trace.chunks)
            cached = analyzer.compute()
            self._analyzers[op] = analyzer
            self._correlations[op] = cached
        return cached

    def correlation_analyzer(self, op: OpType) -> CorrelationAnalyzer:
        """The analyzer behind :meth:`correlation` (forces computation)."""
        self.correlation(op)
        return self._analyzers[op]

    @property
    def records(self) -> list[TraceRecord]:
        """The trace as record objects (materialized on demand)."""
        return list(self.trace.iter_records())

    @property
    def num_records(self) -> int:
        return len(self.trace)
