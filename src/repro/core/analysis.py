"""One-stop trace analysis bundle.

:class:`TraceAnalysis` runs every analyzer the findings engine needs
over one trace (plus an optional end-of-run store snapshot) and caches
the results.  The findings engine and report renderers consume two of
these — one for the CacheTrace analog, one for the BareTrace analog.

The trace is held internally as a :class:`~repro.core.columnar.ColumnarTrace`
— compact numpy columns instead of millions of Python record objects —
so the input may equally be a record sequence/iterable, a pre-built
columnar trace, or a path to a saved trace file (binary v1 or v2).
Only the columnar chunks are retained for the lazy correlation passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, Optional, Sequence, Union

from repro.core.columnar import DEFAULT_CHUNK_SIZE, ColumnarTrace
from repro.core.correlation import (
    DEFAULT_DISTANCES,
    CorrelationAnalyzer,
    CorrelationConfig,
    DistanceResult,
)
from repro.core.opdist import OpDistAnalyzer
from repro.core.sizes import SizeAnalyzer
from repro.core.trace import OpType, TraceRecord

if TYPE_CHECKING:
    from repro.core.aggcache import AggregateCache

TraceInput = Union[str, Path, ColumnarTrace, Sequence[TraceRecord], Iterable[TraceRecord]]


class TraceAnalysis:
    """All analyses for one trace, computed in a single pass + on demand.

    Attributes:
        name: label for reports ("CacheTrace" / "BareTrace").
        opdist: operation-distribution analyzer (Tables II/III/IV, Fig 3).
        sizes: size analyzer over the end-of-run store snapshot
            (Table I, Fig 2); populated when a snapshot is supplied.
        trace: the retained columnar trace (feeds the correlation passes).
    """

    def __init__(
        self,
        name: str,
        trace: TraceInput,
        store_snapshot: Optional[Iterable[tuple[bytes, bytes]]] = None,
        correlation_distances: Sequence[int] = DEFAULT_DISTANCES,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        cache: Optional["AggregateCache"] = None,
    ) -> None:
        self.name = name
        self._chunk_size = chunk_size
        self._trace_path: Optional[Path] = None
        self._trace: Optional[ColumnarTrace] = None
        if isinstance(trace, (str, Path)):
            # Keep only the path: the single-pass analyzers stream the
            # file (through the partial-aggregate cache when one is
            # given), and the full columnar trace is materialized only
            # if a lazy correlation pass actually asks for it — a warm
            # cached run never loads the trace at all.
            self._trace_path = Path(trace)
        elif isinstance(trace, ColumnarTrace):
            self._trace = trace
        else:
            self._trace = ColumnarTrace.from_records(trace, chunk_size=chunk_size)
        if self._trace_path is not None:
            from repro.core.aggcache import analyze_trace_maybe_cached

            results = analyze_trace_maybe_cached(
                str(self._trace_path),
                cache=cache,
                chunk_size=chunk_size,
                analyzers=("opdist",),
                track_keys=True,
            )
            self.opdist = results["opdist"]
        else:
            self.opdist = OpDistAnalyzer(track_keys=True).consume_chunks(
                self._trace.chunks
            )
        self.sizes = SizeAnalyzer()
        if store_snapshot is not None:
            self.sizes.add_store_snapshot(store_snapshot)
        self._distances = tuple(correlation_distances)
        self._correlations: dict[OpType, dict[int, DistanceResult]] = {}
        self._analyzers: dict[OpType, CorrelationAnalyzer] = {}

    @property
    def trace(self) -> ColumnarTrace:
        """The retained columnar trace (loaded from file on first use)."""
        if self._trace is None:
            self._trace = ColumnarTrace.from_file(
                self._trace_path, chunk_size=self._chunk_size
            )
        return self._trace

    def read_ratio(self, kv_class) -> float:
        """Table IV read ratio: % of the class's KV pairs read >= once.

        The denominator is the class's *store population* (all pairs in
        the KV store, most of which predate the measurement window and
        are never touched), matching the paper's definition — not just
        the keys that appear in the trace.
        """
        activity = self.opdist.activity(kv_class)
        read_keys = len(activity.read_counts)
        population = self.sizes.stats_for(kv_class).num_pairs
        denominator = max(population, len(activity.keys_seen))
        if denominator == 0:
            return 0.0
        return 100.0 * read_keys / denominator

    def correlation(self, op: OpType) -> dict[int, DistanceResult]:
        """Distance-indexed correlation results for ``op`` (cached)."""
        cached = self._correlations.get(op)
        if cached is None:
            analyzer = CorrelationAnalyzer(
                CorrelationConfig(op=op, distances=self._distances)
            )
            analyzer.consume_chunks(self.trace.chunks)
            cached = analyzer.compute()
            self._analyzers[op] = analyzer
            self._correlations[op] = cached
        return cached

    def correlation_analyzer(self, op: OpType) -> CorrelationAnalyzer:
        """The analyzer behind :meth:`correlation` (forces computation)."""
        self.correlation(op)
        return self._analyzers[op]

    @property
    def records(self) -> list[TraceRecord]:
        """The trace as record objects (materialized on demand)."""
        return list(self.trace.iter_records())

    @property
    def num_records(self) -> int:
        return len(self.trace)


@dataclass(frozen=True)
class AnalysisProgress:
    """One streamed step of :func:`stream_trace_analysis`.

    ``analyzers`` holds the *merged-so-far* analyzer instances — the
    same objects across every step, mutated in footer order — so after
    the final step they are byte-identical to what a one-shot
    :func:`~repro.core.parallel.analyze_trace` over the same file
    returns.  Consumers that retain per-step state must extract what
    they need before advancing the generator.
    """

    chunks_done: int
    total_chunks: int
    records_done: int
    analyzers: Dict[str, object]

    @property
    def complete(self) -> bool:
        return self.chunks_done >= self.total_chunks


def stream_trace_analysis(
    path: Union[str, Path],
    *,
    analyzers: Sequence[str] = ("opdist",),
    batch_chunks: int = 8,
    start_chunk: int = 0,
    track_keys: bool = True,
    lenient: bool = False,
    cache: Optional["AggregateCache"] = None,
    registry=None,
) -> Iterator[AnalysisProgress]:
    """Incrementally analyze a footer-indexed v2 trace, batch by batch.

    The resumable/streaming entry point behind ``repro serve``'s
    analyze jobs: chunks are consumed in footer order in batches of
    ``batch_chunks``, and an :class:`AnalysisProgress` is yielded after
    each batch with the merged-so-far partial aggregates — so a client
    sees incremental answers whose final step exactly equals a one-shot
    analysis.  ``start_chunk`` resumes from a chunk index (e.g. after a
    dropped connection, given the client remembers how far it got).

    When a :class:`~repro.core.aggcache.AggregateCache` is supplied,
    each chunk's partials are served from / published to the cache
    exactly as :func:`~repro.core.aggcache.analyze_trace_cached` would.

    Raises :class:`~repro.errors.TraceFormatError` for traces without a
    v2 footer (stream resumption needs random access).
    """
    from repro.core.parallel import ANALYZER_FACTORIES, _make_analyzers
    from repro.core.trace import RandomAccessChunkReader, read_trace_footer
    from repro.errors import TraceFormatError

    if batch_chunks < 1:
        raise ValueError("batch_chunks must be >= 1")
    if start_chunk < 0:
        raise ValueError("start_chunk must be >= 0")
    names = tuple(analyzers)
    probes = _make_analyzers(names, track_keys)  # validates names
    versions = {
        name: int(getattr(probe, "CACHE_VERSION", 0)) for name, probe in probes.items()
    }
    footer = read_trace_footer(path)
    offsets = [offset for offset, _ in footer.chunks]
    total = len(offsets)
    if start_chunk > total:
        raise ValueError(f"start_chunk {start_chunk} beyond {total} chunks")

    if registry is None:
        from repro.obs import get_registry

        registry = get_registry()
    chunk_counter = registry.counter(
        "repro_analysis_chunks_total", help="Trace chunks consumed by analysis"
    )
    record_counter = registry.counter(
        "repro_analysis_records_total", help="Trace records consumed by analysis"
    )

    merged: Optional[Dict[str, object]] = None
    chunks_done = start_chunk
    records_done = 0

    def fold(partials: Dict[str, object]) -> None:
        nonlocal merged
        if merged is None:
            merged = {name: partials[name] for name in names}
        else:
            for name in names:
                merged[name].merge(partials[name])

    with RandomAccessChunkReader(path, lenient=lenient) as reader:
        while chunks_done < total:
            batch = offsets[chunks_done : chunks_done + batch_chunks]
            for offset in batch:
                chunks_done += 1
                raw = reader.read_raw(offset)
                if raw is None:  # lenient: corrupt chunk dropped
                    continue
                partials: Dict[str, object] = {}
                missing = list(names)
                if cache is not None:
                    missing = []
                    for name in names:
                        got = cache.get(
                            cache.entry_key(raw.crc, name, versions[name], track_keys)
                        )
                        if got is None:
                            missing.append(name)
                        else:
                            partials[name] = got
                if missing:
                    try:
                        chunk = raw.parse()
                    except TraceFormatError:
                        if not lenient:
                            raise
                        continue
                    for name in missing:
                        analyzer = ANALYZER_FACTORIES[name](track_keys)
                        analyzer.consume_chunk(chunk)
                        if cache is not None:
                            cache.put(
                                cache.entry_key(
                                    raw.crc, name, versions[name], track_keys
                                ),
                                analyzer,
                            )
                        partials[name] = analyzer
                fold(partials)
                chunk_counter.inc()
                record_counter.inc(raw.num_records)
                records_done += raw.num_records
            yield AnalysisProgress(
                chunks_done=chunks_done,
                total_chunks=total,
                records_done=records_done,
                analyzers=merged if merged is not None else dict(probes),
            )
    if chunks_done == start_chunk:  # empty tail: still report completion
        yield AnalysisProgress(
            chunks_done=chunks_done,
            total_chunks=total,
            records_done=records_done,
            analyzers=merged if merged is not None else dict(probes),
        )
