"""The 29 KV classes and the prefix classifier.

The paper classifies every KV pair by its key prefix, following Geth's
storage schema (``core/rawdb/schema.go``).  We reproduce that schema
byte-for-byte: multi-pair classes use single-character prefixes (plus
structured suffixes), while the 15 system-maintenance classes are
literal singleton keys such as ``b"LastHeader"``.

Classification order matters: several singleton keys share a first byte
with a prefix class (e.g. ``b"LastHeader"`` vs the ``b"L"`` StateID
prefix, ``b"SnapshotJournal"`` vs the ``b"S"`` SkeletonHeader prefix),
so exact singleton keys and the two ``ethereum-*`` literal prefixes are
matched before single-byte prefixes.
"""

from __future__ import annotations

import enum
from typing import Optional


class KVClass(enum.Enum):
    """The 29 classes of KV pairs identified in the paper (Table I)."""

    # --- multi-pair classes (14) ---
    TRIE_NODE_STORAGE = "TrieNodeStorage"
    SNAPSHOT_STORAGE = "SnapshotStorage"
    TX_LOOKUP = "TxLookup"
    TRIE_NODE_ACCOUNT = "TrieNodeAccount"
    SNAPSHOT_ACCOUNT = "SnapshotAccount"
    HEADER_NUMBER = "HeaderNumber"
    BLOOM_BITS = "BloomBits"
    CODE = "Code"
    SKELETON_HEADER = "SkeletonHeader"
    BLOCK_HEADER = "BlockHeader"
    BLOCK_RECEIPTS = "BlockReceipts"
    BLOCK_BODY = "BlockBody"
    STATE_ID = "StateID"
    BLOOM_BITS_INDEX = "BloomBitsIndex"
    # --- singleton system-maintenance classes (15) ---
    ETHEREUM_GENESIS = "Ethereum-genesis"
    SNAPSHOT_JOURNAL = "SnapshotJournal"
    ETHEREUM_CONFIG = "Ethereum-config"
    LAST_STATE_ID = "LastStateID"
    UNCLEAN_SHUTDOWN = "Unclean-shutdown"
    SNAPSHOT_GENERATOR = "SnapshotGenerator"
    TRIE_JOURNAL = "TrieJournal"
    DATABASE_VERSION = "DatabaseVersion"
    LAST_BLOCK = "LastBlock"
    SNAPSHOT_ROOT = "SnapshotRoot"
    SKELETON_SYNC_STATUS = "SkeletonSyncStatus"
    LAST_HEADER = "LastHeader"
    SNAPSHOT_RECOVERY = "SnapshotRecovery"
    TRANSACTION_INDEX_TAIL = "TransactionIndexTail"
    LAST_FAST = "LastFast"

    # A key that matches no known schema entry (should not occur in a
    # well-formed trace; kept so analyses never crash on foreign data).
    UNKNOWN = "Unknown"

    @property
    def display_name(self) -> str:
        """The class name as printed in the paper's tables."""
        return self.value

    @property
    def is_singleton(self) -> bool:
        """True for the 15 classes that hold exactly one KV pair."""
        return self in SINGLETON_CLASSES

    @property
    def abbreviation(self) -> str:
        """Figure-legend abbreviation (e.g. TrieNodeAccount -> 'TA')."""
        return _ABBREVIATIONS.get(self, self.value)


# Abbreviations used in the paper's figure legends (Figures 4-7).
_ABBREVIATIONS = {
    KVClass.TRIE_NODE_ACCOUNT: "TA",
    KVClass.TRIE_NODE_STORAGE: "TS",
    KVClass.SNAPSHOT_ACCOUNT: "SA",
    KVClass.SNAPSHOT_STORAGE: "SS",
    KVClass.BLOCK_HEADER: "BH",
    KVClass.CODE: "C",
    KVClass.LAST_FAST: "LF",
    KVClass.LAST_HEADER: "LH",
    KVClass.LAST_BLOCK: "LB",
    KVClass.LAST_STATE_ID: "LS",
}

SINGLETON_CLASSES = frozenset(
    {
        KVClass.ETHEREUM_GENESIS,
        KVClass.SNAPSHOT_JOURNAL,
        KVClass.ETHEREUM_CONFIG,
        KVClass.LAST_STATE_ID,
        KVClass.UNCLEAN_SHUTDOWN,
        KVClass.SNAPSHOT_GENERATOR,
        KVClass.TRIE_JOURNAL,
        KVClass.DATABASE_VERSION,
        KVClass.LAST_BLOCK,
        KVClass.SNAPSHOT_ROOT,
        KVClass.SKELETON_SYNC_STATUS,
        KVClass.LAST_HEADER,
        KVClass.SNAPSHOT_RECOVERY,
        KVClass.TRANSACTION_INDEX_TAIL,
        KVClass.LAST_FAST,
    }
)

#: The five classes the paper shows dominate KV storage (Finding 1).
DOMINANT_CLASSES = (
    KVClass.TRIE_NODE_STORAGE,
    KVClass.SNAPSHOT_STORAGE,
    KVClass.TX_LOOKUP,
    KVClass.TRIE_NODE_ACCOUNT,
    KVClass.SNAPSHOT_ACCOUNT,
)

#: World-state-related classes (Finding 7's read/write reduction scope).
WORLD_STATE_CLASSES = frozenset(
    {
        KVClass.TRIE_NODE_ACCOUNT,
        KVClass.TRIE_NODE_STORAGE,
        KVClass.SNAPSHOT_ACCOUNT,
        KVClass.SNAPSHOT_STORAGE,
    }
)

#: Classes created only by snapshot acceleration (absent in BareTrace).
SNAPSHOT_ONLY_CLASSES = frozenset(
    {
        KVClass.SNAPSHOT_ACCOUNT,
        KVClass.SNAPSHOT_STORAGE,
        KVClass.SNAPSHOT_JOURNAL,
        KVClass.SNAPSHOT_GENERATOR,
        KVClass.SNAPSHOT_ROOT,
        KVClass.SNAPSHOT_RECOVERY,
    }
)

# ---------------------------------------------------------------------------
# Key schema (mirrors Geth's core/rawdb/schema.go)
# ---------------------------------------------------------------------------

#: Exact singleton keys, matched before any prefix.
SINGLETON_KEYS: dict[bytes, KVClass] = {
    b"SnapshotJournal": KVClass.SNAPSHOT_JOURNAL,
    b"LastStateID": KVClass.LAST_STATE_ID,
    b"unclean-shutdown": KVClass.UNCLEAN_SHUTDOWN,
    b"SnapshotGenerator": KVClass.SNAPSHOT_GENERATOR,
    b"TrieJournal": KVClass.TRIE_JOURNAL,
    b"DatabaseVersion": KVClass.DATABASE_VERSION,
    b"LastBlock": KVClass.LAST_BLOCK,
    b"SnapshotRoot": KVClass.SNAPSHOT_ROOT,
    b"SkeletonSyncStatus": KVClass.SKELETON_SYNC_STATUS,
    b"LastHeader": KVClass.LAST_HEADER,
    b"SnapshotRecovery": KVClass.SNAPSHOT_RECOVERY,
    b"TransactionIndexTail": KVClass.TRANSACTION_INDEX_TAIL,
    b"LastFast": KVClass.LAST_FAST,
}

#: Literal multi-byte prefixes for genesis/config entries (key includes
#: the 32-byte genesis hash, so they are prefix classes that happen to
#: hold one pair each).
ETHEREUM_GENESIS_PREFIX = b"ethereum-genesis-"
ETHEREUM_CONFIG_PREFIX = b"ethereum-config-"

#: Chain-indexer table prefix for the bloombits indexer bookkeeping.
BLOOM_BITS_INDEX_PREFIX = b"iB"

#: Single-byte prefixes for the multi-pair classes.
HEADER_PREFIX = b"h"  # BlockHeader: h + num(8) + hash(32) [+ 't'/'n' variants]
HEADER_NUMBER_PREFIX = b"H"  # HeaderNumber: H + hash(32)
BODY_PREFIX = b"b"  # BlockBody: b + num(8) + hash(32)
RECEIPTS_PREFIX = b"r"  # BlockReceipts: r + num(8) + hash(32)
TX_LOOKUP_PREFIX = b"l"  # TxLookup: l + txhash(32)
BLOOM_BITS_PREFIX = b"B"  # BloomBits: B + bit(2) + section(8) + hash(32)
SNAPSHOT_ACCOUNT_PREFIX = b"a"  # SnapshotAccount: a + account hash(32)
SNAPSHOT_STORAGE_PREFIX = b"o"  # SnapshotStorage: o + acct hash(32) + slot hash(32)
CODE_PREFIX = b"c"  # Code: c + code hash(32)
SKELETON_HEADER_PREFIX = b"S"  # SkeletonHeader: S + num(8)
TRIE_NODE_ACCOUNT_PREFIX = b"A"  # TrieNodeAccount: A + compact path
TRIE_NODE_STORAGE_PREFIX = b"O"  # TrieNodeStorage: O + acct hash(32) + compact path
STATE_ID_PREFIX = b"L"  # StateID: L + state root(32)

_PREFIX_TABLE: dict[int, KVClass] = {
    HEADER_PREFIX[0]: KVClass.BLOCK_HEADER,
    HEADER_NUMBER_PREFIX[0]: KVClass.HEADER_NUMBER,
    BODY_PREFIX[0]: KVClass.BLOCK_BODY,
    RECEIPTS_PREFIX[0]: KVClass.BLOCK_RECEIPTS,
    TX_LOOKUP_PREFIX[0]: KVClass.TX_LOOKUP,
    BLOOM_BITS_PREFIX[0]: KVClass.BLOOM_BITS,
    SNAPSHOT_ACCOUNT_PREFIX[0]: KVClass.SNAPSHOT_ACCOUNT,
    SNAPSHOT_STORAGE_PREFIX[0]: KVClass.SNAPSHOT_STORAGE,
    CODE_PREFIX[0]: KVClass.CODE,
    SKELETON_HEADER_PREFIX[0]: KVClass.SKELETON_HEADER,
    TRIE_NODE_ACCOUNT_PREFIX[0]: KVClass.TRIE_NODE_ACCOUNT,
    TRIE_NODE_STORAGE_PREFIX[0]: KVClass.TRIE_NODE_STORAGE,
    STATE_ID_PREFIX[0]: KVClass.STATE_ID,
}


def classify_key(key: bytes) -> KVClass:
    """Map a raw KV key to its class via Geth's schema.

    Exact singleton keys and the ``ethereum-*`` literals are checked
    before single-byte prefixes because they collide on first bytes.
    """
    if not key:
        return KVClass.UNKNOWN
    cls = SINGLETON_KEYS.get(key)
    if cls is not None:
        return cls
    if key.startswith(ETHEREUM_GENESIS_PREFIX):
        return KVClass.ETHEREUM_GENESIS
    if key.startswith(ETHEREUM_CONFIG_PREFIX):
        return KVClass.ETHEREUM_CONFIG
    if key.startswith(BLOOM_BITS_INDEX_PREFIX):
        return KVClass.BLOOM_BITS_INDEX
    return _PREFIX_TABLE.get(key[0], KVClass.UNKNOWN)


# ---------------------------------------------------------------------------
# Dense class ids (columnar fast paths)
# ---------------------------------------------------------------------------

#: First bytes that a single-byte prefix lookup cannot decide on its own:
#: exact singleton keys and the multi-byte literal prefixes collide with
#: (or shadow) prefix classes on these bytes, so keys starting with them
#: must go through :func:`classify_key`.
AMBIGUOUS_FIRST_BYTES = frozenset(
    {key[0] for key in SINGLETON_KEYS}
    | {
        ETHEREUM_GENESIS_PREFIX[0],
        ETHEREUM_CONFIG_PREFIX[0],
        BLOOM_BITS_INDEX_PREFIX[0],
    }
)


def class_id_for_key(key: bytes) -> int:
    """Dense class id for a key via the first-byte fast path.

    Equivalent to ``CLASS_IDS[classify_key(key)]``: only keys whose first
    byte is in :data:`AMBIGUOUS_FIRST_BYTES` pay for the exact match.
    """
    if not key:
        return UNKNOWN_CLASS_ID
    first = key[0]
    if first in AMBIGUOUS_FIRST_BYTES:
        return CLASS_IDS[classify_key(key)]
    cls = _PREFIX_TABLE.get(first)
    return UNKNOWN_CLASS_ID if cls is None else CLASS_IDS[cls]


def class_by_name(name: str) -> Optional[KVClass]:
    """Look up a class by its paper display name (case-sensitive)."""
    try:
        return KVClass(name)
    except ValueError:
        return None


#: Canonical ordering for report tables — the paper's Table I order
#: (descending KV-pair count, singletons afterwards).
TABLE_ORDER = (
    KVClass.TRIE_NODE_STORAGE,
    KVClass.SNAPSHOT_STORAGE,
    KVClass.TX_LOOKUP,
    KVClass.TRIE_NODE_ACCOUNT,
    KVClass.SNAPSHOT_ACCOUNT,
    KVClass.HEADER_NUMBER,
    KVClass.BLOOM_BITS,
    KVClass.CODE,
    KVClass.SKELETON_HEADER,
    KVClass.BLOCK_HEADER,
    KVClass.BLOCK_RECEIPTS,
    KVClass.BLOCK_BODY,
    KVClass.STATE_ID,
    KVClass.BLOOM_BITS_INDEX,
    KVClass.ETHEREUM_GENESIS,
    KVClass.SNAPSHOT_JOURNAL,
    KVClass.ETHEREUM_CONFIG,
    KVClass.LAST_STATE_ID,
    KVClass.UNCLEAN_SHUTDOWN,
    KVClass.SNAPSHOT_GENERATOR,
    KVClass.TRIE_JOURNAL,
    KVClass.DATABASE_VERSION,
    KVClass.LAST_BLOCK,
    KVClass.SNAPSHOT_ROOT,
    KVClass.SKELETON_SYNC_STATUS,
    KVClass.LAST_HEADER,
    KVClass.SNAPSHOT_RECOVERY,
    KVClass.TRANSACTION_INDEX_TAIL,
    KVClass.LAST_FAST,
)

#: Dense id space for the columnar fast paths: Table I order, then
#: UNKNOWN.  Ids index :data:`CLASS_LIST`; the mapping is stable within a
#: process but is NOT part of the on-disk trace format (class ids are
#: always recomputed from keys on load).
CLASS_LIST: tuple[KVClass, ...] = TABLE_ORDER + (KVClass.UNKNOWN,)
CLASS_IDS: dict[KVClass, int] = {cls: i for i, cls in enumerate(CLASS_LIST)}
NUM_CLASSES = len(CLASS_LIST)
UNKNOWN_CLASS_ID = CLASS_IDS[KVClass.UNKNOWN]

#: Class id for each possible first byte when that byte is unambiguous
#: (i.e. not in AMBIGUOUS_FIRST_BYTES); UNKNOWN elsewhere.
PREFIX_CLASS_ID_TABLE: tuple[int, ...] = tuple(
    CLASS_IDS[_PREFIX_TABLE[b]] if b in _PREFIX_TABLE else UNKNOWN_CLASS_ID
    for b in range(256)
)
