"""The paper's published numbers, machine-readable.

Tables II/III (per-class operation mixes), Table IV (read ratios), and
Table I's summary statistics, transcribed from the paper.  Together
with :func:`mix_distance` these turn "the shape should hold" into a
quantified similarity report (see ``benchmarks/test_paper_similarity``).

Values are percentages exactly as printed; absent cells are 0.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.classes import KVClass
from repro.core.opdist import OpDistAnalyzer, OperationDistribution
from repro.core.trace import OpType


@dataclass(frozen=True)
class PaperOpRow:
    """One row of Table II/III: class share + op-mix percentages."""

    share: float
    writes: float
    updates: float
    reads: float
    scans: float
    deletes: float

    def pct(self, op: OpType) -> float:
        return {
            OpType.WRITE: self.writes,
            OpType.UPDATE: self.updates,
            OpType.READ: self.reads,
            OpType.SCAN: self.scans,
            OpType.DELETE: self.deletes,
        }[op]


#: Table II — CacheTrace per-class operation distribution.
PAPER_TABLE2: dict[KVClass, PaperOpRow] = {
    KVClass.TRIE_NODE_STORAGE: PaperOpRow(38.5, 8.51, 50.9, 35.7, 0.0, 4.87),
    KVClass.SNAPSHOT_STORAGE: PaperOpRow(17.9, 14.3, 32.6, 45.0, 0.002, 8.09),
    KVClass.TX_LOOKUP: PaperOpRow(11.1, 52.0, 0.0004, 0.0, 0.0, 48.0),
    KVClass.TRIE_NODE_ACCOUNT: PaperOpRow(23.2, 2.32, 59.7, 38.0, 0.0, 0.003),
    KVClass.SNAPSHOT_ACCOUNT: PaperOpRow(7.48, 7.20, 64.9, 27.9, 0.000001, 0.006),
    KVClass.HEADER_NUMBER: PaperOpRow(0.05, 74.9, 0.0007, 25.1, 0.0, 0.0),
    KVClass.BLOOM_BITS: PaperOpRow(0.02, 97.8, 0.0, 2.20, 0.0, 0.0),
    KVClass.CODE: PaperOpRow(0.41, 1.11, 11.7, 87.2, 0.0, 0.0),
    KVClass.SKELETON_HEADER: PaperOpRow(0.05, 16.4, 0.40, 83.2, 0.0, 0.0),
    KVClass.BLOCK_HEADER: PaperOpRow(0.62, 16.9, 0.0002, 60.6, 5.63, 16.9),
    KVClass.BLOCK_RECEIPTS: PaperOpRow(0.11, 32.1, 0.0003, 35.8, 0.0, 32.1),
    KVClass.BLOCK_BODY: PaperOpRow(0.14, 24.2, 0.0002, 51.6, 0.0, 24.2),
    KVClass.STATE_ID: PaperOpRow(0.07, 50.0, 0.0005, 0.0, 0.0, 50.0),
    KVClass.BLOOM_BITS_INDEX: PaperOpRow(0.002, 0.55, 0.55, 98.9, 0.0, 0.0),
    KVClass.LAST_STATE_ID: PaperOpRow(0.03, 0.0, 0.11, 99.9, 0.0, 0.0),
    KVClass.UNCLEAN_SHUTDOWN: PaperOpRow(0.00004, 0.0, 50.0, 50.0, 0.0, 0.0),
    KVClass.LAST_BLOCK: PaperOpRow(0.04, 0.0, 99.7, 0.28, 0.0, 0.0),
    KVClass.SNAPSHOT_GENERATOR: PaperOpRow(0.0004, 0.0, 100.0, 0.0, 0.0, 0.0),
    KVClass.SNAPSHOT_ROOT: PaperOpRow(0.0007, 0.0, 50.0, 0.0, 0.0, 50.0),
    KVClass.SKELETON_SYNC_STATUS: PaperOpRow(0.009, 0.0, 99.8, 0.19, 0.0, 0.0),
    KVClass.LAST_HEADER: PaperOpRow(0.03, 0.0, 100.0, 0.0, 0.0, 0.0),
    KVClass.TRANSACTION_INDEX_TAIL: PaperOpRow(0.00009, 0.0, 59.9, 40.1, 0.0, 0.0),
    KVClass.LAST_FAST: PaperOpRow(0.03, 0.0, 100.0, 0.0, 0.0, 0.0),
}

#: Table III — BareTrace per-class operation distribution.
PAPER_TABLE3: dict[KVClass, PaperOpRow] = {
    KVClass.TRIE_NODE_STORAGE: PaperOpRow(57.3, 1.96, 36.8, 60.2, 0.0, 1.10),
    KVClass.TX_LOOKUP: PaperOpRow(3.46, 52.0, 0.0004, 0.0, 0.0, 48.0),
    KVClass.TRIE_NODE_ACCOUNT: PaperOpRow(38.6, 0.62, 58.1, 41.3, 0.0, 0.0005),
    KVClass.HEADER_NUMBER: PaperOpRow(0.03, 41.3, 0.0004, 58.7, 0.0, 0.0),
    KVClass.BLOOM_BITS: PaperOpRow(0.006, 94.3, 0.0, 5.75, 0.0, 0.0),
    KVClass.CODE: PaperOpRow(0.13, 1.11, 11.7, 87.2, 0.0, 0.0),
    KVClass.SKELETON_HEADER: PaperOpRow(0.05, 4.57, 1.45, 75.6, 0.0, 18.4),
    KVClass.BLOCK_HEADER: PaperOpRow(0.20, 16.4, 0.0002, 61.7, 5.47, 16.4),
    KVClass.BLOCK_RECEIPTS: PaperOpRow(0.03, 32.1, 0.0003, 35.9, 0.0, 32.0),
    KVClass.BLOCK_BODY: PaperOpRow(0.05, 23.2, 0.0002, 53.5, 0.0, 23.2),
    KVClass.STATE_ID: PaperOpRow(0.02, 50.0, 0.0005, 0.0, 0.0, 50.0),
    KVClass.BLOOM_BITS_INDEX: PaperOpRow(0.002, 0.15, 0.15, 99.7, 0.0, 0.0),
    KVClass.LAST_STATE_ID: PaperOpRow(0.03, 0.0, 33.3, 66.7, 0.0, 0.0),
    KVClass.UNCLEAN_SHUTDOWN: PaperOpRow(0.00005, 0.0, 50.0, 50.0, 0.0, 0.0),
    KVClass.LAST_BLOCK: PaperOpRow(0.01, 0.0, 98.9, 1.05, 0.0, 0.0),
    KVClass.SKELETON_SYNC_STATUS: PaperOpRow(0.003, 1.51, 97.7, 0.75, 0.0, 0.0),
    KVClass.LAST_HEADER: PaperOpRow(0.01, 0.0, 100.0, 0.0, 0.0, 0.0),
    KVClass.TRANSACTION_INDEX_TAIL: PaperOpRow(0.00003, 0.0, 55.3, 44.7, 0.0, 0.0),
    KVClass.LAST_FAST: PaperOpRow(0.01, 0.0, 100.0, 0.0, 0.0, 0.0),
}

#: Table IV — read ratios (%); None where the class is absent.
PAPER_TABLE4_BARE: dict[KVClass, float] = {
    KVClass.TRIE_NODE_ACCOUNT: 14.7,
    KVClass.TRIE_NODE_STORAGE: 8.34,
}
PAPER_TABLE4_CACHE: dict[KVClass, float] = {
    KVClass.SNAPSHOT_ACCOUNT: 11.0,
    KVClass.SNAPSHOT_STORAGE: 12.0,
    KVClass.TRIE_NODE_ACCOUNT: 13.0,
    KVClass.TRIE_NODE_STORAGE: 6.59,
}

#: Table I headline statistics.
PAPER_TABLE1_SUMMARY = {
    "num_classes": 29,
    "singleton_classes": 15,
    "dominant_share_pct": 99.2,
    "dominant_mean_kv_bytes": 79.1,
    "code_mean_value_bytes": 6732.7,
    "large_pair_share_pct": 0.04,  # pairs over 1 KiB
}

_OPS = (OpType.WRITE, OpType.UPDATE, OpType.READ, OpType.SCAN, OpType.DELETE)


def mix_distance(measured: OperationDistribution, paper: PaperOpRow) -> float:
    """Total variation distance between two op mixes (0 = identical)."""
    return sum(abs(measured.pct(op) - paper.pct(op)) for op in _OPS) / 200.0


def similarity_report(
    opdist: OpDistAnalyzer, paper_table: dict[KVClass, PaperOpRow]
) -> dict[KVClass, float]:
    """Per-class mix distance for every class the paper reports."""
    report = {}
    for kv_class, row in paper_table.items():
        measured = opdist.distribution(kv_class)
        if measured.total == 0:
            report[kv_class] = 1.0  # class missing entirely
        else:
            report[kv_class] = mix_distance(measured, row)
    return report


def weighted_mean_distance(
    report: dict[KVClass, float], paper_table: dict[KVClass, PaperOpRow]
) -> float:
    """Mean mix distance weighted by the paper's class shares."""
    total_share = sum(row.share for row in paper_table.values())
    return sum(
        report[kv_class] * paper_table[kv_class].share
        for kv_class in paper_table
    ) / total_share
