"""Trace comparison.

Side-by-side diffing of two traces' per-class distributions — the
operation the paper performs informally every time it contrasts
CacheTrace with BareTrace.  Useful downstream for comparing workload
scenarios, cache configurations, or two versions of a storage stack.

The headline metric is the **total variation distance** between the
class-share distributions (0 = identical mixes, 1 = disjoint), plus
per-class op-count deltas and the classes that appear in only one
trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.classes import KVClass
from repro.core.opdist import OpDistAnalyzer
from repro.core.trace import OpType, TraceRecord


@dataclass
class ClassDelta:
    """Per-class difference between two traces."""

    kv_class: KVClass
    share_a: float
    share_b: float
    ops_a: int
    ops_b: int
    #: op-mix change: sum of |pct_a - pct_b| over the five op types / 2
    mix_shift: float

    @property
    def share_delta(self) -> float:
        return self.share_b - self.share_a


@dataclass
class TraceComparison:
    """Outcome of comparing trace A to trace B."""

    name_a: str
    name_b: str
    total_ops_a: int
    total_ops_b: int
    deltas: list[ClassDelta] = field(default_factory=list)
    only_in_a: list[KVClass] = field(default_factory=list)
    only_in_b: list[KVClass] = field(default_factory=list)

    @property
    def total_variation_distance(self) -> float:
        """TV distance between the two class-share distributions (0..1)."""
        return sum(abs(d.share_a - d.share_b) for d in self.deltas) / 200.0

    def largest_shifts(self, top: int = 5) -> list[ClassDelta]:
        return sorted(self.deltas, key=lambda d: -abs(d.share_delta))[:top]

    def render(self) -> str:
        lines = [
            f"Trace comparison: {self.name_a} ({self.total_ops_a:,} ops) vs "
            f"{self.name_b} ({self.total_ops_b:,} ops)",
            f"class-share TV distance: {self.total_variation_distance:.3f}",
        ]
        header = (
            f"{'Class':<22} {'A %':>7} {'B %':>7} {'Δ share':>8} {'mix shift':>10}"
        )
        lines += [header, "-" * len(header)]
        for delta in self.largest_shifts(8):
            lines.append(
                f"{delta.kv_class.display_name:<22} {delta.share_a:>7.2f} "
                f"{delta.share_b:>7.2f} {delta.share_delta:>+8.2f} "
                f"{delta.mix_shift:>10.3f}"
            )
        if self.only_in_a:
            lines.append(
                "only in A: " + ", ".join(c.display_name for c in self.only_in_a)
            )
        if self.only_in_b:
            lines.append(
                "only in B: " + ", ".join(c.display_name for c in self.only_in_b)
            )
        return "\n".join(lines)


_OPS = (OpType.WRITE, OpType.UPDATE, OpType.READ, OpType.SCAN, OpType.DELETE)


def compare_traces(
    records_a: Iterable[TraceRecord],
    records_b: Iterable[TraceRecord],
    name_a: str = "A",
    name_b: str = "B",
    analyzers: Optional[tuple[OpDistAnalyzer, OpDistAnalyzer]] = None,
) -> TraceComparison:
    """Compare two traces' per-class operation distributions.

    Pre-built analyzers can be supplied via ``analyzers`` to avoid
    re-consuming large traces.
    """
    if analyzers is not None:
        analyzer_a, analyzer_b = analyzers
    else:
        analyzer_a = OpDistAnalyzer(track_keys=False).consume(records_a)
        analyzer_b = OpDistAnalyzer(track_keys=False).consume(records_b)

    classes_a = set(analyzer_a.observed_classes())
    classes_b = set(analyzer_b.observed_classes())
    comparison = TraceComparison(
        name_a=name_a,
        name_b=name_b,
        total_ops_a=analyzer_a.total_ops,
        total_ops_b=analyzer_b.total_ops,
        only_in_a=sorted(classes_a - classes_b, key=lambda c: c.value),
        only_in_b=sorted(classes_b - classes_a, key=lambda c: c.value),
    )
    for kv_class in sorted(classes_a | classes_b, key=lambda c: c.value):
        dist_a = analyzer_a.distribution(kv_class)
        dist_b = analyzer_b.distribution(kv_class)
        mix_shift = sum(abs(dist_a.pct(op) - dist_b.pct(op)) for op in _OPS) / 200.0
        comparison.deltas.append(
            ClassDelta(
                kv_class=kv_class,
                share_a=analyzer_a.class_share(kv_class),
                share_b=analyzer_b.class_share(kv_class),
                ops_a=dist_a.total,
                ops_b=dist_b.total,
                mix_shift=mix_shift,
            )
        )
    return comparison
