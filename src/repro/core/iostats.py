"""Byte-volume I/O analysis.

The operation-distribution tables count *operations*; the paper's
motivating concern is *I/O cost*, which also depends on how many bytes
each operation moves.  This analyzer aggregates per-class byte volumes
from the trace's value sizes:

* bytes read / written / scanned per class;
* the byte-weighted view of the dominant classes (small-value classes
  like TxLookup shrink, large-value classes like BlockBody grow);
* read/write byte ratios per class and trace-wide.

Keys count toward moved bytes too (a put writes key+value; a read's
request carries the key) so tiny-value classes are not free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.core.classes import CLASS_LIST, NUM_CLASSES, KVClass, classify_key
from repro.core.trace import OpType, TraceRecord

if TYPE_CHECKING:
    from repro.core.columnar import TraceChunk


@dataclass
class ClassIOStats:
    """Byte volumes for one class."""

    kv_class: KVClass
    bytes_read: int = 0
    bytes_written: int = 0
    bytes_deleted_keys: int = 0
    bytes_scanned: int = 0
    ops: int = 0

    @property
    def total_bytes(self) -> int:
        return (
            self.bytes_read
            + self.bytes_written
            + self.bytes_deleted_keys
            + self.bytes_scanned
        )

    @property
    def mean_bytes_per_op(self) -> float:
        return self.total_bytes / self.ops if self.ops else 0.0


class IOStatsAnalyzer:
    """Aggregates per-class byte volumes from a trace."""

    #: Partial-aggregate cache version: bump whenever consume_chunk/merge
    #: semantics change, so stale cached partials are never reused.
    CACHE_VERSION = 1

    def __init__(self) -> None:
        self._stats: dict[KVClass, ClassIOStats] = {}

    def consume(self, records: Iterable[TraceRecord]) -> "IOStatsAnalyzer":
        for record in records:
            kv_class = classify_key(record.key)
            stats = self._stats.get(kv_class)
            if stats is None:
                stats = ClassIOStats(kv_class)
                self._stats[kv_class] = stats
            stats.ops += 1
            key_len = len(record.key)
            op = record.op
            if op is OpType.READ:
                stats.bytes_read += key_len + record.value_size
            elif op is OpType.SCAN:
                stats.bytes_scanned += key_len + record.value_size
            elif op is OpType.DELETE:
                stats.bytes_deleted_keys += key_len
            else:  # write / update
                stats.bytes_written += key_len + record.value_size
        return self

    def consume_chunk(self, chunk: "TraceChunk") -> "IOStatsAnalyzer":
        """Columnar equivalent of :meth:`consume` for one chunk.

        Byte volumes are reduced with class-id ``bincount``s (weighted
        by key+value sizes); exact integer results because all sums stay
        far below 2**53.
        """
        if len(chunk) == 0:
            return self
        class_ids = chunk.class_ids.astype(np.int64)
        ops = chunk.ops
        key_lens = chunk.key_lens.astype(np.int64)[chunk.key_ids]
        moved = key_lens + chunk.value_sizes.astype(np.int64)

        ops_per_class = np.bincount(class_ids, minlength=NUM_CLASSES)
        read_mask = ops == OpType.READ
        scan_mask = ops == OpType.SCAN
        delete_mask = ops == OpType.DELETE
        put_mask = (ops == OpType.WRITE) | (ops == OpType.UPDATE)
        bytes_read = np.bincount(
            class_ids[read_mask], weights=moved[read_mask], minlength=NUM_CLASSES
        )
        bytes_scanned = np.bincount(
            class_ids[scan_mask], weights=moved[scan_mask], minlength=NUM_CLASSES
        )
        bytes_deleted = np.bincount(
            class_ids[delete_mask],
            weights=key_lens[delete_mask],
            minlength=NUM_CLASSES,
        )
        bytes_written = np.bincount(
            class_ids[put_mask], weights=moved[put_mask], minlength=NUM_CLASSES
        )
        for cid in np.nonzero(ops_per_class)[0].tolist():
            kv_class = CLASS_LIST[cid]
            stats = self._stats.get(kv_class)
            if stats is None:
                stats = ClassIOStats(kv_class)
                self._stats[kv_class] = stats
            stats.ops += int(ops_per_class[cid])
            stats.bytes_read += int(bytes_read[cid])
            stats.bytes_scanned += int(bytes_scanned[cid])
            stats.bytes_deleted_keys += int(bytes_deleted[cid])
            stats.bytes_written += int(bytes_written[cid])
        return self

    def merge(self, other: "IOStatsAnalyzer") -> "IOStatsAnalyzer":
        """Fold another analyzer's partial byte volumes into this one."""
        for kv_class, theirs in other._stats.items():
            stats = self._stats.get(kv_class)
            if stats is None:
                stats = ClassIOStats(kv_class)
                self._stats[kv_class] = stats
            stats.ops += theirs.ops
            stats.bytes_read += theirs.bytes_read
            stats.bytes_written += theirs.bytes_written
            stats.bytes_deleted_keys += theirs.bytes_deleted_keys
            stats.bytes_scanned += theirs.bytes_scanned
        return self

    def stats_for(self, kv_class: KVClass) -> ClassIOStats:
        return self._stats.get(kv_class, ClassIOStats(kv_class))

    def observed_classes(self) -> list[KVClass]:
        return sorted(self._stats, key=lambda c: -self._stats[c].total_bytes)

    def total_bytes(self) -> int:
        return sum(stats.total_bytes for stats in self._stats.values())

    def total_bytes_read(self) -> int:
        return sum(stats.bytes_read for stats in self._stats.values())

    def total_bytes_written(self) -> int:
        return sum(stats.bytes_written for stats in self._stats.values())

    def byte_share(self, kv_class: KVClass) -> float:
        """Share (%) of all trace bytes moved by ``kv_class``."""
        total = self.total_bytes()
        if total == 0:
            return 0.0
        return 100.0 * self.stats_for(kv_class).total_bytes / total

    def render(self, title: str = "Byte-volume I/O by class", top: int = 12) -> str:
        total = self.total_bytes()
        header = (
            f"{'Class':<22} {'% bytes':>8} {'read MB':>9} {'write MB':>9} "
            f"{'scan MB':>8} {'B/op':>8}"
        )
        lines = [f"{title}: {total / 1e6:.1f} MB moved", header, "-" * len(header)]
        for kv_class in self.observed_classes()[:top]:
            stats = self.stats_for(kv_class)
            lines.append(
                f"{kv_class.display_name:<22} {self.byte_share(kv_class):>8.2f} "
                f"{stats.bytes_read / 1e6:>9.2f} {stats.bytes_written / 1e6:>9.2f} "
                f"{stats.bytes_scanned / 1e6:>8.2f} {stats.mean_bytes_per_op:>8.1f}"
            )
        return "\n".join(lines)
