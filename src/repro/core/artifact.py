"""Artifact-compatible output writers.

The paper's released analysis tools (github.com/adslabcuhk/geth_analysis)
emit plain-text result files with specific names and layouts.  This
module writes our analyses in the same formats, so downstream scripts
written against the original artifact work unchanged:

* ``kvSizeDistribution/<class>.txt`` — one ``<size> <count>`` line per
  distinct KV size (the ``countKVSizeDistribution`` tool's output);
* ``mergedKVOpDistribution/<class>_<op>_with_key_dis.txt`` — one
  ``<hexkey> <count>`` line per key, for each class x operation type
  (the ``kvOpDistributionAnalysis.sh`` output);
* ``readCorrelationOutput`` / ``updateCorrelationOutput`` —
  ``freq-category-<distance>.log`` (per class pair: total correlated
  count), ``freq-sorted-<distance>.log`` (key pairs sorted by
  frequency), and ``Dist-<distance>-<classA>-<classB>-freq.log``
  (``<frequency> <num_key_pairs>`` histogram lines for one class pair).
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.core.correlation import DistanceResult
from repro.core.opdist import OpDistAnalyzer
from repro.core.sizes import SizeAnalyzer
from repro.core.trace import OpType

_OP_NAMES = {
    OpType.WRITE: "write",
    OpType.UPDATE: "update",
    OpType.READ: "read",
    OpType.DELETE: "delete",
    OpType.SCAN: "scan",
}


def write_kv_size_distribution(
    sizes: SizeAnalyzer, outdir: Union[str, Path]
) -> list[Path]:
    """Write per-class ``<size> <count>`` files (kvSizeDistribution)."""
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    written = []
    for kv_class in sizes.observed_classes():
        path = outdir / f"{kv_class.display_name}.txt"
        with open(path, "w", encoding="ascii") as stream:
            for size, count in sizes.size_distribution(kv_class):
                stream.write(f"{size} {count}\n")
        written.append(path)
    return written


def read_kv_size_distribution(path: Union[str, Path]) -> list[tuple[int, int]]:
    """Parse one kvSizeDistribution file back into (size, count) points."""
    points = []
    with open(path, "r", encoding="ascii") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            size_str, count_str = line.split()
            points.append((int(size_str), int(count_str)))
    return points


def write_op_distribution(
    opdist: OpDistAnalyzer, outdir: Union[str, Path]
) -> list[Path]:
    """Write ``<class>_<op>_with_key_dis.txt`` files (mergedKVOpDistribution)."""
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    written = []
    for kv_class in opdist.observed_classes():
        activity = opdist.activity(kv_class)
        per_op = {
            OpType.READ: activity.read_counts,
            OpType.WRITE: activity.write_counts,
            OpType.UPDATE: activity.update_counts,
            OpType.DELETE: activity.delete_counts,
        }
        for op, counts in per_op.items():
            if not counts:
                continue
            name = f"{kv_class.display_name}_{_OP_NAMES[op]}_with_key_dis.txt"
            path = outdir / name
            with open(path, "w", encoding="ascii") as stream:
                for key, count in sorted(counts.items()):
                    stream.write(f"{key.hex()} {count}\n")
            written.append(path)
    return written


def write_correlation_output(
    results: dict[int, DistanceResult], outdir: Union[str, Path]
) -> list[Path]:
    """Write the correlation tool's three file families."""
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    written = []
    for distance, result in sorted(results.items()):
        # freq-category-<distance>.log: per class pair totals.
        category_path = outdir / f"freq-category-{distance}.log"
        with open(category_path, "w", encoding="ascii") as stream:
            for pair, count in sorted(
                result.class_pair_counts.items(), key=lambda kv: -kv[1]
            ):
                stream.write(
                    f"{pair[0].display_name}-{pair[1].display_name} {count}\n"
                )
        written.append(category_path)

        # freq-sorted-<distance>.log: class pairs sorted by max key-pair
        # frequency (the artifact sorts correlated pairs by frequency).
        sorted_path = outdir / f"freq-sorted-{distance}.log"
        with open(sorted_path, "w", encoding="ascii") as stream:
            ranked = sorted(
                result.frequency_histograms.items(),
                key=lambda kv: -max(kv[1]),
            )
            for pair, histogram in ranked:
                stream.write(
                    f"{pair[0].display_name}-{pair[1].display_name} "
                    f"{max(histogram)}\n"
                )
        written.append(sorted_path)

        # Dist-<d>-<classA>-<classB>-freq.log: frequency histograms.
        for pair, histogram in result.frequency_histograms.items():
            name = (
                f"Dist-{distance}-{pair[0].display_name}-"
                f"{pair[1].display_name}-freq.log"
            )
            path = outdir / name
            with open(path, "w", encoding="ascii") as stream:
                for frequency, num_pairs in sorted(histogram.items()):
                    stream.write(f"{frequency} {num_pairs}\n")
            written.append(path)
    return written
