"""Persistent per-chunk partial-aggregate cache for trace analysis.

The analysis workloads behind the paper's tables re-scan the same trace
corpus over and over — after appending new chunks, after tweaking a
report, in CI.  Every v2 chunk is immutable once written and every
analyzer in :data:`~repro.core.parallel.ANALYZER_FACTORIES` already
factors through a ``consume_chunk`` / ``merge`` partial-aggregate
contract, so the per-chunk partials are perfect cache material: a warm
re-run only *reads* each chunk (to compute its CRC) and merges cached
partials instead of re-deriving them.

Cache key
    ``(chunk payload CRC32, analyzer name, analyzer CACHE_VERSION,
    cache format version, track_keys)``.  The CRC is always the one
    *computed* from the bytes just read — the stored CRC field is used
    only as a cheap probe hint and is re-verified before any cached
    partial is served — so a corrupted or rewritten chunk can never
    alias a stale entry.  Bumping an analyzer's ``CACHE_VERSION`` (or
    :data:`CACHE_FORMAT_VERSION`) orphans its old entries.

On-disk entry format (one file per entry, name = SHA-256 of the key)::

    "EKVA" format_version(u8) key_len(u16) payload_crc32(u32)
    key(utf-8) payload(pickled analyzer partial)

Entries are written to a temp file and published with an atomic
``os.replace``; a reader can never observe a torn entry.  Anything that
fails validation (magic, version, key echo, payload CRC, unpickling) is
deleted and treated as a miss.  Total size is bounded: after each store
the least-recently-used entries (hits refresh mtime) are evicted until
the directory fits ``max_bytes``.

:func:`analyze_trace_cached` is the cache-aware analysis driver;
:func:`analyze_trace_maybe_cached` is the drop-in front door that falls
back to :func:`~repro.core.parallel.analyze_trace` whenever the cache
is disabled or the source is not a footer-indexed v2 trace file.
"""

from __future__ import annotations

import hashlib
import itertools
import logging
import os
import pickle
import struct
import threading
import zlib
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.columnar import DEFAULT_CHUNK_SIZE
from repro.core.parallel import (
    ANALYZER_FACTORIES,
    DEFAULT_ANALYZERS,
    RetryPolicy,
    TraceSource,
    WorkerFault,
    _make_analyzers,
    _split_shards,
    analyze_trace,
    prefetch_raw_chunks,
)
from repro.core.trace import RandomAccessChunkReader, read_trace_footer
from repro.errors import AnalysisError, TraceFormatError
from repro.obs.registry import MetricsRegistry

_LOG = logging.getLogger("repro.aggcache")

#: Version of the on-disk entry format *and* of the cache key scheme;
#: bumping it invalidates every existing entry.
CACHE_FORMAT_VERSION = 1

_ENTRY_MAGIC = b"EKVA"
_ENTRY_HEADER = struct.Struct("<HI")  # key length, payload crc32
_ENTRY_SUFFIX = ".agg"

#: Default size bound for a cache directory.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Process-wide monotonic sequence for temp-file names.  A per-instance
#: counter is not enough: two :class:`AggregateCache` objects in the
#: same process (e.g. two server jobs, or two threads in a test) share
#: the pid and would both start at 0, so concurrent publishes of the
#: same key could open the *same* temp file and interleave their writes
#: — publishing a torn blob and making the loser's ``os.replace`` fail.
#: ``itertools.count`` is atomic under the GIL; combined with the
#: thread id the temp name is unique per in-flight write.
_TMP_SEQ = itertools.count(1)


def default_cache_dir() -> Path:
    """The cache directory used when none is given explicitly.

    ``REPRO_CACHE_DIR`` overrides; otherwise ``$XDG_CACHE_HOME/repro``
    (or ``~/.cache/repro``) ``/aggcache``.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "aggcache"


def analyzer_cache_version(name: str, track_keys: bool = True) -> int:
    """The ``CACHE_VERSION`` declared by analyzer ``name`` (0 if none)."""
    return int(getattr(ANALYZER_FACTORIES[name](track_keys), "CACHE_VERSION", 0))


class AggregateCache:
    """Bounded, persistent store of pickled per-chunk analyzer partials.

    Safe to share a directory between processes: entries are immutable
    once published (atomic rename), and every read fully validates the
    entry before trusting it.  Instrumentation lands in ``registry``
    (pass the process-wide one to surface it in ``repro stats``).
    """

    def __init__(
        self,
        directory: Union[str, Path, None] = None,
        max_bytes: int = DEFAULT_MAX_BYTES,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if registry is None:
            from repro.obs import get_registry

            registry = get_registry()
        self.directory = Path(directory) if directory is not None else default_cache_dir()
        if self.directory.exists():
            if not self.directory.is_dir():
                raise ValueError(
                    f"cache directory {self.directory} exists but is not a directory"
                )
            if not os.access(self.directory, os.R_OK | os.W_OK | os.X_OK):
                raise ValueError(f"cache directory {self.directory} is not accessible")
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = int(max_bytes)
        self._hits = registry.counter(
            "repro_aggcache_hits_total", help="Partial-aggregate cache hits"
        )
        self._misses = registry.counter(
            "repro_aggcache_misses_total", help="Partial-aggregate cache misses"
        )
        self._stores = registry.counter(
            "repro_aggcache_stores_total", help="Partial-aggregate cache entries written"
        )
        self._evictions = registry.counter(
            "repro_aggcache_evictions_total",
            help="Partial-aggregate cache entries evicted (LRU size bound)",
        )
        self._invalid = registry.counter(
            "repro_aggcache_invalid_total",
            help="Partial-aggregate cache entries rejected by validation",
        )
        self._read_bytes = registry.counter(
            "repro_aggcache_read_bytes_total", help="Bytes read from the cache"
        )
        self._written_bytes = registry.counter(
            "repro_aggcache_written_bytes_total", help="Bytes written to the cache"
        )
        self._entries_gauge = registry.gauge(
            "repro_aggcache_entries", help="Partial-aggregate cache entry count"
        )
        self._bytes_gauge = registry.gauge(
            "repro_aggcache_bytes", help="Partial-aggregate cache total size in bytes"
        )
        #: entry file name -> size; lazily initialized from a directory
        #: scan, then maintained incrementally (stale entries tolerated).
        self._sizes: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------
    # keys and paths
    # ------------------------------------------------------------------

    @staticmethod
    def entry_key(crc: int, name: str, version: int, track_keys: bool) -> str:
        """The cache key for one (chunk, analyzer, config) combination."""
        return (
            f"{crc & 0xFFFFFFFF:08x}:{name}:v{int(version)}"
            f":f{CACHE_FORMAT_VERSION}:tk{int(bool(track_keys))}"
        )

    def _path_for(self, key: str) -> Path:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:40]
        return self.directory / f"{digest}{_ENTRY_SUFFIX}"

    # ------------------------------------------------------------------
    # get / put
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[object]:
        """The cached partial for ``key``, or ``None`` on miss.

        A hit refreshes the entry's mtime (the LRU clock).  Entries
        failing any validation step are deleted and count as both
        ``invalid`` and a miss — never served.
        """
        path = self._path_for(key)
        try:
            data = path.read_bytes()
        except OSError:
            self._misses.inc()
            return None
        partial = self._decode(data, key)
        if partial is None:
            self._invalid.inc()
            self._misses.inc()
            self._remove(path)
            return None
        self._hits.inc()
        self._read_bytes.inc(len(data))
        try:
            os.utime(path)
        except OSError:
            pass
        return partial

    def _decode(self, data: bytes, key: str) -> Optional[object]:
        prefix = len(_ENTRY_MAGIC) + 1
        if len(data) < prefix + _ENTRY_HEADER.size:
            return None
        if data[: len(_ENTRY_MAGIC)] != _ENTRY_MAGIC:
            return None
        if data[len(_ENTRY_MAGIC)] != CACHE_FORMAT_VERSION:
            return None
        key_len, payload_crc = _ENTRY_HEADER.unpack_from(data, prefix)
        key_start = prefix + _ENTRY_HEADER.size
        stored_key = data[key_start : key_start + key_len]
        payload = data[key_start + key_len :]
        # The key echo defends against SHA-prefix collisions and any
        # future change to the key scheme that reuses a file name.
        if stored_key.decode("utf-8", "replace") != key:
            return None
        if zlib.crc32(payload) != payload_crc:
            return None
        try:
            return pickle.loads(payload)
        except Exception:
            return None

    def put(self, key: str, partial: object) -> None:
        """Persist one partial atomically (write temp file, rename)."""
        payload = pickle.dumps(partial, protocol=pickle.HIGHEST_PROTOCOL)
        key_bytes = key.encode("utf-8")
        blob = b"".join(
            (
                _ENTRY_MAGIC,
                bytes([CACHE_FORMAT_VERSION]),
                _ENTRY_HEADER.pack(len(key_bytes), zlib.crc32(payload)),
                key_bytes,
                payload,
            )
        )
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path_for(key)
        tmp = self.directory / (
            f".{path.stem}.{os.getpid()}.{threading.get_ident()}"
            f".{next(_TMP_SEQ)}.tmp"
        )
        tmp.write_bytes(blob)
        os.replace(tmp, path)
        self._stores.inc()
        self._written_bytes.inc(len(blob))
        self._index()[path.name] = len(blob)
        self._maybe_evict()
        self._publish_gauges()

    # ------------------------------------------------------------------
    # size bounding / maintenance
    # ------------------------------------------------------------------

    def _index(self) -> Dict[str, int]:
        if self._sizes is None:
            sizes: Dict[str, int] = {}
            try:
                with os.scandir(self.directory) as it:
                    for entry in it:
                        if entry.name.endswith(_ENTRY_SUFFIX) and entry.is_file():
                            sizes[entry.name] = entry.stat().st_size
            except OSError:
                pass
            self._sizes = sizes
        return self._sizes

    def _remove(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
        if self._sizes is not None:
            self._sizes.pop(path.name, None)

    def _maybe_evict(self) -> None:
        sizes = self._index()
        total = sum(sizes.values())
        if total <= self.max_bytes:
            return
        aged: List[Tuple[float, str, int]] = []
        for name, size in sizes.items():
            try:
                mtime = (self.directory / name).stat().st_mtime
            except OSError:
                mtime = 0.0
            aged.append((mtime, name, size))
        aged.sort()
        for _, name, size in aged:
            if total <= self.max_bytes:
                break
            self._remove(self.directory / name)
            self._evictions.inc()
            total -= size

    def _publish_gauges(self) -> None:
        sizes = self._index()
        self._entries_gauge.set(len(sizes))
        self._bytes_gauge.set(sum(sizes.values()))

    def stats(self) -> Tuple[int, int]:
        """(entry count, total bytes) of the cache directory, rescanned."""
        self._sizes = None
        sizes = self._index()
        self._publish_gauges()
        return len(sizes), sum(sizes.values())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        self._sizes = None
        removed = 0
        for name in list(self._index()):
            self._remove(self.directory / name)
            removed += 1
        self._publish_gauges()
        return removed


# ---------------------------------------------------------------------------
# cache-aware analysis
# ---------------------------------------------------------------------------


def _compute_partials_job(
    job: Tuple[str, bool, bool, Tuple[str, ...], Tuple[Tuple[int, int, Tuple[str, ...]], ...]]
) -> List[Tuple[int, Optional[int], Dict[str, object]]]:
    """Pool worker: per-chunk partials for the cache-aware parallel path.

    ``job`` is ``(path, lenient, track_keys, names, entries)`` with each
    entry ``(slot, offset, missing analyzer names)``.  Returns
    ``(slot, computed payload crc | None, {name: partial})`` per entry —
    chunk-granular partials (unlike :func:`~repro.core.parallel._analyze_shard`'s
    shard-merged ones) so the parent can both cache them and merge them
    in global footer order.
    """
    path, lenient, track_keys, _names, entries = job
    out: List[Tuple[int, Optional[int], Dict[str, object]]] = []
    with RandomAccessChunkReader(path, lenient=lenient) as reader:
        for slot, offset, missing in entries:
            raw = reader.read_raw(offset)
            if raw is None:  # lenient: the chunk is corrupt, drop the slot
                out.append((slot, None, {}))
                continue
            try:
                chunk = raw.parse()
            except TraceFormatError:
                if not lenient:
                    raise
                out.append((slot, None, {}))
                continue
            partials: Dict[str, object] = {}
            for name in missing:
                analyzer = ANALYZER_FACTORIES[name](track_keys)
                analyzer.consume_chunk(chunk)
                partials[name] = analyzer
            out.append((slot, raw.crc, partials))
    return out


def _run_miss_jobs(
    jobs: Sequence[tuple], workers: int
) -> List[Tuple[int, Optional[int], Dict[str, object]]]:
    """Run miss-compute jobs on a pool; fall back in-process on pool death."""
    results: List[Tuple[int, Optional[int], Dict[str, object]]] = []
    broken: List[tuple] = []
    with ProcessPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
        futures = [(job, pool.submit(_compute_partials_job, job)) for job in jobs]
        for job, future in futures:
            try:
                results.extend(future.result())
            except BrokenProcessPool:
                broken.append(job)
            except Exception as exc:
                raise AnalysisError(
                    f"cache-miss compute failed in a worker process: {exc}"
                ) from exc
    for job in broken:  # a dead worker loses the pool; redo its job here
        results.extend(_compute_partials_job(job))
    return results


def analyze_trace_cached(
    path: Union[str, Path],
    *,
    cache: AggregateCache,
    workers: int = 1,
    analyzers: Sequence[str] = DEFAULT_ANALYZERS,
    track_keys: bool = True,
    lenient: bool = False,
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, object]:
    """Analyze a footer-indexed v2 trace through the partial cache.

    Every chunk either *hits* — all requested analyzers have a cached
    partial under the chunk's verified payload CRC — or is recomputed
    from the freshly read bytes (and its partials stored for next time).
    Partials are merged in footer order whatever their provenance, so
    order-sensitive analyzers (blockstats) see chunks exactly as a
    serial scan would, and warm results are byte-identical to cold ones.

    ``workers=1`` pipelines: a prefetch thread reads + CRCs chunks off
    one handle while this thread serves cache lookups and computes
    misses.  ``workers>1`` probes each chunk's *stored* CRC first (five
    bytes) and only pays a full read for probe hits — which are then
    verified against the computed CRC before anything cached is served —
    while misses fan out to a process pool in contiguous groups.

    Raises :class:`~repro.errors.TraceFormatError` if ``path`` has no
    v2 footer; use :func:`analyze_trace_maybe_cached` to fall back to
    the uncached path automatically.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if registry is None:
        from repro.obs import get_registry

        registry = get_registry()
    names = tuple(analyzers)
    probes = _make_analyzers(names, track_keys)  # validates names
    versions = {
        name: int(getattr(probe, "CACHE_VERSION", 0)) for name, probe in probes.items()
    }
    footer = read_trace_footer(path)
    path = str(path)

    #: per footer chunk: {name: partial} (filled as hits/computes land),
    #: or None when a lenient read dropped the chunk.
    slots: List[Optional[Dict[str, object]]] = []
    counts: List[int] = []
    #: (slot, offset, names still to compute) for the parallel path
    misses: List[Tuple[int, int, Tuple[str, ...]]] = []

    def lookup(crc: int) -> Tuple[Dict[str, object], Tuple[str, ...]]:
        found: Dict[str, object] = {}
        missing: List[str] = []
        for name in names:
            got = cache.get(cache.entry_key(crc, name, versions[name], track_keys))
            if got is None:
                missing.append(name)
            else:
                found[name] = got
        return found, tuple(missing)

    if workers == 1:
        prefetcher = prefetch_raw_chunks(
            path, [offset for offset, _ in footer.chunks], lenient=lenient, registry=registry
        )
        try:
            for offset, raw in prefetcher:
                if raw is None:
                    slots.append(None)
                    counts.append(0)
                    continue
                partials, missing = lookup(raw.crc)
                if missing:
                    try:
                        chunk = raw.parse()
                    except TraceFormatError:
                        if not lenient:
                            raise
                        slots.append(None)
                        counts.append(0)
                        continue
                    for name in missing:
                        analyzer = ANALYZER_FACTORIES[name](track_keys)
                        analyzer.consume_chunk(chunk)
                        cache.put(
                            cache.entry_key(raw.crc, name, versions[name], track_keys),
                            analyzer,
                        )
                        partials[name] = analyzer
                slots.append(partials)
                counts.append(raw.num_records)
        finally:
            prefetcher.close()
    else:
        # Probe phase: stored CRCs are 5-byte reads, so a cold parallel
        # run leaves the heavy reading to the workers; a probe hit pays
        # one full read here and is served only after the computed CRC
        # confirms the stored one (read_raw raises/returns None on
        # mismatch — a forged stored CRC cannot reach the cache).
        with RandomAccessChunkReader(path, lenient=lenient) as reader:
            for offset, count in footer.chunks:
                slot = len(slots)
                stored = reader.stored_crc(offset)
                if stored is not None:
                    partials, missing = lookup(stored)
                    if not missing:
                        raw = reader.read_raw(offset)
                        if raw is None:
                            slots.append(None)
                            counts.append(0)
                            continue
                        slots.append(partials)
                        counts.append(raw.num_records)
                        continue
                slots.append({})
                counts.append(count)
                misses.append((slot, offset, names))
        if misses:
            groups = _split_shards(misses, workers)
            jobs = [
                (path, lenient, track_keys, names, tuple(group)) for group in groups
            ]
            for slot, crc, partials in _run_miss_jobs(jobs, workers):
                if crc is None:
                    slots[slot] = None
                    counts[slot] = 0
                    continue
                target = slots[slot]
                assert target is not None
                for name, partial in partials.items():
                    cache.put(
                        cache.entry_key(crc, name, versions[name], track_keys), partial
                    )
                    target[name] = partial

    chunk_counter = registry.counter(
        "repro_analysis_chunks_total", help="Trace chunks consumed by analysis"
    )
    record_counter = registry.counter(
        "repro_analysis_records_total", help="Trace records consumed by analysis"
    )
    merged: Optional[Dict[str, object]] = None
    for index, partials in enumerate(slots):
        if partials is None:
            continue
        chunk_counter.inc()
        record_counter.inc(counts[index])
        if merged is None:
            merged = {name: partials[name] for name in names}
        else:
            for name in names:
                merged[name].merge(partials[name])
    if merged is None:
        return _make_analyzers(names, track_keys)
    return merged


def analyze_trace_maybe_cached(
    source: TraceSource,
    *,
    cache: Optional[AggregateCache] = None,
    workers: int = 1,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    analyzers: Sequence[str] = DEFAULT_ANALYZERS,
    track_keys: bool = True,
    lenient: bool = False,
    retry: Optional[RetryPolicy] = None,
    fault: Optional[WorkerFault] = None,
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, object]:
    """Cache-aware front door for trace analysis.

    Routes to :func:`analyze_trace_cached` when a cache is supplied and
    ``source`` is a footer-indexed v2 trace file; everything else (no
    cache, v1 files, in-memory chunks or record iterables) falls back to
    :func:`~repro.core.parallel.analyze_trace` unchanged.
    """
    if cache is not None and isinstance(source, (str, Path)):
        try:
            read_trace_footer(source)
        except (TraceFormatError, OSError):
            pass
        else:
            return analyze_trace_cached(
                source,
                cache=cache,
                workers=workers,
                analyzers=analyzers,
                track_keys=track_keys,
                lenient=lenient,
                registry=registry,
            )
    return analyze_trace(
        source,
        workers=workers,
        chunk_size=chunk_size,
        analyzers=analyzers,
        track_keys=track_keys,
        lenient=lenient,
        retry=retry,
        fault=fault,
        registry=registry,
    )
