"""ASCII plotting for the paper's figures.

The paper's figures are log-log scatter/series plots; this module
renders the same data as terminal charts so the examples can *show*
Figures 2-7 rather than only printing point lists.  No plotting
dependency is needed — output is plain text.

Two chart kinds:

* :func:`scatter` — log-log point cloud (Figures 2/3/5/7 panels);
* :func:`multi_series` — one symbol per labelled series over a shared
  x-axis (Figures 4/6 distance curves).
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

_SERIES_SYMBOLS = "ox+*#@%&"


def _log_position(value: float, low: float, high: float, cells: int) -> int:
    """Map ``value`` into [0, cells) on a log scale (0 maps to cell 0)."""
    if value <= 0:
        return 0
    log_low = math.log10(max(low, 0.5))
    log_high = math.log10(max(high, 1.0))
    if log_high <= log_low:
        return 0
    fraction = (math.log10(value) - log_low) / (log_high - log_low)
    return min(cells - 1, max(0, int(fraction * (cells - 1) + 0.5)))


def _axis_labels(low: float, high: float, width: int) -> str:
    left = f"{low:g}"
    right = f"{high:g}"
    middle = f"{math.sqrt(max(low, 0.5) * max(high, 1.0)):.0f}"
    pad = max(1, width - len(left) - len(middle) - len(right))
    return left + " " * (pad // 2) + middle + " " * (pad - pad // 2) + right


def scatter(
    points: Sequence[tuple[float, float]],
    title: str = "",
    width: int = 64,
    height: int = 16,
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render (x, y) points as a log-log ASCII scatter plot."""
    if not points:
        return f"{title}\n(no data)"
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        column = _log_position(x, x_low, x_high, width)
        row = _log_position(y, y_low, y_high, height)
        grid[height - 1 - row][column] = "o"

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_high:g}"
    bottom_label = f"{y_low:g}"
    label_width = max(len(top_label), len(bottom_label), len(ylabel))
    for index, row_cells in enumerate(grid):
        if index == 0:
            label = top_label
        elif index == height - 1:
            label = bottom_label
        elif index == height // 2 and ylabel:
            label = ylabel[:label_width]
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |" + "".join(row_cells))
    lines.append(" " * label_width + " +" + "-" * width)
    lines.append(" " * label_width + "  " + _axis_labels(x_low, x_high, width))
    if xlabel:
        lines.append(" " * label_width + "  " + xlabel.center(width))
    return "\n".join(lines)


def multi_series(
    series: Mapping[str, Sequence[tuple[float, float]]],
    title: str = "",
    width: int = 64,
    height: int = 16,
    xlabel: str = "",
    log_y: bool = True,
) -> str:
    """Render labelled series on shared axes, one symbol per series.

    X positions use the rank of each x value (the paper's distance axes
    are discrete: 0, 1, 4, ..., 1024); Y is log-scaled by default.
    """
    cleaned = {name: list(pts) for name, pts in series.items() if pts}
    if not cleaned:
        return f"{title}\n(no data)"
    all_x = sorted({x for pts in cleaned.values() for x, _ in pts})
    x_index = {x: i for i, x in enumerate(all_x)}
    all_y = [y for pts in cleaned.values() for _, y in pts]
    y_low, y_high = min(all_y), max(all_y)
    grid = [[" "] * width for _ in range(height)]

    symbol_of = {}
    for index, name in enumerate(cleaned):
        symbol_of[name] = _SERIES_SYMBOLS[index % len(_SERIES_SYMBOLS)]

    for name, pts in cleaned.items():
        symbol = symbol_of[name]
        for x, y in pts:
            column = (
                x_index[x] * (width - 1) // max(1, len(all_x) - 1)
                if len(all_x) > 1
                else 0
            )
            if log_y:
                row = _log_position(y, y_low, y_high, height)
            else:
                span = (y_high - y_low) or 1.0
                row = min(height - 1, int((y - y_low) / span * (height - 1) + 0.5))
            cell = grid[height - 1 - row][column]
            grid[height - 1 - row][column] = "." if cell not in (" ", symbol) else symbol

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_high:g}"
    bottom_label = f"{y_low:g}"
    label_width = max(len(top_label), len(bottom_label))
    for index, row_cells in enumerate(grid):
        if index == 0:
            label = top_label
        elif index == height - 1:
            label = bottom_label
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |" + "".join(row_cells))
    lines.append(" " * label_width + " +" + "-" * width)
    ticks = " ".join(f"{x:g}" for x in all_x)
    lines.append(" " * label_width + "  x: " + ticks + (f"  ({xlabel})" if xlabel else ""))
    legend = "   ".join(f"{symbol_of[name]} {name}" for name in cleaned)
    lines.append(" " * label_width + "  " + legend + "  (. = overlap)")
    return "\n".join(lines)
