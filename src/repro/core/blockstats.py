"""Per-block trace statistics.

The paper's correlation section rests on a structural observation:
"Geth batches and flushes writes (updates) to the KV store at the end
of verifying each block, while reads are triggered on-demand during
transaction processing" (§IV-C).  This module measures that structure
directly from a trace:

* per-block operation counts and read/put phase sizes;
* the *phase separation score* — how cleanly a block's reads precede
  its puts (1.0 = every read before every put, 0.5 = fully shuffled);
* burstiness of the put stream (puts arrive in one batch per block).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.core.trace import OpType, TraceRecord

if TYPE_CHECKING:
    from repro.core.columnar import TraceChunk


@dataclass
class BlockProfile:
    """Operation profile of one block."""

    block: int
    reads: int = 0
    puts: int = 0  # writes + updates
    deletes: int = 0
    scans: int = 0
    #: reads that occur after the first put of the block
    reads_after_first_put: int = 0
    _saw_put: bool = field(default=False, repr=False)

    @property
    def total(self) -> int:
        return self.reads + self.puts + self.deletes + self.scans

    @property
    def phase_separation(self) -> float:
        """Fraction of reads that precede the block's first put.

        1.0 means the block is perfectly two-phase (all reads during
        execution, then one write burst); lower values mean interleaved
        I/O.
        """
        if self.reads == 0:
            return 1.0
        return 1.0 - self.reads_after_first_put / self.reads


class BlockStatsAnalyzer:
    """Builds per-block profiles from a trace."""

    #: Partial-aggregate cache version: bump whenever consume_chunk/merge
    #: semantics change, so stale cached partials are never reused.
    CACHE_VERSION = 1

    def __init__(self) -> None:
        self._profiles: dict[int, BlockProfile] = {}

    def consume(self, records: Iterable[TraceRecord]) -> "BlockStatsAnalyzer":
        for record in records:
            profile = self._profiles.get(record.block)
            if profile is None:
                profile = BlockProfile(record.block)
                self._profiles[record.block] = profile
            op = record.op
            if op is OpType.READ:
                profile.reads += 1
                if profile._saw_put:
                    profile.reads_after_first_put += 1
            elif op is OpType.SCAN:
                profile.scans += 1
            elif op is OpType.DELETE:
                profile.deletes += 1
                profile._saw_put = True
            else:
                profile.puts += 1
                profile._saw_put = True
        return self

    def consume_chunk(self, chunk: "TraceChunk") -> "BlockStatsAnalyzer":
        """Columnar equivalent of :meth:`consume` for one chunk.

        Records are grouped per block with a stable argsort (so
        within-block trace order is preserved even if blocks interleave)
        and each block's counters are reduced with numpy.  Chunks must
        be fed in trace order for ``reads_after_first_put`` to match the
        record-at-a-time path.
        """
        if len(chunk) == 0:
            return self
        blocks = chunk.blocks
        ops = chunk.ops
        order = np.argsort(blocks, kind="stable")
        sorted_blocks = blocks[order]
        cuts = np.nonzero(np.diff(sorted_blocks))[0] + 1
        starts = np.concatenate(([0], cuts))
        ends = np.concatenate((cuts, [len(sorted_blocks)]))
        for start, end in zip(starts.tolist(), ends.tolist()):
            indices = order[start:end]
            block = int(sorted_blocks[start])
            ops_seg = ops[indices]
            reads = int(np.count_nonzero(ops_seg == OpType.READ))
            scans = int(np.count_nonzero(ops_seg == OpType.SCAN))
            deletes = int(np.count_nonzero(ops_seg == OpType.DELETE))
            puts = int(
                np.count_nonzero(
                    (ops_seg == OpType.WRITE) | (ops_seg == OpType.UPDATE)
                )
            )
            mutating = puts + deletes > 0
            profile = self._profiles.get(block)
            if profile is None:
                profile = BlockProfile(block)
                self._profiles[block] = profile
            if profile._saw_put:
                reads_after = reads
            elif mutating:
                mut_seg = ops_seg != OpType.READ
                mut_seg &= ops_seg != OpType.SCAN
                first_put = int(np.argmax(mut_seg))
                reads_after = int(
                    np.count_nonzero(ops_seg[first_put + 1 :] == OpType.READ)
                )
            else:
                reads_after = 0
            profile.reads += reads
            profile.puts += puts
            profile.deletes += deletes
            profile.scans += scans
            profile.reads_after_first_put += reads_after
            if mutating:
                profile._saw_put = True
        return self

    def merge(self, other: "BlockStatsAnalyzer") -> "BlockStatsAnalyzer":
        """Fold a partial covering a *later* trace shard into this one.

        Shards must be merged in trace order: if this analyzer already
        saw a put for a block, every read the later shard attributes to
        that block occurred after the block's first put.
        """
        for block, theirs in other._profiles.items():
            profile = self._profiles.get(block)
            if profile is None:
                profile = BlockProfile(block)
                self._profiles[block] = profile
            profile.reads_after_first_put += (
                theirs.reads if profile._saw_put else theirs.reads_after_first_put
            )
            profile.reads += theirs.reads
            profile.puts += theirs.puts
            profile.deletes += theirs.deletes
            profile.scans += theirs.scans
            profile._saw_put = profile._saw_put or theirs._saw_put
        return self

    def profiles(self) -> list[BlockProfile]:
        """All block profiles in block order."""
        return [self._profiles[block] for block in sorted(self._profiles)]

    def profile(self, block: int) -> BlockProfile:
        return self._profiles.get(block, BlockProfile(block))

    @property
    def num_blocks(self) -> int:
        return len(self._profiles)

    def mean_ops_per_block(self) -> float:
        profiles = self.profiles()
        if not profiles:
            return 0.0
        return sum(p.total for p in profiles) / len(profiles)

    def mean_phase_separation(self) -> float:
        """Trace-wide mean of the per-block phase separation score."""
        profiles = [p for p in self.profiles() if p.reads]
        if not profiles:
            return 1.0
        return sum(p.phase_separation for p in profiles) / len(profiles)

    def read_share_distribution(self) -> Counter:
        """Histogram of per-block read share, in 10% buckets."""
        histogram: Counter = Counter()
        for profile in self.profiles():
            if profile.total == 0:
                continue
            bucket = min(9, int(10 * profile.reads / profile.total))
            histogram[bucket] += 1
        return histogram

    def busiest_blocks(self, top: int = 5) -> list[BlockProfile]:
        return sorted(self.profiles(), key=lambda p: -p.total)[:top]

    def render(self, title: str = "Per-block profile") -> str:
        lines = [
            f"{title}: {self.num_blocks} blocks, "
            f"{self.mean_ops_per_block():.1f} ops/block, "
            f"phase separation {self.mean_phase_separation():.3f}"
        ]
        for profile in self.busiest_blocks(5):
            lines.append(
                f"  block {profile.block}: {profile.total} ops "
                f"(R {profile.reads} / P {profile.puts} / D {profile.deletes} "
                f"/ S {profile.scans}), separation {profile.phase_separation:.2f}"
            )
        return "\n".join(lines)


def slice_blocks(
    records: Iterable[TraceRecord], start_block: int, end_block: int
) -> list[TraceRecord]:
    """Records with ``start_block <= block < end_block`` (trace sampling).

    The paper's artifact ships sampled traces covering 1,000 of the 1M
    blocks; this is the equivalent slicing operation for our traces.
    """
    return [r for r in records if start_block <= r.block < end_block]
