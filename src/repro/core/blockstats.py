"""Per-block trace statistics.

The paper's correlation section rests on a structural observation:
"Geth batches and flushes writes (updates) to the KV store at the end
of verifying each block, while reads are triggered on-demand during
transaction processing" (§IV-C).  This module measures that structure
directly from a trace:

* per-block operation counts and read/put phase sizes;
* the *phase separation score* — how cleanly a block's reads precede
  its puts (1.0 = every read before every put, 0.5 = fully shuffled);
* burstiness of the put stream (puts arrive in one batch per block).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.trace import MUTATING_OPS, OpType, TraceRecord


@dataclass
class BlockProfile:
    """Operation profile of one block."""

    block: int
    reads: int = 0
    puts: int = 0  # writes + updates
    deletes: int = 0
    scans: int = 0
    #: reads that occur after the first put of the block
    reads_after_first_put: int = 0
    _saw_put: bool = field(default=False, repr=False)

    @property
    def total(self) -> int:
        return self.reads + self.puts + self.deletes + self.scans

    @property
    def phase_separation(self) -> float:
        """Fraction of reads that precede the block's first put.

        1.0 means the block is perfectly two-phase (all reads during
        execution, then one write burst); lower values mean interleaved
        I/O.
        """
        if self.reads == 0:
            return 1.0
        return 1.0 - self.reads_after_first_put / self.reads


class BlockStatsAnalyzer:
    """Builds per-block profiles from a trace."""

    def __init__(self) -> None:
        self._profiles: dict[int, BlockProfile] = {}

    def consume(self, records: Iterable[TraceRecord]) -> "BlockStatsAnalyzer":
        for record in records:
            profile = self._profiles.get(record.block)
            if profile is None:
                profile = BlockProfile(record.block)
                self._profiles[record.block] = profile
            op = record.op
            if op is OpType.READ:
                profile.reads += 1
                if profile._saw_put:
                    profile.reads_after_first_put += 1
            elif op is OpType.SCAN:
                profile.scans += 1
            elif op is OpType.DELETE:
                profile.deletes += 1
                profile._saw_put = True
            else:
                profile.puts += 1
                profile._saw_put = True
        return self

    def profiles(self) -> list[BlockProfile]:
        """All block profiles in block order."""
        return [self._profiles[block] for block in sorted(self._profiles)]

    def profile(self, block: int) -> BlockProfile:
        return self._profiles.get(block, BlockProfile(block))

    @property
    def num_blocks(self) -> int:
        return len(self._profiles)

    def mean_ops_per_block(self) -> float:
        profiles = self.profiles()
        if not profiles:
            return 0.0
        return sum(p.total for p in profiles) / len(profiles)

    def mean_phase_separation(self) -> float:
        """Trace-wide mean of the per-block phase separation score."""
        profiles = [p for p in self.profiles() if p.reads]
        if not profiles:
            return 1.0
        return sum(p.phase_separation for p in profiles) / len(profiles)

    def read_share_distribution(self) -> Counter:
        """Histogram of per-block read share, in 10% buckets."""
        histogram: Counter = Counter()
        for profile in self.profiles():
            if profile.total == 0:
                continue
            bucket = min(9, int(10 * profile.reads / profile.total))
            histogram[bucket] += 1
        return histogram

    def busiest_blocks(self, top: int = 5) -> list[BlockProfile]:
        return sorted(self.profiles(), key=lambda p: -p.total)[:top]

    def render(self, title: str = "Per-block profile") -> str:
        lines = [
            f"{title}: {self.num_blocks} blocks, "
            f"{self.mean_ops_per_block():.1f} ops/block, "
            f"phase separation {self.mean_phase_separation():.3f}"
        ]
        for profile in self.busiest_blocks(5):
            lines.append(
                f"  block {profile.block}: {profile.total} ops "
                f"(R {profile.reads} / P {profile.puts} / D {profile.deletes} "
                f"/ S {profile.scans}), separation {profile.phase_separation:.2f}"
            )
        return "\n".join(lines)


def slice_blocks(
    records: Iterable[TraceRecord], start_block: int, end_block: int
) -> list[TraceRecord]:
    """Records with ``start_block <= block < end_block`` (trace sampling).

    The paper's artifact ships sampled traces covering 1,000 of the 1M
    blocks; this is the equivalent slicing operation for our traces.
    """
    return [r for r in records if start_block <= r.block < end_block]
