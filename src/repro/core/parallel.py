"""Process-parallel sharded trace analysis.

The per-class aggregations behind Tables II-IV and the per-block/byte
statistics are embarrassingly parallel: every analyzer in
:data:`ANALYZER_FACTORIES` exposes a ``consume_chunk`` fast path and a
``merge`` reduction, so a trace can be split into contiguous shards of
columnar chunks, analyzed in worker processes, and reduced in shard
order (ordering matters only for
:class:`~repro.core.blockstats.BlockStatsAnalyzer`, whose
``reads_after_first_put`` accounting is order-sensitive).

Sharding strategies, picked automatically by :func:`analyze_trace`:

* **file shards** — for v2 traces with a footer, workers receive
  ``(path, chunk offsets)`` and read their chunks straight from disk
  (no pickling of trace data);
* **chunk shards** — in-memory chunks are pickled to the pool (used for
  v1 files, record iterables and :class:`ColumnarTrace` inputs);
* **in-process fallback** — ``workers=1`` consumes the chunk stream
  lazily on the calling process, with no multiprocessing involved.

All three produce results identical to the sequential record-at-a-time
reference path (asserted in ``tests/test_parallel.py``).

Worker-death resilience: a worker process that dies (OOM-killed,
segfaulted, machine hiccup) breaks the whole process pool, losing every
in-flight shard.  The scheduler treats that as transient — the affected
shards are requeued onto a fresh pool with exponential backoff (see
:class:`RetryPolicy`), and shards that keep killing their workers fall
back to an in-process serial pass so one poisoned shard cannot sink the
whole analysis.  A worker that instead raises an ordinary exception is
deterministic — retrying would fail identically — so it surfaces
immediately as :class:`~repro.errors.AnalysisError` with the original
exception chained.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, Optional, Sequence, Union

from repro.core.blockstats import BlockStatsAnalyzer
from repro.core.columnar import DEFAULT_CHUNK_SIZE, ColumnarTrace, TraceChunk, chunk_records
from repro.core.iostats import IOStatsAnalyzer
from repro.core.opdist import OpDistAnalyzer
from repro.core.trace import (
    RandomAccessChunkReader,
    TraceRecord,
    open_trace_chunks,
    read_trace_footer,
)
from repro.errors import AnalysisError, TraceFormatError
from repro.obs.registry import MetricsRegistry, NULL_REGISTRY, RegistrySnapshot

#: Analyzer names accepted by :func:`analyze_trace`; each factory takes
#: ``track_keys`` (ignored by analyzers that have no per-key state).
ANALYZER_FACTORIES: Dict[str, Callable[[bool], object]] = {
    "opdist": lambda track_keys: OpDistAnalyzer(track_keys=track_keys),
    "blockstats": lambda track_keys: BlockStatsAnalyzer(),
    "iostats": lambda track_keys: IOStatsAnalyzer(),
}

DEFAULT_ANALYZERS = ("opdist", "blockstats", "iostats")

TraceSource = Union[str, Path, ColumnarTrace, Iterable[TraceRecord]]


@dataclass(frozen=True)
class RetryPolicy:
    """How the scheduler reacts to dying workers.

    A shard whose worker dies is requeued up to ``max_retries`` times,
    sleeping ``backoff_base_s * backoff_factor**attempt`` between
    rounds; when retries are exhausted the shard is analyzed serially in
    the calling process (unless ``serial_fallback`` is off, in which
    case the analysis fails with :class:`~repro.errors.AnalysisError`).
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    serial_fallback: bool = True


@dataclass(frozen=True)
class WorkerFault:
    """Deterministic worker-killer, the test hook for the retry path.

    When a worker picks up the shard with ``shard_index``, it dies via
    ``os._exit`` — the closest in-process analog of an OOM kill, since
    no exception propagates and the pool just loses the process.  Two
    safety latches keep the fault injection honest:

    * the fault only trips in a process other than ``parent_pid``, so
      the serial in-process fallback (and ``workers=1``) can never kill
      the test runner itself;
    * with ``trip_path`` set, the fault trips only while the file can be
      created atomically — the first victim claims it, and retries of
      the same shard survive (models a transient worker death rather
      than a poisoned shard).
    """

    shard_index: int
    parent_pid: int
    trip_path: Optional[str] = None
    exit_code: int = 17

    def maybe_trip(self, shard_index: int) -> None:
        if shard_index != self.shard_index or os.getpid() == self.parent_pid:
            return
        if self.trip_path is not None:
            try:
                fd = os.open(self.trip_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                return
            os.close(fd)
        os._exit(self.exit_code)


#: Default bound on the prefetch queue: deep enough to hide read latency,
#: shallow enough that at most this many decoded chunks are held beyond
#: the one being consumed.
DEFAULT_PREFETCH_DEPTH = 8

_PREFETCH_STOP = object()


class ChunkPrefetcher:
    """Bounded prefetch pipeline: a reader thread feeding the analyzer.

    The phased shape (read a chunk, analyze it, read the next) leaves
    the disk idle during compute and the CPU idle during reads.  This
    iterator overlaps them: a daemon thread walks the footer offsets
    through one :class:`~repro.core.trace.RandomAccessChunkReader`
    (single open handle) and pushes decoded chunks into a bounded queue;
    the consuming thread pops chunks in trace order while the next reads
    are already in flight.  The bound caps memory: at most
    ``depth`` chunks are buffered ahead of the consumer.

    With ``raw=True`` the queue carries ``(offset, RawChunk | None)``
    pairs instead of decoded chunks — the partial-aggregate cache uses
    this to get each chunk's payload CRC without paying the decode for
    chunks it already has partials for.

    Metrics (when a ``registry`` is supplied): a
    ``repro_prefetch_chunks_total`` counter and a
    ``repro_prefetch_queue_depth`` gauge sampled after each enqueue.
    Reader-thread errors re-raise in the consumer at the point of
    iteration; :meth:`close` (also called when iteration ends) stops the
    reader and joins it.
    """

    def __init__(
        self,
        path: Union[str, Path],
        offsets: Sequence[int],
        *,
        lenient: bool = False,
        depth: int = DEFAULT_PREFETCH_DEPTH,
        raw: bool = False,
        registry: MetricsRegistry = NULL_REGISTRY,
    ) -> None:
        if depth < 1:
            raise ValueError("prefetch depth must be >= 1")
        self._path = str(path)
        self._offsets = tuple(offsets)
        self._lenient = lenient
        self._raw = raw
        self._registry = registry
        self._queue: queue.Queue = queue.Queue(maxsize=depth)
        self._error: Optional[BaseException] = None
        self._stopped = threading.Event()
        self._thread = threading.Thread(
            target=self._reader, name="repro-chunk-prefetch", daemon=True
        )
        self._thread.start()

    def _put(self, item: object) -> bool:
        """Enqueue, yielding periodically so close() can interrupt."""
        while not self._stopped.is_set():
            try:
                self._queue.put(item, timeout=0.05)
                return True
            except queue.Full:
                continue
        return False

    def _reader(self) -> None:
        fetched = self._registry.counter(
            "repro_prefetch_chunks_total",
            help="Chunks read ahead by the prefetch pipeline",
        )
        depth_gauge = self._registry.gauge(
            "repro_prefetch_queue_depth",
            help="Prefetch queue occupancy sampled after each enqueue",
        )
        try:
            with RandomAccessChunkReader(self._path, lenient=self._lenient) as reader:
                for offset in self._offsets:
                    if self._stopped.is_set():
                        return
                    if self._raw:
                        item: object = (offset, reader.read_raw(offset))
                    else:
                        item = reader.read_chunk(offset)
                        if item is None:  # lenient skip of a corrupt chunk
                            continue
                    if not self._put(item):
                        return
                    fetched.inc()
                    depth_gauge.set(self._queue.qsize())
        except BaseException as exc:  # surfaces in the consumer
            self._error = exc
        finally:
            self._put(_PREFETCH_STOP)

    def __iter__(self) -> Iterator:
        try:
            while True:
                item = self._queue.get()
                if item is _PREFETCH_STOP:
                    if self._error is not None:
                        raise self._error
                    return
                yield item
        finally:
            self.close()

    def close(self) -> None:
        """Stop the reader thread and release the file handle."""
        self._stopped.set()
        while True:  # unblock a reader stuck on a full queue
            try:
                self._queue.get_nowait()
            except queue.Empty:
                break
        self._thread.join(timeout=5.0)


def prefetch_raw_chunks(
    path: Union[str, Path],
    offsets: Sequence[int],
    *,
    lenient: bool = False,
    depth: int = DEFAULT_PREFETCH_DEPTH,
    registry: MetricsRegistry = NULL_REGISTRY,
) -> ChunkPrefetcher:
    """A :class:`ChunkPrefetcher` yielding ``(offset, RawChunk | None)``."""
    return ChunkPrefetcher(
        path, offsets, lenient=lenient, depth=depth, raw=True, registry=registry
    )


@dataclass(frozen=True)
class _ShardTask:
    """Everything a worker needs to analyze one shard (picklable)."""

    index: int
    names: tuple
    track_keys: bool
    #: in-memory chunks, or None when reading from the file
    chunks: Optional[tuple]
    path: Optional[str]
    offsets: Optional[tuple]
    lenient: bool = False
    fault: Optional[WorkerFault] = None


def _make_analyzers(names: Sequence[str], track_keys: bool) -> Dict[str, object]:
    unknown = [name for name in names if name not in ANALYZER_FACTORIES]
    if unknown:
        raise ValueError(f"unknown analyzers: {unknown}")
    return {name: ANALYZER_FACTORIES[name](track_keys) for name in names}


def analyze_chunks(
    chunks: Iterable[TraceChunk],
    analyzers: Sequence[str] = DEFAULT_ANALYZERS,
    track_keys: bool = True,
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, object]:
    """Sequential chunked analysis (the ``workers=1`` fallback).

    When ``registry`` is given, chunk/record progress counters are
    recorded into it.  They are incremented identically whether the
    chunks are consumed here (serial) or inside a sharded worker, which
    is what makes merged sharded registries byte-identical to a serial
    run's (asserted in ``tests/test_parallel.py``).
    """
    built = _make_analyzers(analyzers, track_keys)
    consumers = list(built.values())
    if registry is None:
        for chunk in chunks:
            for analyzer in consumers:
                analyzer.consume_chunk(chunk)
        return built
    chunk_counter = registry.counter(
        "repro_analysis_chunks_total", help="Trace chunks consumed by analysis"
    )
    record_counter = registry.counter(
        "repro_analysis_records_total", help="Trace records consumed by analysis"
    )
    for chunk in chunks:
        for analyzer in consumers:
            analyzer.consume_chunk(chunk)
        chunk_counter.inc()
        record_counter.inc(len(chunk))
    return built


def _analyze_shard(task: _ShardTask) -> tuple[Dict[str, object], RegistrySnapshot]:
    """Pool worker: analyze one shard (inline chunks or file offsets).

    Fills a private registry (a worker process must not touch the
    parent's) and ships its snapshot home alongside the analyzers; the
    parent absorbs the snapshots in shard order.
    """
    if task.fault is not None:
        task.fault.maybe_trip(task.index)
    local = MetricsRegistry()
    chunks = task.chunks
    prefetcher: Optional[ChunkPrefetcher] = None
    if chunks is None:
        # I/O overlaps compute inside the shard too: the prefetch thread
        # reads the next chunks off one open handle while this process
        # runs the analyzers over the current one.
        prefetcher = ChunkPrefetcher(
            task.path, task.offsets, lenient=task.lenient, registry=local
        )
        chunks = prefetcher
    start = time.perf_counter()
    try:
        built = analyze_chunks(
            chunks, analyzers=task.names, track_keys=task.track_keys, registry=local
        )
    finally:
        if prefetcher is not None:
            prefetcher.close()
    local.histogram(
        "repro_analysis_shard_seconds", help="Wall time per analysis shard"
    ).observe(time.perf_counter() - start)
    local.counter(
        "repro_analysis_shards_total", help="Analysis shards completed"
    ).inc()
    return built, local.snapshot()


def _split_shards(items: Sequence, shards: int) -> list[Sequence]:
    """Split into up to ``shards`` contiguous, near-equal slices."""
    shards = min(shards, len(items))
    if shards <= 0:
        return []
    base, extra = divmod(len(items), shards)
    out = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        out.append(items[start : start + size])
        start += size
    return out


def _merge_in_order(
    partials: Sequence[tuple[Dict[str, object], RegistrySnapshot]],
    registry: MetricsRegistry = NULL_REGISTRY,
) -> Dict[str, object]:
    """Reduce shard results in shard order (analyzers and registries)."""
    merged, first_snapshot = partials[0]
    registry.absorb(first_snapshot)
    for partial, snapshot in partials[1:]:
        for name, analyzer in merged.items():
            analyzer.merge(partial[name])
        registry.absorb(snapshot)
    return merged


def _run_shards(
    tasks: Sequence[_ShardTask],
    retry: RetryPolicy,
    registry: MetricsRegistry = NULL_REGISTRY,
) -> list[tuple[Dict[str, object], RegistrySnapshot]]:
    """Run shard tasks on a process pool, surviving worker deaths.

    A dead worker breaks the entire pool, so every unfinished shard of
    that round — innocent or not — is requeued onto a fresh pool.  The
    per-shard attempt counters bound the damage: after ``max_retries``
    requeues a shard runs serially in this process, where a
    :class:`WorkerFault` latch is inert by construction.  Deterministic
    worker exceptions are not retried at all.
    """
    results: list[Optional[tuple]] = [None] * len(tasks)
    pending = list(range(len(tasks)))
    attempts = [0] * len(tasks)
    round_index = 0
    while pending:
        broken: list[int] = []
        with ProcessPoolExecutor(max_workers=len(pending)) as pool:
            futures = [(index, pool.submit(_analyze_shard, tasks[index])) for index in pending]
            for index, future in futures:
                try:
                    results[index] = future.result()
                except BrokenProcessPool:
                    broken.append(index)
                except Exception as exc:
                    raise AnalysisError(
                        f"analysis shard {tasks[index].index} failed in its "
                        f"worker process: {exc}"
                    ) from exc
        if not broken:
            break
        registry.counter(
            "repro_analysis_worker_deaths_total",
            help="Pool-breaking worker deaths observed",
        ).inc()
        retriable: list[int] = []
        for index in broken:
            attempts[index] += 1
            if attempts[index] <= retry.max_retries:
                retriable.append(index)
                registry.counter(
                    "repro_analysis_requeues_total",
                    help="Shards requeued after a worker death",
                ).inc()
            else:
                if not retry.serial_fallback:
                    raise AnalysisError(
                        f"analysis shard {tasks[index].index} kept killing its "
                        f"worker after {attempts[index]} attempts and serial "
                        "fallback is disabled"
                    )
                registry.counter(
                    "repro_analysis_serial_fallbacks_total",
                    help="Shards analyzed serially after exhausting retries",
                ).inc()
                results[index] = _analyze_shard(tasks[index])
        pending = retriable
        if pending:
            time.sleep(retry.backoff_base_s * retry.backoff_factor**round_index)
            round_index += 1
    return [result for result in results if result is not None]


def analyze_trace(
    source: TraceSource,
    *,
    workers: int = 1,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    analyzers: Sequence[str] = DEFAULT_ANALYZERS,
    track_keys: bool = True,
    lenient: bool = False,
    retry: Optional[RetryPolicy] = None,
    fault: Optional[WorkerFault] = None,
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, object]:
    """Run the mergeable analyzers over a trace, optionally in parallel.

    ``source`` may be a trace file path (v1 or v2), a
    :class:`ColumnarTrace`, or any iterable of records.  ``lenient``
    skips corrupt v2 chunks (logged) instead of failing the analysis.
    ``retry`` tunes worker-death handling (see :class:`RetryPolicy`);
    ``fault`` injects a :class:`WorkerFault` for testing it.  Returns a
    dict mapping analyzer name to the fully reduced analyzer instance.

    Progress and scheduler metrics land in ``registry`` (the
    process-wide one by default; pass
    :data:`~repro.obs.registry.NULL_REGISTRY` to opt out).  Sharded
    workers fill private registries whose snapshots are absorbed here in
    shard order, so the merged counters equal a serial run's.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    retry = retry if retry is not None else RetryPolicy()
    if registry is None:
        from repro.obs import get_registry

        registry = get_registry()

    path: Optional[str] = None
    if isinstance(source, (str, Path)):
        path = str(source)

    if workers == 1:
        if path is not None:
            try:
                footer = read_trace_footer(path)
            except (TraceFormatError, OSError):
                footer = None
            if footer is not None:
                # Footer-indexed file: overlap chunk reads with compute.
                prefetcher = ChunkPrefetcher(
                    path,
                    [offset for offset, _ in footer.chunks],
                    lenient=lenient,
                    registry=registry,
                )
                try:
                    return analyze_chunks(
                        prefetcher,
                        analyzers=analyzers,
                        track_keys=track_keys,
                        registry=registry,
                    )
                finally:
                    prefetcher.close()
            return analyze_chunks(
                open_trace_chunks(path, chunk_size=chunk_size, lenient=lenient),
                analyzers=analyzers,
                track_keys=track_keys,
                registry=registry,
            )
        chunks = (
            source.chunks
            if isinstance(source, ColumnarTrace)
            else chunk_records(source, chunk_size)
        )
        return analyze_chunks(
            chunks, analyzers=analyzers, track_keys=track_keys, registry=registry
        )

    names = tuple(analyzers)
    _make_analyzers(names, track_keys)  # validate names before forking

    tasks = None
    if path is not None:
        try:
            footer = read_trace_footer(path)
        except TraceFormatError:
            footer = None
        if footer is not None:
            offsets = [offset for offset, _ in footer.chunks]
            tasks = [
                _ShardTask(
                    index=index,
                    names=names,
                    track_keys=track_keys,
                    chunks=None,
                    path=path,
                    offsets=tuple(shard),
                    lenient=lenient,
                    fault=fault,
                )
                for index, shard in enumerate(_split_shards(offsets, workers))
            ]
        else:
            chunks = list(open_trace_chunks(path, chunk_size=chunk_size, lenient=lenient))
    elif isinstance(source, ColumnarTrace):
        chunks = source.chunks
    else:
        chunks = list(chunk_records(source, chunk_size))

    if tasks is None:
        tasks = [
            _ShardTask(
                index=index,
                names=names,
                track_keys=track_keys,
                chunks=tuple(shard),
                path=None,
                offsets=None,
                lenient=lenient,
                fault=fault,
            )
            for index, shard in enumerate(_split_shards(chunks, workers))
        ]

    if not tasks:
        return _make_analyzers(names, track_keys)
    if len(tasks) == 1 and not fault:
        built, snapshot = _analyze_shard(tasks[0])
        registry.absorb(snapshot)
        return built

    return _merge_in_order(_run_shards(tasks, retry, registry), registry)


def default_workers() -> int:
    """A reasonable worker count for the current machine."""
    return max(1, os.cpu_count() or 1)
