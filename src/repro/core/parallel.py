"""Process-parallel sharded trace analysis.

The per-class aggregations behind Tables II-IV and the per-block/byte
statistics are embarrassingly parallel: every analyzer in
:data:`ANALYZER_FACTORIES` exposes a ``consume_chunk`` fast path and a
``merge`` reduction, so a trace can be split into contiguous shards of
columnar chunks, analyzed in worker processes, and reduced in shard
order (ordering matters only for
:class:`~repro.core.blockstats.BlockStatsAnalyzer`, whose
``reads_after_first_put`` accounting is order-sensitive).

Sharding strategies, picked automatically by :func:`analyze_trace`:

* **file shards** — for v2 traces with a footer, workers receive
  ``(path, chunk offsets)`` and read their chunks straight from disk
  (no pickling of trace data);
* **chunk shards** — in-memory chunks are pickled to the pool (used for
  v1 files, record iterables and :class:`ColumnarTrace` inputs);
* **in-process fallback** — ``workers=1`` consumes the chunk stream
  lazily on the calling process, with no multiprocessing involved.

All three produce results identical to the sequential record-at-a-time
reference path (asserted in ``tests/test_parallel.py``).
"""

from __future__ import annotations

import multiprocessing
import os
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, Optional, Sequence, Union

from repro.core.blockstats import BlockStatsAnalyzer
from repro.core.columnar import DEFAULT_CHUNK_SIZE, ColumnarTrace, TraceChunk, chunk_records
from repro.core.iostats import IOStatsAnalyzer
from repro.core.opdist import OpDistAnalyzer
from repro.core.trace import (
    TraceRecord,
    open_trace_chunks,
    read_chunk_at,
    read_trace_footer,
)
from repro.errors import TraceFormatError

#: Analyzer names accepted by :func:`analyze_trace`; each factory takes
#: ``track_keys`` (ignored by analyzers that have no per-key state).
ANALYZER_FACTORIES: Dict[str, Callable[[bool], object]] = {
    "opdist": lambda track_keys: OpDistAnalyzer(track_keys=track_keys),
    "blockstats": lambda track_keys: BlockStatsAnalyzer(),
    "iostats": lambda track_keys: IOStatsAnalyzer(),
}

DEFAULT_ANALYZERS = ("opdist", "blockstats", "iostats")

TraceSource = Union[str, Path, ColumnarTrace, Iterable[TraceRecord]]


def _make_analyzers(names: Sequence[str], track_keys: bool) -> Dict[str, object]:
    unknown = [name for name in names if name not in ANALYZER_FACTORIES]
    if unknown:
        raise ValueError(f"unknown analyzers: {unknown}")
    return {name: ANALYZER_FACTORIES[name](track_keys) for name in names}


def analyze_chunks(
    chunks: Iterable[TraceChunk],
    analyzers: Sequence[str] = DEFAULT_ANALYZERS,
    track_keys: bool = True,
) -> Dict[str, object]:
    """Sequential chunked analysis (the ``workers=1`` fallback)."""
    built = _make_analyzers(analyzers, track_keys)
    consumers = list(built.values())
    for chunk in chunks:
        for analyzer in consumers:
            analyzer.consume_chunk(chunk)
    return built


def _analyze_shard(args) -> Dict[str, object]:
    """Pool worker: analyze one shard (inline chunks or file offsets)."""
    names, track_keys, chunks, path, offsets = args
    if chunks is None:
        chunks = (read_chunk_at(path, offset) for offset in offsets)
    return analyze_chunks(chunks, analyzers=names, track_keys=track_keys)


def _split_shards(items: Sequence, shards: int) -> list[Sequence]:
    """Split into up to ``shards`` contiguous, near-equal slices."""
    shards = min(shards, len(items))
    if shards <= 0:
        return []
    base, extra = divmod(len(items), shards)
    out = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        out.append(items[start : start + size])
        start += size
    return out


def _merge_in_order(partials: Sequence[Dict[str, object]]) -> Dict[str, object]:
    merged = partials[0]
    for partial in partials[1:]:
        for name, analyzer in merged.items():
            analyzer.merge(partial[name])
    return merged


def analyze_trace(
    source: TraceSource,
    *,
    workers: int = 1,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    analyzers: Sequence[str] = DEFAULT_ANALYZERS,
    track_keys: bool = True,
) -> Dict[str, object]:
    """Run the mergeable analyzers over a trace, optionally in parallel.

    ``source`` may be a trace file path (v1 or v2), a
    :class:`ColumnarTrace`, or any iterable of records.  Returns a dict
    mapping analyzer name to the fully reduced analyzer instance.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")

    path: Optional[str] = None
    if isinstance(source, (str, Path)):
        path = str(source)

    if workers == 1:
        if path is not None:
            return analyze_chunks(
                open_trace_chunks(path, chunk_size=chunk_size),
                analyzers=analyzers,
                track_keys=track_keys,
            )
        chunks = (
            source.chunks
            if isinstance(source, ColumnarTrace)
            else chunk_records(source, chunk_size)
        )
        return analyze_chunks(chunks, analyzers=analyzers, track_keys=track_keys)

    names = tuple(analyzers)
    _make_analyzers(names, track_keys)  # validate names before forking

    shard_args = None
    if path is not None:
        try:
            footer = read_trace_footer(path)
        except TraceFormatError:
            footer = None
        if footer is not None:
            offsets = [offset for offset, _ in footer.chunks]
            shard_args = [
                (names, track_keys, None, path, shard)
                for shard in _split_shards(offsets, workers)
            ]
        else:
            chunks = list(open_trace_chunks(path, chunk_size=chunk_size))
    elif isinstance(source, ColumnarTrace):
        chunks = source.chunks
    else:
        chunks = list(chunk_records(source, chunk_size))

    if shard_args is None:
        shard_args = [
            (names, track_keys, shard, None, None)
            for shard in _split_shards(chunks, workers)
        ]

    if not shard_args:
        return _make_analyzers(names, track_keys)
    if len(shard_args) == 1:
        return _analyze_shard(shard_args[0])

    with multiprocessing.get_context().Pool(len(shard_args)) as pool:
        partials = pool.map(_analyze_shard, shard_args)
    return _merge_in_order(partials)


def default_workers() -> int:
    """A reasonable worker count for the current machine."""
    return max(1, os.cpu_count() or 1)
