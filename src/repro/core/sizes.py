"""KV size analysis — Table I and Figure 2.

Given a snapshot of the KV store contents (key/value byte sizes per
pair), produce per-class statistics: pair counts, percentage of all
pairs, mean key/value sizes with 95% confidence intervals (under the
normal approximation, as the paper does), and full size histograms for
the Figure 2 scatter distributions.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.core.classes import (
    CLASS_LIST,
    DOMINANT_CLASSES,
    TABLE_ORDER,
    KVClass,
    classify_key,
)

#: z-score for a 95% confidence interval under the normal approximation.
_Z95 = 1.959963984540054


@dataclass
class RunningStats:
    """Streaming mean/variance (Welford) plus min/max."""

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    minimum: Optional[int] = None
    maximum: Optional[int] = None

    def add(self, value: int) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def add_batch(self, values: "np.ndarray") -> None:
        """Fold a whole array of observations in (parallel-merge update).

        Uses the pairwise/Chan combination of (count, mean, M2), the
        batch counterpart of Welford's update.  Counts, minima and
        maxima match the sequential path exactly; mean/M2 agree to
        floating-point rounding.
        """
        n = int(values.size)
        if n == 0:
            return
        batch = RunningStats(
            count=n,
            mean=float(values.mean()),
            minimum=int(values.min()),
            maximum=int(values.max()),
        )
        batch._m2 = float(np.square(values - batch.mean).sum())
        self.merge(batch)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Combine another partial's (count, mean, M2, min, max)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 = self._m2 + other._m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        if other.minimum is not None and (
            self.minimum is None or other.minimum < self.minimum
        ):
            self.minimum = other.minimum
        if other.maximum is not None and (
            self.maximum is None or other.maximum > self.maximum
        ):
            self.maximum = other.maximum
        return self

    @property
    def variance(self) -> float:
        """Sample variance; zero when fewer than two observations."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def ci95_half_width(self) -> float:
        """Half-width of the 95% CI of the mean (normal approximation)."""
        if self.count < 2:
            return 0.0
        return _Z95 * self.stddev / math.sqrt(self.count)

    def format_mean_ci(self, precision: int = 1) -> str:
        """Render as the paper does: ``mean±hw`` or bare mean if constant."""
        if self.count == 0:
            return "-"
        hw = self.ci95_half_width
        if hw == 0:
            if self.mean == int(self.mean):
                return str(int(self.mean))
            return f"{self.mean:.{precision}f}"
        return f"{self.mean:.{precision}f}±{hw:.4g}"


@dataclass
class ClassSizeStats:
    """Per-class KV pair population statistics (one row of Table I)."""

    kv_class: KVClass
    num_pairs: int = 0
    key_size: RunningStats = field(default_factory=RunningStats)
    value_size: RunningStats = field(default_factory=RunningStats)
    #: histogram of total KV size (key+value) -> pair count, for Figure 2.
    kv_size_histogram: Counter = field(default_factory=Counter)

    def add_pair(self, key_len: int, value_len: int) -> None:
        self.num_pairs += 1
        self.key_size.add(key_len)
        self.value_size.add(value_len)
        self.kv_size_histogram[key_len + value_len] += 1

    @property
    def mean_kv_size(self) -> float:
        """Mean total (key+value) size in bytes."""
        if self.num_pairs == 0:
            return 0.0
        return self.key_size.mean + self.value_size.mean


class SizeAnalyzer:
    """Accumulates a KV-store snapshot into per-class size statistics.

    Feed it ``(key, value_size)`` pairs — e.g. every pair left in the
    store after a sync run — then read per-class stats, Table I rows,
    and Figure 2 histograms.
    """

    def __init__(self) -> None:
        self._stats: dict[KVClass, ClassSizeStats] = {}

    def add_pair(self, key: bytes, value_size: int) -> None:
        kv_class = classify_key(key)
        stats = self._stats.get(kv_class)
        if stats is None:
            stats = ClassSizeStats(kv_class)
            self._stats[kv_class] = stats
        stats.add_pair(len(key), value_size)

    def add_store_snapshot(self, pairs: Iterable[tuple[bytes, bytes]]) -> None:
        """Consume ``(key, value)`` pairs from a store scan."""
        for key, value in pairs:
            self.add_pair(key, len(value))

    def add_pairs_batch(
        self, keys: Sequence[bytes], value_sizes: Sequence[int]
    ) -> None:
        """Vectorized :meth:`add_pair` over whole arrays of pairs.

        Keys are classified with the columnar prefix classifier; each
        class's key/value size statistics and Figure 2 histogram are
        reduced with numpy group-bys instead of per-pair Python calls.
        """
        from repro.core.columnar import class_ids_for_keys

        n = len(keys)
        if n == 0:
            return
        class_ids = class_ids_for_keys(keys)
        key_lens = np.fromiter((len(key) for key in keys), dtype=np.int64, count=n)
        sizes = np.asarray(value_sizes, dtype=np.int64)
        if len(sizes) != n:
            raise ValueError("keys and value_sizes must have equal length")
        totals = key_lens + sizes
        for cid in np.unique(class_ids).tolist():
            kv_class = CLASS_LIST[cid]
            stats = self._stats.get(kv_class)
            if stats is None:
                stats = ClassSizeStats(kv_class)
                self._stats[kv_class] = stats
            mask = class_ids == cid
            stats.num_pairs += int(np.count_nonzero(mask))
            stats.key_size.add_batch(key_lens[mask])
            stats.value_size.add_batch(sizes[mask])
            unique_totals, counts = np.unique(totals[mask], return_counts=True)
            for total, count in zip(unique_totals.tolist(), counts.tolist()):
                stats.kv_size_histogram[total] += count

    def merge(self, other: "SizeAnalyzer") -> "SizeAnalyzer":
        """Fold another analyzer's partial per-class stats into this one."""
        for kv_class, theirs in other._stats.items():
            stats = self._stats.get(kv_class)
            if stats is None:
                stats = ClassSizeStats(kv_class)
                self._stats[kv_class] = stats
            stats.num_pairs += theirs.num_pairs
            stats.key_size.merge(theirs.key_size)
            stats.value_size.merge(theirs.value_size)
            stats.kv_size_histogram.update(theirs.kv_size_histogram)
        return self

    @property
    def total_pairs(self) -> int:
        return sum(stats.num_pairs for stats in self._stats.values())

    def stats_for(self, kv_class: KVClass) -> ClassSizeStats:
        """Stats for a class (an empty stats object if never seen)."""
        return self._stats.get(kv_class, ClassSizeStats(kv_class))

    def observed_classes(self) -> list[KVClass]:
        """Classes with at least one pair, in Table I order then extras."""
        ordered = [cls for cls in TABLE_ORDER if cls in self._stats]
        extras = [cls for cls in self._stats if cls not in TABLE_ORDER]
        return ordered + extras

    def percentage(self, kv_class: KVClass) -> float:
        """Percentage of all KV pairs belonging to ``kv_class``."""
        total = self.total_pairs
        if total == 0:
            return 0.0
        return 100.0 * self.stats_for(kv_class).num_pairs / total

    def dominant_share(self, classes: Iterable[KVClass] = DOMINANT_CLASSES) -> float:
        """Combined pair share (%) of the given classes (Finding 1)."""
        return sum(self.percentage(cls) for cls in classes)

    def singleton_classes(self) -> list[KVClass]:
        """Observed classes holding exactly one pair (Finding 1)."""
        return [cls for cls, stats in self._stats.items() if stats.num_pairs == 1]

    def mean_kv_size(self, classes: Iterable[KVClass]) -> float:
        """Pair-weighted mean total KV size across the given classes."""
        total_pairs = 0
        total_bytes = 0.0
        for cls in classes:
            stats = self.stats_for(cls)
            total_pairs += stats.num_pairs
            total_bytes += stats.mean_kv_size * stats.num_pairs
        if total_pairs == 0:
            return 0.0
        return total_bytes / total_pairs

    def size_distribution(self, kv_class: KVClass) -> list[tuple[int, int]]:
        """Sorted ``(kv_size, count)`` points for Figure 2 scatter plots."""
        histogram = self.stats_for(kv_class).kv_size_histogram
        return sorted(histogram.items())

    def size_distribution_modes(self, kv_class: KVClass, top: int = 3) -> list[int]:
        """The ``top`` most frequent KV sizes (the Figure 2 'peaks')."""
        histogram = self.stats_for(kv_class).kv_size_histogram
        return [size for size, _ in sorted(histogram.items(), key=lambda kv: -kv[1])[:top]]

    def as_mapping(self) -> Mapping[KVClass, ClassSizeStats]:
        return dict(self._stats)
