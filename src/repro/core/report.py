"""Paper-style table and figure renderers.

Each renderer takes analyzer outputs and returns the rows/series the
paper reports, as plain text — the benchmark harness prints these so a
reader can compare our measured shape against the published tables.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.core.classes import KVClass, TABLE_ORDER
from repro.core.correlation import DistanceResult, format_class_pair
from repro.core.opdist import OpDistAnalyzer
from repro.core.sizes import SizeAnalyzer
from repro.core.trace import OpType


def _fmt_count(count: int) -> str:
    """Render a pair count the way Table I does (millions, or raw if 1)."""
    if count == 1:
        return "1"
    if count >= 1_000_000:
        return f"{count / 1e6:.1f} M"
    if count >= 1_000:
        return f"{count / 1e3:.1f} K"
    return str(count)


def _fmt_pct(value: float) -> str:
    """Render a percentage like the paper's tables ('-' for zero)."""
    if value == 0:
        return "-"
    if value >= 0.01:
        return f"{value:.4g}"
    return f"{value:.2g}"


def render_table1(sizes: SizeAnalyzer, title: str = "Table I") -> str:
    """Class inventory: counts, share, key/value size mean±CI."""
    total = sizes.total_pairs
    header = (
        f"{'Class':<22} {'# KV pairs':>14} {'%':>8} "
        f"{'Key size':>16} {'Value size':>18}"
    )
    lines = [f"{title}: class inventory over {total} KV pairs", header, "-" * len(header)]
    for kv_class in sizes.observed_classes():
        stats = sizes.stats_for(kv_class)
        pct = sizes.percentage(kv_class)
        pct_str = "-" if stats.num_pairs == 1 else f"{pct:.4g}%"
        lines.append(
            f"{kv_class.display_name:<22} {_fmt_count(stats.num_pairs):>14} "
            f"{pct_str:>8} {stats.key_size.format_mean_ci():>16} "
            f"{stats.value_size.format_mean_ci():>18}"
        )
    return "\n".join(lines)


_OP_COLUMNS = (
    ("Writes", OpType.WRITE),
    ("Updates", OpType.UPDATE),
    ("Reads", OpType.READ),
    ("Scans", OpType.SCAN),
    ("Deletes", OpType.DELETE),
)


def render_op_table(
    opdist: OpDistAnalyzer,
    title: str,
    class_order: Sequence[KVClass] = TABLE_ORDER,
) -> str:
    """Tables II/III: per-class operation mix percentages."""
    header = f"{'Class':<22} {'% of ops':>9} " + " ".join(
        f"{name:>9}" for name, _ in _OP_COLUMNS
    )
    lines = [f"{title}: {opdist.total_ops} KV operations", header, "-" * len(header)]
    observed = set(opdist.observed_classes())
    ordered = [c for c in class_order if c in observed]
    ordered += [c for c in observed if c not in class_order]
    for kv_class in ordered:
        dist = opdist.distribution(kv_class)
        if dist.total == 0:
            continue
        cells = " ".join(f"{_fmt_pct(dist.pct(op)):>9}" for _, op in _OP_COLUMNS)
        lines.append(
            f"{kv_class.display_name:<22} "
            f"{_fmt_pct(opdist.class_share(kv_class)):>9} {cells}"
        )
    return "\n".join(lines)


def render_read_ratio_table(
    bare,
    cache,
    classes: Iterable[KVClass],
    title: str = "Table IV",
) -> str:
    """Table IV: read ratios of KV pairs in both traces.

    ``bare`` and ``cache`` are :class:`~repro.core.analysis.TraceAnalysis`
    objects (the ratio's denominator needs their store populations).
    """
    header = f"{'Class':<20} {'BareTrace (%)':>14} {'CacheTrace (%)':>15}"
    lines = [f"{title}: read ratios of KV pairs", header, "-" * len(header)]
    for kv_class in classes:
        bare_ratio = bare.read_ratio(kv_class)
        cache_ratio = cache.read_ratio(kv_class)
        bare_str = "-" if bare_ratio == 0 else f"{bare_ratio:.3g}"
        cache_str = "-" if cache_ratio == 0 else f"{cache_ratio:.3g}"
        lines.append(f"{kv_class.display_name:<20} {bare_str:>14} {cache_str:>15}")
    return "\n".join(lines)


def render_size_distribution(
    sizes: SizeAnalyzer, kv_class: KVClass, max_points: Optional[int] = 20
) -> str:
    """Figure 2 panel: (size, count) scatter points for one class."""
    points = sizes.size_distribution(kv_class)
    stats = sizes.stats_for(kv_class)
    lines = [
        f"Figure 2 panel — {kv_class.display_name}: "
        f"{stats.num_pairs} pairs, sizes "
        f"{stats.kv_size_histogram and min(stats.kv_size_histogram)}.."
        f"{stats.kv_size_histogram and max(stats.kv_size_histogram)} bytes, "
        f"modes {sizes.size_distribution_modes(kv_class)}"
    ]
    shown = points if max_points is None else points[:max_points]
    for size, count in shown:
        lines.append(f"  size={size:>6}  count={count}")
    if max_points is not None and len(points) > max_points:
        lines.append(f"  ... ({len(points) - max_points} more sizes)")
    return "\n".join(lines)


def render_frequency_distribution(
    opdist: OpDistAnalyzer, kv_class: KVClass, op: OpType, max_points: int = 15
) -> str:
    """Figure 3 panel: (frequency, #keys) points for one class/op."""
    points = opdist.activity(kv_class).frequency_distribution(op)
    lines = [f"Figure 3 panel — {kv_class.display_name} {op.name.lower()}s"]
    for frequency, num_keys in points[:max_points]:
        lines.append(f"  freq={frequency:>6}  keys={num_keys}")
    if len(points) > max_points:
        lines.append(f"  ... ({len(points) - max_points} more frequencies)")
    return "\n".join(lines)


def render_correlation_distance_series(
    results: dict[int, DistanceResult],
    pairs: Sequence[tuple[KVClass, KVClass]],
    title: str,
) -> str:
    """Figures 4/6: correlated counts vs distance for selected class pairs."""
    from repro.core.correlation import class_pair

    distances = sorted(results)
    header = f"{'pair':<10} " + " ".join(f"d={d:<9}" for d in distances)
    lines = [title, header, "-" * len(header)]
    for a, b in pairs:
        pair = class_pair(a, b)
        cells = " ".join(
            f"{results[d].class_pair_counts.get(pair, 0):<11}" for d in distances
        )
        lines.append(f"{format_class_pair(pair):<10} {cells}")
    return "\n".join(lines)


def render_correlation_frequency(
    results: dict[int, DistanceResult],
    pairs: Sequence[tuple[KVClass, KVClass]],
    distances: Sequence[int],
    title: str,
    max_points: int = 10,
) -> str:
    """Figures 5/7: key-pair frequency histograms at selected distances."""
    from repro.core.correlation import class_pair

    lines = [title]
    for distance in distances:
        result = results[distance]
        lines.append(f" distance {distance}:")
        for a, b in pairs:
            pair = class_pair(a, b)
            histogram = result.frequency_histograms.get(pair)
            if not histogram:
                lines.append(f"  {format_class_pair(pair):<10} (no correlated pairs)")
                continue
            points = sorted(histogram.items())[:max_points]
            rendered = ", ".join(f"freq {f}: {n} pairs" for f, n in points)
            lines.append(
                f"  {format_class_pair(pair):<10} max_freq={max(histogram)}  {rendered}"
            )
    return "\n".join(lines)
