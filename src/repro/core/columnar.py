"""Columnar (structure-of-arrays) trace chunks.

The paper's traces hold billions of KV operations; consuming them one
Python :class:`~repro.core.trace.TraceRecord` at a time caps every
analyzer at interpreter speed.  This module holds a trace as a sequence
of fixed-size **chunks**, each a structure of numpy arrays:

* ``ops``         — ``u8``  operation codes (:class:`OpType` values);
* ``value_sizes`` — ``u32`` per-record value sizes;
* ``blocks``      — ``u32`` per-record block heights;
* ``key_ids``     — ``u32`` indices into the chunk's interned key table.

Keys are interned per chunk: the table holds each distinct key once,
together with its length and its dense class id (see
:data:`repro.core.classes.CLASS_LIST`).  Class ids are assigned by a
vectorized prefix classifier — a 256-entry first-byte table decides all
unambiguous prefixes in one ``np.take``; only keys whose first byte
collides with a singleton/literal schema entry fall back to the exact
:func:`~repro.core.classes.classify_key`.

Analyzers consume chunks through ``consume_chunk`` fast paths (bincount
reductions over these arrays) and stay bit-identical to the
record-at-a-time reference path; ``tests/test_parallel.py`` asserts the
equivalence.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator, Optional, Sequence, Union

import numpy as np

from repro.core.classes import (
    AMBIGUOUS_FIRST_BYTES,
    CLASS_IDS,
    PREFIX_CLASS_ID_TABLE,
    UNKNOWN_CLASS_ID,
    classify_key,
)
from repro.core.trace import OpType, TraceRecord
from repro.errors import TraceFormatError

#: Default number of records per chunk.  64Ki records keep each chunk's
#: arrays ~1MB — large enough to amortize numpy dispatch, small enough
#: to stream and to give the parallel scheduler scheduling granularity.
DEFAULT_CHUNK_SIZE = 65536

#: Maximum key length representable in chunk key tables (u16 on disk,
#: same limit as trace format v1).
MAX_KEY_LEN = 0xFFFF

_PREFIX_ID_ARRAY = np.array(PREFIX_CLASS_ID_TABLE, dtype=np.uint8)
_AMBIGUOUS_MASK = np.zeros(256, dtype=bool)
for _b in AMBIGUOUS_FIRST_BYTES:
    _AMBIGUOUS_MASK[_b] = True


class KeyTable:
    """Lazy key table over one contiguous key blob (zero-copy decode).

    The v2 reader hands the chunk's key blob here *unsliced*: individual
    ``bytes`` keys are materialized only on first access (and cached),
    so a chunk whose keys an analyzer never touches — the common case on
    cache-hit and class-filtered paths — pays no per-key byte copies.
    First bytes and lengths are available vectorized without touching
    any key, which is all the prefix classifier needs.
    """

    __slots__ = ("blob", "lens", "_starts", "_keys")

    def __init__(self, blob: bytes, lens: np.ndarray) -> None:
        self.blob = blob
        self.lens = np.ascontiguousarray(lens, dtype=np.uint32)
        starts = np.zeros(len(self.lens) + 1, dtype=np.int64)
        np.cumsum(self.lens, out=starts[1:])
        if len(self.lens) and int(starts[-1]) > len(blob):
            raise TraceFormatError("key table lengths exceed key blob")
        self._starts = starts
        self._keys: list[Optional[bytes]] = [None] * len(self.lens)

    def __len__(self) -> int:
        return len(self.lens)

    def __getitem__(self, index: int) -> bytes:
        key = self._keys[index]
        if key is None:
            start = int(self._starts[index])
            key = self.blob[start : start + int(self.lens[index])]
            self._keys[index] = key
        return key

    def __iter__(self) -> Iterator[bytes]:
        for index in range(len(self._keys)):
            yield self[index]

    def first_bytes(self) -> np.ndarray:
        """First byte of every key (0 for empty keys), no materialization."""
        blob = np.frombuffer(self.blob, dtype=np.uint8)
        if not len(self.lens) or not len(blob):
            return np.zeros(len(self.lens), dtype=np.uint8)
        # clip so empty keys at the blob's end don't index out of range
        firsts = blob[np.minimum(self._starts[:-1], max(len(blob) - 1, 0))]
        return np.where(self.lens == 0, np.uint8(0), firsts)

    def __reduce__(self):
        return (KeyTable, (self.blob, self.lens))


def class_ids_for_keys(keys: Union[Sequence[bytes], KeyTable]) -> np.ndarray:
    """Vectorized prefix classifier: dense class id per key.

    Unambiguous first bytes resolve through one table lookup
    (``np.take``); ambiguous ones (singleton keys, ``ethereum-*``/``iB``
    literals) fall back to the exact classifier.  Equivalent to
    ``[CLASS_IDS[classify_key(k)] for k in keys]``.  A :class:`KeyTable`
    input classifies straight from the blob, materializing only the
    ambiguous keys.
    """
    n = len(keys)
    if n == 0:
        return np.zeros(0, dtype=np.uint8)
    if isinstance(keys, KeyTable):
        firsts = keys.first_bytes()
        empties = keys.lens == 0
    else:
        firsts = np.fromiter(
            (key[0] if key else 0 for key in keys), dtype=np.uint8, count=n
        )
        empties = None
    ids = _PREFIX_ID_ARRAY[firsts]
    for i in np.nonzero(_AMBIGUOUS_MASK[firsts])[0].tolist():
        ids[i] = CLASS_IDS[classify_key(keys[i])]
    if empties is None:
        for i in np.nonzero(firsts == 0)[0].tolist():
            if not keys[i]:
                ids[i] = UNKNOWN_CLASS_ID
    elif empties.any():
        ids[empties] = UNKNOWN_CLASS_ID
    return ids


class TraceChunk:
    """One columnar slab of trace records (structure of arrays)."""

    __slots__ = (
        "ops",
        "value_sizes",
        "blocks",
        "key_ids",
        "keys",
        "key_lens",
        "key_class_ids",
        "_class_ids",
    )

    def __init__(
        self,
        ops: np.ndarray,
        value_sizes: np.ndarray,
        blocks: np.ndarray,
        key_ids: np.ndarray,
        keys: Union[Sequence[bytes], KeyTable],
        key_class_ids: Optional[np.ndarray] = None,
    ) -> None:
        n = len(ops)
        if not (len(value_sizes) == len(blocks) == len(key_ids) == n):
            raise ValueError("column arrays must have equal length")
        self.ops = np.ascontiguousarray(ops, dtype=np.uint8)
        self.value_sizes = np.ascontiguousarray(value_sizes, dtype=np.uint32)
        self.blocks = np.ascontiguousarray(blocks, dtype=np.uint32)
        self.key_ids = np.ascontiguousarray(key_ids, dtype=np.uint32)
        if isinstance(keys, KeyTable):
            self.keys = keys
            self.key_lens = keys.lens
        else:
            self.keys = list(keys)
            self.key_lens = np.fromiter(
                (len(key) for key in self.keys), dtype=np.uint32, count=len(self.keys)
            )
        if key_class_ids is None:
            key_class_ids = class_ids_for_keys(self.keys)
        self.key_class_ids = np.ascontiguousarray(key_class_ids, dtype=np.uint8)
        if len(self.key_class_ids) != len(self.keys):
            raise ValueError("key_class_ids must match key table length")
        self._class_ids: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def num_keys(self) -> int:
        return len(self.keys)

    def key_blob(self) -> bytes:
        """All interned keys concatenated (the v2 on-disk key blob).

        A :class:`KeyTable`-backed chunk returns its blob as-is — the
        writer round-trips it without materializing any key.
        """
        if isinstance(self.keys, KeyTable):
            return self.keys.blob
        return b"".join(self.keys)

    @property
    def class_ids(self) -> np.ndarray:
        """Per-record dense class ids (``u8``), computed once per chunk."""
        if self._class_ids is None:
            self._class_ids = np.take(self.key_class_ids, self.key_ids)
        return self._class_ids

    @property
    def nbytes(self) -> int:
        """Approximate in-memory footprint of the array columns."""
        return (
            self.ops.nbytes
            + self.value_sizes.nbytes
            + self.blocks.nbytes
            + self.key_ids.nbytes
            + self.key_lens.nbytes
            + self.key_class_ids.nbytes
            + sum(self.key_lens.tolist())
        )

    @classmethod
    def from_records(cls, records: Iterable[TraceRecord]) -> "TraceChunk":
        builder = ChunkBuilder()
        for record in records:
            builder.append(record)
        return builder.build()

    def to_records(self) -> Iterator[TraceRecord]:
        keys = self.keys
        for op, kid, value_size, block in zip(
            self.ops.tolist(),
            self.key_ids.tolist(),
            self.value_sizes.tolist(),
            self.blocks.tolist(),
        ):
            yield TraceRecord(OpType(op), keys[kid], value_size, block)

    def record(self, index: int) -> TraceRecord:
        return TraceRecord(
            OpType(int(self.ops[index])),
            self.keys[int(self.key_ids[index])],
            int(self.value_sizes[index]),
            int(self.blocks[index]),
        )


class ChunkBuilder:
    """Accumulates records into one :class:`TraceChunk` (interns keys)."""

    def __init__(self) -> None:
        self._ops: list[int] = []
        self._value_sizes: list[int] = []
        self._blocks: list[int] = []
        self._key_ids: list[int] = []
        self._keys: list[bytes] = []
        self._id_of: dict[bytes, int] = {}

    def __len__(self) -> int:
        return len(self._ops)

    def append(self, record: TraceRecord) -> None:
        key = record.key
        key_id = self._id_of.get(key)
        if key_id is None:
            if len(key) > MAX_KEY_LEN:
                raise TraceFormatError(f"key too long for chunk key table: {len(key)}")
            key_id = len(self._keys)
            self._id_of[key] = key_id
            self._keys.append(key)
        self._ops.append(int(record.op))
        self._value_sizes.append(record.value_size)
        self._blocks.append(record.block)
        self._key_ids.append(key_id)

    def build(self) -> TraceChunk:
        n = len(self._ops)
        return TraceChunk(
            ops=np.array(self._ops, dtype=np.uint8),
            value_sizes=np.array(self._value_sizes, dtype=np.uint32),
            blocks=np.array(self._blocks, dtype=np.uint32),
            key_ids=np.array(self._key_ids, dtype=np.uint32),
            keys=self._keys,
        ) if n else _empty_chunk()

    def reset(self) -> None:
        self.__init__()


def _empty_chunk() -> TraceChunk:
    zero = np.zeros(0, dtype=np.uint32)
    return TraceChunk(
        ops=np.zeros(0, dtype=np.uint8),
        value_sizes=zero,
        blocks=zero,
        key_ids=zero,
        keys=[],
    )


def chunk_records(
    records: Iterable[TraceRecord], chunk_size: int = DEFAULT_CHUNK_SIZE
) -> Iterator[TraceChunk]:
    """Batch a record stream into columnar chunks of ``chunk_size``."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    builder = ChunkBuilder()
    for record in records:
        builder.append(record)
        if len(builder) >= chunk_size:
            yield builder.build()
            builder = ChunkBuilder()
    if len(builder):
        yield builder.build()


class ColumnarTrace:
    """A whole trace held as a list of columnar chunks."""

    def __init__(self, chunks: Sequence[TraceChunk]) -> None:
        self.chunks: list[TraceChunk] = list(chunks)

    @classmethod
    def from_records(
        cls,
        records: Iterable[TraceRecord],
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> "ColumnarTrace":
        return cls(list(chunk_records(records, chunk_size)))

    @classmethod
    def from_file(
        cls, path: Union[str, os.PathLike], chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> "ColumnarTrace":
        """Load any trace file (format v1 or v2) as columnar chunks."""
        from repro.core.trace import ColumnarTraceReader

        with ColumnarTraceReader.open(path, chunk_size=chunk_size) as reader:
            return cls(list(reader.chunks()))

    def __len__(self) -> int:
        return sum(len(chunk) for chunk in self.chunks)

    @property
    def num_chunks(self) -> int:
        return len(self.chunks)

    def iter_chunks(self) -> Iterator[TraceChunk]:
        return iter(self.chunks)

    def iter_records(self) -> Iterator[TraceRecord]:
        for chunk in self.chunks:
            yield from chunk.to_records()
