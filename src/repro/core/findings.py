"""The findings engine — evaluates the paper's 11 findings.

Each finding is checked *qualitatively*: the shape claims the paper
makes (which classes dominate, which ratios are low/high, how counts
decay with distance) are asserted against our synthetic traces, and the
measured numbers are recorded next to the paper's values so
EXPERIMENTS.md can report paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.analysis import TraceAnalysis
from repro.core.classes import (
    DOMINANT_CLASSES,
    WORLD_STATE_CLASSES,
    KVClass,
)
from repro.core.correlation import class_pair
from repro.core.trace import OpType


@dataclass
class Finding:
    """Outcome of checking one finding against the traces."""

    number: int
    title: str
    passed: bool
    #: measured values backing the verdict
    metrics: dict[str, float] = field(default_factory=dict)
    #: the paper's reported values, for side-by-side reporting
    paper_values: dict[str, float] = field(default_factory=dict)
    notes: str = ""

    def summary_line(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"Finding {self.number:2d} [{status}] {self.title}"


@dataclass
class FindingsReport:
    """All 11 findings plus convenience accessors."""

    findings: list[Finding]

    def __iter__(self):
        return iter(self.findings)

    def finding(self, number: int) -> Finding:
        for f in self.findings:
            if f.number == number:
                return f
        raise KeyError(f"no finding numbered {number}")

    @property
    def all_passed(self) -> bool:
        return all(f.passed for f in self.findings)

    def render(self) -> str:
        lines = ["=" * 72, "Findings summary", "=" * 72]
        for f in self.findings:
            lines.append(f.summary_line())
            for key, value in f.metrics.items():
                paper = f.paper_values.get(key)
                paper_str = f"  (paper: {paper:g})" if paper is not None else ""
                lines.append(f"    {key} = {value:g}{paper_str}")
            if f.notes:
                lines.append(f"    note: {f.notes}")
        return "\n".join(lines)


def evaluate_findings(cache: TraceAnalysis, bare: TraceAnalysis) -> FindingsReport:
    """Check Findings 1-11 against a CacheTrace/BareTrace analysis pair.

    ``cache`` must carry a store snapshot in its size analyzer (the
    paper extracts Table I / Figure 2 from the store after CacheTrace).
    """
    findings = [
        _finding1_dominant_classes(cache),
        _finding2_size_variation(cache),
        _finding3_rarely_read(cache, bare),
        _finding4_scans_rare(cache),
        _finding5_deletions(cache, bare),
        _finding6_caching_medium_frequency(cache, bare),
        _finding7_snapshot_acceleration(cache, bare),
        _finding8_read_correlation_clustering(cache, bare),
        _finding9_read_correlation_skew(cache, bare),
        _finding10_update_correlation_clustering(cache, bare),
        _finding11_update_correlation_frequency(cache, bare),
    ]
    return FindingsReport(findings)


# ---------------------------------------------------------------------------
# KV storage management
# ---------------------------------------------------------------------------


def _finding1_dominant_classes(cache: TraceAnalysis) -> Finding:
    """Five classes of KV pairs dominate KV storage."""
    sizes = cache.sizes
    dominant_share = sizes.dominant_share()
    singletons = len(sizes.singleton_classes())
    num_classes = len(sizes.observed_classes())
    passed = dominant_share > 90.0 and singletons >= 10
    return Finding(
        number=1,
        title="Five classes of KV pairs dominate KV storage",
        passed=passed,
        metrics={
            "dominant_share_pct": dominant_share,
            "singleton_classes": singletons,
            "observed_classes": num_classes,
        },
        paper_values={
            "dominant_share_pct": 99.2,
            "singleton_classes": 15,
            "observed_classes": 29,
        },
    )


def _finding2_size_variation(cache: TraceAnalysis) -> Finding:
    """KV sizes (per KV pair) vary across classes."""
    sizes = cache.sizes
    dominant_mean = sizes.mean_kv_size(DOMINANT_CLASSES)
    code_mean = sizes.stats_for(KVClass.CODE).mean_kv_size
    body_mean = sizes.stats_for(KVClass.BLOCK_BODY).mean_kv_size
    receipts_mean = sizes.stats_for(KVClass.BLOCK_RECEIPTS).mean_kv_size
    large = [m for m in (code_mean, body_mean, receipts_mean) if m > 0]
    passed = dominant_mean < 200.0 and bool(large) and min(large) > 1024.0
    return Finding(
        number=2,
        title="KV sizes vary across classes",
        passed=passed,
        metrics={
            "dominant_mean_bytes": dominant_mean,
            "code_mean_bytes": code_mean,
            "block_body_mean_bytes": body_mean,
            "block_receipts_mean_bytes": receipts_mean,
        },
        paper_values={
            "dominant_mean_bytes": 79.1,
            "code_mean_bytes": 6.61 * 1024,
            "block_body_mean_bytes": 77.5 * 1024,
            "block_receipts_mean_bytes": 74.2 * 1024,
        },
    )


# ---------------------------------------------------------------------------
# KV operation distribution
# ---------------------------------------------------------------------------


def _finding3_rarely_read(cache: TraceAnalysis, bare: TraceAnalysis) -> Finding:
    """Most KV pairs are rarely or never read."""
    cache_ta_ratio = cache.read_ratio(KVClass.TRIE_NODE_ACCOUNT)
    cache_ts_ratio = cache.read_ratio(KVClass.TRIE_NODE_STORAGE)
    bare_ta_ratio = bare.read_ratio(KVClass.TRIE_NODE_ACCOUNT)
    read_once_ts = cache.opdist.activity(
        KVClass.TRIE_NODE_STORAGE
    ).fraction_with_frequency(OpType.READ, 1)
    read_once_sa = cache.opdist.activity(
        KVClass.SNAPSHOT_ACCOUNT
    ).fraction_with_frequency(OpType.READ, 1)
    passed = (
        cache_ta_ratio < 60.0
        and cache_ts_ratio < 60.0
        and read_once_ts > 25.0
    )
    return Finding(
        number=3,
        title="Most KV pairs are rarely or never read",
        passed=passed,
        metrics={
            "cache_trienodeaccount_read_ratio_pct": cache_ta_ratio,
            "cache_trienodestorage_read_ratio_pct": cache_ts_ratio,
            "bare_trienodeaccount_read_ratio_pct": bare_ta_ratio,
            "cache_ts_read_once_pct": read_once_ts,
            "cache_sa_read_once_pct": read_once_sa,
        },
        paper_values={
            "cache_trienodeaccount_read_ratio_pct": 13.0,
            "cache_trienodestorage_read_ratio_pct": 6.59,
            "bare_trienodeaccount_read_ratio_pct": 14.7,
            "cache_ts_read_once_pct": 63.1,
            "cache_sa_read_once_pct": 71.5,
        },
        notes="read ratio = fraction of pairs ever present that are read >= once",
    )


_SCAN_ALLOWED = frozenset(
    {KVClass.SNAPSHOT_ACCOUNT, KVClass.SNAPSHOT_STORAGE, KVClass.BLOCK_HEADER}
)


def _finding4_scans_rare(cache: TraceAnalysis) -> Finding:
    """Scans are rare in Ethereum."""
    scanned = set(cache.opdist.scanned_classes())
    only_expected = scanned.issubset(_SCAN_ALLOWED)
    bh_scan_pct = cache.opdist.distribution(KVClass.BLOCK_HEADER).pct(OpType.SCAN)
    ss_scan_pct = cache.opdist.distribution(KVClass.SNAPSHOT_STORAGE).pct(OpType.SCAN)
    total_scans = sum(
        cache.opdist.distribution(c).scans for c in cache.opdist.observed_classes()
    )
    scan_share = 100.0 * total_scans / max(1, cache.opdist.total_ops)
    passed = only_expected and scan_share < 1.0 and ss_scan_pct < 1.0
    return Finding(
        number=4,
        title="Scans are rare in Ethereum",
        passed=passed,
        metrics={
            "scanned_classes": len(scanned),
            "scan_share_of_all_ops_pct": scan_share,
            "blockheader_scan_pct": bh_scan_pct,
            "snapshotstorage_scan_pct": ss_scan_pct,
        },
        paper_values={
            "scanned_classes": 3,
            "blockheader_scan_pct": 5.63,
            "snapshotstorage_scan_pct": 0.002,
        },
        notes=f"classes with scans: {sorted(c.value for c in scanned)}",
    )


def _finding5_deletions(cache: TraceAnalysis, bare: TraceAnalysis) -> Finding:
    """Deletions are significant, with some keys repeatedly deleted and reinserted."""
    txl_del = cache.opdist.distribution(KVClass.TX_LOOKUP).pct(OpType.DELETE)
    bh_del = cache.opdist.distribution(KVClass.BLOCK_HEADER).pct(OpType.DELETE)
    ta_del = cache.opdist.distribution(KVClass.TRIE_NODE_ACCOUNT).pct(OpType.DELETE)
    repeat_deleted = cache.opdist.activity(
        KVClass.TRIE_NODE_STORAGE
    ).keys_with_op_at_least(OpType.DELETE, 2)
    passed = txl_del > 30.0 and bh_del > 5.0 and ta_del < 5.0 and repeat_deleted > 0
    return Finding(
        number=5,
        title="Deletions are significant; some keys repeatedly deleted and reinserted",
        passed=passed,
        metrics={
            "txlookup_delete_pct": txl_del,
            "blockheader_delete_pct": bh_del,
            "trienodeaccount_delete_pct": ta_del,
            "ts_keys_deleted_2plus": repeat_deleted,
        },
        paper_values={
            "txlookup_delete_pct": 48.0,
            "blockheader_delete_pct": 16.9,
            "trienodeaccount_delete_pct": 0.003,
        },
    )


def _finding6_caching_medium_frequency(
    cache: TraceAnalysis, bare: TraceAnalysis
) -> Finding:
    """Caching has limited effectiveness for medium-frequency KV pairs."""
    reductions: dict[str, float] = {}
    for cls, label in (
        (KVClass.TRIE_NODE_ACCOUNT, "ta"),
        (KVClass.TRIE_NODE_STORAGE, "ts"),
    ):
        top_keys = bare.opdist.top_read_keys(cls, fraction=0.001)
        bare_top = bare.opdist.reads_to_keys(cls, top_keys)
        cache_top = cache.opdist.reads_to_keys(cls, top_keys)
        top_reduction = _reduction_pct(bare_top, cache_top)

        bare_medium = bare.opdist.reads_to_band(cls, 10, 100)
        medium_keys = [
            key
            for key, count in bare.opdist.activity(cls).read_counts.items()
            if 10 <= count <= 100
        ]
        cache_medium = cache.opdist.reads_to_keys(cls, medium_keys)
        medium_reduction = _reduction_pct(bare_medium, cache_medium)

        reductions[f"{label}_top0.1pct_read_reduction_pct"] = top_reduction
        reductions[f"{label}_medium_freq_read_reduction_pct"] = medium_reduction

    passed = (
        reductions["ta_top0.1pct_read_reduction_pct"]
        > reductions["ta_medium_freq_read_reduction_pct"]
        and reductions["ts_top0.1pct_read_reduction_pct"]
        > reductions["ts_medium_freq_read_reduction_pct"]
    )
    return Finding(
        number=6,
        title="Caching has limited effectiveness for medium-frequency KV pairs",
        passed=passed,
        metrics=reductions,
        paper_values={
            "ta_top0.1pct_read_reduction_pct": 99.97,
            "ts_top0.1pct_read_reduction_pct": 99.94,
        },
        notes="reduction compares reads to the same key set in BareTrace vs CacheTrace",
    )


def _reduction_pct(before: int, after: int) -> float:
    if before <= 0:
        return 0.0
    return 100.0 * (before - after) / before


def _finding7_snapshot_acceleration(
    cache: TraceAnalysis, bare: TraceAnalysis
) -> Finding:
    """Snapshot acceleration cuts world-state reads/writes at a storage cost."""
    trie_classes = (KVClass.TRIE_NODE_ACCOUNT, KVClass.TRIE_NODE_STORAGE)
    bare_trie_reads = bare.opdist.reads_in(trie_classes)
    cache_trie_reads = cache.opdist.reads_in(trie_classes)
    trie_read_reduction = _reduction_pct(bare_trie_reads, cache_trie_reads)

    bare_ws_reads = bare.opdist.reads_in(WORLD_STATE_CLASSES)
    cache_ws_reads = cache.opdist.reads_in(WORLD_STATE_CLASSES)
    ws_read_reduction = _reduction_pct(bare_ws_reads, cache_ws_reads)

    bare_ws_puts = bare.opdist.puts_in(WORLD_STATE_CLASSES)
    cache_ws_puts = cache.opdist.puts_in(WORLD_STATE_CLASSES)
    ws_put_reduction = _reduction_pct(bare_ws_puts, cache_ws_puts)

    passed = trie_read_reduction > 30.0 and ws_put_reduction > 0.0
    return Finding(
        number=7,
        title="Snapshot acceleration reduces world-state reads/writes, costs storage",
        passed=passed,
        metrics={
            "trie_read_reduction_pct": trie_read_reduction,
            "world_state_read_reduction_pct": ws_read_reduction,
            "world_state_put_reduction_pct": ws_put_reduction,
        },
        paper_values={
            "world_state_read_reduction_pct": 79.7,
            "world_state_put_reduction_pct": 64.2,
        },
        notes="storage-overhead side is checked by the Table I / Finding 1 snapshot share",
    )


# ---------------------------------------------------------------------------
# Read correlations
# ---------------------------------------------------------------------------


def _monotone_decay(series: list[tuple[int, int]]) -> bool:
    """True when the first value dominates and the tail broadly decays."""
    if not series:
        return False
    values = [count for _, count in series]
    return values[0] > 0 and values[0] >= max(values) and values[-1] <= values[0]


def _finding8_read_correlation_clustering(
    cache: TraceAnalysis, bare: TraceAnalysis
) -> Finding:
    """Correlated reads are clustered in small regions."""
    bare_results = bare.correlation(OpType.READ)
    cache_results = cache.correlation(OpType.READ)
    d0 = bare_results[0]
    top_intra = d0.top_pairs(1, cross_class=False)
    top_cross = d0.top_pairs(1, cross_class=True)
    intra0 = top_intra[0][1] if top_intra else 0
    cross0 = top_cross[0][1] if top_cross else 0

    analyzer = bare.correlation_analyzer(OpType.READ)
    decay_ok = True
    if top_intra:
        series = analyzer.series(bare_results, top_intra[0][0])
        decay_ok = _monotone_decay(series)

    cache_d0_total = sum(cache_results[0].class_pair_counts.values())
    bare_d0_total = sum(bare_results[0].class_pair_counts.values())

    passed = intra0 > cross0 and decay_ok and bare_d0_total >= cache_d0_total
    return Finding(
        number=8,
        title="Correlated reads are clustered in small regions",
        passed=passed,
        metrics={
            "bare_top_intra_d0": intra0,
            "bare_top_cross_d0": cross0,
            "bare_d0_total": bare_d0_total,
            "cache_d0_total": cache_d0_total,
        },
        notes="intra-class > cross-class at distance 0; counts decay with distance; "
        "BareTrace >= CacheTrace",
    )


def _finding9_read_correlation_skew(
    cache: TraceAnalysis, bare: TraceAnalysis
) -> Finding:
    """Correlated reads are skewed in frequency."""
    bare_results = bare.correlation(OpType.READ)
    distances = sorted(bare_results)
    d_min, d_max = distances[0], distances[-1]
    ta_ta = class_pair(KVClass.TRIE_NODE_ACCOUNT, KVClass.TRIE_NODE_ACCOUNT)
    max_freq_d0 = bare_results[d_min].max_pair_frequency(ta_ta)
    max_freq_dmax = bare_results[d_max].max_pair_frequency(ta_ta)

    cache_results = cache.correlation(OpType.READ)
    cache_max_d0 = cache_results[d_min].max_pair_frequency(ta_ta)

    passed = max_freq_d0 >= max_freq_dmax and max_freq_d0 >= cache_max_d0
    return Finding(
        number=9,
        title="Correlated reads are skewed in frequency",
        passed=passed,
        metrics={
            "bare_ta_ta_max_freq_d0": max_freq_d0,
            "bare_ta_ta_max_freq_dmax": max_freq_dmax,
            "cache_ta_ta_max_freq_d0": cache_max_d0,
        },
        notes="frequency at distance 0 dominates the largest distance; "
        "caching reduces skew",
    )


# ---------------------------------------------------------------------------
# Update correlations
# ---------------------------------------------------------------------------

_HEAD_POINTER_CLASSES = frozenset(
    {KVClass.LAST_FAST, KVClass.LAST_HEADER, KVClass.LAST_BLOCK, KVClass.LAST_STATE_ID}
)


def _finding10_update_correlation_clustering(
    cache: TraceAnalysis, bare: TraceAnalysis
) -> Finding:
    """Correlated updates are clustered in small regions."""
    results = cache.correlation(OpType.UPDATE)
    d0 = results[0]
    top_cross = d0.top_pairs(3, cross_class=True)
    head_pointer_in_top = any(
        pair[0] in _HEAD_POINTER_CLASSES and pair[1] in _HEAD_POINTER_CLASSES
        for pair, _ in top_cross
    )
    analyzer = cache.correlation_analyzer(OpType.UPDATE)
    decay_ok = True
    if top_cross:
        series = analyzer.series(results, top_cross[0][0])
        decay_ok = _monotone_decay(series)
    passed = head_pointer_in_top and decay_ok
    return Finding(
        number=10,
        title="Correlated updates are clustered in small regions",
        passed=passed,
        metrics={
            "top_cross_d0_count": top_cross[0][1] if top_cross else 0,
            "head_pointer_pair_in_top3": float(head_pointer_in_top),
        },
        notes="top cross-class pairs are head-pointer classes (LastFast/LastHeader/"
        "LastBlock), updated once per block in a batch",
    )


def _finding11_update_correlation_frequency(
    cache: TraceAnalysis, bare: TraceAnalysis
) -> Finding:
    """Correlated updates have unique frequency distribution."""
    results = cache.correlation(OpType.UPDATE)
    distances = sorted(results)
    d_min, d_max = distances[0], distances[-1]
    ts_ts = class_pair(KVClass.TRIE_NODE_STORAGE, KVClass.TRIE_NODE_STORAGE)
    code_code = class_pair(KVClass.CODE, KVClass.CODE)
    ts_d0 = results[d_min].max_pair_frequency(ts_ts)
    ts_dmax = results[d_max].max_pair_frequency(ts_ts)
    code_d0 = results[d_min].class_pair_counts.get(code_code, 0)
    passed = ts_d0 >= ts_dmax and ts_d0 > 0
    return Finding(
        number=11,
        title="Correlated updates have unique frequency distribution",
        passed=passed,
        metrics={
            "cache_ts_ts_max_freq_d0": ts_d0,
            "cache_ts_ts_max_freq_dmax": ts_dmax,
            "cache_code_code_d0_count": code_d0,
        },
        notes="TrieNodeStorage intra-class update frequency peaks at distance 0; "
        "Code shows little/no intra-class update correlation",
    )
