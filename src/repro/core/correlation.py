"""Distance-based read/update correlation analysis — Figures 4-7.

Definitions (paper §IV-C):

* The **distance** between two operations is the number of like-kind
  operations separating them in the trace: distance 0 means adjacent
  reads (for read correlation) or adjacent updates (for update
  correlation).
* A **correlated pair** is an unordered pair of keys whose operations
  occur at a given distance *at least twice* across the whole trace
  (``min_occurrence``); pairs seen once are coincidental and excluded.
* The **correlated count** for a class pair (A, B) at distance d is the
  total number of occurrences contributed by qualifying key pairs with
  one key in A and the other in B (A may equal B: intra-class).

The analyzer extracts the subsequence of the configured operation kind,
then for each configured distance counts unordered key-pair
occurrences, aggregating per class pair.  Self-pairs (the same key at
both ends, common for head-pointer singletons like LastHeader) count
toward the intra-class pair of that key's class.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core.classes import KVClass, classify_key
from repro.core.trace import OpType, TraceRecord

#: Distances analyzed by default — powers of four from 0 to 1024,
#: matching the log-scale x-axes of Figures 4 and 6.
DEFAULT_DISTANCES = (0, 1, 4, 16, 64, 256, 1024)

#: An unordered class pair, canonically ordered by class value.
ClassPair = tuple[KVClass, KVClass]


def class_pair(a: KVClass, b: KVClass) -> ClassPair:
    """Canonical unordered class pair."""
    if a.value <= b.value:
        return (a, b)
    return (b, a)


def format_class_pair(pair: ClassPair) -> str:
    """Render a class pair with the paper's abbreviations, e.g. 'TA-TS'."""
    return f"{pair[0].abbreviation}-{pair[1].abbreviation}"


@dataclass(frozen=True)
class CorrelationConfig:
    """Configuration for one correlation analysis run."""

    op: OpType = OpType.READ
    distances: Sequence[int] = DEFAULT_DISTANCES
    #: minimum occurrences for a key pair to qualify as correlated
    min_occurrence: int = 2
    #: optional cap on the number of operations analyzed (memory guard)
    max_ops: Optional[int] = None

    def __post_init__(self) -> None:
        if self.op not in (OpType.READ, OpType.UPDATE, OpType.WRITE, OpType.DELETE):
            raise ValueError(f"correlation over {self.op!r} is not meaningful")
        if any(d < 0 for d in self.distances):
            raise ValueError("distances must be non-negative")
        if self.min_occurrence < 1:
            raise ValueError("min_occurrence must be >= 1")


@dataclass
class DistanceResult:
    """Correlation counts at one distance."""

    distance: int
    #: qualifying occurrences aggregated per class pair
    class_pair_counts: Counter = field(default_factory=Counter)
    #: per class pair: Counter mapping key-pair frequency -> number of
    #: key pairs with that frequency (Figures 5 and 7)
    frequency_histograms: dict[ClassPair, Counter] = field(default_factory=dict)

    def count_for(self, a: KVClass, b: KVClass) -> int:
        return self.class_pair_counts.get(class_pair(a, b), 0)

    def top_pairs(self, n: int = 3, cross_class: Optional[bool] = None) -> list[tuple[ClassPair, int]]:
        """Top class pairs by correlated count.

        ``cross_class=True`` restricts to pairs of distinct classes,
        ``False`` to intra-class pairs, ``None`` to all.
        """
        items = [
            (pair, count)
            for pair, count in self.class_pair_counts.items()
            if cross_class is None or (pair[0] is not pair[1]) == cross_class
        ]
        items.sort(key=lambda kv: (-kv[1], kv[0][0].value, kv[0][1].value))
        return items[:n]

    def max_pair_frequency(self, pair: ClassPair) -> int:
        """Highest key-pair frequency for a class pair (Figure 5 peaks)."""
        histogram = self.frequency_histograms.get(pair)
        if not histogram:
            return 0
        return max(histogram)


class CorrelationAnalyzer:
    """Runs the paper's correlation analysis over a trace.

    Usage::

        analyzer = CorrelationAnalyzer(CorrelationConfig(op=OpType.READ))
        analyzer.consume(trace_records)
        results = analyzer.compute()
        results[0].top_pairs(3, cross_class=True)
    """

    def __init__(self, config: Optional[CorrelationConfig] = None) -> None:
        self.config = config if config is not None else CorrelationConfig()
        self._keys: list[bytes] = []
        self._class_cache: dict[bytes, KVClass] = {}

    def consume(self, records: Iterable[TraceRecord]) -> "CorrelationAnalyzer":
        """Extract the subsequence of the configured operation kind."""
        target = self.config.op
        max_ops = self.config.max_ops
        keys = self._keys
        for record in records:
            if record.op is target:
                keys.append(record.key)
                if max_ops is not None and len(keys) >= max_ops:
                    break
        return self

    def consume_chunk(self, chunk) -> "CorrelationAnalyzer":
        """Chunk-batched ingest: one mask per chunk instead of a Python
        test per record.  Appends references to the chunk's interned key
        bytes (no copies); equivalent to :meth:`consume` over the same
        records, including the ``max_ops`` cutoff.
        """
        keys = self._keys
        max_ops = self.config.max_ops
        if max_ops is not None and len(keys) >= max_ops:
            return self
        mask = chunk.ops == int(self.config.op)
        if not mask.any():
            return self
        matched = chunk.key_ids[mask].tolist()
        if max_ops is not None:
            matched = matched[: max_ops - len(keys)]
        table = chunk.keys
        keys.extend(table[key_id] for key_id in matched)
        return self

    def consume_chunks(self, chunks: Iterable) -> "CorrelationAnalyzer":
        for chunk in chunks:
            self.consume_chunk(chunk)
        return self

    @property
    def num_ops(self) -> int:
        """Number of operations of the configured kind consumed."""
        return len(self._keys)

    def _class_of(self, key: bytes) -> KVClass:
        cls = self._class_cache.get(key)
        if cls is None:
            cls = classify_key(key)
            self._class_cache[key] = cls
        return cls

    def compute(self) -> dict[int, DistanceResult]:
        """Count correlated pairs at every configured distance."""
        return {d: self.compute_distance(d) for d in self.config.distances}

    #: above this many operations the vectorized pair counter kicks in
    VECTORIZE_THRESHOLD = 4096

    def compute_distance(self, distance: int) -> DistanceResult:
        """Count correlated pairs at one distance.

        Distance d pairs positions (i, i+d+1): d operations separate the
        two ends, so d=0 pairs adjacent operations.  Large traces go
        through a numpy pair counter (identical results, ~20x faster);
        small ones use the straightforward Counter loop.
        """
        if len(self._keys) >= self.VECTORIZE_THRESHOLD:
            return self._compute_distance_vectorized(distance)
        return self._compute_distance_reference(distance)

    def _compute_distance_reference(self, distance: int) -> DistanceResult:
        keys = self._keys
        gap = distance + 1
        pair_counts: Counter = Counter()
        for i in range(len(keys) - gap):
            a = keys[i]
            b = keys[i + gap]
            pair_counts[(a, b) if a <= b else (b, a)] += 1

        result = DistanceResult(distance=distance)
        min_occ = self.config.min_occurrence
        for (key_a, key_b), occurrences in pair_counts.items():
            if occurrences < min_occ:
                continue
            pair = class_pair(self._class_of(key_a), self._class_of(key_b))
            self._accumulate(result, pair, occurrences)
        return result

    def _compute_distance_vectorized(self, distance: int) -> DistanceResult:
        """numpy pair counting: unique (min_id, max_id) pairs with counts."""
        key_ids, id_classes = self._encoded()
        gap = distance + 1
        result = DistanceResult(distance=distance)
        if len(key_ids) <= gap:
            return result
        left = key_ids[:-gap]
        right = key_ids[gap:]
        low = np.minimum(left, right).astype(np.int64)
        high = np.maximum(left, right).astype(np.int64)
        combined = low * np.int64(len(id_classes)) + high
        unique_pairs, counts = np.unique(combined, return_counts=True)
        qualifying = counts >= self.config.min_occurrence
        unique_pairs = unique_pairs[qualifying]
        counts = counts[qualifying]
        num_ids = len(id_classes)
        for pair_code, occurrences in zip(unique_pairs.tolist(), counts.tolist()):
            low_id, high_id = divmod(pair_code, num_ids)
            pair = class_pair(id_classes[low_id], id_classes[high_id])
            self._accumulate(result, pair, occurrences)
        return result

    def _accumulate(self, result: DistanceResult, pair: ClassPair, occurrences: int) -> None:
        result.class_pair_counts[pair] += occurrences
        histogram = result.frequency_histograms.get(pair)
        if histogram is None:
            histogram = Counter()
            result.frequency_histograms[pair] = histogram
        histogram[occurrences] += 1

    def _encoded(self) -> tuple[np.ndarray, list[KVClass]]:
        """Integer-id view of the key sequence (cached)."""
        if getattr(self, "_encoded_cache", None) is None or self._encoded_dirty():
            id_of: dict[bytes, int] = {}
            id_classes: list[KVClass] = []
            ids = np.empty(len(self._keys), dtype=np.int64)
            for index, key in enumerate(self._keys):
                key_id = id_of.get(key)
                if key_id is None:
                    key_id = len(id_of)
                    id_of[key] = key_id
                    id_classes.append(self._class_of(key))
                ids[index] = key_id
            self._encoded_cache = (ids, id_classes)
            self._encoded_len = len(self._keys)
        return self._encoded_cache

    def _encoded_dirty(self) -> bool:
        return getattr(self, "_encoded_len", -1) != len(self._keys)

    def series(
        self, results: dict[int, DistanceResult], pair: ClassPair
    ) -> list[tuple[int, int]]:
        """(distance, correlated count) series for one class pair (Fig 4/6)."""
        return [
            (distance, results[distance].class_pair_counts.get(pair, 0))
            for distance in sorted(results)
        ]


def correlation_summary(
    records: Iterable[TraceRecord],
    op: OpType = OpType.READ,
    distances: Sequence[int] = DEFAULT_DISTANCES,
    top_n: int = 3,
) -> dict[int, DistanceResult]:
    """One-call convenience wrapper: consume + compute."""
    analyzer = CorrelationAnalyzer(CorrelationConfig(op=op, distances=tuple(distances)))
    analyzer.consume(records)
    return analyzer.compute()
