"""Core trace-analysis framework — the paper's primary contribution.

This package defines:

* the trace model (:mod:`repro.core.trace`): KV operation records as
  captured at the KV-store interface, plus streaming readers/writers;
* the class taxonomy (:mod:`repro.core.classes`): the 29 KV classes
  identified from Geth's storage schema, and a prefix classifier;
* size analysis (:mod:`repro.core.sizes`): Table I and Figure 2;
* operation-distribution analysis (:mod:`repro.core.opdist`):
  Tables II/III/IV and Figure 3;
* correlation analysis (:mod:`repro.core.correlation`): Figures 4-7;
* the findings engine (:mod:`repro.core.findings`): Findings 1-11;
* report rendering (:mod:`repro.core.report`): paper-style tables.
"""

from repro.core.blockstats import BlockProfile, BlockStatsAnalyzer, slice_blocks
from repro.core.classes import KVClass, classify_key
from repro.core.compare import TraceComparison, compare_traces
from repro.core.iostats import IOStatsAnalyzer
from repro.core.correlation import CorrelationAnalyzer, CorrelationConfig
from repro.core.findings import FindingsReport, evaluate_findings
from repro.core.opdist import OperationDistribution, OpDistAnalyzer
from repro.core.sizes import ClassSizeStats, SizeAnalyzer
from repro.core.trace import OpType, TraceReader, TraceRecord, TraceWriter

__all__ = [
    "BlockProfile",
    "BlockStatsAnalyzer",
    "slice_blocks",
    "TraceComparison",
    "compare_traces",
    "IOStatsAnalyzer",
    "KVClass",
    "classify_key",
    "OpType",
    "TraceRecord",
    "TraceReader",
    "TraceWriter",
    "ClassSizeStats",
    "SizeAnalyzer",
    "OperationDistribution",
    "OpDistAnalyzer",
    "CorrelationAnalyzer",
    "CorrelationConfig",
    "FindingsReport",
    "evaluate_findings",
]
