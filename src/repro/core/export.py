"""CSV / JSON exporters for analysis results.

Machine-readable companions to the paper-style text renderers in
:mod:`repro.core.report`: a downstream user plots Figure 2 from the
size CSV or diffs two runs' findings from the JSON.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

from repro.core.correlation import DistanceResult
from repro.core.findings import FindingsReport
from repro.core.opdist import OpDistAnalyzer
from repro.core.sizes import SizeAnalyzer
from repro.core.trace import OpType

PathLike = Union[str, Path]


def sizes_to_csv(sizes: SizeAnalyzer, path: PathLike) -> None:
    """Table I as CSV: one row per class with counts and size stats."""
    with open(path, "w", newline="", encoding="ascii") as stream:
        writer = csv.writer(stream)
        writer.writerow(
            [
                "class",
                "num_pairs",
                "pct_of_pairs",
                "key_size_mean",
                "key_size_ci95",
                "value_size_mean",
                "value_size_ci95",
                "kv_size_min",
                "kv_size_max",
            ]
        )
        for kv_class in sizes.observed_classes():
            stats = sizes.stats_for(kv_class)
            histogram = stats.kv_size_histogram
            writer.writerow(
                [
                    kv_class.display_name,
                    stats.num_pairs,
                    f"{sizes.percentage(kv_class):.6f}",
                    f"{stats.key_size.mean:.3f}",
                    f"{stats.key_size.ci95_half_width:.5f}",
                    f"{stats.value_size.mean:.3f}",
                    f"{stats.value_size.ci95_half_width:.5f}",
                    min(histogram) if histogram else 0,
                    max(histogram) if histogram else 0,
                ]
            )


def opdist_to_csv(opdist: OpDistAnalyzer, path: PathLike) -> None:
    """Tables II/III as CSV: per-class op counts and percentages."""
    ops = (OpType.WRITE, OpType.UPDATE, OpType.READ, OpType.SCAN, OpType.DELETE)
    with open(path, "w", newline="", encoding="ascii") as stream:
        writer = csv.writer(stream)
        header = ["class", "pct_of_all_ops", "total_ops"]
        header += [f"{op.name.lower()}s" for op in ops]
        header += [f"{op.name.lower()}_pct" for op in ops]
        writer.writerow(header)
        for kv_class in opdist.observed_classes():
            dist = opdist.distribution(kv_class)
            row = [
                kv_class.display_name,
                f"{opdist.class_share(kv_class):.6f}",
                dist.total,
            ]
            row += [dist.count(op) for op in ops]
            row += [f"{dist.pct(op):.4f}" for op in ops]
            writer.writerow(row)


def correlation_to_csv(results: dict[int, DistanceResult], path: PathLike) -> None:
    """Figures 4/6 as CSV: (distance, classA, classB, count, max_freq)."""
    with open(path, "w", newline="", encoding="ascii") as stream:
        writer = csv.writer(stream)
        writer.writerow(["distance", "class_a", "class_b", "count", "max_frequency"])
        for distance in sorted(results):
            result = results[distance]
            for pair, count in sorted(
                result.class_pair_counts.items(), key=lambda kv: -kv[1]
            ):
                writer.writerow(
                    [
                        distance,
                        pair[0].display_name,
                        pair[1].display_name,
                        count,
                        result.max_pair_frequency(pair),
                    ]
                )


def findings_to_json(report: FindingsReport, path: PathLike) -> None:
    """Findings 1-11 as JSON with metrics and paper values."""
    payload = [
        {
            "number": finding.number,
            "title": finding.title,
            "passed": finding.passed,
            "metrics": finding.metrics,
            "paper_values": finding.paper_values,
            "notes": finding.notes,
        }
        for finding in report
    ]
    with open(path, "w", encoding="ascii") as stream:
        json.dump(payload, stream, indent=2)


def findings_from_json(path: PathLike) -> list[dict]:
    """Load a findings JSON back into plain dictionaries."""
    with open(path, "r", encoding="ascii") as stream:
        return json.load(stream)
