"""KV operation trace model and streaming I/O.

A trace is an ordered sequence of :class:`TraceRecord` objects, one per
KV operation observed at the KV-store interface — the same capture point
the paper instruments in Geth.  Each record carries the operation type,
the key, the value size (values themselves are not retained; the
analyses only need sizes), and the block height at which the operation
was issued.

Three persistent formats are provided:

* **binary v1**: a compact length-prefixed record stream;
* **binary v2**: a chunked *columnar* format — each chunk stores the
  operation/value-size/block/key-id columns as contiguous little-endian
  arrays plus an interned key table, and a footer records per-chunk file
  offsets and record counts so shards can be read independently (the
  parallel scheduler's random-access path);
* **text**: one human-readable line per record, mirroring the format of
  the paper's released ``geth-trace`` logs.

All formats support streaming: readers yield records (or columnar
chunks) lazily so analyses can run over traces larger than memory.
:class:`ColumnarTraceReader` reads both binary versions transparently.
"""

from __future__ import annotations

import enum
import io
import logging
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import IO, TYPE_CHECKING, Iterable, Iterator, Optional, Union

from repro.errors import TraceFormatError

_LOG = logging.getLogger("repro.trace")

if TYPE_CHECKING:  # avoid an import cycle; columnar imports this module
    from repro.core.columnar import TraceChunk


class OpType(enum.IntEnum):
    """KV operation types distinguished by the paper.

    Geth itself does not distinguish writes from updates; following the
    paper (§III-B) the tracing layer classifies a put as UPDATE when the
    key already exists in the store and WRITE otherwise.  SCAN records
    one range query (the paper counts a scan as a single operation).
    """

    WRITE = 0
    UPDATE = 1
    READ = 2
    DELETE = 3
    SCAN = 4

    @property
    def short_name(self) -> str:
        return _SHORT_NAMES[self]

    @classmethod
    def from_short_name(cls, name: str) -> "OpType":
        try:
            return _FROM_SHORT[name]
        except KeyError:
            raise TraceFormatError(f"unknown operation short name: {name!r}") from None


_SHORT_NAMES = {
    OpType.WRITE: "W",
    OpType.UPDATE: "U",
    OpType.READ: "R",
    OpType.DELETE: "D",
    OpType.SCAN: "S",
}
_FROM_SHORT = {v: k for k, v in _SHORT_NAMES.items()}

MUTATING_OPS = frozenset({OpType.WRITE, OpType.UPDATE, OpType.DELETE})
PUT_OPS = frozenset({OpType.WRITE, OpType.UPDATE})


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """A single KV operation as observed at the store interface.

    Attributes:
        op: the operation type.
        key: the full KV key, including its class prefix.
        value_size: size in bytes of the value written/read; 0 for
            deletes and for reads that missed.  For scans, the total
            bytes returned by the range query.
        block: block height being processed when the op was issued
            (0 for operations outside block processing, e.g. startup).
    """

    op: OpType
    key: bytes
    value_size: int = 0
    block: int = 0

    def to_text(self) -> str:
        """Render as one trace-log line: ``<op> <hexkey> <vsize> <block>``."""
        return f"{self.op.short_name} {self.key.hex()} {self.value_size} {self.block}"

    @classmethod
    def from_text(cls, line: str) -> "TraceRecord":
        parts = line.split()
        if len(parts) != 4:
            raise TraceFormatError(f"expected 4 fields, got {len(parts)}: {line!r}")
        op = OpType.from_short_name(parts[0])
        try:
            key = bytes.fromhex(parts[1])
            value_size = int(parts[2])
            block = int(parts[3])
        except ValueError as exc:
            raise TraceFormatError(f"bad trace line {line!r}: {exc}") from exc
        return cls(op=op, key=key, value_size=value_size, block=block)


_BINARY_MAGIC = b"EKVT"
_BINARY_VERSION = 1
_BINARY_VERSION_V2 = 2
# Per-record header: op(u8), key_len(u16), value_size(u32), block(u32)
_RECORD_HEADER = struct.Struct("<BHII")


def _iter_v1_records(stream: IO[bytes]) -> Iterator[TraceRecord]:
    """Yield records from a v1 stream positioned just past the header."""
    read = stream.read
    header_size = _RECORD_HEADER.size
    unpack = _RECORD_HEADER.unpack
    while True:
        header = read(header_size)
        if not header:
            return
        if len(header) != header_size:
            raise TraceFormatError("truncated record header")
        op, key_len, value_size, block = unpack(header)
        key = read(key_len)
        if len(key) != key_len:
            raise TraceFormatError("truncated record key")
        yield TraceRecord(OpType(op), key, value_size, block)


class TraceWriter:
    """Streaming trace writer (binary format).

    Usage::

        with TraceWriter.open(path) as writer:
            writer.append(record)
    """

    def __init__(self, stream: IO[bytes]) -> None:
        self._stream = stream
        self._count = 0
        stream.write(_BINARY_MAGIC)
        stream.write(bytes([_BINARY_VERSION]))

    @classmethod
    def open(cls, path: Union[str, Path]) -> "TraceWriter":
        stream = open(path, "wb")
        try:
            return cls(stream)
        except BaseException:
            stream.close()
            raise

    @property
    def count(self) -> int:
        """Number of records appended so far."""
        return self._count

    def append(self, record: TraceRecord) -> None:
        if len(record.key) > 0xFFFF:
            raise TraceFormatError(f"key too long for binary format: {len(record.key)}")
        self._stream.write(
            _RECORD_HEADER.pack(
                int(record.op), len(record.key), record.value_size, record.block
            )
        )
        self._stream.write(record.key)
        self._count += 1

    def extend(self, records: Iterable[TraceRecord]) -> None:
        for record in records:
            self.append(record)

    def close(self) -> None:
        self._stream.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class TraceReader:
    """Streaming trace reader (binary format)."""

    def __init__(self, stream: IO[bytes]) -> None:
        self._stream = stream
        magic = stream.read(4)
        if magic != _BINARY_MAGIC:
            raise TraceFormatError(f"bad trace magic: {magic!r}")
        version = stream.read(1)
        if not version or version[0] != _BINARY_VERSION:
            raise TraceFormatError(f"unsupported trace version: {version!r}")

    @classmethod
    def open(cls, path: Union[str, Path]) -> "TraceReader":
        stream = open(path, "rb")
        try:
            return cls(stream)
        except BaseException:
            stream.close()
            raise

    def __iter__(self) -> Iterator[TraceRecord]:
        return _iter_v1_records(self._stream)

    def close(self) -> None:
        self._stream.close()

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Binary format v2: chunked columnar with footer
# ---------------------------------------------------------------------------
#
# Layout::
#
#     "EKVT" 0x02
#     sections, each introduced by a tag byte:
#       0x01 chunk (legacy, unchecksummed):
#                    num_records(u32) num_keys(u32)
#                    ops[u8 x n] value_sizes[u32 x n] blocks[u32 x n]
#                    key_ids[u32 x n] key_lens[u16 x k] key_blob
#       0x03 chunk (checksummed; what the writer emits):
#                    crc32(u32, over the counts + columns + key blob)
#                    followed by the same payload as 0x01
#       0x02 footer: num_chunks(u32) total_records(u64)
#                    num_chunks x (chunk_offset(u64) num_records(u32))
#     trailer: footer_offset(u64) "EKVF"
#
# Chunk offsets point at the chunk's tag byte, so a worker can seek
# straight to its shard.  Streaming readers never need the footer: they
# walk sections until the footer tag (or EOF for an untrailed stream).
#
# The per-chunk CRC32 guarantees that any single flipped byte inside a
# chunk section is detected (CRC32 detects all 1- and 2-bit errors and
# all error bursts up to 32 bits).  Strict readers raise
# :class:`TraceFormatError` naming the chunk; ``lenient`` readers skip
# the corrupt chunk with a logged warning and keep going.

_TAG_CHUNK = 0x01
_TAG_FOOTER = 0x02
_TAG_CHUNK_CRC = 0x03
_CHUNK_COUNTS = struct.Struct("<II")  # num_records, num_keys
_CHUNK_CRC = struct.Struct("<I")  # crc32 of the chunk payload
_FOOTER_HEADER = struct.Struct("<IQ")  # num_chunks, total_records
_FOOTER_ENTRY = struct.Struct("<QI")  # chunk offset, num_records
_TRAILER = struct.Struct("<Q4s")  # footer offset, trailer magic
_TRAILER_MAGIC = b"EKVF"


def _read_exact(stream: IO[bytes], size: int, what: str) -> bytes:
    data = stream.read(size)
    if len(data) != size:
        raise TraceFormatError(f"truncated {what}: wanted {size}, got {len(data)}")
    return data


def _pack_chunk(chunk: "TraceChunk") -> bytes:
    num_keys = chunk.num_keys
    if num_keys and int(chunk.key_lens.max()) > 0xFFFF:
        raise TraceFormatError("key too long for trace format v2")
    payload = b"".join(
        (
            _CHUNK_COUNTS.pack(len(chunk), num_keys),
            chunk.ops.astype("<u1", copy=False).tobytes(),
            chunk.value_sizes.astype("<u4", copy=False).tobytes(),
            chunk.blocks.astype("<u4", copy=False).tobytes(),
            chunk.key_ids.astype("<u4", copy=False).tobytes(),
            chunk.key_lens.astype("<u2").tobytes(),
            chunk.key_blob(),
        )
    )
    return b"".join(
        (bytes([_TAG_CHUNK_CRC]), _CHUNK_CRC.pack(zlib.crc32(payload)), payload)
    )


#: per-record bytes in the fixed-width columns: op(1) + vsize(4) + block(4) + key_id(4)
_RECORD_COLUMN_BYTES = 13


@dataclass(frozen=True)
class RawChunk:
    """One undecoded chunk section: the raw buffers plus its payload CRC.

    ``crc`` is always *computed* over the bytes actually read (counts +
    columns + key blob), never trusted from the file — it is the cache
    key the partial-aggregate cache uses, so a rewritten or corrupted
    chunk can never alias a cached partial.  For checksummed sections
    the stored CRC has already been verified against it by the reader.
    Decoding (:meth:`parse`) is deferred so cache hits skip it entirely.
    """

    counts: bytes
    columns: bytes
    blob: bytes
    crc: int
    #: CRC stored in the file; None for legacy (tag 0x01) sections
    stored_crc: Optional[int]
    what: str

    @property
    def nbytes(self) -> int:
        return len(self.counts) + len(self.columns) + len(self.blob)

    @property
    def num_records(self) -> int:
        return _CHUNK_COUNTS.unpack(self.counts)[0]

    def parse(self) -> "TraceChunk":
        return _parse_chunk_parts(self.counts, self.columns, self.blob, self.what)


def _read_chunk_parts(stream: IO[bytes], what: str) -> tuple[bytes, bytes, bytes]:
    """Read the counts + columns + key blob buffers of one chunk section.

    The payload is self-describing (counts give the column sizes and the
    key-length column gives the blob size), so this consumes exactly the
    section and leaves the stream at the next tag byte.  The three
    buffers are returned separately — no concatenation copy; the parser
    wraps them with ``np.frombuffer`` views directly.
    """
    import numpy as np

    counts = _read_exact(stream, _CHUNK_COUNTS.size, f"{what} header")
    num_records, num_keys = _CHUNK_COUNTS.unpack(counts)
    columns = _read_exact(
        stream,
        _RECORD_COLUMN_BYTES * num_records + 2 * num_keys,
        f"{what} columns",
    )
    key_lens = np.frombuffer(
        columns, dtype="<u2", count=num_keys, offset=_RECORD_COLUMN_BYTES * num_records
    )
    blob = _read_exact(stream, int(key_lens.sum()), f"{what} key blob")
    return counts, columns, blob


def _parse_chunk_parts(
    counts: bytes, columns: bytes, blob: bytes, what: str
) -> "TraceChunk":
    """Decode one chunk section's buffers into a :class:`TraceChunk`.

    Zero-copy: every fixed-width column is an ``np.frombuffer`` view
    into ``columns``, and the interned keys stay packed in ``blob``
    behind a lazy :class:`~repro.core.columnar.KeyTable` — per-key bytes
    are sliced out only if an analyzer actually touches that key.
    """
    import numpy as np

    from repro.core.columnar import KeyTable, TraceChunk

    num_records, num_keys = _CHUNK_COUNTS.unpack(counts)
    offset = 0
    ops = np.frombuffer(columns, dtype=np.uint8, count=num_records, offset=offset)
    offset += num_records
    value_sizes = np.frombuffer(columns, dtype="<u4", count=num_records, offset=offset)
    offset += 4 * num_records
    blocks = np.frombuffer(columns, dtype="<u4", count=num_records, offset=offset)
    offset += 4 * num_records
    key_ids = np.frombuffer(columns, dtype="<u4", count=num_records, offset=offset)
    offset += 4 * num_records
    key_lens = np.frombuffer(columns, dtype="<u2", count=num_keys, offset=offset)
    if num_records and num_keys and int(key_ids.max()) >= num_keys:
        raise TraceFormatError(f"{what}: key id out of range")
    return TraceChunk(
        ops=ops,
        value_sizes=value_sizes,
        blocks=blocks,
        key_ids=key_ids,
        keys=KeyTable(blob, key_lens.astype(np.uint32)),
    )


def _read_raw_section(stream: IO[bytes], tag: int, what: str) -> RawChunk:
    """Read one chunk section (either tag) positioned just past the tag
    byte, computing the payload CRC and verifying it against the stored
    one for checksummed chunks."""
    stored: Optional[int] = None
    if tag != _TAG_CHUNK:
        stored = _CHUNK_CRC.unpack(_read_exact(stream, _CHUNK_CRC.size, f"{what} crc"))[0]
    counts, columns, blob = _read_chunk_parts(stream, what)
    computed = zlib.crc32(counts)
    computed = zlib.crc32(columns, computed)
    computed = zlib.crc32(blob, computed)
    if stored is not None and computed != stored:
        raise TraceFormatError(
            f"{what}: CRC mismatch (stored 0x{stored:08x}, computed 0x{computed:08x})"
        )
    return RawChunk(
        counts=counts,
        columns=columns,
        blob=blob,
        crc=computed,
        stored_crc=stored,
        what=what,
    )


def _read_chunk_section(stream: IO[bytes], tag: int, what: str) -> "TraceChunk":
    """Read + decode one chunk section positioned just past the tag byte."""
    return _read_raw_section(stream, tag, what).parse()


class ColumnarTraceWriter:
    """Streaming v2 (chunked columnar) trace writer.

    Accepts either individual records (batched into chunks of
    ``chunk_size``) or pre-built columnar chunks; writes the footer and
    trailer on close.
    """

    def __init__(self, stream: IO[bytes], chunk_size: Optional[int] = None) -> None:
        from repro.core.columnar import DEFAULT_CHUNK_SIZE, ChunkBuilder

        self._stream = stream
        self._chunk_size = chunk_size if chunk_size else DEFAULT_CHUNK_SIZE
        if self._chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self._builder = ChunkBuilder()
        self._count = 0
        self._offsets: list[tuple[int, int]] = []
        stream.write(_BINARY_MAGIC)
        stream.write(bytes([_BINARY_VERSION_V2]))
        self._pos = len(_BINARY_MAGIC) + 1
        self._finished = False
        self._closed = False

    @classmethod
    def open(
        cls, path: Union[str, Path], chunk_size: Optional[int] = None
    ) -> "ColumnarTraceWriter":
        stream = open(path, "wb")
        try:
            return cls(stream, chunk_size=chunk_size)
        except BaseException:
            stream.close()
            raise

    @property
    def count(self) -> int:
        """Number of records accepted so far (including unflushed ones)."""
        return self._count + len(self._builder)

    def append(self, record: TraceRecord) -> None:
        self._builder.append(record)
        if len(self._builder) >= self._chunk_size:
            self._flush_builder()

    def extend(self, records: Iterable[TraceRecord]) -> None:
        for record in records:
            self.append(record)

    def write_chunk(self, chunk: "TraceChunk") -> None:
        """Write a pre-built chunk (flushes any buffered records first)."""
        self._flush_builder()
        if len(chunk) == 0:
            return
        self._offsets.append((self._pos, len(chunk)))
        payload = _pack_chunk(chunk)
        self._stream.write(payload)
        self._pos += len(payload)
        self._count += len(chunk)

    def _flush_builder(self) -> None:
        if len(self._builder):
            chunk = self._builder.build()
            from repro.core.columnar import ChunkBuilder

            self._builder = ChunkBuilder()
            self.write_chunk(chunk)

    def finish(self) -> None:
        """Flush buffered records and write the footer + trailer.

        Idempotent; :meth:`close` calls it automatically.  Call it
        directly when writing to an in-memory stream that must stay
        readable afterwards (e.g. ``io.BytesIO``).
        """
        if self._finished:
            return
        self._flush_builder()
        footer_offset = self._pos
        footer = [bytes([_TAG_FOOTER])]
        footer.append(_FOOTER_HEADER.pack(len(self._offsets), self._count))
        for offset, count in self._offsets:
            footer.append(_FOOTER_ENTRY.pack(offset, count))
        footer.append(_TRAILER.pack(footer_offset, _TRAILER_MAGIC))
        self._stream.write(b"".join(footer))
        self._finished = True

    def close(self) -> None:
        if self._closed:
            return
        try:
            self.finish()
        finally:
            self._closed = True
            self._stream.close()

    def __enter__(self) -> "ColumnarTraceWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass(frozen=True)
class TraceFooter:
    """v2 footer contents: per-chunk offsets/counts for random access."""

    total_records: int
    #: per chunk: (file offset of the chunk's tag byte, record count)
    chunks: tuple[tuple[int, int], ...]

    @property
    def num_chunks(self) -> int:
        return len(self.chunks)


class ColumnarTraceReader:
    """Streaming chunk reader for binary traces (v1 and v2).

    v2 files yield their stored chunks; v1 files are batched into
    columnar chunks of ``chunk_size`` on the fly, so analyzers can use
    one chunked code path regardless of the on-disk format.

    ``lenient=True`` downgrades chunk corruption (CRC mismatch or a
    malformed section) from :class:`TraceFormatError` to a logged
    warning: the corrupt chunk is skipped and reading continues with the
    next section when possible.  A corrupt section whose length can no
    longer be trusted ends the stream early instead of mis-parsing the
    bytes after it — the footer-driven path
    (:func:`open_trace_chunks` on a trailed file) does not have that
    limitation because every chunk is located independently.
    """

    def __init__(
        self,
        stream: IO[bytes],
        chunk_size: Optional[int] = None,
        lenient: bool = False,
    ) -> None:
        from repro.core.columnar import DEFAULT_CHUNK_SIZE

        self._stream = stream
        self._chunk_size = chunk_size if chunk_size else DEFAULT_CHUNK_SIZE
        self.lenient = lenient
        magic = stream.read(4)
        if magic != _BINARY_MAGIC:
            raise TraceFormatError(f"bad trace magic: {magic!r}")
        version = stream.read(1)
        if not version or version[0] not in (_BINARY_VERSION, _BINARY_VERSION_V2):
            raise TraceFormatError(f"unsupported trace version: {version!r}")
        self.version = version[0]

    @classmethod
    def open(
        cls,
        path: Union[str, Path],
        chunk_size: Optional[int] = None,
        lenient: bool = False,
    ) -> "ColumnarTraceReader":
        stream = open(path, "rb")
        try:
            return cls(stream, chunk_size=chunk_size, lenient=lenient)
        except BaseException:
            stream.close()
            raise

    def chunks(self) -> Iterator["TraceChunk"]:
        """Lazily yield columnar chunks in trace order."""
        if self.version == _BINARY_VERSION:
            from repro.core.columnar import chunk_records

            yield from chunk_records(_iter_v1_records(self._stream), self._chunk_size)
            return
        read = self._stream.read
        index = 0
        while True:
            offset = self._stream.tell()
            tag = read(1)
            if not tag or tag[0] == _TAG_FOOTER:
                return
            what = f"chunk {index} at offset {offset}"
            if tag[0] not in (_TAG_CHUNK, _TAG_CHUNK_CRC):
                error = TraceFormatError(f"{what}: bad v2 section tag {tag!r}")
                if self.lenient:
                    # An unknown tag means the section structure itself
                    # is untrustworthy; there is no way to find the next
                    # section without a footer.
                    _LOG.warning("%s; stopping lenient read", error)
                    return
                raise error
            try:
                chunk = _read_chunk_section(self._stream, tag[0], what)
            except TraceFormatError as error:
                if self.lenient:
                    if "CRC mismatch" in str(error) or "key id" in str(error):
                        # The section was fully consumed; skip it and
                        # carry on at the next tag byte.
                        _LOG.warning("skipping corrupt %s: %s", what, error)
                        index += 1
                        continue
                    _LOG.warning("%s; stopping lenient read", error)
                    return
                raise
            index += 1
            yield chunk

    def __iter__(self) -> Iterator[TraceRecord]:
        if self.version == _BINARY_VERSION:
            yield from _iter_v1_records(self._stream)
            return
        for chunk in self.chunks():
            yield from chunk.to_records()

    def close(self) -> None:
        self._stream.close()

    def __enter__(self) -> "ColumnarTraceReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _read_footer_stream(stream: IO[bytes]) -> TraceFooter:
    """Read the v2 footer from an already-open binary stream (any position)."""
    stream.seek(0)
    magic = stream.read(4)
    if magic != _BINARY_MAGIC:
        raise TraceFormatError(f"bad trace magic: {magic!r}")
    version = stream.read(1)
    if not version or version[0] != _BINARY_VERSION_V2:
        raise TraceFormatError("trace has no footer (not a v2 trace)")
    stream.seek(0, io.SEEK_END)
    size = stream.tell()
    if size < 5 + _TRAILER.size:
        raise TraceFormatError("truncated v2 trailer")
    stream.seek(size - _TRAILER.size)
    footer_offset, trailer_magic = _TRAILER.unpack(
        _read_exact(stream, _TRAILER.size, "v2 trailer")
    )
    if trailer_magic != _TRAILER_MAGIC:
        raise TraceFormatError(f"bad v2 trailer magic: {trailer_magic!r}")
    if footer_offset < 5 or footer_offset >= size:
        raise TraceFormatError("v2 footer offset out of range")
    stream.seek(footer_offset)
    tag = _read_exact(stream, 1, "v2 footer tag")
    if tag[0] != _TAG_FOOTER:
        raise TraceFormatError("v2 footer offset does not point at a footer")
    header = _read_exact(stream, _FOOTER_HEADER.size, "v2 footer header")
    num_chunks, total_records = _FOOTER_HEADER.unpack(header)
    entries = []
    for _ in range(num_chunks):
        entry = _read_exact(stream, _FOOTER_ENTRY.size, "v2 footer entry")
        entries.append(_FOOTER_ENTRY.unpack(entry))
    return TraceFooter(total_records=total_records, chunks=tuple(entries))


def read_trace_footer(path: Union[str, Path]) -> TraceFooter:
    """Read the v2 footer (chunk offsets/counts) from a trace file.

    Raises :class:`TraceFormatError` for v1 traces (no footer) and for
    missing/corrupt trailers.
    """
    with open(path, "rb") as stream:
        return _read_footer_stream(stream)


class RandomAccessChunkReader:
    """Footer-indexed random-access chunk reads over one open handle.

    The earlier random-access path reopened the trace file for every
    chunk it touched; across thousands of footer offsets that open/close
    churn shows up as pure syscall overhead in the pipelined analyzer.
    This reader opens the file once and serves any number of
    seek-and-read chunk loads from the same handle.  Not thread-safe:
    each prefetch/worker thread owns its own reader.

    ``lenient=True`` turns a corrupt chunk into a ``None`` return (with
    a logged warning) instead of a :class:`TraceFormatError`, matching
    :func:`read_chunk_at`.
    """

    def __init__(self, path: Union[str, Path], lenient: bool = False) -> None:
        self.path = str(path)
        self.lenient = lenient
        self._stream = open(path, "rb")
        self._footer: Optional[TraceFooter] = None

    def footer(self) -> TraceFooter:
        """The trace's footer (read once, cached)."""
        if self._footer is None:
            self._footer = _read_footer_stream(self._stream)
        return self._footer

    def stored_crc(self, offset: int) -> Optional[int]:
        """The CRC *stored* for the chunk at ``offset`` — a cheap probe.

        Reads five bytes (tag + CRC field); returns ``None`` for legacy
        un-checksummed sections and anything malformed.  The stored CRC
        is a hint, not a verification: callers that act on it (the
        partial-aggregate cache) must confirm it against the CRC
        computed by :meth:`read_raw` before trusting any bytes.
        """
        try:
            self._stream.seek(offset)
            head = self._stream.read(1 + _CHUNK_CRC.size)
        except OSError:
            return None
        if len(head) != 1 + _CHUNK_CRC.size or head[0] != _TAG_CHUNK_CRC:
            return None
        return _CHUNK_CRC.unpack_from(head, 1)[0]

    def read_raw(self, offset: int) -> Optional[RawChunk]:
        """Read one chunk's raw buffers (undecoded) at a footer offset.

        The payload CRC is computed from the bytes read and verified
        against the stored CRC for checksummed sections; decoding is
        left to :meth:`RawChunk.parse` so callers that only need the
        CRC (the partial-aggregate cache) skip it.
        """
        what = f"chunk at offset {offset}"
        try:
            self._stream.seek(offset)
            tag = _read_exact(self._stream, 1, f"{what} tag")
            if tag[0] not in (_TAG_CHUNK, _TAG_CHUNK_CRC):
                raise TraceFormatError(f"{what}: bad section tag {tag!r}")
            return _read_raw_section(self._stream, tag[0], what)
        except TraceFormatError as error:
            if self.lenient:
                _LOG.warning("skipping corrupt %s: %s", what, error)
                return None
            raise

    def read_chunk(self, offset: int) -> Optional["TraceChunk"]:
        """Read and decode one chunk at a footer offset."""
        raw = self.read_raw(offset)
        if raw is None:
            return None
        try:
            return raw.parse()
        except TraceFormatError as error:
            if self.lenient:
                _LOG.warning("skipping corrupt %s: %s", raw.what, error)
                return None
            raise

    def close(self) -> None:
        self._stream.close()

    def __enter__(self) -> "RandomAccessChunkReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_chunk_at(
    path: Union[str, Path], offset: int, lenient: bool = False
) -> Optional["TraceChunk"]:
    """Random-access read of one chunk via its footer offset.

    With ``lenient=True`` a corrupt chunk returns ``None`` (with a
    logged warning) instead of raising, so footer-driven readers can
    skip it and continue with the other chunks.  Loading many chunks?
    Use one :class:`RandomAccessChunkReader` instead of paying an
    open/close per chunk.
    """
    with RandomAccessChunkReader(path, lenient=lenient) as reader:
        return reader.read_chunk(offset)


def write_trace(path: Union[str, Path], records: Iterable[TraceRecord]) -> int:
    """Write all records to a binary v1 trace file; return the count."""
    with TraceWriter.open(path) as writer:
        writer.extend(records)
        return writer.count


def write_trace_v2(
    path: Union[str, Path],
    records: Iterable[TraceRecord],
    chunk_size: Optional[int] = None,
) -> int:
    """Write records as a chunked columnar v2 trace; return the count."""
    with ColumnarTraceWriter.open(path, chunk_size=chunk_size) as writer:
        writer.extend(records)
        return writer.count


def open_trace_chunks(
    path: Union[str, Path],
    chunk_size: Optional[int] = None,
    lenient: bool = False,
) -> Iterator["TraceChunk"]:
    """Lazily iterate columnar chunks from any binary trace (v1 or v2).

    ``lenient=True`` skips corrupt chunks instead of raising.  For a
    trailed v2 file the footer locates every chunk independently, so
    strict mode detects any damaged chunk (even one whose tag byte was
    overwritten with the footer tag, which a purely streaming reader
    would mistake for end-of-chunks) and lenient mode loses only the
    damaged chunk; for other inputs the streaming reader is used and
    skips what it safely can.
    """
    try:
        footer = read_trace_footer(path)
    except (TraceFormatError, OSError):
        footer = None
    if footer is not None:
        with RandomAccessChunkReader(path, lenient=lenient) as reader:
            for offset, _ in footer.chunks:
                chunk = reader.read_chunk(offset)
                if chunk is not None:
                    yield chunk
        return
    with ColumnarTraceReader.open(path, chunk_size=chunk_size, lenient=lenient) as reader:
        yield from reader.chunks()


def read_trace(path: Union[str, Path]) -> Iterator[TraceRecord]:
    """Iterate records from a binary trace file of either version."""
    with ColumnarTraceReader.open(path) as reader:
        yield from reader


def write_text_trace(path: Union[str, Path], records: Iterable[TraceRecord]) -> int:
    """Write records as text lines (the paper's log-like format)."""
    count = 0
    with open(path, "w", encoding="ascii") as stream:
        for record in records:
            stream.write(record.to_text())
            stream.write("\n")
            count += 1
    return count


def read_text_trace(path: Union[str, Path]) -> Iterator[TraceRecord]:
    """Iterate records from a text trace file, skipping blank lines."""
    with open(path, "r", encoding="ascii") as stream:
        for line in stream:
            line = line.strip()
            if line:
                yield TraceRecord.from_text(line)


def records_to_bytes(records: Iterable[TraceRecord]) -> bytes:
    """Serialize records to an in-memory binary trace blob."""
    buffer = io.BytesIO()
    writer = TraceWriter(buffer)
    writer.extend(records)
    return buffer.getvalue()


def records_from_bytes(blob: bytes) -> Iterator[TraceRecord]:
    """Deserialize records from an in-memory binary trace blob."""
    return iter(TraceReader(io.BytesIO(blob)))
