"""KV operation trace model and streaming I/O.

A trace is an ordered sequence of :class:`TraceRecord` objects, one per
KV operation observed at the KV-store interface — the same capture point
the paper instruments in Geth.  Each record carries the operation type,
the key, the value size (values themselves are not retained; the
analyses only need sizes), and the block height at which the operation
was issued.

Two persistent formats are provided:

* **binary** (default): a compact length-prefixed format suitable for
  multi-million-record traces;
* **text**: one human-readable line per record, mirroring the format of
  the paper's released ``geth-trace`` logs.

Both support streaming: readers yield records lazily so analyses can run
over traces larger than memory.
"""

from __future__ import annotations

import enum
import io
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterable, Iterator, Union

from repro.errors import TraceFormatError


class OpType(enum.IntEnum):
    """KV operation types distinguished by the paper.

    Geth itself does not distinguish writes from updates; following the
    paper (§III-B) the tracing layer classifies a put as UPDATE when the
    key already exists in the store and WRITE otherwise.  SCAN records
    one range query (the paper counts a scan as a single operation).
    """

    WRITE = 0
    UPDATE = 1
    READ = 2
    DELETE = 3
    SCAN = 4

    @property
    def short_name(self) -> str:
        return _SHORT_NAMES[self]

    @classmethod
    def from_short_name(cls, name: str) -> "OpType":
        try:
            return _FROM_SHORT[name]
        except KeyError:
            raise TraceFormatError(f"unknown operation short name: {name!r}") from None


_SHORT_NAMES = {
    OpType.WRITE: "W",
    OpType.UPDATE: "U",
    OpType.READ: "R",
    OpType.DELETE: "D",
    OpType.SCAN: "S",
}
_FROM_SHORT = {v: k for k, v in _SHORT_NAMES.items()}

MUTATING_OPS = frozenset({OpType.WRITE, OpType.UPDATE, OpType.DELETE})
PUT_OPS = frozenset({OpType.WRITE, OpType.UPDATE})


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """A single KV operation as observed at the store interface.

    Attributes:
        op: the operation type.
        key: the full KV key, including its class prefix.
        value_size: size in bytes of the value written/read; 0 for
            deletes and for reads that missed.  For scans, the total
            bytes returned by the range query.
        block: block height being processed when the op was issued
            (0 for operations outside block processing, e.g. startup).
    """

    op: OpType
    key: bytes
    value_size: int = 0
    block: int = 0

    def to_text(self) -> str:
        """Render as one trace-log line: ``<op> <hexkey> <vsize> <block>``."""
        return f"{self.op.short_name} {self.key.hex()} {self.value_size} {self.block}"

    @classmethod
    def from_text(cls, line: str) -> "TraceRecord":
        parts = line.split()
        if len(parts) != 4:
            raise TraceFormatError(f"expected 4 fields, got {len(parts)}: {line!r}")
        op = OpType.from_short_name(parts[0])
        try:
            key = bytes.fromhex(parts[1])
            value_size = int(parts[2])
            block = int(parts[3])
        except ValueError as exc:
            raise TraceFormatError(f"bad trace line {line!r}: {exc}") from exc
        return cls(op=op, key=key, value_size=value_size, block=block)


_BINARY_MAGIC = b"EKVT"
_BINARY_VERSION = 1
# Per-record header: op(u8), key_len(u16), value_size(u32), block(u32)
_RECORD_HEADER = struct.Struct("<BHII")


class TraceWriter:
    """Streaming trace writer (binary format).

    Usage::

        with TraceWriter.open(path) as writer:
            writer.append(record)
    """

    def __init__(self, stream: IO[bytes]) -> None:
        self._stream = stream
        self._count = 0
        stream.write(_BINARY_MAGIC)
        stream.write(bytes([_BINARY_VERSION]))

    @classmethod
    def open(cls, path: Union[str, Path]) -> "TraceWriter":
        return cls(open(path, "wb"))

    @property
    def count(self) -> int:
        """Number of records appended so far."""
        return self._count

    def append(self, record: TraceRecord) -> None:
        if len(record.key) > 0xFFFF:
            raise TraceFormatError(f"key too long for binary format: {len(record.key)}")
        self._stream.write(
            _RECORD_HEADER.pack(
                int(record.op), len(record.key), record.value_size, record.block
            )
        )
        self._stream.write(record.key)
        self._count += 1

    def extend(self, records: Iterable[TraceRecord]) -> None:
        for record in records:
            self.append(record)

    def close(self) -> None:
        self._stream.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class TraceReader:
    """Streaming trace reader (binary format)."""

    def __init__(self, stream: IO[bytes]) -> None:
        self._stream = stream
        magic = stream.read(4)
        if magic != _BINARY_MAGIC:
            raise TraceFormatError(f"bad trace magic: {magic!r}")
        version = stream.read(1)
        if not version or version[0] != _BINARY_VERSION:
            raise TraceFormatError(f"unsupported trace version: {version!r}")

    @classmethod
    def open(cls, path: Union[str, Path]) -> "TraceReader":
        return cls(open(path, "rb"))

    def __iter__(self) -> Iterator[TraceRecord]:
        read = self._stream.read
        header_size = _RECORD_HEADER.size
        unpack = _RECORD_HEADER.unpack
        while True:
            header = read(header_size)
            if not header:
                return
            if len(header) != header_size:
                raise TraceFormatError("truncated record header")
            op, key_len, value_size, block = unpack(header)
            key = read(key_len)
            if len(key) != key_len:
                raise TraceFormatError("truncated record key")
            yield TraceRecord(OpType(op), key, value_size, block)

    def close(self) -> None:
        self._stream.close()

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def write_trace(path: Union[str, Path], records: Iterable[TraceRecord]) -> int:
    """Write all records to a binary trace file; return the record count."""
    with TraceWriter.open(path) as writer:
        writer.extend(records)
        return writer.count


def read_trace(path: Union[str, Path]) -> Iterator[TraceRecord]:
    """Iterate records from a binary trace file (closes at exhaustion)."""
    with TraceReader.open(path) as reader:
        yield from reader


def write_text_trace(path: Union[str, Path], records: Iterable[TraceRecord]) -> int:
    """Write records as text lines (the paper's log-like format)."""
    count = 0
    with open(path, "w", encoding="ascii") as stream:
        for record in records:
            stream.write(record.to_text())
            stream.write("\n")
            count += 1
    return count


def read_text_trace(path: Union[str, Path]) -> Iterator[TraceRecord]:
    """Iterate records from a text trace file, skipping blank lines."""
    with open(path, "r", encoding="ascii") as stream:
        for line in stream:
            line = line.strip()
            if line:
                yield TraceRecord.from_text(line)


def records_to_bytes(records: Iterable[TraceRecord]) -> bytes:
    """Serialize records to an in-memory binary trace blob."""
    buffer = io.BytesIO()
    writer = TraceWriter(buffer)
    writer.extend(records)
    return buffer.getvalue()


def records_from_bytes(blob: bytes) -> Iterator[TraceRecord]:
    """Deserialize records from an in-memory binary trace blob."""
    return iter(TraceReader(io.BytesIO(blob)))
