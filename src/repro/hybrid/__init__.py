"""Hybrid KV storage — the paper's §V design proposal.

Routes each KV class to a structure matched to its access pattern:

* **scan classes** (SnapshotAccount, SnapshotStorage, BlockHeader) keep
  an ordered (LSM) store — they are the only classes issuing range
  queries (Finding 4);
* **high-delete classes** (TxLookup) and **immutable block data**
  (BlockBody, BlockReceipts) go to append-only logs with hash indexes —
  in-place deletes, no tombstones, no compaction (Finding 5);
* **world-state classes** (TrieNodeAccount, TrieNodeStorage, Code) go
  to a log-then-hash structure: writes append cheaply; a pair is
  promoted to the read-optimized hash index only when it is actually
  read — most never are (Finding 3);
* everything else stays in the default LSM store.

:class:`HybridKVStore` implements the standard store interface so a
replayed trace can be compared 1:1 against a pure LSM baseline.
"""

from repro.hybrid.colocation import (
    CorrelationLayout,
    LayoutEvaluator,
    LayoutReport,
    hash_layout,
    key_order_layout,
)
from repro.hybrid.logthenhash import LogThenHashStore
from repro.hybrid.router import DEFAULT_ROUTING, Route, route_for_class
from repro.hybrid.store import HybridKVStore

__all__ = [
    "HybridKVStore",
    "LogThenHashStore",
    "Route",
    "DEFAULT_ROUTING",
    "route_for_class",
    "CorrelationLayout",
    "LayoutEvaluator",
    "LayoutReport",
    "key_order_layout",
    "hash_layout",
]
