"""Class-to-structure routing policy."""

from __future__ import annotations

import enum

from repro.core.classes import KVClass


class Route(enum.Enum):
    """Storage structure a class is routed to."""

    #: ordered LSM store — classes that need range scans
    ORDERED = "ordered"
    #: append-only log + hash index — delete-heavy / immutable data
    HASH_LOG = "hash_log"
    #: log-then-hash promotion — write-mostly, rarely-read world state
    LOG_THEN_HASH = "log_then_hash"
    #: default LSM residence for low-volume / unclassified data
    DEFAULT = "default"


#: The paper's §V routing: scans -> ordered; TxLookup and immutable
#: block data -> hash log; world state -> log-then-hash.
DEFAULT_ROUTING: dict[KVClass, Route] = {
    KVClass.SNAPSHOT_ACCOUNT: Route.ORDERED,
    KVClass.SNAPSHOT_STORAGE: Route.ORDERED,
    KVClass.BLOCK_HEADER: Route.ORDERED,
    KVClass.TX_LOOKUP: Route.HASH_LOG,
    KVClass.BLOCK_BODY: Route.HASH_LOG,
    KVClass.BLOCK_RECEIPTS: Route.HASH_LOG,
    KVClass.TRIE_NODE_ACCOUNT: Route.LOG_THEN_HASH,
    KVClass.TRIE_NODE_STORAGE: Route.LOG_THEN_HASH,
    KVClass.CODE: Route.LOG_THEN_HASH,
}


def route_for_class(kv_class: KVClass, routing: dict[KVClass, Route] = DEFAULT_ROUTING) -> Route:
    """The route a class takes under a routing table."""
    return routing.get(kv_class, Route.DEFAULT)
