"""Correlation-aware storage co-location (paper §V, design principle vi).

The paper recommends "co-locating frequently accessed data" based on
the read/update correlations of Findings 8-11: if two keys are usually
accessed together, placing them in the same storage region turns two
random I/Os into one.

:class:`CorrelationLayout` builds a key->region placement from a
correlation table by union-find clustering of correlated partners,
packing each cluster into fixed-size regions (greedy, hottest cluster
first).  :class:`LayoutEvaluator` replays an access sequence against a
placement and counts *region switches* — the proxy for random-I/O cost
(each switch is a different disk page/SSTable block touched).

The baselines are the layouts real stores give you for free: key-order
placement (what an LSM/B+-tree yields) and hash placement (what a hash
store yields).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.cachesim.correlation_cache import CorrelationTable
from repro.errors import HybridStoreError


class _UnionFind:
    def __init__(self) -> None:
        self._parent: dict[bytes, bytes] = {}

    def find(self, item: bytes) -> bytes:
        parent = self._parent.setdefault(item, item)
        if parent != item:
            root = self.find(parent)
            self._parent[item] = root
            return root
        return item

    def union(self, a: bytes, b: bytes) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self._parent[root_b] = root_a


@dataclass(frozen=True)
class LayoutReport:
    """Outcome of evaluating one placement over an access sequence."""

    name: str
    accesses: int
    region_switches: int
    regions_used: int

    @property
    def switch_rate(self) -> float:
        """Fraction of accesses that jump to a different region."""
        if self.accesses == 0:
            return 0.0
        return self.region_switches / self.accesses


class CorrelationLayout:
    """Key -> region placement from correlation clustering."""

    def __init__(self, region_capacity: int = 64) -> None:
        if region_capacity < 2:
            raise HybridStoreError("region_capacity must be >= 2")
        self.region_capacity = region_capacity
        self._region_of: dict[bytes, int] = {}
        self._next_region = 0

    def build(
        self,
        table: CorrelationTable,
        keys: Iterable[bytes],
        hotness: Counter,
    ) -> None:
        """Place ``keys`` into regions using ``table``'s partner edges.

        Clusters of mutually correlated keys are packed together,
        hottest cluster first; keys without partners fill the remaining
        space in access-frequency order.
        """
        keys = list(dict.fromkeys(keys))
        union = _UnionFind()
        for key in keys:
            for partner in table.partners_of(key):
                union.union(key, partner)

        clusters: dict[bytes, list[bytes]] = {}
        for key in keys:
            clusters.setdefault(union.find(key), []).append(key)

        def cluster_heat(members: Sequence[bytes]) -> int:
            return sum(hotness.get(member, 0) for member in members)

        ordered = sorted(clusters.values(), key=cluster_heat, reverse=True)
        fill = 0
        for members in ordered:
            members = sorted(members, key=lambda k: -hotness.get(k, 0))
            for member in members:
                if fill >= self.region_capacity:
                    self._next_region += 1
                    fill = 0
                self._region_of[member] = self._next_region
                fill += 1

    def place_remaining(self, keys: Iterable[bytes]) -> int:
        """Pack any not-yet-placed keys in key order after the clusters.

        Cold keys (no learned correlations) fall back to the locality
        key order already provides — the hybrid placement is therefore
        never worse than pure key-order packing.  Returns the number of
        keys placed.
        """
        unplaced = sorted(k for k in dict.fromkeys(keys) if k not in self._region_of)
        placed = 0
        self._next_region += 1
        fill = 0
        for key in unplaced:
            if fill >= self.region_capacity:
                self._next_region += 1
                fill = 0
            self._region_of[key] = self._next_region
            fill += 1
            placed += 1
        return placed

    def region_of(self, key: bytes) -> int:
        """The region holding ``key`` (unknown keys get a fresh region)."""
        region = self._region_of.get(key)
        if region is None:
            # Unplaced keys live past the packed regions, one per key —
            # the pessimistic-but-safe default for never-seen data.
            region = self._next_region + 1 + (hash(key) & 0xFFFF)
            self._region_of[key] = region
        return region

    @property
    def regions_used(self) -> int:
        return len(set(self._region_of.values()))


def key_order_layout(keys: Iterable[bytes], region_capacity: int) -> dict[bytes, int]:
    """Baseline: sorted-key packing (what an LSM/B+-tree gives you)."""
    placement = {}
    for index, key in enumerate(sorted(dict.fromkeys(keys))):
        placement[key] = index // region_capacity
    return placement


def hash_layout(keys: Iterable[bytes], num_regions: int) -> dict[bytes, int]:
    """Baseline: hash placement (what a hash store gives you)."""
    return {key: hash(key) % num_regions for key in dict.fromkeys(keys)}


class LayoutEvaluator:
    """Counts region switches of an access sequence under a placement."""

    def evaluate(
        self,
        name: str,
        accesses: Sequence[bytes],
        region_of,
    ) -> LayoutReport:
        """``region_of`` is a callable or a mapping key -> region id."""
        lookup = region_of if callable(region_of) else lambda k: region_of.get(k, -1)
        switches = 0
        current = None
        regions = set()
        for key in accesses:
            region = lookup(key)
            regions.add(region)
            if region != current:
                if current is not None:
                    switches += 1
                current = region
        return LayoutReport(
            name=name,
            accesses=len(accesses),
            region_switches=switches,
            regions_used=len(regions),
        )
