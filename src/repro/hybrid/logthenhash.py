"""Log-then-hash storage for write-mostly, rarely-read data.

The paper's suggestion for world-state classes (Finding 3): append
writes to a log with only a lightweight *block-level* index (key ->
log segment), and build a per-key read-optimized hash entry only when
a key is actually read.  Pairs that are never read — the vast majority
— never pay per-key indexing cost.

Cost model: appends charge log bytes; the first read of a key charges a
segment read (locating the record within its segment) plus a promotion
write; promoted reads are cheap hash lookups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import KeyNotFoundError
from repro.kvstore.api import KVStore
from repro.kvstore.metrics import StoreMetrics

#: Per-record framing overhead in the log.
RECORD_OVERHEAD = 12


@dataclass
class _LogSegment:
    segment_id: int
    records: dict[bytes, bytes] = field(default_factory=dict)
    total_bytes: int = 0
    dead_bytes: int = 0


class LogThenHashStore(KVStore):
    """Append-only log with on-read promotion into a hash index."""

    def __init__(self, segment_bytes: int = 256 * 1024, gc_dead_ratio: float = 0.6) -> None:
        self.metrics = StoreMetrics()
        self._segment_bytes = segment_bytes
        self._gc_dead_ratio = gc_dead_ratio
        self._segments: list[_LogSegment] = [_LogSegment(0)]
        self._next_segment_id = 1
        #: block-level index: key -> segment id (cheap, always maintained)
        self._segment_index: dict[bytes, int] = {}
        self._by_id: dict[int, _LogSegment] = {0: self._segments[0]}
        #: per-key read-optimized index, built lazily on first read
        self._promoted: dict[bytes, bytes] = {}
        self.promotions = 0

    # -- write path ---------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        self.metrics.user_puts += 1
        record_bytes = len(key) + len(value) + RECORD_OVERHEAD
        self.metrics.user_bytes_written += len(key) + len(value)
        self.metrics.wal_bytes_written += record_bytes
        old_segment = self._segment_index.get(key)
        if old_segment is not None:
            self._kill(old_segment, key)
        if key in self._promoted:
            # Keep the promoted copy fresh (it is the read path now).
            self._promoted[key] = value
        active = self._segments[-1]
        if active.total_bytes + record_bytes > self._segment_bytes and active.records:
            active = self._roll()
        active.records[key] = value
        active.total_bytes += record_bytes
        self._segment_index[key] = active.segment_id

    def _roll(self) -> _LogSegment:
        segment = _LogSegment(self._next_segment_id)
        self._next_segment_id += 1
        self._segments.append(segment)
        self._by_id[segment.segment_id] = segment
        return segment

    def _kill(self, segment_id: int, key: bytes) -> None:
        segment = self._by_id[segment_id]
        value = segment.records.pop(key, None)
        if value is not None:
            segment.dead_bytes += len(key) + len(value) + RECORD_OVERHEAD
            self._maybe_gc(segment)

    def delete(self, key: bytes) -> None:
        self.metrics.user_deletes += 1
        self._promoted.pop(key, None)
        segment_id = self._segment_index.pop(key, None)
        if segment_id is not None:
            self._kill(segment_id, key)

    def _maybe_gc(self, segment: _LogSegment) -> None:
        if segment is self._segments[-1] or segment.total_bytes == 0:
            return
        if segment.dead_bytes / segment.total_bytes < self._gc_dead_ratio:
            return
        self.metrics.gc_bytes_read += segment.total_bytes
        live = list(segment.records.items())
        self._segments.remove(segment)
        del self._by_id[segment.segment_id]
        for key, value in live:
            record_bytes = len(key) + len(value) + RECORD_OVERHEAD
            self.metrics.gc_bytes_written += record_bytes
            active = self._segments[-1]
            if active.total_bytes + record_bytes > self._segment_bytes and active.records:
                active = self._roll()
            active.records[key] = value
            active.total_bytes += record_bytes
            self._segment_index[key] = active.segment_id

    # -- read path ----------------------------------------------------------

    def get(self, key: bytes) -> bytes:
        self.metrics.user_gets += 1
        promoted = self._promoted.get(key)
        if promoted is not None:
            self.metrics.user_bytes_read += len(promoted)
            return promoted
        segment_id = self._segment_index.get(key)
        if segment_id is None:
            raise KeyNotFoundError(key)
        segment = self._by_id[segment_id]
        value = segment.records[key]
        # First read: charge the segment locate + promotion write.
        self.metrics.sstable_lookups += 1
        self.metrics.flush_bytes_written += len(key) + len(value)
        self._promoted[key] = value
        self.promotions += 1
        self.metrics.user_bytes_read += len(value)
        return value

    def has(self, key: bytes) -> bool:
        return key in self._promoted or key in self._segment_index

    def scan(
        self, start: bytes, end: Optional[bytes] = None
    ) -> Iterator[tuple[bytes, bytes]]:
        # Supported for interface completeness; ordered access costs a
        # full key sort, which is why scan classes are not routed here.
        self.metrics.user_scans += 1
        keys = sorted(
            k for k in self._segment_index if k >= start and (end is None or k < end)
        )
        for key in keys:
            yield key, self._by_id[self._segment_index[key]].records[key]

    def __len__(self) -> int:
        return len(self._segment_index)

    @property
    def promoted_fraction(self) -> float:
        """Share of live keys holding a per-key index entry."""
        if not self._segment_index:
            return 0.0
        return len(self._promoted) / len(self._segment_index)
