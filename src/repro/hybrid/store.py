"""The hybrid KV store: class-routed composite of specialized structures."""

from __future__ import annotations

import heapq
from typing import Iterator, Optional

from repro.core.classes import classify_key
from repro.hybrid.logthenhash import LogThenHashStore
from repro.hybrid.router import DEFAULT_ROUTING, Route
from repro.kvstore.api import KVStore
from repro.kvstore.hashlog import HashLogStore
from repro.kvstore.lsm import LSMConfig, LSMStore
from repro.kvstore.metrics import StoreMetrics


class HybridKVStore(KVStore):
    """Routes each operation to the structure matched to its key's class.

    Scans spanning multiple sub-stores are merged in key order, so the
    composite behaves exactly like one ordered store at the interface.
    """

    def __init__(
        self,
        routing: Optional[dict] = None,
        lsm_config: Optional[LSMConfig] = None,
        ordered_structure: str = "lsm",
    ) -> None:
        """``ordered_structure``: the index behind the scan classes —
        ``"lsm"`` or ``"btree"`` (the paper names both as suitable).
        """
        self.routing = dict(DEFAULT_ROUTING if routing is None else routing)
        if ordered_structure == "lsm":
            self.ordered: KVStore = LSMStore(lsm_config)
        elif ordered_structure == "btree":
            from repro.kvstore.btree import BPlusTreeStore

            self.ordered = BPlusTreeStore()
        else:
            raise ValueError(
                f"ordered_structure must be 'lsm' or 'btree', got {ordered_structure!r}"
            )
        self.hash_log = HashLogStore()
        self.log_then_hash = LogThenHashStore()
        self.default = LSMStore(lsm_config)
        self._stores: dict[Route, KVStore] = {
            Route.ORDERED: self.ordered,
            Route.HASH_LOG: self.hash_log,
            Route.LOG_THEN_HASH: self.log_then_hash,
            Route.DEFAULT: self.default,
        }

    def _store_for(self, key: bytes) -> KVStore:
        route = self.routing.get(classify_key(key), Route.DEFAULT)
        return self._stores[route]

    def get(self, key: bytes) -> bytes:
        return self._store_for(key).get(key)

    def put(self, key: bytes, value: bytes) -> None:
        self._store_for(key).put(key, value)

    def delete(self, key: bytes) -> None:
        self._store_for(key).delete(key)

    def has(self, key: bytes) -> bool:
        return self._store_for(key).has(key)

    def scan(
        self, start: bytes, end: Optional[bytes] = None
    ) -> Iterator[tuple[bytes, bytes]]:
        # Merge the per-store ordered streams (each already sorted).
        iterators = [store.scan(start, end) for store in self._stores.values()]
        yield from heapq.merge(*iterators, key=lambda kv: kv[0])

    def __len__(self) -> int:
        return sum(len(store) for store in self._stores.values())

    # -- accounting ----------------------------------------------------------

    def combined_metrics(self) -> StoreMetrics:
        """Sum of the sub-stores' I/O counters."""
        total = StoreMetrics()
        for store in self._stores.values():
            metrics: StoreMetrics = store.metrics  # type: ignore[attr-defined]
            for name in total.__dataclass_fields__:
                setattr(total, name, getattr(total, name) + getattr(metrics, name))
        return total

    def per_route_metrics(self) -> dict[Route, StoreMetrics]:
        return {
            route: store.metrics  # type: ignore[attr-defined]
            for route, store in self._stores.items()
        }
