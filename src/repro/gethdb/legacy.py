"""The legacy hash-keyed trie storage model (pre-path-based Geth).

Earlier Geth versions stored every MPT node under its 32-byte content
hash.  Because a node's hash changes on every modification, each block
leaves behind the previous versions of every node along each dirty
path; without reference-counted garbage collection (which mainline Geth
never enabled by default due to its cost), stale nodes accumulate
forever — the redundancy the path-based model eliminated (§II-A:
"reduces redundant entries and recomputations").

:class:`HashSchemeMirror` shadows a modern sync run: it receives every
node blob the path scheme flushes and stores it hash-keyed, so after N
blocks one can compare the two schemes' storage footprints directly.
An optional mark-and-sweep GC (:meth:`collect_garbage`) measures what
reclaiming the redundancy would cost — the recomputation/traversal
overhead the path-based model avoids.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Optional

from repro import rlp
from repro.trie.nodes import BranchNode, ExtensionNode, LeafNode, decode_node


@dataclass
class HashSchemeStats:
    """Storage accounting for the hash-keyed mirror."""

    nodes_written: int = 0
    bytes_written: int = 0
    duplicate_writes: int = 0  # identical (hash, blob) rewritten
    live_nodes: int = 0
    gc_runs: int = 0
    gc_nodes_swept: int = 0
    gc_nodes_traversed: int = 0


class HashSchemeMirror:
    """Hash-keyed node store shadowing a path-based sync run."""

    def __init__(self, retain_roots: int = 128) -> None:
        self._nodes: dict[bytes, bytes] = {}
        self.stats = HashSchemeStats()
        #: how many recent state roots stay live for GC marking
        self.retain_roots = retain_roots
        #: state roots considered live (the retention set for GC)
        self._live_roots: list[bytes] = []

    def observe_flush(self, blobs: Iterable[bytes]) -> None:
        """Record the node blobs one flush/commit produced."""
        for blob in blobs:
            digest = hashlib.sha3_256(blob).digest()
            self.stats.nodes_written += 1
            if digest in self._nodes:
                # Content-identical node re-created (e.g. a subtree that
                # reverted to a previous value): hash-keying dedups it,
                # which is the one storage advantage of the old scheme.
                self.stats.duplicate_writes += 1
                continue
            self._nodes[digest] = blob
            self.stats.bytes_written += 32 + len(blob)

    def observe_root(self, root: bytes) -> None:
        """Track a new state root; keeps the newest ``retain_roots`` live."""
        self._live_roots.append(root)
        if len(self._live_roots) > self.retain_roots:
            self._live_roots = self._live_roots[-self.retain_roots :]

    def set_retention(self, retain_roots: int) -> None:
        """Shrink (or grow) the live-root window, trimming immediately."""
        self.retain_roots = retain_roots
        if len(self._live_roots) > retain_roots:
            self._live_roots = self._live_roots[-retain_roots:]

    @property
    def total_nodes(self) -> int:
        """All node versions currently stored (live + stale)."""
        return len(self._nodes)

    @property
    def total_bytes(self) -> int:
        return sum(32 + len(blob) for blob in self._nodes.values())

    def get(self, digest: bytes) -> Optional[bytes]:
        return self._nodes.get(digest)

    # ------------------------------------------------------------------
    # mark-and-sweep GC (the cost the path scheme avoids)
    # ------------------------------------------------------------------

    def collect_garbage(self) -> int:
        """Mark from the live roots, sweep everything else.

        Returns the number of stale node versions reclaimed.  The
        traversal count recorded in the stats is the I/O bill the
        hash-keyed scheme pays for pruning — per live root, every
        reachable node must be walked.
        """
        marked: set[bytes] = set()
        for root in self._live_roots:
            self._mark(root, marked)
        swept = 0
        for digest in list(self._nodes):
            if digest not in marked:
                del self._nodes[digest]
                swept += 1
        self.stats.gc_runs += 1
        self.stats.gc_nodes_swept += swept
        self.stats.live_nodes = len(self._nodes)
        return swept

    def _mark(self, digest: bytes, marked: set[bytes]) -> None:
        if digest in marked:
            return
        blob = self._nodes.get(digest)
        if blob is None:
            return
        marked.add(digest)
        self.stats.gc_nodes_traversed += 1
        node = decode_node(blob)
        if isinstance(node, LeafNode):
            self._mark_embedded_root(node.value, marked)
            return
        if isinstance(node, ExtensionNode):
            if len(node.child_hash) == 32:
                self._mark(node.child_hash, marked)
            return
        if isinstance(node, BranchNode):
            for child_hash in node.child_hashes:
                if len(child_hash) == 32:
                    self._mark(child_hash, marked)

    def _mark_embedded_root(self, value: bytes, marked: set[bytes]) -> None:
        """Account leaves embed a storage root; mark its subtree too."""
        try:
            fields = rlp.decode(value)
        except Exception:
            return
        if isinstance(fields, list) and len(fields) == 4:
            storage_root = fields[2]
            if isinstance(storage_root, bytes) and len(storage_root) == 32:
                self._mark(storage_root, marked)
