"""The Geth database facade.

Combines the traced KV store, the per-class LRU caches, and the
per-block write batch, reproducing Geth's I/O discipline:

* **reads** are issued on demand during block processing; with caching
  enabled a hit is served from memory and never reaches the KV
  interface (the CacheTrace/BareTrace difference);
* **writes/updates/deletes** accumulate in a batch that is committed
  once per block, so mutations appear in the trace as clustered bursts
  in staging order (the source of the paper's update correlations);
* batch reads-own-writes is deliberately *not* provided — Geth reads
  through ``db.Get`` which does not see the open batch; subsystems keep
  their own dirty state (trie overlay, snapshot diff layers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional

from repro.core.classes import KVClass, classify_key
from repro.errors import CrashPoint, SimulatedCrash
from repro.gethdb.caches import CacheBudget, CacheSet
from repro.kvstore.api import Batch, KVStore, prefix_upper_bound
from repro.kvstore.memdb import MemoryKVStore
from repro.kvstore.tracing import TraceCollector, TracingKVStore

if TYPE_CHECKING:  # pragma: no cover — typing only, avoids an import cycle
    from repro.faults.plan import FaultPlan


@dataclass(frozen=True)
class DBConfig:
    """Database configuration — the paper's two capture modes.

    ``cache_trace_config()`` (caching + snapshot acceleration on)
    produces the CacheTrace analog; ``bare_trace_config()`` produces
    the BareTrace analog.  Snapshot acceleration is tied to caching in
    Geth, and the paper captures them together.
    """

    caching_enabled: bool = True
    snapshot_enabled: bool = True
    cache_bytes: int = 64 * 1024 * 1024

    @classmethod
    def cache_trace_config(cls, cache_bytes: int = 64 * 1024 * 1024) -> "DBConfig":
        return cls(caching_enabled=True, snapshot_enabled=True, cache_bytes=cache_bytes)

    @classmethod
    def bare_trace_config(cls) -> "DBConfig":
        return cls(caching_enabled=False, snapshot_enabled=False, cache_bytes=0)


class GethDatabase:
    """Traced KV store + caches + per-block batch."""

    def __init__(
        self,
        config: Optional[DBConfig] = None,
        store: Optional[KVStore] = None,
        collector: Optional[TraceCollector] = None,
        fault_plan: Optional["FaultPlan"] = None,
    ) -> None:
        self.config = config if config is not None else DBConfig()
        inner = store if store is not None else MemoryKVStore()
        self.store = TracingKVStore(inner, collector)
        self.caches = (
            CacheSet(CacheBudget(self.config.cache_bytes))
            if self.config.caching_enabled
            else None
        )
        self._batch: Batch = self.store.write_batch()
        #: deterministic failure schedule; None = run healthy
        self.fault_plan = fault_plan

    # ------------------------------------------------------------------
    # block lifecycle
    # ------------------------------------------------------------------

    def begin_block(self, number: int) -> None:
        """Stamp subsequent trace records with ``number``."""
        self.store.block_height = number
        inner = self.store.inner
        if hasattr(inner, "block_height"):
            # Propagate block context to a FaultInjectingStore wrapper so
            # store-op fault rules can gate on min_block.
            inner.block_height = number

    def crash_point(self, point: CrashPoint) -> None:
        """Evaluate the fault plan at a named crash point (no-op when
        no plan is attached)."""
        if self.fault_plan is not None:
            self.fault_plan.on_crash_point(point, self.store.block_height)

    def commit_batch(self) -> None:
        """Flush the open batch — Geth's once-per-block write burst.

        Under a fault plan the commit may be killed before (nothing
        durable), torn mid-way (an insertion-order prefix of the batch
        is applied — what a crashed Pebble WAL replay can leave), or
        killed just after (fully durable, in-memory state lost).
        """
        if self.fault_plan is not None and len(self._batch):
            block = self.store.block_height
            self.fault_plan.on_crash_point(CrashPoint.BATCH_COMMIT_BEFORE, block)
            keep = self.fault_plan.torn_size(block, len(self._batch))
            if keep is not None:
                applied = self._batch.commit_prefix(keep)
                raise SimulatedCrash(
                    CrashPoint.BATCH_COMMIT_TORN,
                    block,
                    detail=f"{applied} ops applied",
                )
            self._batch.commit()
            self.fault_plan.on_crash_point(CrashPoint.BATCH_COMMIT_AFTER, block)
            return
        self._batch.commit()

    @property
    def pending_ops(self) -> int:
        return len(self._batch)

    def discard_batch(self) -> None:
        """Drop all staged ops — what a process crash does to the open
        batch.  The recovery path calls this before reattaching."""
        self._batch.reset()

    def reset_caches(self) -> None:
        """Empty the in-memory caches — they die with the process too.

        Staged writes are cached write-through before they are durable,
        so after a crash the caches can hold values the store never
        received; a reattached driver must not read them.
        """
        if self.config.caching_enabled:
            self.caches = CacheSet(CacheBudget(self.config.cache_bytes))

    def set_tracing(self, enabled: bool) -> None:
        """Toggle trace capture (off during pre-population warmup)."""
        self.store.enabled = enabled

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def read(self, key: bytes) -> Optional[bytes]:
        """Cached read: cache hit is silent, miss goes to the traced store."""
        cache = self._cache_for(key)
        if cache is not None:
            value = cache.get(key)
            if value is not None:
                return value
        value = self.store.get_or_none(key)
        if value is not None and cache is not None:
            cache.put(key, value)
        return value

    def read_uncached(self, key: bytes) -> Optional[bytes]:
        """Traced read that bypasses the caches (journal/marker records)."""
        return self.store.get_or_none(key)

    def peek(self, key: bytes) -> Optional[bytes]:
        """Untraced read (internal bookkeeping, e.g. commit-time hashing).

        Sees the open batch first: a staged put returns its value and a
        staged delete returns None (the key is already logically gone).
        """
        ops = self._batch._ops  # noqa: SLF001 — deliberate friend access
        if key in ops:
            return ops[key]
        cache = self._cache_for(key)
        if cache is not None:
            value = cache.get(key)
            if value is not None:
                return value
        return self.store.inner.get_or_none(key)

    def has(self, key: bytes) -> bool:
        """Untraced existence probe."""
        return self.store.has(key)

    def scan_prefix(self, prefix: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Traced range scan over a key prefix (bypasses caches)."""
        return self.store.scan(prefix, prefix_upper_bound(prefix))

    def scan(self, start: bytes, end: Optional[bytes]) -> Iterator[tuple[bytes, bytes]]:
        """Traced range scan."""
        return self.store.scan(start, end)

    # ------------------------------------------------------------------
    # write path (batched)
    # ------------------------------------------------------------------

    def write(self, key: bytes, value: bytes) -> None:
        """Stage a put in the block batch; write-through to the cache."""
        self._batch.put(key, value)
        cache = self._cache_for(key)
        if cache is not None:
            cache.put(key, value)

    def delete(self, key: bytes) -> None:
        """Stage a delete in the block batch; invalidate the cache."""
        self._batch.delete(key)
        cache = self._cache_for(key)
        if cache is not None:
            cache.invalidate(key)

    def write_now(self, key: bytes, value: bytes) -> None:
        """Unbatched put (startup records written before any block)."""
        self.crash_point(CrashPoint.WRITE_NOW)
        self.store.put(key, value)
        cache = self._cache_for(key)
        if cache is not None:
            cache.put(key, value)

    def delete_now(self, key: bytes) -> None:
        """Unbatched delete."""
        self.store.delete(key)
        cache = self._cache_for(key)
        if cache is not None:
            cache.invalidate(key)

    # ------------------------------------------------------------------

    def _cache_for(self, key: bytes):
        if self.caches is None:
            return None
        return self.caches.cache_for(classify_key(key))

    def cache_stats(self) -> dict[KVClass, dict[str, float]]:
        if self.caches is None:
            return {}
        return self.caches.stats()

    @property
    def collector(self) -> TraceCollector:
        return self.store.collector

    def __len__(self) -> int:
        return len(self.store)
