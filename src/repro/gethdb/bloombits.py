"""The bloombits chain indexer — BloomBits and BloomBitsIndex classes.

Geth transposes the per-block header blooms of each *section* of blocks
into per-bit rows ("bloombits"), so a log search for one topic reads a
handful of row vectors instead of every header.  When a section
completes, the indexer writes one BloomBits entry per tracked bit plus
chain-indexer bookkeeping (BloomBitsIndex) for progress tracking.

Mainnet uses sections of 4,096 blocks with 2,048 bit rows; both are
scaled down here while preserving the rows/section ratio (~0.5 BloomBits
writes per block) that puts the class at a fraction of a percent of all
operations, as in Tables II/III.
"""

from __future__ import annotations

from repro.chain.bloom import BLOOM_BITS, Bloom
from repro.gethdb import schema
from repro.gethdb.database import GethDatabase


class BloomBitsIndexer:
    """Section-based bloom transposition indexer."""

    def __init__(
        self,
        db: GethDatabase,
        section_size: int = 128,
        tracked_bits: int = 64,
    ) -> None:
        """``section_size``: blocks per section; ``tracked_bits``: bloom
        bit rows materialized per section (2,048 on mainnet; scaled).
        """
        self._db = db
        self.section_size = section_size
        self.tracked_bits = tracked_bits
        self._pending_blooms: list[Bloom] = []
        self._pending_head: bytes = b"\x00" * 32
        self.sections_done = 0

    def add_block(self, number: int, block_hash: bytes, bloom: Bloom) -> None:
        """Feed one block's header bloom; completes a section when full."""
        self._pending_blooms.append(bloom)
        self._pending_head = block_hash
        if len(self._pending_blooms) >= self.section_size:
            self._process_section()

    def _process_section(self) -> None:
        section = self.sections_done
        head_hash = self._pending_head
        # Transpose: row b holds, for each block in the section, whether
        # bloom bit b is set (bit-packed).
        stride = BLOOM_BITS // self.tracked_bits
        for row in range(self.tracked_bits):
            bit_index = row * stride
            packed = bytearray((self.section_size + 7) // 8)
            for i, bloom in enumerate(self._pending_blooms):
                if bloom.bit(bit_index):
                    packed[i >> 3] |= 1 << (i & 7)
            self._db.write(
                schema.bloom_bits_key(bit_index, section, head_hash), bytes(packed)
            )
        # Chain-indexer bookkeeping (BloomBitsIndex class).
        self._db.write(schema.bloom_bits_section_head_key(section), head_hash)
        self._db.write(
            schema.bloom_bits_index_key(b"count"),
            (section + 1).to_bytes(8, "big"),
        )
        self._pending_blooms.clear()
        self.sections_done += 1
        # The indexer verifies a sample of the freshly written rows.
        stride = BLOOM_BITS // self.tracked_bits
        for row in range(0, self.tracked_bits, max(1, self.tracked_bits // 2)):
            self.query_bit(row * stride, section, head_hash)

    def query_bit(self, bit_index: int, section: int, head_hash: bytes) -> bytes:
        """Read one bloombits row (log-search read path)."""
        value = self._db.read_uncached(
            schema.bloom_bits_key(bit_index, section, head_hash)
        )
        return value if value is not None else b""

    def read_progress(self) -> int:
        """Read the indexer progress record (BloomBitsIndex reads)."""
        value = self._db.read_uncached(schema.bloom_bits_index_key(b"count"))
        return int.from_bytes(value, "big") if value else 0
