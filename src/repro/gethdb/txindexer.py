"""Transaction indexing — the TxLookup class and its unindexing.

Geth maintains ``txhash -> block number`` lookup entries for the most
recent ``txlookuplimit`` blocks only (2,350,000 on mainnet).  As the
head advances, transactions of blocks falling behind the limit are
*unindexed*: their TxLookup entries are deleted and the
TransactionIndexTail singleton advances.  Index writes and tail-driven
deletes are produced at nearly the same rate once the window is full —
the mechanism behind TxLookup's ~48% delete share (Finding 5).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

from repro import rlp
from repro.gethdb import schema
from repro.gethdb.database import GethDatabase

if TYPE_CHECKING:  # pragma: no cover — typing only, avoids an import cycle
    from repro.obs.registry import Sample


def txindexer_metric_samples(indexer: "TxIndexer") -> Iterator["Sample"]:
    """Render a live :class:`TxIndexer` as registry samples."""
    from repro.obs.registry import COUNTER, GAUGE, Sample

    yield Sample(
        name="repro_txindex_indexed_entries_total",
        kind=COUNTER,
        labels=(),
        value=float(indexer.indexed_entries),
        help="TxLookup entries written",
    )
    yield Sample(
        name="repro_txindex_unindexed_entries_total",
        kind=COUNTER,
        labels=(),
        value=float(indexer.unindexed_entries),
        help="TxLookup entries deleted by tail unindexing",
    )
    yield Sample(
        name="repro_txindex_tail",
        kind=GAUGE,
        labels=(),
        value=float(indexer.tail),
        help="TransactionIndexTail block number",
    )
    yield Sample(
        name="repro_txindex_indexed_blocks",
        kind=GAUGE,
        labels=(),
        value=float(indexer.indexed_blocks),
        help="Blocks whose transactions are currently indexed",
    )


class TxIndexer:
    """TxLookup writer + tail unindexer."""

    def __init__(self, db: GethDatabase, lookup_limit: int = 64) -> None:
        """``lookup_limit``: number of recent blocks whose transactions
        stay indexed (scaled down from mainnet's 2.35M).
        """
        self._db = db
        self.lookup_limit = lookup_limit
        #: per-block transaction hashes, retained until unindexed
        self._block_txs: dict[int, list[bytes]] = {}
        self.tail = 0
        #: total TxLookup entries ever written / deleted
        self.indexed_entries = 0
        self.unindexed_entries = 0
        from repro.obs import get_registry

        get_registry().register_object_collector(self, txindexer_metric_samples)

    def index_block(self, number: int, tx_hashes: Iterable[bytes]) -> None:
        """Write one TxLookup entry per transaction in the block."""
        hashes = list(tx_hashes)
        self._block_txs[number] = hashes
        encoded_number = rlp.encode_uint(number) or b"\x00"
        for tx_hash in hashes:
            self._db.write(schema.tx_lookup_key(tx_hash), encoded_number)
        self.indexed_entries += len(hashes)

    def unindex(self, head_number: int) -> int:
        """Delete TxLookup entries for blocks behind the lookup window.

        Returns the number of entries deleted; advances and persists the
        TransactionIndexTail marker when anything was unindexed.
        """
        new_tail = head_number - self.lookup_limit + 1
        if new_tail <= self.tail:
            return 0
        deleted = 0
        for number in range(self.tail, new_tail):
            for tx_hash in self._block_txs.pop(number, ()):
                self._db.delete(schema.tx_lookup_key(tx_hash))
                deleted += 1
        self.tail = new_tail
        self.unindexed_entries += deleted
        if deleted:
            # Geth reads the persisted tail before advancing it.
            self._db.read_uncached(schema.TRANSACTION_INDEX_TAIL_KEY)
            self._db.write(
                schema.TRANSACTION_INDEX_TAIL_KEY, new_tail.to_bytes(8, "big")
            )
        return deleted

    @property
    def indexed_blocks(self) -> int:
        return len(self._block_txs)
