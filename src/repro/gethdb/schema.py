"""Key construction for every KV class (mirrors Geth's rawdb schema).

Key layouts reproduce the byte structure behind Table I's key sizes:
e.g. ``BloomBits`` keys are ``'B' + bit(2) + section(8) + head_hash(32)``
= 43 bytes, ``BlockBody`` keys are ``'b' + number(8) + hash(32)`` = 41
bytes, and the 15 singletons are literal strings.
"""

from __future__ import annotations

from repro.core import classes as C
from repro.trie.nibbles import Nibbles, compact_encode


def _u64(value: int) -> bytes:
    return value.to_bytes(8, "big")


# --- block data -------------------------------------------------------------


def header_key(number: int, block_hash: bytes) -> bytes:
    """BlockHeader: ``h + num + hash``."""
    return C.HEADER_PREFIX + _u64(number) + block_hash


def header_td_key(number: int, block_hash: bytes) -> bytes:
    """BlockHeader (total-difficulty variant): ``h + num + hash + t``."""
    return C.HEADER_PREFIX + _u64(number) + block_hash + b"t"


def canonical_hash_key(number: int) -> bytes:
    """BlockHeader (canonical-hash variant): ``h + num + n``."""
    return C.HEADER_PREFIX + _u64(number) + b"n"


def header_number_key(block_hash: bytes) -> bytes:
    """HeaderNumber: ``H + hash``."""
    return C.HEADER_NUMBER_PREFIX + block_hash


def body_key(number: int, block_hash: bytes) -> bytes:
    """BlockBody: ``b + num + hash``."""
    return C.BODY_PREFIX + _u64(number) + block_hash


def receipts_key(number: int, block_hash: bytes) -> bytes:
    """BlockReceipts: ``r + num + hash``."""
    return C.RECEIPTS_PREFIX + _u64(number) + block_hash


def header_range_start(number: int) -> bytes:
    """Scan bound: all header keys for block ``number`` onwards."""
    return C.HEADER_PREFIX + _u64(number)


# --- transaction metadata ----------------------------------------------------


def tx_lookup_key(tx_hash: bytes) -> bytes:
    """TxLookup: ``l + txhash``."""
    return C.TX_LOOKUP_PREFIX + tx_hash


def bloom_bits_key(bit: int, section: int, head_hash: bytes) -> bytes:
    """BloomBits: ``B + bit(2) + section(8) + head_hash``."""
    return C.BLOOM_BITS_PREFIX + bit.to_bytes(2, "big") + _u64(section) + head_hash


def bloom_bits_index_key(field: bytes) -> bytes:
    """BloomBitsIndex: chain-indexer bookkeeping under the ``iB`` table."""
    return C.BLOOM_BITS_INDEX_PREFIX + field


def bloom_bits_section_head_key(section: int) -> bytes:
    """BloomBitsIndex per-section head record."""
    return C.BLOOM_BITS_INDEX_PREFIX + b"shead" + _u64(section)


# --- world state -------------------------------------------------------------


def snapshot_account_key(account_hash: bytes) -> bytes:
    """SnapshotAccount: ``a + account_hash``."""
    return C.SNAPSHOT_ACCOUNT_PREFIX + account_hash


def snapshot_storage_key(account_hash: bytes, slot_hash: bytes) -> bytes:
    """SnapshotStorage: ``o + account_hash + slot_hash``."""
    return C.SNAPSHOT_STORAGE_PREFIX + account_hash + slot_hash


def snapshot_storage_prefix(account_hash: bytes) -> bytes:
    """Scan prefix covering all storage snapshot entries of one account."""
    return C.SNAPSHOT_STORAGE_PREFIX + account_hash


def code_key(code_hash: bytes) -> bytes:
    """Code: ``c + code_hash``."""
    return C.CODE_PREFIX + code_hash


def account_trie_node_key(path: Nibbles) -> bytes:
    """TrieNodeAccount: ``A + compact(path)`` (path-based model)."""
    return C.TRIE_NODE_ACCOUNT_PREFIX + compact_encode(path, False)


def storage_trie_node_key(account_hash: bytes, path: Nibbles) -> bytes:
    """TrieNodeStorage: ``O + account_hash + compact(path)``."""
    return C.TRIE_NODE_STORAGE_PREFIX + account_hash + compact_encode(path, False)


def state_id_key(state_root: bytes) -> bytes:
    """StateID: ``L + state_root``."""
    return C.STATE_ID_PREFIX + state_root


# --- sync bookkeeping ---------------------------------------------------------


def skeleton_header_key(number: int) -> bytes:
    """SkeletonHeader: ``S + num``."""
    return C.SKELETON_HEADER_PREFIX + _u64(number)


# --- singletons ----------------------------------------------------------------

DATABASE_VERSION_KEY = b"DatabaseVersion"
LAST_HEADER_KEY = b"LastHeader"
LAST_BLOCK_KEY = b"LastBlock"
LAST_FAST_KEY = b"LastFast"
LAST_STATE_ID_KEY = b"LastStateID"
TRIE_JOURNAL_KEY = b"TrieJournal"
SNAPSHOT_JOURNAL_KEY = b"SnapshotJournal"
SNAPSHOT_GENERATOR_KEY = b"SnapshotGenerator"
SNAPSHOT_RECOVERY_KEY = b"SnapshotRecovery"
SNAPSHOT_ROOT_KEY = b"SnapshotRoot"
SKELETON_SYNC_STATUS_KEY = b"SkeletonSyncStatus"
TRANSACTION_INDEX_TAIL_KEY = b"TransactionIndexTail"
UNCLEAN_SHUTDOWN_KEY = b"unclean-shutdown"


def ethereum_genesis_key(genesis_hash: bytes) -> bytes:
    """Ethereum-genesis: ``ethereum-genesis- + hash``."""
    return C.ETHEREUM_GENESIS_PREFIX + genesis_hash


def ethereum_config_key(genesis_hash: bytes) -> bytes:
    """Ethereum-config: ``ethereum-config- + hash``."""
    return C.ETHEREUM_CONFIG_PREFIX + genesis_hash
