"""The freezer (ancient store) and its pruning migration.

Geth offloads block data older than a finality threshold (90,000 blocks
on mainnet; configurable here) from the KV store into immutable flat
files.  The migration is the dominant source of BlockHeader /
BlockBody / BlockReceipts *deletes* in the paper's traces (Finding 5),
and the header-range iteration it performs is the main source of
BlockHeader *scans* (Finding 4).

The flat files are modeled as in-memory append-only tables — their
contents never re-enter the KV interface, which is the whole point of
the freezer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

from repro.errors import FreezerError
from repro.gethdb import schema
from repro.gethdb.database import GethDatabase

if TYPE_CHECKING:  # pragma: no cover — typing only, avoids an import cycle
    from repro.obs.registry import Sample


@dataclass
class FreezerTables:
    """Append-only ancient tables, indexed by block number."""

    headers: dict[int, bytes] = field(default_factory=dict)
    bodies: dict[int, bytes] = field(default_factory=dict)
    receipts: dict[int, bytes] = field(default_factory=dict)
    hashes: dict[int, bytes] = field(default_factory=dict)


def freezer_metric_samples(freezer: "Freezer") -> Iterator["Sample"]:
    """Render a live :class:`Freezer` as registry samples."""
    from repro.obs.registry import COUNTER, GAUGE, Sample

    yield Sample(
        name="repro_freezer_migrated_blocks_total",
        kind=COUNTER,
        labels=(),
        value=float(freezer.frozen_until),
        help="Blocks migrated from the KV store into the ancient tables",
    )
    yield Sample(
        name="repro_freezer_expired_blocks_total",
        kind=COUNTER,
        labels=(),
        value=float(freezer.expired_blocks),
        help="Ancient blocks dropped by history expiry (EIP-4444)",
    )
    yield Sample(
        name="repro_freezer_frozen_blocks",
        kind=GAUGE,
        labels=(),
        value=float(freezer.frozen_blocks),
        help="Blocks currently retained in the ancient tables",
    )
    yield Sample(
        name="repro_freezer_history_tail",
        kind=GAUGE,
        labels=(),
        value=float(freezer.history_tail),
        help="Oldest block number still retained in the ancient tables",
    )


class Freezer:
    """Ancient store with threshold-based migration out of the KV store."""

    def __init__(
        self,
        db: GethDatabase,
        threshold: int = 128,
        batch_blocks: int = 8,
        history_expiry: int = 0,
    ) -> None:
        """``threshold``: blocks younger than head - threshold stay in the
        KV store; ``batch_blocks``: max blocks migrated per invocation
        (Geth migrates in small background steps); ``history_expiry``:
        EIP-4444 bound — ancient data older than this many blocks is
        dropped from the freezer entirely (0 disables expiry; mainnet's
        proposal is ~one year of blocks).
        """
        if threshold < 1:
            raise FreezerError("freezer threshold must be >= 1")
        if history_expiry < 0:
            raise FreezerError("history_expiry must be >= 0")
        self._db = db
        self.threshold = threshold
        self.batch_blocks = batch_blocks
        self.history_expiry = history_expiry
        self.tables = FreezerTables()
        #: next block number to migrate (frozen boundary)
        self.frozen_until = 0
        #: oldest block still retained in the ancient tables
        self.history_tail = 0
        #: total blocks dropped by history expiry
        self.expired_blocks = 0
        from repro.obs import get_registry

        get_registry().register_object_collector(self, freezer_metric_samples)

    @property
    def frozen_blocks(self) -> int:
        return len(self.tables.headers)

    def ancient_header(self, number: int) -> Optional[bytes]:
        return self.tables.headers.get(number)

    def ancient_body(self, number: int) -> Optional[bytes]:
        return self.tables.bodies.get(number)

    def ancient_receipts(self, number: int) -> Optional[bytes]:
        return self.tables.receipts.get(number)

    def maybe_freeze(self, head_number: int) -> int:
        """Migrate up to ``batch_blocks`` blocks past the threshold.

        Returns the number of blocks migrated.  For each migrated block
        the KV store sees: one scan over the block's header-key range
        (locating the canonical header and its variants), reads of the
        header/body/receipts being moved, and deletes of every moved
        key — the exact op mix behind Tables II/III's BlockHeader /
        BlockBody / BlockReceipts rows.
        """
        limit = head_number - self.threshold
        if limit <= self.frozen_until:
            self._maybe_expire_history(head_number)
            return 0
        migrated = 0
        while self.frozen_until < limit and migrated < self.batch_blocks:
            number = self.frozen_until
            self._freeze_block(number)
            self.frozen_until += 1
            migrated += 1
        self._maybe_expire_history(head_number)
        return migrated

    def _maybe_expire_history(self, head_number: int) -> int:
        """EIP-4444 history expiry: drop ancient data past the bound.

        Pure flat-file truncation — by design it costs *zero* KV store
        operations, which is exactly the proposal's appeal over pruning
        inside the KV store.  Returns the number of blocks dropped.
        """
        if self.history_expiry <= 0:
            return 0
        cutoff = head_number - self.history_expiry
        dropped = 0
        while self.history_tail < min(cutoff, self.frozen_until):
            number = self.history_tail
            self.tables.headers.pop(number, None)
            self.tables.bodies.pop(number, None)
            self.tables.receipts.pop(number, None)
            self.tables.hashes.pop(number, None)
            self.history_tail += 1
            dropped += 1
        self.expired_blocks += dropped
        return dropped

    def _freeze_block(self, number: int) -> None:
        # Locate every header-class key for this block number via a
        # range scan ('h' + num prefix covers header, td, canonical).
        start = schema.header_range_start(number)
        end = schema.header_range_start(number + 1)
        header_entries = list(self._db.scan(start, end))

        block_hash: Optional[bytes] = None
        header_blob: Optional[bytes] = None
        for key, value in header_entries:
            # header keys are 41 bytes ('h'+num+hash); canonical-hash
            # keys are 10 bytes ('h'+num+'n'), td keys 42 ('h'+num+hash+'t').
            if len(key) == 41:
                block_hash = key[9:41]
                header_blob = value
        if block_hash is None:
            if header_entries:
                # A crash mid-migration deleted the header but left
                # canonical/td variants (and possibly body/receipts)
                # behind.  Finish the interrupted deletion so re-freezing
                # is idempotent instead of leaking the leftovers forever.
                for key, _ in header_entries:
                    self._db.delete(key)
                for prefix in (schema.body_key(number, b""), schema.receipts_key(number, b"")):
                    doomed = [k for k, _ in self._db.scan(prefix, prefix + b"\xff" * 33)]
                    for key in doomed:
                        self._db.delete(key)
            # Nothing (else) stored for this block (already pruned); skip.
            return

        # hash -> number sanity lookup on alternate blocks (HeaderNumber
        # read; old enough to have fallen out of the number cache).
        if number % 2 == 0:
            self._db.read(schema.header_number_key(block_hash))
        body_blob = self._db.read_uncached(schema.body_key(number, block_hash))
        receipts_blob = self._db.read_uncached(schema.receipts_key(number, block_hash))

        self.tables.headers[number] = header_blob or b""
        self.tables.hashes[number] = block_hash
        if body_blob is not None:
            self.tables.bodies[number] = body_blob
        if receipts_blob is not None:
            self.tables.receipts[number] = receipts_blob

        # Delete the migrated keys from the KV store.
        for key, _ in header_entries:
            self._db.delete(key)
        self._db.delete(schema.body_key(number, block_hash))
        self._db.delete(schema.receipts_key(number, block_hash))
