"""World-state access: the StateDB over account and storage tries.

Read path during transaction execution:

* snapshot enabled — account/slot lookups hit the flat snapshot (one KV
  read, often a cache hit), *not* the trie;
* snapshot disabled (BareTrace) — every lookup traverses the MPT,
  issuing one traced read per node on the path.

Write path (block commit): dirty accounts/slots are applied to the
tries (the traversal resolves nodes along each dirty path), the tries
commit their node set into the block batch, and the snapshot receives
the block's diff.  This mechanically reproduces why BareTrace is
read-dominated while CacheTrace is update-dominated for the trie
classes (Tables II/III) and the ~80%/64% world-state read/write
reductions of Finding 7.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from repro.chain.account import EMPTY_CODE_HASH, Account
from repro.gethdb import schema
from repro.gethdb.database import GethDatabase
from repro.gethdb.snapshot import SnapshotTree
from repro.trie.nibbles import Nibbles, bytes_to_nibbles
from repro.trie.trie import EMPTY_ROOT, NodeBackend, PathTrie


def hash_address(address: bytes) -> bytes:
    """Secure-trie key for an account address."""
    return hashlib.sha3_256(address).digest()


def hash_slot(slot: bytes) -> bytes:
    """Secure-trie key for a storage slot."""
    return hashlib.sha3_256(slot).digest()


class TrieNodeStore:
    """The trie database: dirty-node buffer between tries and the KV store.

    With caching enabled, Geth's trie database accumulates committed
    nodes in memory and flushes them to the KV store only periodically,
    so a node rewritten across many blocks lands on disk once per flush
    interval rather than once per block — the mechanism behind the
    paper's 64.2% world-state write reduction (Finding 7).  Deletions
    coalesce too: a node created and deleted between flushes never
    reaches the KV interface at all.

    When ``buffered`` is False (the BareTrace configuration), every
    operation passes straight through to the database batch, i.e. trie
    changes persist every block.
    """

    def __init__(self, db: GethDatabase, buffered: bool) -> None:
        self._db = db
        self.buffered = buffered
        # key -> blob, or None for a pending deletion
        self._buffer: dict[bytes, Optional[bytes]] = {}
        #: optional callback receiving every flushed node blob — used by
        #: the legacy hash-scheme mirror to shadow-store node versions
        self.flush_observer = None

    def get(self, key: bytes) -> Optional[bytes]:
        if self.buffered:
            if key in self._buffer:
                return self._buffer[key]
        return self._db.read(key)

    def peek(self, key: bytes) -> Optional[bytes]:
        if self.buffered and key in self._buffer:
            return self._buffer[key]
        return self._db.peek(key)

    def put(self, key: bytes, blob: bytes) -> None:
        if self.buffered:
            self._buffer[key] = blob
        else:
            if self.flush_observer is not None:
                self.flush_observer([blob])
            self._db.write(key, blob)

    def delete(self, key: bytes) -> None:
        if self.buffered:
            self._buffer[key] = None
        else:
            self._db.delete(key)

    def encode_journal(self) -> bytes:
        """RLP journal of the un-flushed buffer (TrieJournal contents)."""
        from repro import rlp

        return rlp.encode(
            [
                [key, blob if blob is not None else b"", 1 if blob is None else 0]
                for key, blob in sorted(self._buffer.items())
            ]
        )

    def load_journal(self, blob: bytes) -> int:
        """Restore the buffer from a journal blob; returns #entries."""
        from repro import rlp

        self._buffer = {}
        for key, node_blob, deleted in rlp.decode(blob):
            self._buffer[key] = None if rlp.decode_uint(deleted) else node_blob
        return len(self._buffer)

    def flush(self) -> int:
        """Write the coalesced buffer into the open block batch."""
        flushed = 0
        flushed_blobs = []
        for key, blob in self._buffer.items():
            if blob is None:
                # Skip deletes of nodes that never hit the store.
                if self._db.has(key):
                    self._db.delete(key)
                    flushed += 1
            else:
                self._db.write(key, blob)
                flushed_blobs.append(blob)
                flushed += 1
        self._buffer.clear()
        if self.flush_observer is not None and flushed_blobs:
            self.flush_observer(flushed_blobs)
        return flushed

    @property
    def pending_nodes(self) -> int:
        return len(self._buffer)


class AccountTrieBackend(NodeBackend):
    """Account-trie nodes stored under ``A + compact(path)``."""

    def __init__(self, nodes: TrieNodeStore) -> None:
        self._nodes = nodes

    def get(self, path: Nibbles) -> Optional[bytes]:
        return self._nodes.get(schema.account_trie_node_key(path))

    def peek(self, path: Nibbles) -> Optional[bytes]:
        return self._nodes.peek(schema.account_trie_node_key(path))

    def put(self, path: Nibbles, blob: bytes) -> None:
        self._nodes.put(schema.account_trie_node_key(path), blob)

    def delete(self, path: Nibbles) -> None:
        self._nodes.delete(schema.account_trie_node_key(path))


class StorageTrieBackend(NodeBackend):
    """Storage-trie nodes stored under ``O + account_hash + compact(path)``."""

    def __init__(self, nodes: TrieNodeStore, account_hash: bytes) -> None:
        self._nodes = nodes
        self._account_hash = account_hash

    def get(self, path: Nibbles) -> Optional[bytes]:
        return self._nodes.get(schema.storage_trie_node_key(self._account_hash, path))

    def peek(self, path: Nibbles) -> Optional[bytes]:
        return self._nodes.peek(schema.storage_trie_node_key(self._account_hash, path))

    def put(self, path: Nibbles, blob: bytes) -> None:
        self._nodes.put(schema.storage_trie_node_key(self._account_hash, path), blob)

    def delete(self, path: Nibbles) -> None:
        self._nodes.delete(schema.storage_trie_node_key(self._account_hash, path))


@dataclass
class _DirtyState:
    """Changes buffered during one block's execution."""

    accounts: dict[bytes, Optional[Account]] = field(default_factory=dict)
    #: (account_hash, slot_hash) -> value bytes or None (cleared)
    storage: dict[tuple[bytes, bytes], Optional[bytes]] = field(default_factory=dict)
    codes: dict[bytes, bytes] = field(default_factory=dict)


class StateDB:
    """World-state interface used by the block processor."""

    def __init__(self, db: GethDatabase, snapshots: Optional[SnapshotTree] = None) -> None:
        self._db = db
        self._snapshots = snapshots if snapshots is not None and snapshots.enabled else None
        self._node_store = TrieNodeStore(db, buffered=db.config.caching_enabled)
        self._account_trie = PathTrie(AccountTrieBackend(self._node_store))
        self._storage_tries: dict[bytes, PathTrie] = {}
        self._dirty = _DirtyState()
        self._destructed_storage_roots: set[bytes] = set()
        #: histogram of per-lookup request counts: 1 when the snapshot
        #: serves a lookup, trie depth otherwise (the read-amplification
        #: contrast behind the paper's snapshot-acceleration discussion)
        from collections import Counter as _Counter

        self.lookup_depths: _Counter = _Counter()

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def get_account(self, address: bytes) -> Optional[Account]:
        account_hash = hash_address(address)
        dirty = self._dirty.accounts.get(account_hash, _MISSING)
        if dirty is not _MISSING:
            return dirty  # type: ignore[return-value]
        if self._snapshots is not None:
            self.lookup_depths[1] += 1
            slim = self._snapshots.get_account(account_hash)
            if slim is None:
                return None
            return Account.decode_slim(slim)
        blob = self._account_trie.get(bytes_to_nibbles(account_hash))
        self.lookup_depths[self._account_trie.last_lookup_depth] += 1
        if blob is None:
            return None
        return Account.decode(blob)

    def get_storage(self, address: bytes, slot: bytes) -> bytes:
        return self.get_storage_hashed(address, hash_slot(slot))

    def get_storage_hashed(self, address: bytes, slot_hash: bytes) -> bytes:
        """Slot lookup with a pre-hashed slot key (hot path)."""
        account_hash = hash_address(address)
        dirty = self._dirty.storage.get((account_hash, slot_hash), _MISSING)
        if dirty is not _MISSING:
            return dirty or b""  # type: ignore[return-value]
        if self._snapshots is not None:
            value = self._snapshots.get_storage(account_hash, slot_hash)
            return value if value is not None else b""
        trie = self._storage_trie(account_hash)
        value = trie.get(bytes_to_nibbles(slot_hash))
        return value if value is not None else b""

    def get_code(self, code_hash: bytes) -> bytes:
        if code_hash == EMPTY_CODE_HASH:
            return b""
        dirty = self._dirty.codes.get(code_hash)
        if dirty is not None:
            return dirty
        # Code reads bypass the cache layer: the paper's traces show the
        # same absolute Code read counts in CacheTrace and BareTrace.
        value = self._db.read_uncached(schema.code_key(code_hash))
        return value if value is not None else b""

    # ------------------------------------------------------------------
    # write path (buffered until commit)
    # ------------------------------------------------------------------

    def set_account(self, address: bytes, account: Account) -> None:
        self._dirty.accounts[hash_address(address)] = account

    def set_account_hashed(self, account_hash: bytes, account: Account) -> None:
        """Account write keyed directly by its hash.

        Snap sync downloads state *by hashed key ranges* and never
        learns the preimage addresses; this is that write path.
        """
        self._dirty.accounts[account_hash] = account

    def set_storage_by_hashes(
        self, account_hash: bytes, slot_hash: bytes, value: bytes
    ) -> None:
        """Storage write keyed by hashes (snap-sync range download)."""
        self._dirty.storage[(account_hash, slot_hash)] = value if value else None

    def set_code_blob(self, code: bytes) -> bytes:
        """Store a code blob fetched by hash (snap-sync bytecode fill)."""
        code_hash = hashlib.sha3_256(code).digest()
        self._dirty.codes[code_hash] = code
        return code_hash

    def destruct_account(self, address: bytes) -> None:
        """Mark an account destroyed (storage cleared at commit)."""
        account_hash = hash_address(address)
        existing = self.get_account(address)
        if existing is not None and existing.storage_root != EMPTY_ROOT:
            self._destructed_storage_roots.add(account_hash)
        self._dirty.accounts[account_hash] = None

    def set_storage(self, address: bytes, slot: bytes, value: bytes) -> None:
        self.set_storage_hashed(address, hash_slot(slot), value)

    def set_storage_hashed(self, address: bytes, slot_hash: bytes, value: bytes) -> None:
        """Slot write with a pre-hashed slot key (hot path)."""
        key = (hash_address(address), slot_hash)
        self._dirty.storage[key] = value if value else None

    def set_code(self, address: bytes, code: bytes) -> bytes:
        """Store contract code; returns its hash."""
        code_hash = hashlib.sha3_256(code).digest()
        self._dirty.codes[code_hash] = code
        return code_hash

    # ------------------------------------------------------------------
    # commit
    # ------------------------------------------------------------------

    def commit(self) -> bytes:
        """Apply buffered changes to the tries/snapshot; return state root.

        Staging order matches Geth's: storage tries first (their roots
        feed the accounts), then code, then the account trie, then the
        snapshot diff.  Everything lands in the open block batch; the
        caller commits the batch.
        """
        # 1. storage tries
        touched_accounts: dict[bytes, bytes] = {}  # account_hash -> new storage root
        storage_by_account: dict[bytes, list[tuple[bytes, Optional[bytes]]]] = {}
        for (account_hash, slot_hash), value in self._dirty.storage.items():
            storage_by_account.setdefault(account_hash, []).append((slot_hash, value))
        for account_hash, changes in storage_by_account.items():
            trie = self._storage_trie(account_hash)
            for slot_hash, value in changes:
                nibbles = bytes_to_nibbles(slot_hash)
                if value is None:
                    trie.delete(nibbles)
                else:
                    trie.update(nibbles, value)
            touched_accounts[account_hash] = trie.commit()

        # 2. contract code
        for code_hash, code in self._dirty.codes.items():
            self._db.write(schema.code_key(code_hash), code)

        # 3. account trie
        for account_hash, account in self._dirty.accounts.items():
            nibbles = bytes_to_nibbles(account_hash)
            if account is None:
                self._account_trie.delete(nibbles)
                self._storage_tries.pop(account_hash, None)
                touched_accounts.pop(account_hash, None)
                self._delete_storage_trie(account_hash)
                continue
            new_root = touched_accounts.pop(account_hash, None)
            if new_root is not None:
                account.storage_root = new_root
            self._account_trie.update(nibbles, account.encode())
        # storage changed for accounts whose account record didn't change:
        # refresh their storage roots too.
        for account_hash, new_root in touched_accounts.items():
            nibbles = bytes_to_nibbles(account_hash)
            blob = self._account_trie.get(nibbles)
            if blob is None:
                continue
            account = Account.decode(blob)
            account.storage_root = new_root
            self._account_trie.update(nibbles, account.encode())
        state_root = self._account_trie.commit()

        # 4. snapshot diff layer
        if self._snapshots is not None:
            self._snapshots.update(
                state_root, dict(self._dirty.accounts), dict(self._dirty.storage)
            )

        self._dirty = _DirtyState()
        self._destructed_storage_roots.clear()
        return state_root

    def _delete_storage_trie(self, account_hash: bytes) -> None:
        """Delete every storage-trie node of a destructed account.

        Geth tracks a contract's node set in memory (the trie's owner
        id), so locating the nodes is not a database scan — only the
        deletes reach the KV interface.  The enumeration here is
        therefore untraced; the per-node deletes go through the trie
        node store (coalescing with the dirty buffer when enabled).
        """
        from repro.kvstore.api import prefix_upper_bound

        prefix = schema.storage_trie_node_key(account_hash, ())[: 1 + 32]
        doomed = {
            key
            for key, _ in self._db.store.inner.scan(
                prefix, prefix_upper_bound(prefix)
            )
        }
        doomed.update(
            key
            for key, blob in self._node_store._buffer.items()  # noqa: SLF001
            if blob is not None and key.startswith(prefix)
        )
        for key in doomed:
            self._node_store.delete(key)

    def flush_trie_nodes(self) -> int:
        """Flush the dirty trie-node buffer into the block batch."""
        return self._node_store.flush()

    @property
    def node_store(self) -> TrieNodeStore:
        return self._node_store

    def _storage_trie(self, account_hash: bytes) -> PathTrie:
        trie = self._storage_tries.get(account_hash)
        if trie is None:
            trie = PathTrie(StorageTrieBackend(self._node_store, account_hash))
            self._storage_tries[account_hash] = trie
        return trie


_MISSING = object()
