"""Geth's per-class LRU caches.

Geth fronts the KV store with multiple LRU caches, each dedicated to a
class of KV pairs (trie nodes, snapshot entries, code, headers, bodies),
sharing a total memory budget (1 GiB by default in the paper's
CacheTrace).  A cache hit never reaches the KV interface — which is
exactly why CacheTrace has ~3x fewer operations than BareTrace.

Capacity is tracked in *bytes* of cached values (plus a per-entry
overhead), mirroring Geth's size-bounded caches rather than
entry-count-bounded ones.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional

from repro.core.classes import KVClass

if TYPE_CHECKING:  # pragma: no cover — typing only, avoids an import cycle
    from repro.obs.registry import MetricsRegistry, Sample

#: Bookkeeping bytes charged per cached entry.
CACHE_ENTRY_OVERHEAD = 48


class LRUCache:
    """Size-bounded LRU cache of key -> value bytes."""

    def __init__(self, capacity_bytes: int) -> None:
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[bytes, bytes] = OrderedDict()
        self._used_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: bytes) -> Optional[bytes]:
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: bytes, value: bytes) -> None:
        if self.capacity_bytes <= 0:
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self._used_bytes -= len(key) + len(old) + CACHE_ENTRY_OVERHEAD
        entry_bytes = len(key) + len(value) + CACHE_ENTRY_OVERHEAD
        if entry_bytes > self.capacity_bytes:
            return  # larger than the whole cache; never admit
        self._entries[key] = value
        self._used_bytes += entry_bytes
        while self._used_bytes > self.capacity_bytes and self._entries:
            evicted_key, evicted_value = self._entries.popitem(last=False)
            self._used_bytes -= (
                len(evicted_key) + len(evicted_value) + CACHE_ENTRY_OVERHEAD
            )
            self.evictions += 1

    def invalidate(self, key: bytes) -> None:
        old = self._entries.pop(key, None)
        if old is not None:
            self._used_bytes -= len(key) + len(old) + CACHE_ENTRY_OVERHEAD

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class CacheBudget:
    """Fractional split of the total cache budget across classes.

    Geth splits its ``--cache`` budget across trie database, snapshot,
    and header-number caches; the fractions below approximate that
    split.  Contract code and block header/body/receipt reads are *not*
    absorbed by these caches: the paper's traces show near-identical
    absolute read counts for those classes in CacheTrace and BareTrace,
    so their reads reach the KV interface regardless of caching.
    """

    total_bytes: int
    trie_fraction: float = 0.50
    snapshot_fraction: float = 0.49
    header_number_fraction: float = 0.01


def cache_metric_samples(caches: "CacheSet") -> Iterator["Sample"]:
    """Render a live :class:`CacheSet` as registry samples.

    Hit/miss/eviction totals become counters and occupancy becomes
    gauges, one series per KV class (``cache=<class>`` label).  Hit
    *rates* are derived, never summed — recompute from the counters.
    """
    from repro.obs.registry import COUNTER, GAUGE, Sample

    for cls, cache in caches._caches.items():
        labels = (("cache", cls.value),)
        yield Sample(
            name="repro_cache_hits_total",
            kind=COUNTER,
            labels=labels,
            value=float(cache.hits),
            help="LRU cache hits by KV class",
        )
        yield Sample(
            name="repro_cache_misses_total",
            kind=COUNTER,
            labels=labels,
            value=float(cache.misses),
            help="LRU cache misses by KV class",
        )
        yield Sample(
            name="repro_cache_evictions_total",
            kind=COUNTER,
            labels=labels,
            value=float(cache.evictions),
            help="LRU cache evictions by KV class",
        )
        yield Sample(
            name="repro_cache_entries",
            kind=GAUGE,
            labels=labels,
            value=float(len(cache)),
            help="Live LRU cache entries by KV class",
        )
        yield Sample(
            name="repro_cache_used_bytes",
            kind=GAUGE,
            labels=labels,
            value=float(cache.used_bytes),
            help="Live LRU cache occupancy in bytes by KV class",
        )


def bind_cache_metrics(
    caches: "CacheSet", registry: Optional["MetricsRegistry"] = None
) -> None:
    """Publish a :class:`CacheSet` into a registry (weakly referenced,
    read only at snapshot time — zero hit-path overhead)."""
    if registry is None:
        from repro.obs import get_registry

        registry = get_registry()
    registry.register_object_collector(caches, cache_metric_samples)


class CacheSet:
    """The family of per-class caches fronting the KV store."""

    def __init__(self, budget: CacheBudget) -> None:
        total = budget.total_bytes
        trie_bytes = int(total * budget.trie_fraction)
        snap_bytes = int(total * budget.snapshot_fraction)
        hn_bytes = int(total * budget.header_number_fraction)
        self._caches: dict[KVClass, LRUCache] = {
            KVClass.TRIE_NODE_ACCOUNT: LRUCache(trie_bytes // 2),
            KVClass.TRIE_NODE_STORAGE: LRUCache(trie_bytes - trie_bytes // 2),
            KVClass.SNAPSHOT_ACCOUNT: LRUCache(snap_bytes // 2),
            KVClass.SNAPSHOT_STORAGE: LRUCache(snap_bytes - snap_bytes // 2),
            KVClass.HEADER_NUMBER: LRUCache(hn_bytes),
        }
        bind_cache_metrics(self)

    def cache_for(self, kv_class: KVClass) -> Optional[LRUCache]:
        """The cache serving ``kv_class``, or None when uncached."""
        return self._caches.get(kv_class)

    def stats(self) -> dict[KVClass, dict[str, float]]:
        return {
            cls: {
                "entries": len(cache),
                "used_bytes": cache.used_bytes,
                "hits": cache.hits,
                "misses": cache.misses,
                "hit_rate": cache.hit_rate,
                "evictions": cache.evictions,
            }
            for cls, cache in self._caches.items()
        }
