"""Geth's data-management layer over the KV store.

Reimplements the subsystems whose KV traffic the paper characterizes:

* :mod:`repro.gethdb.schema` — key construction for all 29 classes;
* :mod:`repro.gethdb.caches` — Geth's per-class LRU caches;
* :mod:`repro.gethdb.database` — the database facade combining the
  traced KV store, caches, and per-block write batches;
* :mod:`repro.gethdb.freezer` — the ancient store and the pruning
  migration that deletes old block data from the KV store;
* :mod:`repro.gethdb.snapshot` — snapshot acceleration (flat account /
  storage representation of the current world state);
* :mod:`repro.gethdb.txindexer` — TxLookup indexing and tail unindexing;
* :mod:`repro.gethdb.bloombits` — the bloombits chain indexer;
* :mod:`repro.gethdb.state` — the world-state StateDB over account and
  storage tries, integrating the snapshot read path.
"""

from repro.gethdb.database import DBConfig, GethDatabase
from repro.gethdb.freezer import Freezer
from repro.gethdb.snapshot import SnapshotTree
from repro.gethdb.state import StateDB
from repro.gethdb.txindexer import TxIndexer

__all__ = [
    "DBConfig",
    "GethDatabase",
    "Freezer",
    "SnapshotTree",
    "StateDB",
    "TxIndexer",
]
