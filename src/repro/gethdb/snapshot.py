"""Snapshot acceleration — the flat world-state representation.

Geth's snapshot layer keeps a flat copy of the current world state so
account/slot lookups cost one KV read instead of an MPT traversal (up
to 64 reads per lookup before snapshots).  New blocks produce in-memory
*diff layers*; aggregated diffs flush to the on-disk flat layer
periodically.  On shutdown the un-flushed diff stack is serialized into
the SnapshotJournal singleton.

This reproduces:

* the SnapshotAccount / SnapshotStorage classes (only present when the
  feature is on — the CacheTrace/BareTrace KV-pair-count difference in
  Finding 7);
* slim account encoding (small SnapshotAccount values, Table I);
* storage-range scans on contract destruction (one of only three scan
  sources — Finding 4);
* SnapshotRoot / SnapshotGenerator / SnapshotRecovery marker traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

from repro.chain.account import Account
from repro.gethdb import schema
from repro.gethdb.database import GethDatabase

if TYPE_CHECKING:  # pragma: no cover — typing only, avoids an import cycle
    from repro.obs.registry import Sample


@dataclass
class DiffLayer:
    """Per-block in-memory diff over the flat layer."""

    root: bytes
    accounts: dict[bytes, Optional[bytes]] = field(default_factory=dict)
    storage: dict[tuple[bytes, bytes], Optional[bytes]] = field(default_factory=dict)

    @property
    def num_changes(self) -> int:
        return len(self.accounts) + len(self.storage)


def snapshot_metric_samples(tree: "SnapshotTree") -> Iterator["Sample"]:
    """Render a live :class:`SnapshotTree` as registry samples."""
    from repro.obs.registry import COUNTER, GAUGE, Sample

    yield Sample(
        name="repro_snapshot_flushed_accounts_total",
        kind=COUNTER,
        labels=(),
        value=float(tree.flushed_accounts),
        help="SnapshotAccount entries written by accumulator flushes",
    )
    yield Sample(
        name="repro_snapshot_flushed_slots_total",
        kind=COUNTER,
        labels=(),
        value=float(tree.flushed_slots),
        help="SnapshotStorage entries written by accumulator flushes",
    )
    yield Sample(
        name="repro_snapshot_destructed_accounts_total",
        kind=COUNTER,
        labels=(),
        value=float(tree.destructed_accounts),
        help="Accounts scan-deleted from the flat snapshot layer",
    )
    yield Sample(
        name="repro_snapshot_pending_layers",
        kind=GAUGE,
        labels=(),
        value=float(tree.pending_layers),
        help="In-memory diff layers awaiting aggregation",
    )
    yield Sample(
        name="repro_snapshot_pending_changes",
        kind=GAUGE,
        labels=(),
        value=float(len(tree._pending_accounts) + len(tree._pending_storage)),
        help="Coalesced accumulator entries awaiting bulk write",
    )


class SnapshotTree:
    """Diff-layer stack over the persisted flat snapshot."""

    def __init__(
        self, db: GethDatabase, flush_depth: int = 8, flush_interval: int = 16
    ) -> None:
        """``flush_depth``: diff layers kept in memory before the oldest
        aggregates into the pending accumulator (Geth keeps 128);
        ``flush_interval``: layers accumulated in the bottom-most
        aggregator before being written out in bulk.  Aggregation
        coalesces repeated updates to hot accounts/slots, so each key
        reaches the KV interface once per flush, not once per block.
        """
        self._db = db
        self._layers: list[DiffLayer] = []
        self.flush_depth = flush_depth
        self.flush_interval = flush_interval
        self.enabled = db.config.snapshot_enabled
        # Bottom-most accumulator: coalesced changes awaiting bulk write.
        self._pending_accounts: dict[bytes, Optional[bytes]] = {}
        self._pending_storage: dict[tuple[bytes, bytes], Optional[bytes]] = {}
        self._accumulated_layers = 0
        #: cumulative flush/destruct totals (read by the obs collector)
        self.flushed_accounts = 0
        self.flushed_slots = 0
        self.destructed_accounts = 0
        from repro.obs import get_registry

        get_registry().register_object_collector(self, snapshot_metric_samples)

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def get_account(self, account_hash: bytes) -> Optional[bytes]:
        """Slim-encoded account bytes, or None when absent/deleted."""
        for layer in reversed(self._layers):
            if account_hash in layer.accounts:
                return layer.accounts[account_hash]
        if account_hash in self._pending_accounts:
            return self._pending_accounts[account_hash]
        return self._db.read(schema.snapshot_account_key(account_hash))

    def get_storage(self, account_hash: bytes, slot_hash: bytes) -> Optional[bytes]:
        for layer in reversed(self._layers):
            if (account_hash, slot_hash) in layer.storage:
                return layer.storage[(account_hash, slot_hash)]
        if (account_hash, slot_hash) in self._pending_storage:
            return self._pending_storage[(account_hash, slot_hash)]
        return self._db.read(schema.snapshot_storage_key(account_hash, slot_hash))

    # ------------------------------------------------------------------
    # update path
    # ------------------------------------------------------------------

    def update(
        self,
        root: bytes,
        accounts: dict[bytes, Optional[Account]],
        storage: dict[tuple[bytes, bytes], Optional[bytes]],
    ) -> None:
        """Push one block's state changes as a new diff layer.

        ``None`` marks a deletion (destructed account / cleared slot).
        """
        layer = DiffLayer(root=root)
        for account_hash, account in accounts.items():
            layer.accounts[account_hash] = (
                account.encode_slim() if account is not None else None
            )
        layer.storage.update(storage)
        self._layers.append(layer)
        if len(self._layers) > self.flush_depth:
            self._flush_oldest()

    def _flush_oldest(self) -> None:
        """Fold the oldest diff layer into the pending accumulator.

        Nothing reaches the KV interface here; the accumulator is
        written out in bulk by :meth:`_flush_pending` once
        ``flush_interval`` layers have been folded in, coalescing
        repeated changes to the same key in between.
        """
        layer = self._layers.pop(0)
        self._pending_accounts.update(layer.accounts)
        self._pending_storage.update(layer.storage)
        self._accumulated_layers += 1
        if self._accumulated_layers >= self.flush_interval:
            self._flush_pending()

    def _flush_pending(self) -> None:
        """Write the coalesced accumulator to the flat KV layer."""
        for account_hash, slim in self._pending_accounts.items():
            key = schema.snapshot_account_key(account_hash)
            if slim is None:
                self._destruct_account(account_hash, key)
            else:
                self._db.write(key, slim)
                self.flushed_accounts += 1
        for (account_hash, slot_hash), value in self._pending_storage.items():
            key = schema.snapshot_storage_key(account_hash, slot_hash)
            if value is None:
                self._db.delete(key)
            else:
                self._db.write(key, value)
                self.flushed_slots += 1
        self._pending_accounts.clear()
        self._pending_storage.clear()
        self._accumulated_layers = 0

    def _destruct_account(self, account_hash: bytes, account_key: bytes) -> None:
        """Remove a destructed account and *scan-delete* its storage.

        The storage-range scan here is one of the paper's three scan
        sources (SnapshotStorage, Finding 4).
        """
        self._db.delete(account_key)
        self.destructed_accounts += 1
        prefix = schema.snapshot_storage_prefix(account_hash)
        doomed = [key for key, _ in self._db.scan_prefix(prefix)]
        for key in doomed:
            self._db.delete(key)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def flush_all(self) -> None:
        """Flush every pending diff layer (used at shutdown/tests)."""
        while self._layers:
            self._flush_oldest()
        self._flush_pending()

    def journal(self) -> None:
        """Serialize the diff stack into the SnapshotJournal singleton.

        The encoding round-trips through :meth:`load_journal`, so a
        restarted node resumes with the exact in-memory snapshot state
        it shut down with — the singleton's documented purpose
        ("in-memory differential layers across system restarts").
        """
        self._db.write_now(schema.SNAPSHOT_JOURNAL_KEY, self.encode_journal())

    def encode_journal(self) -> bytes:
        """RLP journal: [pending_accounts, pending_storage, layers...]."""
        from repro import rlp

        def encode_account_map(mapping):
            return [
                [account_hash, slim if slim is not None else b"", 1 if slim is None else 0]
                for account_hash, slim in sorted(mapping.items())
            ]

        def encode_storage_map(mapping):
            return [
                [
                    account_hash + slot_hash,
                    value if value is not None else b"",
                    1 if value is None else 0,
                ]
                for (account_hash, slot_hash), value in sorted(mapping.items())
            ]

        layers = [
            [layer.root, encode_account_map(layer.accounts), encode_storage_map(layer.storage)]
            for layer in self._layers
        ]
        return rlp.encode(
            [
                encode_account_map(self._pending_accounts),
                encode_storage_map(self._pending_storage),
                self._accumulated_layers,
                layers,
            ]
        )

    def load_journal(self, blob: bytes) -> int:
        """Restore the diff stack from a journal blob; returns #layers."""
        from repro import rlp

        def decode_account_map(items):
            mapping = {}
            for account_hash, slim, deleted in items:
                mapping[account_hash] = None if rlp.decode_uint(deleted) else slim
            return mapping

        def decode_storage_map(items):
            mapping = {}
            for combined, value, deleted in items:
                key = (combined[:32], combined[32:])
                mapping[key] = None if rlp.decode_uint(deleted) else value
            return mapping

        pending_accounts, pending_storage, accumulated, layers = rlp.decode(blob)
        self._pending_accounts = decode_account_map(pending_accounts)
        self._pending_storage = decode_storage_map(pending_storage)
        self._accumulated_layers = rlp.decode_uint(accumulated)
        self._layers = [
            DiffLayer(
                root=root,
                accounts=decode_account_map(accounts),
                storage=decode_storage_map(storage),
            )
            for root, accounts, storage in layers
        ]
        return len(self._layers)

    def write_generator_marker(self, done: bool) -> None:
        """Persist the generation-progress marker (SnapshotGenerator)."""
        self._db.write_now(schema.SNAPSHOT_GENERATOR_KEY, b"done" if done else b"gen")

    def verify_startup(self) -> int:
        """Startup consistency probe over the flat account layer.

        Performs the one-off SnapshotAccount range scan the paper
        observes (exactly two scans across the whole CacheTrace).
        Returns the number of entries touched.
        """
        count = 0
        from repro.core.classes import SNAPSHOT_ACCOUNT_PREFIX

        for _ in self._db.scan_prefix(SNAPSHOT_ACCOUNT_PREFIX):
            count += 1
            if count >= 16:  # bounded probe, not a full iteration
                break
        return count

    @property
    def pending_layers(self) -> int:
        return len(self._layers)
