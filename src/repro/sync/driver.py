"""The full-sync driver: block import through the whole storage stack."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from repro import rlp
from repro.chain.account import Account
from repro.chain.blocks import Block
from repro.chain.genesis import GenesisConfig
from repro.chain.transactions import Receipt, block_bloom, encode_receipts
from repro.core.trace import TraceRecord
from repro.errors import CrashPoint
from repro.gethdb import schema
from repro.gethdb.bloombits import BloomBitsIndexer
from repro.gethdb.database import DBConfig, GethDatabase
from repro.gethdb.freezer import Freezer
from repro.gethdb.snapshot import SnapshotTree
from repro.gethdb.state import StateDB
from repro.gethdb.txindexer import TxIndexer
from repro.obs import get_registry, span
from repro.workload.generator import BlockPlan, WorkloadConfig, WorkloadGenerator


@dataclass(frozen=True)
class SyncConfig:
    """Scaled-down analog of the paper's capture configuration.

    Mainnet background cadences (freezer threshold 90k blocks, tx index
    window 2.35M, bloom sections 4,096) are scaled so the same
    *per-block op mix* emerges at simulation scale.
    """

    db: DBConfig = field(default_factory=DBConfig)
    #: untraced blocks executed first, standing in for the 20.5M blocks
    #: already synchronized before the paper's measurement window
    warmup_blocks: int = 100
    freezer_threshold: int = 64
    freezer_batch: int = 4
    txlookup_limit: int = 48
    bloom_section_size: int = 64
    bloom_tracked_bits: int = 32
    #: StateID records kept before the oldest is deleted
    stateid_retention: int = 32
    #: blocks between LastStateID persistence (reads happen every block)
    laststateid_flush_interval: int = 64
    #: blocks between SkeletonSyncStatus updates
    skeleton_status_interval: int = 4
    #: ancestor headers re-read during verification of each block
    header_verification_reads: int = 8
    #: skeleton headers re-read while filling each block
    skeleton_reads_per_block: int = 5
    #: skeleton headers retained before deletion (0 disables cleanup)
    skeleton_window: int = 256
    #: blocks between SnapshotRoot marker rewrites
    snapshot_root_interval: int = 100
    #: blocks between chain-indexer progress reads (BloomBitsIndex)
    bloom_progress_interval: int = 4
    #: EIP-4444 history expiry bound in blocks (0 disables; the paper
    #: cites the proposal as future work for bounding historical data)
    history_expiry: int = 0
    #: verify each imported block (header linkage, body/receipt roots,
    #: executed state root) — the paper's "verify downloaded blocks"
    validate_blocks: bool = True
    #: blocks between storage-growth samples (0 disables sampling);
    #: feeds the growth analysis behind the paper's "unbounded data
    #: growth (~200 GiB annually)" motivation
    growth_sample_interval: int = 0
    #: shadow-store every flushed trie node under the legacy hash-keyed
    #: scheme, for the path-vs-hash storage-model comparison (§II-A)
    mirror_hash_scheme: bool = False
    #: blocks between trie dirty-buffer flushes when caching is enabled:
    #: hot interior nodes rewritten every block coalesce to one put per
    #: flush window (the pathdb buffer's cross-block coalescing — the
    #: larger half of Finding 7's world-state write reduction).
    trie_flush_interval: int = 16
    #: diff layers aggregated before the snapshot accumulator is written.
    #: 1 = flat-snapshot writes land every block, which is what keeps
    #: adjacent blocks' head-pointer updates far apart in the update
    #: stream (Figure 6's collapse of LF-LH by distance four).
    snapshot_flush_interval: int = 1
    #: in BareTrace mode (no trie dirty cache) state commits flush every
    #: ``bare_commit_txs`` transactions instead of once per block, so
    #: interior trie nodes are rewritten several times per block — the
    #: other half of BareTrace's higher world-state put traffic.
    bare_commit_txs: int = 8
    genesis: GenesisConfig = field(default_factory=GenesisConfig)


@dataclass
class GrowthSample:
    """Storage footprint at one block height."""

    block: int
    kv_pairs: int
    kv_bytes: int
    frozen_blocks: int
    ancient_bytes: int


@dataclass
class SyncResult:
    """Everything a trace analysis needs from one sync run."""

    name: str
    records: list[TraceRecord]
    #: (key, value) snapshot of the KV store after the run
    store_snapshot: list[tuple[bytes, bytes]]
    blocks_processed: int
    head_number: int
    cache_stats: dict
    total_store_pairs: int
    #: storage-growth samples (empty unless growth_sample_interval > 0)
    growth_samples: list[GrowthSample] = field(default_factory=list)


class FullSyncDriver:
    """Imports workload blocks through the full storage stack."""

    def __init__(
        self,
        sync_config: Optional[SyncConfig] = None,
        workload: Optional[WorkloadGenerator] = None,
        name: str = "trace",
        database: Optional[GethDatabase] = None,
    ) -> None:
        """``database``: attach to an existing database instead of a
        fresh one — the restart/recovery path (see repro.sync.recovery).
        """
        self.config = sync_config if sync_config is not None else SyncConfig()
        self.workload = workload if workload is not None else WorkloadGenerator()
        self.name = name
        self.db = database if database is not None else GethDatabase(self.config.db)
        self.snapshots = SnapshotTree(
            self.db, flush_depth=2, flush_interval=self.config.snapshot_flush_interval
        )
        self.state = StateDB(self.db, self.snapshots)
        self.freezer = Freezer(
            self.db,
            self.config.freezer_threshold,
            self.config.freezer_batch,
            history_expiry=self.config.history_expiry,
        )
        self.hash_scheme_mirror = None
        if self.config.mirror_hash_scheme:
            from repro.gethdb.legacy import HashSchemeMirror

            self.hash_scheme_mirror = HashSchemeMirror()
            self.state.node_store.flush_observer = self.hash_scheme_mirror.observe_flush
        self.txindexer = TxIndexer(self.db, self.config.txlookup_limit)
        self.bloombits = BloomBitsIndexer(
            self.db, self.config.bloom_section_size, self.config.bloom_tracked_bits
        )
        self._head_number = 0
        self._head_hash = b"\x00" * 32
        self._blocks_run = 0
        self._growth_samples: list[GrowthSample] = []
        self._recent_hashes: dict[int, bytes] = {}
        self._recent_roots: list[bytes] = []
        self._snapshot_root_present = False
        self._initialized = False

    # ------------------------------------------------------------------
    # genesis / startup
    # ------------------------------------------------------------------

    def initialize(self) -> None:
        """Write genesis state and metadata (untraced, pre-window)."""
        if self._initialized:
            return
        self.db.set_tracing(False)
        self.db.begin_block(0)

        cfg = self.config.genesis
        for address in self.workload.eoa_addresses:
            self.state.set_account(
                address, Account(nonce=0, balance=cfg.initial_balance)
            )
        for contract in self.workload.contract_addresses:
            code = self.workload.initial_code_for(contract)
            code_hash = self.state.set_code(contract, code)
            self.state.set_account(contract, Account(nonce=1, code_hash=code_hash))
            for slot, value in self.workload.initial_slots_for(contract):
                self.state.set_storage_hashed(contract, slot, value)
        state_root = self.state.commit()

        from repro.chain.genesis import make_genesis

        genesis_block = make_genesis(cfg, state_root)
        genesis_hash = genesis_block.hash
        self._write_block_data(genesis_block)
        self.db.write(schema.ethereum_genesis_key(genesis_hash), cfg.genesis_state_blob(state_root))
        self.db.write(schema.ethereum_config_key(genesis_hash), cfg.config_json())
        self.db.write(schema.DATABASE_VERSION_KEY, b"\x08")
        self.db.write(schema.LAST_HEADER_KEY, genesis_hash)
        self.db.write(schema.LAST_BLOCK_KEY, genesis_hash)
        self.db.write(schema.LAST_FAST_KEY, genesis_hash)
        self.db.write(schema.state_id_key(state_root), (1).to_bytes(8, "big"))
        self.db.write(schema.LAST_STATE_ID_KEY, (1).to_bytes(8, "big"))
        self.db.write(schema.UNCLEAN_SHUTDOWN_KEY, b"\x00" * 33)
        self.db.write(schema.SKELETON_SYNC_STATUS_KEY, b"\x00" * 146)
        self.db.write(schema.TRANSACTION_INDEX_TAIL_KEY, (0).to_bytes(8, "big"))
        if self.db.config.snapshot_enabled:
            self.snapshots.write_generator_marker(done=False)
            self.db.write(schema.SNAPSHOT_ROOT_KEY, state_root)
            self.db.write(schema.SNAPSHOT_RECOVERY_KEY, (0).to_bytes(8, "big"))
            self._snapshot_root_present = True
        self.db.commit_batch()

        self._head_number = 0
        self._head_hash = genesis_hash
        self._recent_hashes[0] = genesis_hash
        self._recent_roots.append(state_root)
        self._initialized = True

    def _startup_reads(self) -> None:
        """The startup op burst (unclean-shutdown probe, head reads)."""
        self.db.read_uncached(schema.UNCLEAN_SHUTDOWN_KEY)
        self.db.write_now(schema.UNCLEAN_SHUTDOWN_KEY, b"\x01" + b"\x00" * 32)
        self.db.read_uncached(schema.LAST_BLOCK_KEY)
        self.db.read_uncached(schema.SKELETON_SYNC_STATUS_KEY)
        if self.db.config.snapshot_enabled:
            self.snapshots.verify_startup()

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self, num_blocks: int, clean_shutdown: bool = True) -> SyncResult:
        """Warm up untraced, then trace ``num_blocks`` of full sync.

        ``clean_shutdown=False`` simulates a crash: the process stops
        without journaling, leaving the unclean-shutdown marker dirty —
        the state a restarted node must recover from.
        """
        self.initialize()
        self.db.set_tracing(False)
        for _ in range(self.config.warmup_blocks):
            self._import_next_block()
        self.db.set_tracing(True)
        self._startup_reads()
        for _ in range(num_blocks):
            self._import_next_block()
        self._blocks_run = self.config.warmup_blocks + num_blocks
        if clean_shutdown:
            self.shutdown()
        snapshot = list(self.db.store.inner.scan(b""))
        return SyncResult(
            name=self.name,
            records=self.db.collector.records,
            store_snapshot=snapshot,
            blocks_processed=num_blocks,
            head_number=self._head_number,
            cache_stats=self.db.cache_stats(),
            total_store_pairs=len(self.db.store.inner),
            growth_samples=list(self._growth_samples),
        )

    def _import_next_block(self) -> None:
        plan = self.workload.make_block_plan(self._head_number + 1)
        self.import_block(plan)

    # ------------------------------------------------------------------
    # block import
    # ------------------------------------------------------------------

    def import_block(self, plan: BlockPlan) -> Block:
        """Run one block through download, verify, execute, and commit.

        Each phase runs under an obs span, so `repro stats` breaks block
        import time down as repro_span_seconds{span="import_block/..."}.
        """
        with span("import_block"):
            block = self._import_block_phases(plan)
        get_registry().counter(
            "repro_sync_blocks_total", help="Blocks imported by the sync driver"
        ).inc()
        return block

    def _import_block_phases(self, plan: BlockPlan) -> Block:
        number = plan.number
        self.db.begin_block(number)

        # -- download phase: skeleton bookkeeping --------------------------
        with span("skeleton"):
            self._skeleton_step(number)

        # -- verification phase: on-demand reads ---------------------------
        with span("verify"):
            self._verify_ancestors(number)

        # -- execution phase ------------------------------------------------
        with span("execute"):
            receipts = self._execute_transactions(plan)
            state_root = self.state.commit()
        if (
            self.state.node_store.buffered
            and number % self.config.trie_flush_interval == 0
        ):
            with span("trie_flush"):
                self.db.crash_point(CrashPoint.TRIE_FLUSH_BEFORE)
                self.state.flush_trie_nodes()
                self.db.crash_point(CrashPoint.TRIE_FLUSH_AFTER)
        if self.hash_scheme_mirror is not None:
            self.hash_scheme_mirror.observe_root(state_root)
        block = plan.build_block(self._head_hash, state_root, receipts)
        if self.config.validate_blocks:
            with span("validate"):
                self._validate_block(block, state_root, receipts)

        # -- write phase (all batched; flushed below in one burst) ----------
        with span("write"):
            self._write_block_data(block)
            self.db.write(
                schema.receipts_key(number, block.hash), encode_receipts(receipts)
            )
            self.bloombits.add_block(number, block.hash, block_bloom(receipts))
            self.txindexer.index_block(number, [tx.hash for tx in block.transactions])
            self._advance_state_id(state_root)

            # Head pointers last — adjacent staging means adjacent trace
            # records at batch commit (the paper's Finding 10 clustering).
            self.db.write(schema.LAST_HEADER_KEY, block.hash)
            self.db.write(schema.LAST_FAST_KEY, block.hash)
            self.db.write(schema.LAST_BLOCK_KEY, block.hash)

            self.db.commit_batch()

        # -- background maintenance ----------------------------------------
        self._head_number = number
        self._head_hash = block.hash
        self._recent_hashes[number] = block.hash
        self._recent_hashes.pop(number - 4 * self.config.freezer_threshold, None)
        with span("freeze"):
            self.db.crash_point(CrashPoint.FREEZE_BEFORE)
            self.freezer.maybe_freeze(number)
            self.db.crash_point(CrashPoint.FREEZE_AFTER)
        with span("txindex"):
            self.db.crash_point(CrashPoint.TXINDEX_BEFORE)
            self.txindexer.unindex(number)
            self.db.crash_point(CrashPoint.TXINDEX_AFTER)
        with span("snapshot"):
            self._snapshot_root_maintenance(number, state_root)
        if number % self.config.bloom_progress_interval == 0:
            self.bloombits.read_progress()
        interval = self.config.growth_sample_interval
        if interval > 0 and number % interval == 0:
            self._sample_growth(number)
        return block

    def _sample_growth(self, number: int) -> None:
        inner = self.db.store.inner
        ancient_bytes = sum(
            len(blob)
            for table in (
                self.freezer.tables.headers,
                self.freezer.tables.bodies,
                self.freezer.tables.receipts,
            )
            for blob in table.values()
        )
        self._growth_samples.append(
            GrowthSample(
                block=number,
                kv_pairs=len(inner),
                kv_bytes=getattr(inner, "approx_bytes", 0),
                frozen_blocks=self.freezer.frozen_blocks,
                ancient_bytes=ancient_bytes,
            )
        )

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------

    def _skeleton_step(self, number: int) -> None:
        cfg = self.config
        header_stub = hashlib.sha3_256(b"skeleton" + number.to_bytes(8, "big")).digest()
        # Skeleton headers carry the downloaded header payload (~610B).
        self.db.write(schema.skeleton_header_key(number), header_stub * 19)
        for i in range(cfg.skeleton_reads_per_block):
            target = max(1, number - (i * 7) % 16)
            self.db.read_uncached(schema.skeleton_header_key(target))
        if cfg.skeleton_window and number > cfg.skeleton_window:
            self.db.delete(schema.skeleton_header_key(number - cfg.skeleton_window))
        if number % cfg.skeleton_status_interval == 0:
            self.db.write(
                schema.SKELETON_SYNC_STATUS_KEY,
                number.to_bytes(8, "big") + b"\x00" * 138,
            )

    def _verify_ancestors(self, number: int) -> None:
        """Header-chain verification reads (parent + sampled ancestors)."""
        parent_number = number - 1
        parent_hash = self._recent_hashes.get(parent_number)
        if parent_hash is not None:
            # hash -> number lookup goes through the HeaderNumber cache.
            self.db.read(schema.header_number_key(parent_hash))
            self.db.read_uncached(schema.header_key(parent_number, parent_hash))
            self.db.read_uncached(schema.body_key(parent_number, parent_hash))
        floor = self.freezer.frozen_until
        for i in range(self.config.header_verification_reads):
            target = parent_number - 1 - (i * 3)
            if target <= floor:
                break
            ancestor_hash = self._recent_hashes.get(target)
            if ancestor_hash is None:
                continue
            self.db.read_uncached(schema.header_key(target, ancestor_hash))

    def _execute_transactions(self, plan: BlockPlan) -> list[Receipt]:
        receipts = []
        cumulative_gas = 0
        bare = not self.state.node_store.buffered
        for index, tx_plan in enumerate(plan.tx_plans, start=1):
            cumulative_gas += self._apply_tx(tx_plan)
            receipts.append(
                Receipt(
                    status=1,
                    cumulative_gas_used=cumulative_gas,
                    logs=tx_plan.logs,
                )
            )
            # Without the trie dirty cache, state changes flush to the
            # store in small segments during the block: interior trie
            # nodes get rewritten once per segment rather than once per
            # block (BareTrace's higher world-state put traffic).
            if bare and index % self.config.bare_commit_txs == 0:
                self.state.commit()
                self.db.commit_batch()
        return receipts

    def _apply_tx(self, tx_plan) -> int:
        state = self.state
        tx = tx_plan.tx
        sender = state.get_account(tx_plan.sender) or Account()
        sender.nonce += 1
        sender.balance = max(0, sender.balance - tx.value - tx.gas_limit)
        state.set_account(tx_plan.sender, sender)

        if tx_plan.kind == "transfer":
            recipient = state.get_account(tx_plan.recipient) or Account()
            recipient.balance += tx.value
            state.set_account(tx_plan.recipient, recipient)
            return 21_000

        if tx_plan.kind == "call":
            contract = state.get_account(tx_plan.recipient)
            if contract is None:
                return 21_000
            state.get_code(contract.code_hash)  # code fetch (Code reads)
            for address, slot in tx_plan.slot_reads:
                state.get_storage_hashed(address, slot)
            for address, slot, value in tx_plan.slot_writes:
                state.set_storage_hashed(address, slot, value)
            state.set_account(tx_plan.recipient, contract)
            return tx.gas_limit // 2

        if tx_plan.kind == "create":
            code_hash = state.set_code(tx_plan.recipient, tx_plan.deployed_code)
            state.set_account(
                tx_plan.recipient, Account(nonce=1, code_hash=code_hash)
            )
            for address, slot, value in tx_plan.slot_writes:
                state.set_storage_hashed(address, slot, value)
            return tx.gas_limit // 2

        if tx_plan.kind == "destruct":
            state.destruct_account(tx_plan.destruct_target)
            return 50_000

        raise ValueError(f"unknown tx kind {tx_plan.kind!r}")

    def _validate_block(self, block: Block, state_root: bytes, receipts) -> None:
        """Full block verification (header linkage + execution outcome)."""
        from repro.chain.validation import (
            validate_body,
            validate_execution_outcome,
        )

        parent_hash = self._recent_hashes.get(block.number - 1)
        if parent_hash is not None and block.number > 1:
            parent_blob = self.db.peek(
                schema.header_key(block.number - 1, parent_hash)
            )
            if parent_blob is not None and block.header.parent_hash != parent_hash:
                from repro.errors import InvalidBlockError

                raise InvalidBlockError(
                    f"block {block.number} does not link to canonical parent"
                )
        validate_body(block)
        validate_execution_outcome(block, state_root, receipts)

    def _write_block_data(self, block: Block) -> None:
        number = block.number
        block_hash = block.hash
        header_blob = block.header.encode()
        self.db.write(schema.header_key(number, block_hash), header_blob)
        self.db.write(schema.header_td_key(number, block_hash), rlp.encode_uint(number + 1) or b"\x00")
        self.db.write(schema.canonical_hash_key(number), block_hash)
        self.db.write(schema.header_number_key(block_hash), number.to_bytes(8, "big"))
        self.db.write(schema.body_key(number, block_hash), block.body.encode())

    def _advance_state_id(self, state_root: bytes) -> None:
        number = self._head_number + 1
        if state_root in self._recent_roots:
            # Crash-replay path: the root's StateID record is already
            # persisted (resume rebuilt the list from it).  Rewrite the
            # record with the same value the first import produced and
            # skip the append so replays don't double-count.
            value = min(number + 1, self.config.stateid_retention + 1)
            self.db.write(schema.state_id_key(state_root), value.to_bytes(8, "big"))
        else:
            self._recent_roots.append(state_root)
            self.db.write(
                schema.state_id_key(state_root),
                (len(self._recent_roots)).to_bytes(8, "big"),
            )
        # `while`, not `if`: a torn commit can leave an extra persisted
        # record that resume folds into the list; draining one surplus
        # entry per block reconverges with the uninterrupted run.
        while len(self._recent_roots) > self.config.stateid_retention:
            old_root = self._recent_roots.pop(0)
            self.db.delete(schema.state_id_key(old_root))
        self.db.read_uncached(schema.LAST_STATE_ID_KEY)
        if self._head_number % self.config.laststateid_flush_interval == 0:
            self.db.write(
                schema.LAST_STATE_ID_KEY, len(self._recent_roots).to_bytes(8, "big")
            )

    def _snapshot_root_maintenance(self, number: int, state_root: bytes) -> None:
        if not self.db.config.snapshot_enabled:
            return
        interval = self.config.snapshot_root_interval
        if interval <= 0 or number % interval != 0:
            return
        # Geth rewrites the root marker when persisting snapshot progress
        # and deletes it while the generator is mid-rebuild.
        if self._snapshot_root_present:
            self.db.write_now(schema.SNAPSHOT_ROOT_KEY, state_root)
            self.db.delete_now(schema.SNAPSHOT_ROOT_KEY)
            self._snapshot_root_present = False
        else:
            self.db.write_now(schema.SNAPSHOT_ROOT_KEY, state_root)
            self._snapshot_root_present = True

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        """Persist journals and markers, as Geth does on clean exit."""
        self.db.begin_block(self._head_number)
        # Journal the un-flushed trie buffer (round-trippable; a restart
        # resumes from it), then flush so the store snapshot is complete
        # for the Table I analyses.  Mainnet's TrieJournal is ~336 MiB;
        # ours scales with the same thing — recent state churn.
        journal_blob = self.state.node_store.encode_journal()
        self.state.flush_trie_nodes()
        if self.db.config.snapshot_enabled:
            self.snapshots.journal()
            self.snapshots.write_generator_marker(done=True)
        self.db.write_now(schema.TRIE_JOURNAL_KEY, journal_blob)
        self.db.read_uncached(schema.UNCLEAN_SHUTDOWN_KEY)
        self.db.write_now(schema.UNCLEAN_SHUTDOWN_KEY, b"\x00" * 33)
        self.db.write_now(
            schema.SKELETON_SYNC_STATUS_KEY,
            self._head_number.to_bytes(8, "big") + b"\x00" * 138,
        )
        self.db.crash_point(CrashPoint.SHUTDOWN_BEFORE_COMMIT)
        self.db.commit_batch()


def run_trace_pair(
    workload_config: Optional[WorkloadConfig] = None,
    num_blocks: int = 200,
    warmup_blocks: int = 100,
    cache_bytes: int = 8 * 1024 * 1024,
) -> tuple[SyncResult, SyncResult]:
    """Run the same workload under both capture modes.

    Returns ``(cache_result, bare_result)`` — the CacheTrace and
    BareTrace analogs over identical block plans.
    """
    wl_config = workload_config if workload_config is not None else WorkloadConfig()

    cache_sync = SyncConfig(
        db=DBConfig.cache_trace_config(cache_bytes), warmup_blocks=warmup_blocks
    )
    cache_driver = FullSyncDriver(
        cache_sync, WorkloadGenerator(wl_config), name="CacheTrace"
    )
    cache_result = cache_driver.run(num_blocks)

    bare_sync = SyncConfig(db=DBConfig.bare_trace_config(), warmup_blocks=warmup_blocks)
    bare_driver = FullSyncDriver(
        bare_sync, WorkloadGenerator(wl_config), name="BareTrace"
    )
    bare_result = bare_driver.run(num_blocks)
    return cache_result, bare_result
