"""Snap synchronization.

Full sync (the paper's measured mode) executes every block from
genesis.  Snap sync — the default for new mainnet nodes (§II-A) —
instead:

1. picks a recent *pivot* block on a peer;
2. downloads the world state *by hashed key ranges* from the peer's
   flat snapshot (accounts, storage slots, contract bytecodes);
3. *heals* the state trie locally — committing the downloaded ranges
   rebuilds every trie node, a write-dominated burst of TrieNode*
   traffic;
4. switches to block-by-block full synchronization at the head.

:class:`SnapSyncDriver` implements all four phases against a completed
:class:`~repro.sync.driver.FullSyncDriver` acting as the serving peer.
The KV traffic profile differs sharply from full sync — bulk writes
with almost no reads during phases 2-3 — which is why the paper
captures full sync for workload characterization; this module lets a
user measure that contrast directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.chain.account import Account
from repro.errors import ChainError, PeerNetworkError
from repro.faults.plan import FaultKind, FaultPlan
from repro.gethdb import schema
from repro.sync.driver import FullSyncDriver, SyncConfig
from repro.trie.nibbles import nibbles_to_bytes
from repro.trie.trie import EMPTY_ROOT
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


@dataclass
class SnapSyncResult:
    """Outcome of one snap sync run."""

    pivot_number: int
    accounts_downloaded: int
    slots_downloaded: int
    codes_downloaded: int
    state_root_matches: bool
    tail_blocks_processed: int
    records: list
    total_store_pairs: int


class SnapSyncDriver:
    """Snap-syncs a fresh node from a completed full-sync peer."""

    def __init__(
        self,
        sync_config: Optional[SyncConfig] = None,
        workload_config: Optional[WorkloadConfig] = None,
        name: str = "SnapSync",
        range_chunk: int = 256,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        """``range_chunk``: accounts per downloaded range (each range is
        applied and committed as one batch, like a snap-sync response).

        ``fault_plan``: PEER_DROP rules targeting peer ``"snap-peer"``
        sever the download mid-range (:class:`PeerNetworkError`).  The
        download is resumable: already-committed ranges persist, and a
        later :meth:`sync_from_peer` call re-downloads the remainder
        (re-applied range writes converge to the same state).
        """
        self.workload_config = (
            workload_config if workload_config is not None else WorkloadConfig()
        )
        self.driver = FullSyncDriver(
            sync_config, WorkloadGenerator(self.workload_config), name=name
        )
        self.range_chunk = range_chunk
        self.fault_plan = fault_plan

    # ------------------------------------------------------------------

    def sync_from_peer(
        self, peer: FullSyncDriver, tail_blocks: int = 16
    ) -> SnapSyncResult:
        """Run all four snap-sync phases against ``peer``.

        The peer must have completed a run (its head state is the
        pivot).  ``tail_blocks``: blocks of full sync processed after
        the pivot (the "switch to full sync at the head" phase).
        """
        peer.db.set_tracing(False)  # the peer serves; we measure locally
        driver = self.driver
        db = driver.db
        state = driver.state

        pivot_number = peer._head_number  # noqa: SLF001 — peer introspection
        pivot_hash = peer._head_hash  # noqa: SLF001
        peer_root = peer.state._account_trie.root_hash()  # noqa: SLF001

        db.set_tracing(True)
        db.begin_block(pivot_number)

        # -- phase 1: pivot bookkeeping ---------------------------------
        db.write(schema.DATABASE_VERSION_KEY, b"\x08")
        db.write(schema.skeleton_header_key(pivot_number), pivot_hash * 19)
        db.write(
            schema.SKELETON_SYNC_STATUS_KEY,
            pivot_number.to_bytes(8, "big") + b"\x00" * 138,
        )

        # -- phase 2: ranged state download ------------------------------
        accounts = self._download_accounts(peer)
        codes = self._download_codes(peer, accounts)
        slots = self._download_storage(peer, accounts)

        downloaded_accounts = 0
        downloaded_slots = 0
        chunk_fill = 0
        for account_hash, account in accounts:
            state.set_account_hashed(account_hash, account)
            downloaded_accounts += 1
            chunk_fill += 1
            for slot_hash, value in slots.get(account_hash, ()):
                state.set_storage_by_hashes(account_hash, slot_hash, value)
                downloaded_slots += 1
            if chunk_fill >= self.range_chunk:
                # Each range response is applied and flushed as a unit —
                # the heal-phase trie writes happen here.
                state.commit()
                state.flush_trie_nodes()
                db.commit_batch()
                chunk_fill = 0
                self._check_peer_faults(pivot_number)
        for code in codes:
            state.set_code_blob(code)

        # -- phase 3: final heal + root verification ---------------------
        local_root = state.commit()
        state.flush_trie_nodes()
        db.commit_batch()
        matches = local_root == peer_root
        if not matches:
            raise ChainError(
                f"snap sync heal mismatch: local root {local_root.hex()} "
                f"!= peer root {peer_root.hex()}"
            )

        # head pointers at the pivot
        db.write(schema.LAST_HEADER_KEY, pivot_hash)
        db.write(schema.LAST_FAST_KEY, pivot_hash)
        db.write(schema.LAST_BLOCK_KEY, pivot_hash)
        db.write(schema.state_id_key(local_root), (1).to_bytes(8, "big"))
        db.write(schema.LAST_STATE_ID_KEY, (1).to_bytes(8, "big"))
        db.commit_batch()

        # -- phase 4: switch to full sync at the head ---------------------
        driver._initialized = True  # noqa: SLF001 — state came from the peer
        driver._head_number = pivot_number  # noqa: SLF001
        driver._head_hash = pivot_hash  # noqa: SLF001
        driver._recent_hashes[pivot_number] = pivot_hash  # noqa: SLF001
        driver._recent_roots.append(local_root)  # noqa: SLF001
        driver.freezer.frozen_until = max(
            0, pivot_number - driver.config.freezer_threshold
        )
        driver.freezer.history_tail = driver.freezer.frozen_until
        driver.txindexer.tail = pivot_number
        # Fast-forward the workload generator to the pivot so the tail
        # blocks continue the same logical chain the peer produced.
        next_number = driver.workload.skip_blocks(
            peer._blocks_run, start_number=1  # noqa: SLF001
        )
        assert next_number == pivot_number + 1
        for _ in range(tail_blocks):
            driver._import_next_block()  # noqa: SLF001

        return SnapSyncResult(
            pivot_number=pivot_number,
            accounts_downloaded=downloaded_accounts,
            slots_downloaded=downloaded_slots,
            codes_downloaded=len(codes),
            state_root_matches=matches,
            tail_blocks_processed=tail_blocks,
            records=db.collector.records,
            total_store_pairs=len(db.store.inner),
        )

    def _check_peer_faults(self, pivot_number: int) -> None:
        """Evaluate peer fault rules after one range-chunk download.

        Each committed chunk counts as one request to ``"snap-peer"``;
        a PEER_DROP rule firing here models the serving peer vanishing
        mid-download, leaving the committed ranges durable.
        """
        if self.fault_plan is None:
            return
        rule = self.fault_plan.on_peer_request("snap-peer", block=pivot_number)
        if rule is not None and rule.kind is FaultKind.PEER_DROP:
            raise PeerNetworkError(
                "snap-sync peer dropped the connection mid-download "
                f"(pivot {pivot_number})"
            )

    # ------------------------------------------------------------------
    # peer-side range serving (untraced reads of the peer's state)
    # ------------------------------------------------------------------

    def _download_accounts(self, peer: FullSyncDriver) -> list[tuple[bytes, Account]]:
        accounts = []
        trie = peer.state._account_trie  # noqa: SLF001
        for key_nibbles, blob in trie.items():
            account_hash = nibbles_to_bytes(key_nibbles)
            accounts.append((account_hash, Account.decode(blob)))
        accounts.sort(key=lambda pair: pair[0])  # ranges arrive in key order
        return accounts

    def _download_codes(self, peer: FullSyncDriver, accounts) -> list[bytes]:
        codes = []
        seen = set()
        for _, account in accounts:
            if account.is_contract and account.code_hash not in seen:
                seen.add(account.code_hash)
                blob = peer.db.peek(schema.code_key(account.code_hash))
                if blob is not None:
                    codes.append(blob)
        return codes

    def _download_storage(self, peer: FullSyncDriver, accounts):
        slots: dict[bytes, list[tuple[bytes, bytes]]] = {}
        for account_hash, account in accounts:
            if account.storage_root == EMPTY_ROOT:
                continue
            trie = peer.state._storage_trie(account_hash)  # noqa: SLF001
            entries = [
                (nibbles_to_bytes(key), value) for key, value in trie.items()
            ]
            entries.sort()
            slots[account_hash] = entries
        return slots
