"""Full-synchronization driver.

Replays a workload's blocks through the complete Geth data-management
stack — state tries, snapshot, caches, freezer, tx indexer, bloombits
indexer, skeleton bookkeeping — issuing KV operations with the same
discipline as Geth: on-demand reads during execution, one batched write
burst per block, and periodic background migrations.

Running the same workload under :meth:`DBConfig.cache_trace_config` and
:meth:`DBConfig.bare_trace_config` yields the CacheTrace / BareTrace
analog pair the paper's analyses compare.
"""

from repro.sync.beamsync import (
    BeamStateDB,
    BeamSyncConfig,
    BeamSyncDriver,
    BeamSyncResult,
    MissingStateCollector,
)
from repro.sync.driver import FullSyncDriver, SyncConfig, SyncResult, run_trace_pair
from repro.sync.recovery import RecoveryReport, regenerate_snapshot, resume
from repro.sync.snapsync import SnapSyncDriver, SnapSyncResult

__all__ = [
    "BeamStateDB",
    "BeamSyncConfig",
    "BeamSyncDriver",
    "BeamSyncResult",
    "FullSyncDriver",
    "MissingStateCollector",
    "SyncConfig",
    "SyncResult",
    "run_trace_pair",
    "SnapSyncDriver",
    "SnapSyncResult",
    "RecoveryReport",
    "resume",
    "regenerate_snapshot",
]
