"""Beam synchronization: execute now, fetch state on demand.

Full sync executes every block against complete local state; snap sync
bulk-downloads the state first.  Beam sync — trinity's
``CollectMissingAccount`` / ``CollectMissingBytecode`` /
``CollectMissingStorage`` protocol — starts executing blocks at a pivot
against an *empty* local store and treats every missing trie node or
bytecode blob as a pause point: fetch the blob from peers, verify it
against the hash its parent asserts, persist it, resume.

The mechanics rest on two properties of the path-addressed trie:

* a traversal only ever requests the root (anchored by the pivot state
  root) or a child some locally-present parent asserts by hash — so
  every fetched blob is verifiable, and peers can never poison state;
* descendant paths never change across mutations, so a locally absent
  subtree is untouched pivot content whose parent-stored hash remains
  authoritative — which is what lets a *sparse* :class:`PathTrie`
  commit to byte-identical roots (``sparse=True`` hash fallback).

The KV trace a beam run emits is therefore read-dominant and
miss-correlated — a read miss (value_size 0) immediately followed by
the healing write of the same key — a workload shape the paper never
measures; ``repro beamsync --compare-full`` quantifies the contrast.

Healing comes in two flavors:

* **on-miss** (the correctness backstop): the beam trie backends catch
  every ``get`` miss during execution and heal the exact path
  synchronously — a CollectMissing* pause;
* **prefetch** (the performance path): before executing a block, the
  driver walks the account/storage paths of every key the block plan
  touches in deduplicated *waves*, fetching each wave's missing nodes
  concurrently through the multi-peer scheduler — the realistic source
  of multi-peer parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.chain.account import EMPTY_CODE_HASH, Account
from repro.errors import BeamSyncError
from repro.faults.plan import FaultPlan
from repro.gethdb import schema
from repro.gethdb.database import DBConfig, GethDatabase
from repro.gethdb.state import (
    AccountTrieBackend,
    StateDB,
    StorageTrieBackend,
    TrieNodeStore,
    hash_address,
)
from repro.obs import get_registry
from repro.peers.messages import NodeRequest, RequestKind
from repro.peers.metrics import PeerNetMetrics
from repro.peers.scheduler import RequestScheduler, SchedulerConfig
from repro.peers.simulated import SimulatedPeer
from repro.sync.driver import FullSyncDriver, SyncConfig
from repro.trie.nibbles import Nibbles, bytes_to_nibbles
from repro.trie.nodes import BranchNode, ExtensionNode, LeafNode, decode_node
from repro.trie.trie import EMPTY_ROOT, PathTrie
from repro.workload.generator import BlockPlan, WorkloadConfig, WorkloadGenerator


@dataclass
class _Walk:
    """A key-guided descent through one trie, resumable across fetches.

    ``remaining`` is the unconsumed key suffix; ``expected`` the hash
    the node at ``path`` must verify against if it has to be fetched.
    A walk finishes with ``value`` set (key present) or None (the trie
    structure proves the key absent).
    """

    kind: RequestKind
    owner: bytes
    remaining: Nibbles
    path: Nibbles = ()
    expected: bytes = b""
    value: Optional[bytes] = None
    done: bool = False


class MissingStateCollector:
    """Fetches and persists missing state, CollectMissing*-style.

    Owns the healing walks: given a miss (an absolute trie path, or a
    key to prefetch), walk from the root using untraced local peeks,
    fetch each locally-absent node from the scheduler with the hash its
    parent asserts, and persist it with a traced write into the open
    block batch.
    """

    def __init__(
        self,
        db: GethDatabase,
        scheduler: RequestScheduler,
        anchor_root: bytes,
        metrics: Optional[PeerNetMetrics] = None,
    ) -> None:
        self.db = db
        self.scheduler = scheduler
        #: pivot state root: the trust anchor for the account-trie root
        self.anchor_root = anchor_root
        self.metrics = metrics
        #: account_hash -> storage root, recorded as accounts are read
        self.storage_roots: dict[bytes, bytes] = {}
        self.healed_account_nodes = 0
        self.healed_storage_nodes = 0
        self.healed_codes = 0
        self.pauses = 0

    # -- local access ---------------------------------------------------------

    @staticmethod
    def _node_key(kind: RequestKind, owner: bytes, path: Nibbles) -> bytes:
        if kind is RequestKind.ACCOUNT_NODE:
            return schema.account_trie_node_key(path)
        return schema.storage_trie_node_key(owner, path)

    def _local(self, kind: RequestKind, owner: bytes, path: Nibbles) -> Optional[bytes]:
        return self.db.peek(self._node_key(kind, owner, path))

    def _store(self, request: NodeRequest, blob: bytes) -> None:
        if request.kind is RequestKind.BYTECODE:
            self.db.write(schema.code_key(request.code_hash), blob)
            self.healed_codes += 1
            if self.metrics is not None:
                self.metrics.count_healed("bytecode")
            return
        self.db.write(self._node_key(request.kind, request.owner, request.path), blob)
        if request.kind is RequestKind.ACCOUNT_NODE:
            self.healed_account_nodes += 1
        else:
            self.healed_storage_nodes += 1
        if self.metrics is not None:
            self.metrics.count_healed(
                "account" if request.kind is RequestKind.ACCOUNT_NODE else "storage"
            )

    def note_pause(self, kind: str) -> None:
        self.pauses += 1
        if self.metrics is not None:
            self.metrics.count_pause(kind)

    # -- on-miss healing (exact path) -----------------------------------------

    def heal_path(self, kind: RequestKind, owner: bytes, target: Nibbles) -> Optional[bytes]:
        """Heal the node at absolute ``target``; return its blob.

        Walks root-to-target fetching every locally absent node.  The
        walk navigates by the target path itself: at a branch the next
        target nibble picks the child, an extension must lie along the
        target.  Returns None only when the trie is provably empty or
        the structure proves no node can exist at ``target``.
        """
        path: Nibbles = ()
        expected = self._anchor_for(kind, owner)
        while True:
            blob = self._local(kind, owner, path)
            if blob is None:
                if not expected or expected == EMPTY_ROOT:
                    return None
                request = NodeRequest(
                    kind=kind, expected_hash=expected, path=path, owner=owner
                )
                blob = self.scheduler.fetch(request)
                self._store(request, blob)
            if path == target:
                return blob
            node = decode_node(blob)
            rest = target[len(path):]
            if isinstance(node, LeafNode):
                return None
            if isinstance(node, ExtensionNode):
                n = len(node.suffix)
                if len(rest) < n or rest[:n] != node.suffix:
                    return None
                path = path + node.suffix
                expected = node.child_hash
                continue
            nibble = rest[0]
            if not node.children[nibble]:
                return None
            if not node.child_hashes[nibble]:
                raise BeamSyncError(
                    f"branch at {path} asserts child {nibble:x} without a hash"
                )
            path = path + (nibble,)
            expected = node.child_hashes[nibble]

    def _anchor_for(self, kind: RequestKind, owner: bytes) -> bytes:
        if kind is RequestKind.ACCOUNT_NODE:
            return self.anchor_root
        root = self.storage_roots.get(owner)
        if root is None:
            # The account record hasn't passed through get_account yet
            # (e.g. a storage path healed before its owner): recover the
            # storage root by key-walking the account trie.
            blob = self.walk_key(RequestKind.ACCOUNT_NODE, b"", bytes_to_nibbles(owner))
            if blob is None:
                return b""
            root = Account.decode(blob).storage_root
            self.storage_roots[owner] = root
        return root

    def fetch_code(self, code_hash: bytes) -> bytes:
        """Fetch and persist one bytecode blob by hash."""
        request = NodeRequest(
            kind=RequestKind.BYTECODE, expected_hash=code_hash, code_hash=code_hash
        )
        blob = self.scheduler.fetch(request)
        self._store(request, blob)
        return blob

    # -- key walks (prefetch and anchor recovery) -----------------------------

    def _step(self, walk: _Walk) -> Optional[NodeRequest]:
        """Advance one walk as far as local state allows.

        Returns the request for the first missing node, or None when
        the walk completed (``walk.done``).
        """
        while not walk.done:
            blob = self._local(walk.kind, walk.owner, walk.path)
            if blob is None:
                if not walk.expected or walk.expected == EMPTY_ROOT:
                    walk.done = True
                    return None
                return NodeRequest(
                    kind=walk.kind,
                    expected_hash=walk.expected,
                    path=walk.path,
                    owner=walk.owner,
                )
            node = decode_node(blob)
            if isinstance(node, LeafNode):
                walk.value = node.value if node.suffix == walk.remaining else None
                walk.done = True
            elif isinstance(node, ExtensionNode):
                n = len(node.suffix)
                if walk.remaining[:n] != node.suffix:
                    walk.done = True
                    continue
                walk.path = walk.path + node.suffix
                walk.remaining = walk.remaining[n:]
                walk.expected = node.child_hash
            else:
                assert isinstance(node, BranchNode)
                if not walk.remaining:
                    walk.value = node.value
                    walk.done = True
                    continue
                nibble = walk.remaining[0]
                if not node.children[nibble]:
                    walk.done = True
                    continue
                walk.path = walk.path + (nibble,)
                walk.remaining = walk.remaining[1:]
                walk.expected = node.child_hashes[nibble]
        return None

    def run_walks(self, walks: list[_Walk]) -> None:
        """Drive many walks to completion in concurrent fetch waves.

        Each round advances every walk to its first missing node,
        fetches the deduplicated wave through ``fetch_many`` (overlapped
        across peers in virtual time), persists the blobs, and repeats
        until no walk needs anything.
        """
        while True:
            wave: dict[NodeRequest, bool] = {}
            for walk in walks:
                request = self._step(walk)
                if request is not None:
                    wave[request] = True
            if not wave:
                return
            blobs = self.scheduler.fetch_many(list(wave))
            for request, blob in blobs.items():
                self._store(request, blob)

    def walk_key(
        self, kind: RequestKind, owner: bytes, key: Nibbles
    ) -> Optional[bytes]:
        """Serial key walk: heal the path to ``key``, return its value."""
        walk = _Walk(kind=kind, owner=owner, remaining=key, expected=self._anchor_for(kind, owner))
        self.run_walks([walk])
        return walk.value

    # -- block prefetch -------------------------------------------------------

    def prefetch_block(self, plan: BlockPlan) -> None:
        """Heal the paths a block plan will touch, in two wave groups.

        Wave group 1 walks the account trie for every touched address;
        the decoded accounts then anchor wave group 2: storage walks for
        every touched slot plus bytecode fetches for called contracts.
        On-miss healing during execution remains the backstop for
        anything the plan doesn't enumerate (e.g. sibling nodes resolved
        by branch collapses during deletes).
        """
        addresses: dict[bytes, bool] = {}
        slots: dict[tuple[bytes, bytes], bool] = {}
        called: dict[bytes, bool] = {}
        for tx_plan in plan.tx_plans:
            addresses[tx_plan.sender] = True
            if tx_plan.recipient is not None:
                addresses[tx_plan.recipient] = True
                if tx_plan.kind == "call":
                    called[tx_plan.recipient] = True
            if tx_plan.destruct_target is not None:
                addresses[tx_plan.destruct_target] = True
            for address, slot_hash in tx_plan.slot_reads:
                slots[(address, slot_hash)] = True
                addresses[address] = True
            for address, slot_hash, _ in tx_plan.slot_writes:
                slots[(address, slot_hash)] = True
                addresses[address] = True

        account_walks = {
            address: _Walk(
                kind=RequestKind.ACCOUNT_NODE,
                owner=b"",
                remaining=bytes_to_nibbles(hash_address(address)),
                expected=self.anchor_root,
            )
            for address in addresses
        }
        self.run_walks(list(account_walks.values()))

        accounts: dict[bytes, Account] = {}
        for address, walk in account_walks.items():
            if walk.value is not None:
                account = Account.decode(walk.value)
                accounts[address] = account
                self.storage_roots[hash_address(address)] = account.storage_root

        storage_walks = []
        for address, slot_hash in slots:
            account = accounts.get(address)
            if account is None or account.storage_root == EMPTY_ROOT:
                continue
            storage_walks.append(
                _Walk(
                    kind=RequestKind.STORAGE_NODE,
                    owner=hash_address(address),
                    remaining=bytes_to_nibbles(slot_hash),
                    expected=account.storage_root,
                )
            )
        code_requests = []
        for address in called:
            account = accounts.get(address)
            if account is None or account.code_hash == EMPTY_CODE_HASH:
                continue
            if self.db.peek(schema.code_key(account.code_hash)) is None:
                code_requests.append(
                    NodeRequest(
                        kind=RequestKind.BYTECODE,
                        expected_hash=account.code_hash,
                        code_hash=account.code_hash,
                    )
                )
        if storage_walks:
            self.run_walks(storage_walks)
        if code_requests:
            for request, blob in self.scheduler.fetch_many(code_requests).items():
                self._store(request, blob)


class _BeamAccountBackend(AccountTrieBackend):
    """Account-trie backend that heals on every get miss."""

    def __init__(self, nodes: TrieNodeStore, collector: MissingStateCollector) -> None:
        super().__init__(nodes)
        self._collector = collector

    def get(self, path: Nibbles) -> Optional[bytes]:
        blob = super().get(path)  # traced read; a miss is a trace record
        if blob is None:
            # A pause is an execution stall on the network: heals served
            # entirely from locally staged (prefetched) nodes don't count.
            before = self._collector.scheduler.fetched
            blob = self._collector.heal_path(RequestKind.ACCOUNT_NODE, b"", path)
            if self._collector.scheduler.fetched > before:
                self._collector.note_pause("account")
        return blob


class _BeamStorageBackend(StorageTrieBackend):
    """Storage-trie backend that heals on every get miss."""

    def __init__(
        self, nodes: TrieNodeStore, account_hash: bytes, collector: MissingStateCollector
    ) -> None:
        super().__init__(nodes, account_hash)
        self._collector = collector

    def get(self, path: Nibbles) -> Optional[bytes]:
        blob = super().get(path)
        if blob is None:
            before = self._collector.scheduler.fetched
            blob = self._collector.heal_path(
                RequestKind.STORAGE_NODE, self._account_hash, path
            )
            if self._collector.scheduler.fetched > before:
                self._collector.note_pause("storage")
        return blob


class BeamStateDB(StateDB):
    """StateDB over sparse, self-healing tries.

    Requires the bare (snapshotless, unbuffered) configuration: the
    flat snapshot can't distinguish "absent" from "not yet downloaded",
    and the trie dirty buffer would hide heals from the batch.
    """

    def __init__(self, db: GethDatabase, collector: MissingStateCollector) -> None:
        super().__init__(db, None)
        self._collector = collector
        self._account_trie = PathTrie(
            _BeamAccountBackend(self._node_store, collector), sparse=True
        )

    def _storage_trie(self, account_hash: bytes) -> PathTrie:
        trie = self._storage_tries.get(account_hash)
        if trie is None:
            trie = PathTrie(
                _BeamStorageBackend(self._node_store, account_hash, self._collector),
                sparse=True,
            )
            self._storage_tries[account_hash] = trie
        return trie

    def get_account(self, address: bytes):
        account = super().get_account(address)
        if account is not None:
            # Remember the storage root: it anchors this account's
            # storage-trie root if that root has to be fetched later.
            self._collector.storage_roots[hash_address(address)] = account.storage_root
        return account

    def get_code(self, code_hash: bytes) -> bytes:
        code = super().get_code(code_hash)
        if not code and code_hash != EMPTY_CODE_HASH:
            # The uncached read doesn't see the open batch; a blob the
            # prefetcher staged this block is already local.
            staged = self._db.peek(schema.code_key(code_hash))
            if staged is not None:
                return staged
            self._collector.note_pause("bytecode")
            code = self._collector.fetch_code(code_hash)
        return code


@dataclass
class BeamSyncConfig:
    """Beam-sync tunables on top of the underlying sync config."""

    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    #: walk the block plan's paths in concurrent waves before executing
    prefetch: bool = True


@dataclass
class BeamSyncResult:
    """Outcome of one beam sync run."""

    pivot_number: int
    blocks_processed: int
    state_root: bytes
    records: list
    nodes_fetched: int
    healed_account_nodes: int
    healed_storage_nodes: int
    healed_codes: int
    pauses: int
    retries: int
    demotions: int
    #: virtual seconds the peer network spent serving this run
    simulated_seconds: float
    total_store_pairs: int


class BeamSyncDriver:
    """Beam-syncs a fresh node from a pivot, fetching state on demand."""

    def __init__(
        self,
        sync_config: Optional[SyncConfig] = None,
        workload_config: Optional[WorkloadConfig] = None,
        beam_config: Optional[BeamSyncConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        name: str = "BeamSync",
    ) -> None:
        self.workload_config = (
            workload_config if workload_config is not None else WorkloadConfig()
        )
        if sync_config is None:
            sync_config = SyncConfig(db=DBConfig.bare_trace_config())
        if sync_config.db.caching_enabled or sync_config.db.snapshot_enabled:
            raise BeamSyncError(
                "beam sync requires the bare configuration "
                "(caching_enabled=False, snapshot_enabled=False)"
            )
        self.beam_config = beam_config if beam_config is not None else BeamSyncConfig()
        self.fault_plan = fault_plan
        self.driver = FullSyncDriver(
            sync_config, WorkloadGenerator(self.workload_config), name=name
        )
        self.scheduler: Optional[RequestScheduler] = None
        self.collector: Optional[MissingStateCollector] = None

    # ------------------------------------------------------------------

    def sync_from(self, peers: list[SimulatedPeer], beam_blocks: int) -> BeamSyncResult:
        """Beam-sync ``beam_blocks`` past the peers' shared pivot.

        Every peer must serve the same reference node (they model one
        network's state).  The pivot is the reference head; the local
        node executes blocks ``pivot+1 .. pivot+beam_blocks``, healing
        state on demand, and its final state root must equal a full
        sync's over the same chain.
        """
        if not peers:
            raise BeamSyncError("beam sync needs at least one peer")
        if self.fault_plan is not None:
            self.fault_plan.validate()
        peer_node = peers[0].node
        for peer in peers:
            if peer.node is not peer_node:
                raise BeamSyncError("all peers must serve the same reference node")
        peer_node.db.set_tracing(False)

        driver = self.driver
        db = driver.db
        pivot_number = peer_node._head_number  # noqa: SLF001 — peer introspection
        pivot_hash = peer_node._head_hash  # noqa: SLF001
        pivot_root = peer_node.state._account_trie.root_hash()  # noqa: SLF001

        metrics = PeerNetMetrics(get_registry())
        scheduler = RequestScheduler(
            peers,
            config=self.beam_config.scheduler,
            fault_plan=self.fault_plan,
            metrics=metrics,
        )
        collector = MissingStateCollector(db, scheduler, pivot_root, metrics=metrics)
        driver.state = BeamStateDB(db, collector)
        self.scheduler = scheduler
        self.collector = collector

        # -- pivot bookkeeping (the header/state anchors a real beam
        # node receives before executing; same shape as snap phase 1) --
        db.set_tracing(True)
        db.begin_block(pivot_number)
        db.write(schema.DATABASE_VERSION_KEY, b"\x08")
        db.write(schema.skeleton_header_key(pivot_number), pivot_hash * 19)
        db.write(
            schema.SKELETON_SYNC_STATUS_KEY,
            pivot_number.to_bytes(8, "big") + b"\x00" * 138,
        )
        db.write(schema.LAST_HEADER_KEY, pivot_hash)
        db.write(schema.LAST_FAST_KEY, pivot_hash)
        db.write(schema.LAST_BLOCK_KEY, pivot_hash)
        db.write(schema.state_id_key(pivot_root), (1).to_bytes(8, "big"))
        db.write(schema.LAST_STATE_ID_KEY, (1).to_bytes(8, "big"))
        db.commit_batch()

        # -- attach the driver at the pivot (state stays remote) --------
        driver._initialized = True  # noqa: SLF001 — state is healed on demand
        driver._head_number = pivot_number  # noqa: SLF001
        driver._head_hash = pivot_hash  # noqa: SLF001
        driver._recent_hashes[pivot_number] = pivot_hash  # noqa: SLF001
        driver._recent_roots.append(pivot_root)  # noqa: SLF001
        # Only blocks imported locally (pivot+1 onward) may ever freeze:
        # pre-pivot history lives on the peers, not here.
        driver.freezer.frozen_until = pivot_number
        driver.freezer.history_tail = pivot_number
        driver.txindexer.tail = pivot_number
        next_number = driver.workload.skip_blocks(
            peer_node._blocks_run, start_number=1  # noqa: SLF001
        )
        if next_number != pivot_number + 1:
            raise BeamSyncError(
                f"workload fast-forward landed at {next_number}, "
                f"pivot is {pivot_number}"
            )

        # -- beam import loop -------------------------------------------
        for _ in range(beam_blocks):
            number = driver._head_number + 1  # noqa: SLF001
            plan = driver.workload.make_block_plan(number)
            scheduler.block = number
            db.begin_block(number)
            if self.beam_config.prefetch:
                wait_start = scheduler.now
                collector.prefetch_block(plan)
                metrics.fetch_wait.observe(scheduler.now - wait_start)
            driver.import_block(plan)
            metrics.blocks.inc()
        driver.shutdown()

        state_root = driver.state._account_trie.root_hash()  # noqa: SLF001
        return BeamSyncResult(
            pivot_number=pivot_number,
            blocks_processed=beam_blocks,
            state_root=state_root,
            records=db.collector.records,
            nodes_fetched=scheduler.fetched,
            healed_account_nodes=collector.healed_account_nodes,
            healed_storage_nodes=collector.healed_storage_nodes,
            healed_codes=collector.healed_codes,
            pauses=collector.pauses,
            retries=scheduler.retries,
            demotions=scheduler.scoreboard.demotions_total,
            simulated_seconds=scheduler.now,
            total_store_pairs=len(db.store.inner),
        )
