"""Restart and crash recovery.

The 15 singleton KV classes exist almost entirely for this path: head
pointers locate the chain position, the journals carry the in-memory
layers across restarts, and the unclean-shutdown marker decides whether
the snapshot can be trusted.

Two entry points:

* :func:`resume` — attach a new driver to an existing database and
  restore its in-memory state: read the head pointers, load the trie
  and snapshot journals, rewind the freezer/indexer cursors, and
  fast-forward the workload generator to the head.  The reads issued
  here are the startup burst visible in the traces (LastBlock reads,
  the unclean-shutdown probe, journal reads).
* :func:`regenerate_snapshot` — the crash path: when the journals are
  missing or the unclean marker is dirty, Geth cannot trust the flat
  snapshot and regenerates it by walking the account trie, guarded by
  the SnapshotRecovery / SnapshotGenerator markers.
"""

from __future__ import annotations

from dataclasses import dataclass

import hashlib

from repro import rlp
from repro.chain.account import Account
from repro.chain.bloom import BLOOM_BYTES, Bloom
from repro.errors import CrashPoint, GethDBError
from repro.gethdb import schema
from repro.gethdb.database import GethDatabase
from repro.sync.driver import FullSyncDriver, SyncConfig
from repro.trie.nibbles import nibbles_to_bytes
from repro.trie.trie import EMPTY_ROOT
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


@dataclass
class RecoveryReport:
    """What the restart had to do."""

    head_number: int
    clean_shutdown: bool
    trie_journal_entries: int
    snapshot_journal_layers: int
    snapshot_regenerated: bool
    regenerated_accounts: int
    regenerated_slots: int
    #: blocks rewound and re-executed because their trie changes were
    #: only in the (lost) dirty buffer when the process died
    blocks_reexecuted: int = 0


def resume(
    db: GethDatabase,
    sync_config: SyncConfig,
    workload_config: WorkloadConfig,
    blocks_processed: int,
    name: str = "resumed",
) -> tuple[FullSyncDriver, RecoveryReport]:
    """Attach a fresh driver to ``db`` and restore its runtime state.

    ``blocks_processed``: how many blocks the previous incarnation
    imported (warmup included) — needed to fast-forward the workload
    generator so the chain continues deterministically.
    """
    workload = WorkloadGenerator(workload_config)
    # A process crash loses the open write batch and the in-memory
    # caches with the process: staged ops never became durable, and the
    # write-through caches may hold exactly those lost values.
    db.discard_batch()
    db.reset_caches()
    driver = FullSyncDriver(sync_config, workload, name=name, database=db)
    db.set_tracing(True)

    # -- locate the head -------------------------------------------------
    head_hash = db.read_uncached(schema.LAST_BLOCK_KEY)
    if head_hash is None:
        raise GethDBError("no LastBlock record: database was never initialized")
    number_blob = db.read(schema.header_number_key(head_hash))
    if number_blob is None:
        raise GethDBError("head block hash has no HeaderNumber mapping")
    head_number = int.from_bytes(number_blob, "big")
    if head_number != blocks_processed:
        raise GethDBError(
            f"database head {head_number} does not match the declared "
            f"position {blocks_processed}; wrong blocks_processed?"
        )
    db.begin_block(head_number)
    db.read_uncached(schema.LAST_HEADER_KEY)
    db.read_uncached(schema.DATABASE_VERSION_KEY)

    # -- shutdown cleanliness ---------------------------------------------
    marker = db.read_uncached(schema.UNCLEAN_SHUTDOWN_KEY)
    clean = marker is not None and marker[:1] == b"\x00"
    db.write_now(schema.UNCLEAN_SHUTDOWN_KEY, b"\x01" + b"\x00" * 32)

    # -- crash rewind --------------------------------------------------------
    # A crash loses the un-flushed trie buffer: the persisted state trie
    # is only current as of the last flush boundary.  Rewind the head
    # there and re-execute the tail blocks (their plans regenerate
    # deterministically), exactly as Geth rewinds to its persisted root.
    resume_from = head_number
    buffered = db.config.caching_enabled
    if not clean and buffered:
        interval = sync_config.trie_flush_interval
        resume_from = (head_number // interval) * interval
    workload.skip_blocks(resume_from)
    resume_hash = (
        head_hash
        if resume_from == head_number
        else db.peek(schema.canonical_hash_key(resume_from))
    )
    if resume_hash is None:
        raise GethDBError(f"no canonical hash for rewind block {resume_from}")

    # -- trie journal -------------------------------------------------------
    trie_entries = 0
    trie_journal = db.read_uncached(schema.TRIE_JOURNAL_KEY)
    if clean and trie_journal is not None:
        trie_entries = driver.state.node_store.load_journal(trie_journal)

    # -- snapshot state -----------------------------------------------------
    snapshot_layers = 0
    regenerated = False
    regenerated_accounts = regenerated_slots = 0
    if db.config.snapshot_enabled:
        snapshot_journal = db.read_uncached(schema.SNAPSHOT_JOURNAL_KEY)
        # A generation marker that never reached "done" means the last
        # incarnation died *inside* regenerate_snapshot: the half-written
        # flat snapshot must not be trusted even after an otherwise clean
        # restart — restart the wipe+walk (it is idempotent).
        generator = db.read_uncached(schema.SNAPSHOT_GENERATOR_KEY)
        generation_interrupted = generator is not None and generator != b"done"
        if clean and snapshot_journal is not None and not generation_interrupted:
            snapshot_layers = driver.snapshots.load_journal(snapshot_journal)
            db.read_uncached(schema.SNAPSHOT_ROOT_KEY)
        else:
            regenerated_accounts, regenerated_slots = regenerate_snapshot(driver)
            regenerated = True
        driver._snapshot_root_present = (  # noqa: SLF001
            db.store.inner.has(schema.SNAPSHOT_ROOT_KEY)
        )

    # -- runtime cursors -----------------------------------------------------
    driver._initialized = True  # noqa: SLF001 — this is the restart path
    driver._head_number = resume_from  # noqa: SLF001
    driver._head_hash = resume_hash  # noqa: SLF001
    driver._recent_hashes[resume_from] = resume_hash  # noqa: SLF001
    driver._blocks_run = blocks_processed  # noqa: SLF001
    _recover_recent_hashes(driver, resume_from)
    _recover_state_ids(driver, resume_from)
    _recover_freezer_cursor(driver)
    _recover_txindex_cursor(driver, resume_from)
    _recover_bloombits(driver, resume_from)

    # -- re-execute the rewound tail ------------------------------------------
    reexecuted = 0
    while driver._head_number < head_number:  # noqa: SLF001
        driver._import_next_block()  # noqa: SLF001
        reexecuted += 1

    # -- catch up background migration ----------------------------------------
    # The freezer's delete burst for its final pre-crash migration rode
    # in the next block's batch; if the crash lost it, the recovered
    # cursor sits one migration behind the head's threshold.  Re-freeze
    # to the threshold (a no-op when already caught up) so a recovered
    # node matches an uninterrupted one without waiting for new imports.
    while driver.freezer.maybe_freeze(driver._head_number):  # noqa: SLF001
        pass
    db.commit_batch()

    report = RecoveryReport(
        head_number=head_number,
        clean_shutdown=clean,
        trie_journal_entries=trie_entries,
        snapshot_journal_layers=snapshot_layers,
        snapshot_regenerated=regenerated,
        regenerated_accounts=regenerated_accounts,
        regenerated_slots=regenerated_slots,
        blocks_reexecuted=reexecuted,
    )
    return driver, report


def _recover_recent_hashes(driver: FullSyncDriver, head_number: int) -> None:
    """Rebuild the number->hash map for recent canonical blocks."""
    db = driver.db
    for number in range(max(0, head_number - 2 * driver.config.freezer_threshold), head_number):
        block_hash = db.peek(schema.canonical_hash_key(number))
        if block_hash is not None:
            driver._recent_hashes[number] = block_hash  # noqa: SLF001


def _header_fields(driver: FullSyncDriver, number: int):
    """Decoded RLP field list of the canonical header, or None."""
    inner = driver.db.store.inner
    block_hash = inner.get_or_none(schema.canonical_hash_key(number))
    if block_hash is None:
        return None
    header_blob = inner.get_or_none(schema.header_key(number, block_hash))
    if header_blob is None:
        return None
    try:
        fields = rlp.decode(header_blob)
    except Exception:  # pragma: no cover — corrupt header
        return None
    return fields if isinstance(fields, list) and len(fields) >= 7 else None


def _recover_state_ids(driver: FullSyncDriver, head_number: int) -> None:
    """Rebuild the recent-roots window from persisted StateID records.

    The record *values* are list lengths (constant at steady state), so
    ordering comes from mapping each recorded root back to its block via
    the canonical headers (``state_root`` is header RLP field 3).  A
    torn commit may have persisted the record of a block past the head —
    scanning up to ``head + 1`` folds it in; the replay's dedup path in
    ``_advance_state_id`` then drains the surplus.  Records whose root
    no longer maps to any nearby header are stale and deleted.
    """
    from repro.core.classes import STATE_ID_PREFIX
    from repro.kvstore.api import prefix_upper_bound

    inner = driver.db.store.inner
    roots = set()
    for key, _ in inner.scan(STATE_ID_PREFIX, prefix_upper_bound(STATE_ID_PREFIX)):
        if len(key) == 33:
            roots.add(key[1:])
    ordered: list[bytes] = []
    window = 2 * driver.config.stateid_retention + 4
    for number in range(max(0, head_number - window), head_number + 2):
        if not roots:
            break
        fields = _header_fields(driver, number)
        if fields is None:
            continue
        root = fields[3]
        if root in roots:
            ordered.append(root)
            roots.discard(root)
    for stale in roots:
        driver.db.delete_now(schema.state_id_key(stale))
    driver._recent_roots = ordered  # noqa: SLF001


def _recover_freezer_cursor(driver: FullSyncDriver) -> None:
    """The frozen boundary is the lowest header still in the KV store.

    A crash between a freeze migration and its batch commit (or a torn
    commit inside the migration's deletes) can leave partial block rows
    below that boundary: bodies or receipts whose header keys are gone.
    Re-freezing cannot see them (the header scan finds nothing), so they
    would leak forever — sweep them here.
    """
    store = driver.db.store.inner
    for key, _ in store.scan(b"h", b"i"):
        if len(key) >= 9:
            driver.freezer.frozen_until = int.from_bytes(key[1:9], "big")
            break
    frozen_until = driver.freezer.frozen_until
    if frozen_until <= 0:
        return
    from repro.core.classes import BODY_PREFIX, RECEIPTS_PREFIX
    from repro.kvstore.api import prefix_upper_bound

    doomed = []
    for prefix in (BODY_PREFIX, RECEIPTS_PREFIX):
        for key, _ in store.scan(prefix, prefix_upper_bound(prefix)):
            if len(key) >= 9 and int.from_bytes(key[1:9], "big") < frozen_until:
                doomed.append(key)
    for key in doomed:
        driver.db.delete_now(key)


def _recover_txindex_cursor(driver: FullSyncDriver, head_number: int) -> None:
    """Restore the unindexing tail and the per-block tx-hash map.

    The indexer's ``_block_txs`` map is in-memory only; without it, the
    lookups of blocks imported before the crash would never be deleted
    when the tail passes them.  Rebuild it from the persisted canonical
    bodies (a transaction's hash is the hash of its RLP payload).  Also
    sweep lookups already behind the recovered tail — a torn commit can
    apply only part of an unindexing delete burst.
    """
    db = driver.db
    tail_blob = db.read_uncached(schema.TRANSACTION_INDEX_TAIL_KEY)
    tail = int.from_bytes(tail_blob, "big") if tail_blob else 0
    tail = max(tail, head_number - driver.config.txlookup_limit + 1, 0)
    driver.txindexer.tail = tail

    inner = db.store.inner
    for number in range(tail, head_number + 1):
        block_hash = inner.get_or_none(schema.canonical_hash_key(number))
        if block_hash is None:
            continue
        body_blob = inner.get_or_none(schema.body_key(number, block_hash))
        if body_blob is None:
            continue
        try:
            tx_blobs = rlp.decode(body_blob)[0]
        except Exception:  # pragma: no cover — corrupt body
            continue
        driver.txindexer._block_txs[number] = [  # noqa: SLF001
            hashlib.sha3_256(tx_blob).digest() for tx_blob in tx_blobs
        ]

    if tail > 0:
        from repro.core.classes import TX_LOOKUP_PREFIX
        from repro.kvstore.api import prefix_upper_bound

        doomed = []
        for key, value in inner.scan(
            TX_LOOKUP_PREFIX, prefix_upper_bound(TX_LOOKUP_PREFIX)
        ):
            number = int.from_bytes(value, "big") if value != b"\x00" else 0
            if number < tail:
                doomed.append(key)
        for key in doomed:
            driver.db.delete_now(key)


def _recover_bloombits(driver: FullSyncDriver, head_number: int) -> None:
    """Restore the section indexer's progress and pending blooms.

    Without this a restarted indexer would restart at section 0 and
    re-emit section keys under wrong section numbers.  Progress comes
    from the persisted BloomBitsIndex count record; the pending blooms
    of the open section are read back from the canonical headers
    (``logsBloom`` is header RLP field 6).
    """
    indexer = driver.bloombits
    count_blob = driver.db.store.inner.get_or_none(
        schema.bloom_bits_index_key(b"count")
    )
    indexer.sections_done = int.from_bytes(count_blob, "big") if count_blob else 0
    indexer._pending_blooms.clear()  # noqa: SLF001
    section_start = indexer.sections_done * indexer.section_size
    for number in range(section_start + 1, head_number + 1):
        fields = _header_fields(driver, number)
        if fields is not None and len(fields[6]) == BLOOM_BYTES:
            bloom = Bloom(bytes(fields[6]))
        else:
            bloom = Bloom()
        block_hash = driver._recent_hashes.get(number)  # noqa: SLF001
        if block_hash is not None:
            indexer._pending_head = block_hash  # noqa: SLF001
        indexer._pending_blooms.append(bloom)  # noqa: SLF001
        if len(indexer._pending_blooms) >= indexer.section_size:  # noqa: SLF001
            # The section had completed but its commit was lost/torn:
            # re-emit the section rows (byte-identical rewrite).
            indexer._process_section()  # noqa: SLF001


def regenerate_snapshot(driver: FullSyncDriver) -> tuple[int, int]:
    """Rebuild the flat snapshot by walking the state trie (crash path).

    Writes the SnapshotRecovery marker, flips SnapshotGenerator to
    in-progress, walks every account (and contract storage) out of the
    tries into flat entries, then marks generation done.  Returns
    ``(accounts, slots)`` written.
    """
    db = driver.db
    state = driver.state
    db.write_now(schema.SNAPSHOT_RECOVERY_KEY, (1).to_bytes(8, "big"))
    driver.snapshots.write_generator_marker(done=False)
    db.delete_now(schema.SNAPSHOT_ROOT_KEY)
    # A journal from an older clean shutdown describes pre-crash layers;
    # once regeneration starts it must never be loaded again.
    db.delete_now(schema.SNAPSHOT_JOURNAL_KEY)

    # Wipe the stale flat snapshot first.  It may be *ahead* of the
    # rewound trie (snapshot layers flush more often than the trie
    # buffer), so keeping any of it would leak post-rewind state into
    # the replay — e.g. a transfer applied twice.  Geth performs the
    # same iterative wipe before regeneration.
    from repro.core.classes import SNAPSHOT_ACCOUNT_PREFIX, SNAPSHOT_STORAGE_PREFIX
    from repro.kvstore.api import prefix_upper_bound

    wiped = 0
    for prefix in (SNAPSHOT_ACCOUNT_PREFIX, SNAPSHOT_STORAGE_PREFIX):
        doomed = [
            key
            for key, _ in db.store.inner.scan(prefix, prefix_upper_bound(prefix))
        ]
        for key in doomed:
            db.delete(key)
            wiped += 1
            if wiped % 1024 == 0:
                db.commit_batch()
                db.crash_point(CrashPoint.SNAPSHOT_REGEN_WIPE)
    db.commit_batch()
    db.crash_point(CrashPoint.SNAPSHOT_REGEN_WIPE)

    accounts = 0
    slots = 0
    for key_nibbles, blob in state._account_trie.items():  # noqa: SLF001
        account_hash = nibbles_to_bytes(key_nibbles)
        account = Account.decode(blob)
        db.write(schema.snapshot_account_key(account_hash), account.encode_slim())
        accounts += 1
        if account.storage_root != EMPTY_ROOT:
            storage_trie = state._storage_trie(account_hash)  # noqa: SLF001
            for slot_nibbles, value in storage_trie.items():
                slot_hash = nibbles_to_bytes(slot_nibbles)
                db.write(schema.snapshot_storage_key(account_hash, slot_hash), value)
                slots += 1
        if accounts % 512 == 0:
            db.commit_batch()
        if accounts % 128 == 0:
            db.crash_point(CrashPoint.SNAPSHOT_REGEN_WALK)
    db.commit_batch()

    db.crash_point(CrashPoint.SNAPSHOT_REGEN_FINALIZE)
    root = state._account_trie.root_hash()  # noqa: SLF001
    db.write_now(schema.SNAPSHOT_ROOT_KEY, root)
    driver.snapshots.write_generator_marker(done=True)
    return accounts, slots
