"""Multi-tenant asyncio trace service (``repro serve``).

Many concurrent clients submit analyze/replay/crashtest jobs against a
shared read-only trace corpus over a newline-delimited-JSON TCP
protocol (``serve-v1``).  See :mod:`repro.serve.protocol` for the wire
format, :mod:`repro.serve.server` for the daemon, and
:mod:`repro.serve.client` for the reference client.
"""

from repro.serve.client import JobHandle, ServeClient, ServeClientError
from repro.serve.protocol import PROTOCOL_VERSION, ProtocolError
from repro.serve.quota import TenantQuota
from repro.serve.server import ServeConfig, TraceServer, make_server

__all__ = [
    "PROTOCOL_VERSION",
    "JobHandle",
    "ProtocolError",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "TenantQuota",
    "TraceServer",
    "make_server",
]
