"""Aging priority queue with per-tenant concurrency caps.

The service schedules jobs by *effective* priority with linear aging:
a job's urgency at time ``t`` is ``priority - (t - enqueue) / aging``,
so a low-priority job submitted long ago eventually outranks any fresh
high-priority flood — starvation-freedom by construction.  Comparing
two jobs under that rule is time-independent::

    p1 - (t - e1)/a  <  p2 - (t - e2)/a
        <=>  p1*a + e1  <  p2*a + e2

so each entry gets a *static* heap key ``priority * aging_seconds +
enqueue_time`` computed once at push — an exact linear-aging order with
a plain ``heapq``, no re-sorting as time passes.  ``aging_seconds`` is
how many seconds of waiting cancel out one priority level: large values
approximate strict priority, small values approximate FIFO.

Per-tenant fairness: the quota's ``max_running`` caps how many of one
tenant's jobs may execute at once.  When the best-ranked job belongs to
a saturated tenant it is *deferred* (parked per tenant, original key
preserved) rather than popped, and re-enters the heap as soon as one of
that tenant's jobs finishes — so a heavy tenant can never occupy every
worker slot, but also never loses its place in line.

All state mutation happens on the event loop thread; ``asyncio``
condition variables coordinate the worker tasks.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from typing import Callable, Dict, List, Optional, Tuple

from repro.serve.jobs import Job


class JobQueue:
    """Priority-with-aging job queue feeding the worker tasks."""

    def __init__(
        self,
        *,
        aging_seconds: float,
        clock: Callable[[], float],
        max_running: Callable[[str], int],
    ) -> None:
        if aging_seconds <= 0:
            raise ValueError("aging_seconds must be > 0")
        self._aging = float(aging_seconds)
        self._clock = clock
        self._max_running = max_running
        #: (key, seq, job); seq breaks ties in submission order
        self._heap: List[Tuple[float, int, Job]] = []
        self._seq = itertools.count()
        #: tenant -> entries parked because the tenant is saturated
        self._deferred: Dict[str, List[Tuple[float, int, Job]]] = {}
        self._running: Dict[str, int] = {}
        self._queued = 0
        self._active = 0
        self._cond = asyncio.Condition()
        self._closed = False

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------

    async def push(self, job: Job) -> None:
        """Enqueue an admitted job (key frozen at the current clock)."""
        key = job.priority * self._aging + self._clock()
        async with self._cond:
            if self._closed:
                raise RuntimeError("queue is closed")
            heapq.heappush(self._heap, (key, next(self._seq), job))
            self._queued += 1
            self._cond.notify()

    async def close(self) -> None:
        """No more pushes; pending pops return ``None`` once drained."""
        async with self._cond:
            self._closed = True
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # consumer side (worker tasks)
    # ------------------------------------------------------------------

    async def pop(self) -> Optional[Job]:
        """The best eligible job, waiting if none; ``None`` after close.

        Cancelled jobs are dropped lazily here (their terminal response
        is the canceller's responsibility); jobs of saturated tenants
        are deferred without losing their aging credit.
        """
        async with self._cond:
            while True:
                job = self._pop_eligible()
                if job is not None:
                    self._queued -= 1
                    self._active += 1
                    self._running[job.tenant] = self._running.get(job.tenant, 0) + 1
                    return job
                if self._closed and not self._heap and not any(
                    self._deferred.values()
                ):
                    return None
                await self._cond.wait()

    def _pop_eligible(self) -> Optional[Job]:
        while self._heap:
            key, seq, job = heapq.heappop(self._heap)
            if job.cancelled:  # lazily discard; canceller already answered
                self._queued -= 1
                self._drop_locked(job)
                continue
            tenant = job.tenant
            if self._running.get(tenant, 0) >= self._max_running(tenant):
                self._deferred.setdefault(tenant, []).append((key, seq, job))
                continue
            return job
        return None

    def _drop_locked(self, job: Job) -> None:
        if job.on_dropped is not None:
            job.on_dropped(job)

    async def task_done(self, job: Job) -> None:
        """A popped job reached a terminal state; wake up deferrals."""
        async with self._cond:
            self._active -= 1
            tenant = job.tenant
            count = self._running.get(tenant, 0) - 1
            if count > 0:
                self._running[tenant] = count
            else:
                self._running.pop(tenant, None)
            parked = self._deferred.pop(tenant, None)
            if parked:
                for entry in parked:
                    heapq.heappush(self._heap, entry)
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # shutdown support
    # ------------------------------------------------------------------

    async def join(self) -> None:
        """Wait until nothing is queued, deferred, or running."""
        async with self._cond:
            while self._queued or self._active:
                await self._cond.wait()

    async def drain_queued(self) -> List[Job]:
        """Remove and return every not-yet-started job (cancel mode)."""
        async with self._cond:
            out: List[Job] = []
            for _, _, job in self._heap:
                out.append(job)
            for parked in self._deferred.values():
                for _, _, job in parked:
                    out.append(job)
            self._heap.clear()
            self._deferred.clear()
            self._queued -= len(out)
            self._cond.notify_all()
            return out

    @property
    def queued(self) -> int:
        return self._queued

    @property
    def active(self) -> int:
        return self._active
