"""A small asyncio client for the trace service.

Used by the CLI demo mode, the CI smoke script, and the test suite; it
is also the reference implementation of the client side of ``serve-v1``.
:class:`ServeClient` keeps one connection, demultiplexes responses by
job id, and hands each submission back as a :class:`JobHandle` whose
``partials`` / terminal response accumulate as the reader task drains
the socket.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.serve import protocol
from repro.serve.protocol import (
    Bye,
    Cancel,
    ErrorResponse,
    Hello,
    Partial,
    ProtocolError,
    ShutdownRequest,
    StatsRequest,
    StatsResponse,
    Submit,
    Welcome,
)


class ServeClientError(Exception):
    """The server closed, answered garbage, or refused the handshake."""


@dataclass
class JobHandle:
    """One submitted job's client-side state."""

    id: str
    kind: str
    #: streamed partial payloads, in sequence order
    partials: List[Dict[str, Any]] = field(default_factory=list)
    #: the terminal response (accepted is not terminal; rejected is)
    terminal: Optional[object] = None
    accepted: Optional[bool] = None
    done: asyncio.Event = field(default_factory=asyncio.Event)

    @property
    def status(self) -> str:
        """``accepted``/``rejected``/``result``/``error``/``cancelled``
        or ``pending`` while in flight."""
        if self.terminal is not None:
            return self.terminal.TYPE
        if self.accepted:
            return "accepted"
        return "pending"

    @property
    def result(self) -> Dict[str, Any]:
        """The result payload; raises if the job did not succeed."""
        if self.terminal is None:
            raise ServeClientError(f"job {self.id!r} is still running")
        if self.terminal.TYPE != "result":
            detail = getattr(self.terminal, "detail", "") or getattr(
                self.terminal, "message", ""
            )
            raise ServeClientError(
                f"job {self.id!r} ended {self.terminal.TYPE}: {detail}"
            )
        return self.terminal.data

    async def wait(self) -> "JobHandle":
        await self.done.wait()
        return self


class ServeClient:
    """One tenant's connection to a :class:`~repro.serve.server.TraceServer`."""

    def __init__(self, host: str, port: int, tenant: str) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.jobs: Dict[str, JobHandle] = {}
        #: connection-level errors (ProtocolError complaints, Bye)
        self.notices: List[object] = []
        self._stats_waiters: List[asyncio.Future] = []
        self._reader_task: Optional[asyncio.Task] = None
        self._closed = asyncio.Event()
        self._ids = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def connect(self) -> "ServeClient":
        self.reader, self.writer = await asyncio.open_connection(
            self.host, self.port, limit=protocol.MAX_LINE_BYTES
        )
        await self._send(Hello(tenant=self.tenant))
        line = await self.reader.readline()
        if not line:
            raise ServeClientError("server closed the connection during handshake")
        message = protocol.decode_response(line)
        if isinstance(message, ErrorResponse):
            raise ServeClientError(f"handshake refused: {message.message}")
        if not isinstance(message, Welcome):
            raise ServeClientError(f"expected welcome, got {message.TYPE!r}")
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop(), name=f"repro-serve-client-{self.tenant}"
        )
        return self

    async def close(self) -> None:
        if self.writer is not None:
            try:
                self.writer.close()
                await self.writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if self._reader_task is not None:
            await self._reader_task
            self._reader_task = None

    async def __aenter__(self) -> "ServeClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # requests
    # ------------------------------------------------------------------

    async def _send(self, message: object) -> None:
        assert self.writer is not None
        self.writer.write(protocol.encode_message(message))
        await self.writer.drain()

    def _next_id(self) -> str:
        self._ids += 1
        return f"{self.tenant}-{self._ids}"

    async def submit(
        self,
        kind: str,
        params: Optional[Dict[str, Any]] = None,
        *,
        priority: int = 0,
        job_id: Optional[str] = None,
    ) -> JobHandle:
        """Submit one job; returns immediately with its handle."""
        job_id = job_id or self._next_id()
        handle = JobHandle(id=job_id, kind=kind)
        self.jobs[job_id] = handle
        await self._send(
            Submit(id=job_id, kind=kind, params=params or {}, priority=priority)
        )
        return handle

    async def run(
        self,
        kind: str,
        params: Optional[Dict[str, Any]] = None,
        *,
        priority: int = 0,
    ) -> JobHandle:
        """Submit and wait for the terminal response."""
        handle = await self.submit(kind, params, priority=priority)
        await handle.wait()
        return handle

    async def cancel(self, job_id: str) -> None:
        await self._send(Cancel(id=job_id))

    async def stats(self) -> Dict[str, Any]:
        """The server's metrics snapshot (``repro-metrics-v1`` JSON)."""
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._stats_waiters.append(future)
        await self._send(StatsRequest())
        return await future

    async def shutdown(self, mode: str = "drain") -> None:
        """Ask the server to shut down; the connection will drop."""
        await self._send(ShutdownRequest(mode=mode))

    # ------------------------------------------------------------------
    # response demultiplexing
    # ------------------------------------------------------------------

    async def _read_loop(self) -> None:
        assert self.reader is not None
        try:
            while True:
                line = await self.reader.readline()
                if not line:
                    break
                try:
                    message = protocol.decode_response(line)
                except ProtocolError:
                    continue  # tolerate future additions
                self._dispatch(message)
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass
        finally:
            self._fail_pending("connection closed")
            self._closed.set()

    def _dispatch(self, message: object) -> None:
        job_id = getattr(message, "id", "")
        if isinstance(message, StatsResponse):
            while self._stats_waiters:
                waiter = self._stats_waiters.pop(0)
                if not waiter.done():
                    waiter.set_result(message.data)
                    break
            return
        if isinstance(message, (Welcome, Bye)) or not job_id:
            self.notices.append(message)
            return
        handle = self.jobs.get(job_id)
        if handle is None:
            self.notices.append(message)
            return
        if message.TYPE == "accepted":
            handle.accepted = True
        elif isinstance(message, Partial):
            handle.partials.append(message.data)
        elif message.TYPE in protocol.TERMINAL_TYPES:
            if message.TYPE == "rejected":
                handle.accepted = False
            handle.terminal = message
            handle.done.set()

    def _fail_pending(self, reason: str) -> None:
        """Resolve anything still in flight when the connection drops."""
        for handle in self.jobs.values():
            if handle.terminal is None and not handle.done.is_set():
                handle.terminal = ErrorResponse(message=reason, id=handle.id)
                handle.done.set()
        for waiter in self._stats_waiters:
            if not waiter.done():
                waiter.set_exception(ServeClientError(reason))
        self._stats_waiters.clear()
