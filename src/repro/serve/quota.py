"""Per-tenant quotas and admission for the trace service.

Real Ethereum-node workloads are dominated by a handful of heavy
actors ("EVM Workloads in the Wild"), so a shared trace service must
bound what any one tenant can queue, run, and submit per second — or
one tenant's burst starves everyone else's latency.  Admission is
decided per ``submit``:

* **pending bound** — at most ``max_pending`` jobs queued per tenant;
* **running bound** — at most ``max_running`` of a tenant's jobs
  executing concurrently (enforced by the scheduler, declared here);
* **rate bound** — submissions drain a per-tenant token bucket,
  *reusing the replay engine's* :class:`~repro.replay.pacing.TokenBucketPacer`
  via its non-blocking ``try_acquire``.

When a bound trips, the tenant's ``admission`` policy picks the
reaction, mirroring the replay engine's admission vocabulary:

* ``block`` — backpressure: the submit waits (the server awaits the
  bucket/slot), which also stops reading further requests from that
  connection — exactly how a bounded queue pushes back on a producer;
* ``drop`` — the job is rejected with a ``rejected`` response and a
  per-tenant counter increment; the connection lives on;
* ``abort`` — the connection is closed with an error: the tenant is
  misbehaving and the server refuses further traffic from it.

Decisions are pure data (:class:`Decision`); the async server applies
them.  The bucket clock is injectable so tests drive virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.replay.pacing import TokenBucketPacer

ADMISSION_POLICIES = ("block", "drop", "abort")

#: Admission verdicts.
ACCEPT = "accept"
WAIT = "wait"
REJECT = "reject"
ABORT = "abort"


@dataclass(frozen=True)
class TenantQuota:
    """Static limits for one tenant (or the default for all)."""

    #: max jobs queued (admitted but not yet finished) per tenant
    max_pending: int = 64
    #: max jobs of this tenant executing concurrently
    max_running: int = 2
    #: submissions per second (None = unlimited)
    rate: Optional[float] = None
    #: token-bucket ceiling (None = pacing default: 20 ms of tokens)
    burst: Optional[float] = None
    #: block | drop | abort — reaction when a bound trips
    admission: str = "block"

    def validated(self) -> "TenantQuota":
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {self.max_pending}")
        if self.max_running < 1:
            raise ValueError(f"max_running must be >= 1, got {self.max_running}")
        if self.rate is not None and self.rate <= 0:
            raise ValueError(f"rate must be > 0 jobs/s, got {self.rate}")
        if self.admission not in ADMISSION_POLICIES:
            raise ValueError(
                f"admission must be one of {ADMISSION_POLICIES}, "
                f"got {self.admission!r}"
            )
        return self


@dataclass(frozen=True)
class Decision:
    """One admission verdict: what the server should do with a submit."""

    verdict: str
    #: for WAIT: seconds until the next retry can succeed
    delay: float = 0.0
    #: for REJECT/ABORT: machine-readable reason ("quota" | "rate")
    reason: str = ""
    detail: str = ""


@dataclass
class TenantState:
    """Live accounting for one tenant."""

    name: str
    quota: TenantQuota
    pacer: Optional[TokenBucketPacer] = None
    #: admitted jobs not yet terminal (queued + running)
    pending: int = 0
    #: jobs currently executing
    running: int = 0
    #: total ever admitted / rejected (mirrors the metrics counters)
    admitted: int = 0
    rejected: int = 0


class QuotaManager:
    """Per-tenant admission over a shared clock.

    ``clock`` feeds the token buckets; inject a virtual clock in tests
    to make rate decisions deterministic.  All methods are synchronous
    and run on the event loop thread — the server owns any waiting.
    """

    def __init__(
        self,
        default: TenantQuota,
        overrides: Optional[Dict[str, TenantQuota]] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if clock is None:
            import time

            clock = time.monotonic
        self._default = default.validated()
        self._overrides = {
            name: quota.validated() for name, quota in (overrides or {}).items()
        }
        self._clock = clock
        self._tenants: Dict[str, TenantState] = {}

    def tenant(self, name: str) -> TenantState:
        state = self._tenants.get(name)
        if state is None:
            quota = self._overrides.get(name, self._default)
            pacer = None
            if quota.rate is not None:
                pacer = TokenBucketPacer(
                    quota.rate,
                    burst=quota.burst,
                    clock=self._clock,
                    sleep=_no_sleep,
                )
            state = self._tenants[name] = TenantState(
                name=name, quota=quota, pacer=pacer
            )
        return state

    def admit(self, name: str) -> Decision:
        """Decide one submission *without* consuming a pending slot.

        On ACCEPT the rate token has been consumed; the caller must then
        call :meth:`commit` to take the pending slot (split so the
        server can re-run ``admit`` after awaiting a WAIT delay).
        """
        state = self.tenant(name)
        policy = state.quota.admission
        if state.pending >= state.quota.max_pending:
            if policy == "block":
                # Poll-style backpressure: the pending count drops only
                # when a job finishes, so a short fixed delay is the
                # wait-for-slot signal.
                return Decision(WAIT, delay=0.01, reason="quota")
            detail = (
                f"tenant {name!r} has {state.pending} jobs pending "
                f"(max {state.quota.max_pending})"
            )
            return Decision(
                ABORT if policy == "abort" else REJECT, reason="quota", detail=detail
            )
        if state.pacer is not None:
            delay = state.pacer.try_acquire()
            if delay > 0.0:
                if policy == "block":
                    return Decision(WAIT, delay=delay, reason="rate")
                detail = (
                    f"tenant {name!r} exceeded {state.quota.rate:g} submissions/s "
                    f"(retry in {delay:.3f}s)"
                )
                return Decision(
                    ABORT if policy == "abort" else REJECT,
                    reason="rate",
                    detail=detail,
                )
        return Decision(ACCEPT)

    def commit(self, name: str) -> None:
        """Take the pending slot for an accepted submission."""
        state = self.tenant(name)
        state.pending += 1
        state.admitted += 1

    def reject(self, name: str) -> None:
        self.tenant(name).rejected += 1

    def job_started(self, name: str) -> None:
        self.tenant(name).running += 1

    def job_finished(self, name: str) -> None:
        """A job stopped executing.  Releases only the *running* slot;
        the pending slot goes back through :meth:`job_dropped`, which
        the server guards with ``Job.slot_released`` so overlapping
        terminal paths (cancel + lazy drop, disconnect + worker finish)
        release it exactly once."""
        state = self.tenant(name)
        state.running = max(0, state.running - 1)

    def job_dropped(self, name: str) -> None:
        """Release an admitted job's pending slot (once per job)."""
        state = self.tenant(name)
        state.pending = max(0, state.pending - 1)

    def states(self) -> Dict[str, TenantState]:
        return dict(self._tenants)


def _no_sleep(_seconds: float) -> None:
    """The async server never lets a bucket block; guard against it."""
    raise RuntimeError("blocking acquire() is not allowed on the event loop")
