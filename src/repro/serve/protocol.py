"""Versioned request/response dataclasses for the trace service.

The wire format is newline-delimited JSON over TCP (``serve-v1``):
every message is one JSON object on one line, carrying a ``type`` field
that selects a dataclass below.  Requests flow client → server,
responses server → client; a connection is a ``hello``/``welcome``
handshake followed by any interleaving of submissions and streamed
responses (messages for different jobs multiplex freely on one
connection, correlated by the client-chosen job ``id``).

The shape follows the event-driven request/response dataclasses of
py-evm's trinity sync protocol: small frozen dataclasses, one per
message type, with an explicit registry mapping wire tags to classes.
Anything unknown or malformed raises :class:`ProtocolError` — the
server answers with an ``error`` message rather than guessing.

Job lifecycle messages, in order::

    submit  ->  accepted | rejected          (admission verdict)
                partial*                     (streamed incremental data)
                result | error | cancelled   (exactly one terminal)

``rejected`` is also terminal: a rejected job never ran.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, Type

PROTOCOL_VERSION = "serve-v1"

#: Longest accepted wire line; protects the server from unbounded reads.
MAX_LINE_BYTES = 4 * 1024 * 1024

#: Job kinds the scheduler knows how to execute.  ``sleep`` holds a
#: worker slot for a fixed duration without touching any trace — the
#: deterministic filler the concurrency tests (and capacity probes)
#: schedule around.
JOB_KINDS = ("analyze", "replay", "crashtest", "sleep")


class ProtocolError(ValueError):
    """A wire message that does not parse as a known serve-v1 message."""


# ---------------------------------------------------------------------------
# requests (client -> server)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Hello:
    """Handshake: names the tenant and pins the protocol version."""

    TYPE = "hello"

    tenant: str
    proto: str = PROTOCOL_VERSION


@dataclass(frozen=True)
class Submit:
    """Submit one job.  ``id`` is chosen by the client and must be
    unique per connection; every response for the job echoes it."""

    TYPE = "submit"

    id: str
    kind: str
    params: Dict[str, Any] = field(default_factory=dict)
    #: smaller runs sooner; the scheduler ages waiting jobs so a large
    #: priority only delays, never starves (see serve/scheduler.py)
    priority: int = 0


@dataclass(frozen=True)
class Cancel:
    """Cancel a queued or running job (best effort; answered with a
    ``cancelled`` terminal when it takes effect)."""

    TYPE = "cancel"

    id: str


@dataclass(frozen=True)
class StatsRequest:
    """Ask for the server's metrics registry snapshot
    (``repro-metrics-v1`` JSON, mergeable by ``repro stats``)."""

    TYPE = "stats"


@dataclass(frozen=True)
class ShutdownRequest:
    """Ask the server to shut down: ``drain`` finishes queued and
    running jobs first, ``cancel`` stops them deterministically."""

    TYPE = "shutdown"

    mode: str = "drain"


# ---------------------------------------------------------------------------
# responses (server -> client)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Welcome:
    TYPE = "welcome"

    proto: str = PROTOCOL_VERSION
    server: str = "repro-serve"


@dataclass(frozen=True)
class Accepted:
    """The job passed admission and is queued; ``job`` is the
    server-wide job number (scheduling order of acceptance)."""

    TYPE = "accepted"

    id: str
    job: int


@dataclass(frozen=True)
class Rejected:
    """Admission refused the job (quota, rate, draining, bad kind…)."""

    TYPE = "rejected"

    id: str
    reason: str
    detail: str = ""


@dataclass(frozen=True)
class Partial:
    """One streamed increment of a running job's answer."""

    TYPE = "partial"

    id: str
    seq: int
    data: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Result:
    """Terminal: the job finished; ``data`` is its full answer."""

    TYPE = "result"

    id: str
    data: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ErrorResponse:
    """Terminal for a job (``id`` set) or connection-level complaint
    (``id`` empty)."""

    TYPE = "error"

    message: str
    id: str = ""


@dataclass(frozen=True)
class Cancelled:
    """Terminal: the job was cancelled before completing."""

    TYPE = "cancelled"

    id: str


@dataclass(frozen=True)
class StatsResponse:
    TYPE = "stats"

    data: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Bye:
    """The server is closing this connection."""

    TYPE = "bye"

    reason: str = "shutdown"


REQUEST_TYPES: Dict[str, Type] = {
    cls.TYPE: cls for cls in (Hello, Submit, Cancel, StatsRequest, ShutdownRequest)
}
RESPONSE_TYPES: Dict[str, Type] = {
    cls.TYPE: cls
    for cls in (
        Welcome,
        Accepted,
        Rejected,
        Partial,
        Result,
        ErrorResponse,
        Cancelled,
        StatsResponse,
        Bye,
    )
}

#: Response types that end a job's lifecycle.
TERMINAL_TYPES = frozenset(
    {Rejected.TYPE, Result.TYPE, ErrorResponse.TYPE, Cancelled.TYPE}
)


def encode_message(message: object) -> bytes:
    """One wire line: the dataclass as JSON plus its ``type`` tag."""
    payload = asdict(message)
    payload["type"] = message.TYPE
    return (json.dumps(payload, separators=(",", ":"), sort_keys=True) + "\n").encode(
        "utf-8"
    )


def _decode(line: bytes, registry: Dict[str, Type], side: str) -> object:
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"{side} line exceeds {MAX_LINE_BYTES} bytes")
    try:
        payload = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"bad JSON on the wire: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(f"expected a JSON object, got {type(payload).__name__}")
    tag = payload.pop("type", None)
    cls = registry.get(tag)
    if cls is None:
        raise ProtocolError(f"unknown {side} type {tag!r}")
    names = {f.name for f in fields(cls)}
    unknown = set(payload) - names
    if unknown:
        raise ProtocolError(f"{tag}: unexpected fields {sorted(unknown)}")
    try:
        return cls(**payload)
    except TypeError as exc:
        raise ProtocolError(f"{tag}: {exc}") from exc


def decode_request(line: bytes) -> object:
    """Parse one client line; raises :class:`ProtocolError`."""
    return _decode(line, REQUEST_TYPES, "request")


def decode_response(line: bytes) -> object:
    """Parse one server line; raises :class:`ProtocolError`."""
    return _decode(line, RESPONSE_TYPES, "response")


def check_hello(message: object) -> Hello:
    """Validate the handshake message (first line of a connection)."""
    if not isinstance(message, Hello):
        raise ProtocolError(
            f"expected hello as the first message, got {getattr(message, 'TYPE', '?')!r}"
        )
    if message.proto != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol mismatch: server speaks {PROTOCOL_VERSION}, "
            f"client sent {message.proto!r}"
        )
    if not message.tenant:
        raise ProtocolError("hello must name a tenant")
    return message


def check_submit(message: Submit) -> Submit:
    """Validate a submission's static fields (kind, id)."""
    if message.kind not in JOB_KINDS:
        raise ProtocolError(
            f"unknown job kind {message.kind!r}; known: {', '.join(JOB_KINDS)}"
        )
    if not message.id:
        raise ProtocolError("submit must carry a non-empty id")
    if not isinstance(message.params, dict):
        raise ProtocolError("submit params must be an object")
    return message
