"""Per-tenant service metrics, folded into the obs registry.

Every counter lands in the same :class:`~repro.obs.MetricsRegistry`
the rest of the system instruments, under fixed names with a
``tenant`` label — so a server snapshot (``stats`` request or
``--metrics-out`` at shutdown) merges associatively with any client's
``repro analyze --metrics-out`` dump through ``repro stats``, and
per-tenant quota rejections are observable next to the analysis
counters the jobs themselves produced.

All increments happen on the event loop thread, which is what makes
the per-tenant totals deterministic for a given admission sequence
(asserted against a serial reference in ``tests/test_serve_properties.py``).
"""

from __future__ import annotations

from typing import Optional

from repro.obs.registry import MetricsRegistry


class ServeMetrics:
    """The trace service's metric families (resolved once)."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        if registry is None:
            from repro.obs import get_registry

            registry = get_registry()
        self.registry = registry
        self._connections = registry.counter(
            "repro_serve_connections_total", help="Client connections accepted"
        )
        self._active = registry.gauge(
            "repro_serve_connections_active", help="Currently connected clients"
        )
        self._submitted = registry.counter(
            "repro_serve_jobs_submitted_total",
            help="Jobs submitted (accepted into the queue)",
            labelnames=("tenant", "kind"),
        )
        self._completed = registry.counter(
            "repro_serve_jobs_completed_total",
            help="Jobs finished with a result",
            labelnames=("tenant", "kind"),
        )
        self._failed = registry.counter(
            "repro_serve_jobs_failed_total",
            help="Jobs finished with an error",
            labelnames=("tenant", "kind"),
        )
        self._cancelled = registry.counter(
            "repro_serve_jobs_cancelled_total",
            help="Jobs cancelled before completing",
            labelnames=("tenant", "kind"),
        )
        self._rejected = registry.counter(
            "repro_serve_jobs_rejected_total",
            help="Submissions refused by admission",
            labelnames=("tenant", "reason"),
        )
        self._partials = registry.counter(
            "repro_serve_partials_total",
            help="Streamed partial responses sent",
            labelnames=("tenant",),
        )
        self._queue_depth = registry.gauge(
            "repro_serve_queue_depth", help="Jobs queued (admitted, not running)"
        )
        self._running = registry.gauge(
            "repro_serve_jobs_running", help="Jobs currently executing"
        )
        self._job_seconds = registry.histogram(
            "repro_serve_job_seconds",
            help="Job execution wall time",
            labelnames=("kind",),
        )

    # ------------------------------------------------------------------

    def connection_opened(self) -> None:
        self._connections.inc()
        self._active.inc()

    def connection_closed(self) -> None:
        self._active.dec()

    def submitted(self, tenant: str, kind: str) -> None:
        self._submitted.labels(tenant=tenant, kind=kind).inc()

    def completed(self, tenant: str, kind: str, seconds: float) -> None:
        self._completed.labels(tenant=tenant, kind=kind).inc()
        self._job_seconds.labels(kind=kind).observe(seconds)

    def failed(self, tenant: str, kind: str) -> None:
        self._failed.labels(tenant=tenant, kind=kind).inc()

    def cancelled(self, tenant: str, kind: str) -> None:
        self._cancelled.labels(tenant=tenant, kind=kind).inc()

    def rejected(self, tenant: str, reason: str) -> None:
        self._rejected.labels(tenant=tenant, reason=reason).inc()

    def partial(self, tenant: str) -> None:
        self._partials.labels(tenant=tenant).inc()

    def queue_sample(self, queued: int, running: int) -> None:
        self._queue_depth.set(queued)
        self._running.set(running)
