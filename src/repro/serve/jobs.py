"""Job state and execution for the trace service.

A :class:`Job` is one admitted submission; the server's worker tasks
execute it via the matching ``run_*`` coroutine.  CPU-bound work never
runs on the event loop: the runners bridge to the existing analysis /
replay machinery through ``loop.run_in_executor`` on the server's
thread pool, and anything that wants real multi-core speedups sets
``workers > 1`` in its params so the inner call fans out to
:mod:`repro.core.parallel`'s process-shard executor exactly as the CLI
does.

Analyze jobs stream: each batch of chunks produces a ``partial``
response built from the merged-so-far partial aggregates
(:func:`~repro.core.analysis.stream_trace_analysis`), and the final
``result`` carries the identical rendered operation table a one-shot
``repro analyze`` would print — byte-for-byte, because both merge the
same per-chunk partials in footer order.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.core.trace import OpType


class JobError(Exception):
    """A job failed in a way the client caused (bad params, bad trace);
    reported as an ``error`` terminal, never a server crash."""


@dataclass
class Job:
    """One admitted submission moving through the scheduler."""

    job_id: int
    client_id: str
    tenant: str
    kind: str
    params: Dict[str, Any]
    priority: int
    #: the owning connection (duck-typed; see server.Connection)
    conn: Any
    cancelled: bool = False
    #: True once the tenant's pending-quota slot was given back; every
    #: release path checks-and-sets this so a slot is returned exactly
    #: once no matter how many of them (cancel, disconnect, lazy drop,
    #: worker terminal) observe the same job
    slot_released: bool = False
    #: set while running so cancel/shutdown can interrupt the task
    task: Optional[asyncio.Task] = None
    #: called when the scheduler lazily discards a cancelled entry
    on_dropped: Optional[Callable[["Job"], None]] = None
    #: how many partials were streamed (client-visible sequence)
    partials: int = field(default=0)


def _positive_int(params: Dict[str, Any], name: str, default: int) -> int:
    value = params.get(name, default)
    try:
        value = int(value)
    except (TypeError, ValueError):
        raise JobError(f"{name} must be an integer, got {value!r}") from None
    if value < 1:
        raise JobError(f"{name} must be >= 1, got {value}")
    return value


def _op_totals(opdist) -> Dict[str, int]:
    """Compact per-op totals for a streamed partial payload."""
    totals = {op.name: 0 for op in OpType}
    for kv_class in opdist.observed_classes():
        dist = opdist.distribution(kv_class)
        totals["READ"] += dist.reads
        totals["WRITE"] += dist.writes
        totals["UPDATE"] += dist.updates
        totals["DELETE"] += dist.deletes
        totals["SCAN"] += dist.scans
    return totals


async def run_analyze(job: Job, server) -> Dict[str, Any]:
    """Streamed analysis over one shared trace.

    ``params``: ``trace`` (required, a name registered with the
    server), ``batch_chunks`` (chunks per streamed partial),
    ``workers`` (> 1 switches to the one-shot process-sharded path —
    multi-core, no intermediate partials), ``start_chunk`` (resume
    point for the streaming path).
    """
    from repro.core.aggcache import analyze_trace_maybe_cached
    from repro.core.analysis import stream_trace_analysis
    from repro.core.report import render_op_table

    name = job.params.get("trace")
    path = server.resolve_trace(name)
    workers = _positive_int(job.params, "workers", 1)
    title = f"Operation distribution ({name})"

    loop = asyncio.get_running_loop()
    if workers > 1:
        # One-shot multi-core path: the thread below drives the
        # process-shard executor from repro.core.parallel.
        results = await loop.run_in_executor(
            server.pool,
            lambda: analyze_trace_maybe_cached(
                str(path),
                cache=server.cache,
                workers=workers,
                analyzers=("opdist",),
                registry=server.registry,
            ),
        )
        opdist = results["opdist"]
        return {
            "trace": name,
            "records": opdist.total_ops,
            "ops": _op_totals(opdist),
            "table": render_op_table(opdist, title),
        }

    batch_chunks = _positive_int(job.params, "batch_chunks", server.batch_chunks)
    start_chunk = job.params.get("start_chunk", 0)
    stream = stream_trace_analysis(
        str(path),
        analyzers=("opdist",),
        batch_chunks=batch_chunks,
        start_chunk=int(start_chunk),
        cache=server.cache,
        registry=server.registry,
    )
    last = None
    in_flight = None
    try:
        while True:
            # Each blocking step (chunk reads + aggregation) runs on the
            # pool; the loop stays free to serve other connections.  The
            # concurrent future is kept so cancellation can wait out a
            # step still executing on the pool thread (see finally).
            in_flight = server.pool.submit(lambda: next(stream, None))
            step = await asyncio.wrap_future(in_flight)
            in_flight = None
            if step is None:
                break
            last = step
            if job.cancelled:
                break
            opdist = step.analyzers["opdist"]
            await server.send_partial(
                job,
                {
                    "chunks_done": step.chunks_done,
                    "total_chunks": step.total_chunks,
                    "records": step.records_done,
                    "ops": _op_totals(opdist),
                },
            )
    finally:
        if in_flight is not None and not in_flight.done():
            # A cancellation unwound the await while the pool thread is
            # still inside next(stream); closing now would raise
            # ValueError("generator already executing") and mask the
            # CancelledError.  Wait (shielded) for the step to settle.
            try:
                await asyncio.shield(asyncio.wrap_future(in_flight))
            except BaseException:
                pass  # settled with an error, or a second cancellation
        try:
            stream.close()
        except ValueError:
            # Only reachable if a second cancellation interrupted the
            # settle-wait above; the generator finalizes via GC.
            pass
    if last is None:
        raise JobError(f"trace {name!r} produced no chunks")
    opdist = last.analyzers["opdist"]
    return {
        "trace": name,
        "records": opdist.total_ops,
        "ops": _op_totals(opdist),
        "table": render_op_table(opdist, title),
    }


async def run_replay(job: Job, server) -> Dict[str, Any]:
    """Replay one shared trace against a private backend instance.

    ``params`` mirror the CLI surface: ``trace`` (required),
    ``backend``, ``workers``, ``executor``, ``pace``, ``queue_depth``,
    ``admission``, ``scan_limit``.
    """
    from repro.errors import ReplayError
    from repro.replay import ReplayConfig, replay_trace

    name = job.params.get("trace")
    path = server.resolve_trace(name)
    params = job.params
    try:
        config = ReplayConfig(
            backend=str(params.get("backend", "memdb")),
            workers=int(params.get("workers", 1)),
            executor=str(params.get("executor", "thread")),
            pace=params.get("pace"),
            queue_depth=int(params.get("queue_depth", 1024)),
            admission=str(params.get("admission", "block")),
            scan_limit=int(params.get("scan_limit", 64)),
            latency_sample=int(params.get("latency_sample", 8)),
        ).validated()
    except (ReplayError, TypeError, ValueError) as exc:
        raise JobError(f"bad replay params: {exc}") from exc

    loop = asyncio.get_running_loop()
    try:
        report = await loop.run_in_executor(
            server.pool,
            lambda: replay_trace(str(path), config, registry=server.registry),
        )
    except ReplayError as exc:
        raise JobError(str(exc)) from exc
    return {
        "trace": name,
        "backend": config.backend,
        "records": report.total_records,
        "applied": report.applied,
        "elapsed_s": report.elapsed_s,
        "report": report.render(),
    }


async def run_crashtest(job: Job, server) -> Dict[str, Any]:
    """A small crash-consistency sweep (bounded: this is the expensive
    job kind, so blocks/cases are clamped to service-friendly sizes)."""
    from repro.faults import CrashTestConfig, run_crash_sweep, sweep_points

    params = job.params
    blocks = min(_positive_int(params, "blocks", 24), 128)
    warmup = min(_positive_int(params, "warmup", 8), 64)
    seed = int(params.get("seed", 7))
    config = CrashTestConfig(blocks=blocks, warmup=warmup, seed=seed)
    loop = asyncio.get_running_loop()
    report = await loop.run_in_executor(
        server.pool, lambda: run_crash_sweep(config, sweep_points(config))
    )
    return {
        "total": report.total,
        "triggered": report.triggered,
        "divergent": report.divergent,
        "report": report.render(),
    }


async def run_sleep(job: Job, server) -> Dict[str, Any]:
    """Hold a worker slot for ``seconds`` (virtual-clock friendly).

    The deterministic filler job the concurrency tests use to pin
    worker slots; it sleeps through the server's injectable sleep shim,
    so a virtual clock advances it without wall time passing.
    """
    try:
        seconds = float(job.params.get("seconds", 0.01))
    except (TypeError, ValueError):
        raise JobError("seconds must be a number") from None
    if seconds < 0 or seconds > 60:
        raise JobError(f"seconds must be in [0, 60], got {seconds}")
    await server.sleep(seconds)
    return {"slept": seconds}


JOB_RUNNERS = {
    "analyze": run_analyze,
    "replay": run_replay,
    "crashtest": run_crashtest,
    "sleep": run_sleep,
}
