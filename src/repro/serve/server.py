"""The asyncio multi-tenant trace service daemon.

One :class:`TraceServer` owns a shared, read-only trace corpus and
serves many concurrent clients over the newline-delimited-JSON TCP
protocol (:mod:`repro.serve.protocol`).  The moving parts:

* **connections** — each client handler reads requests and answers on
  the same socket; responses (including partials streamed by worker
  tasks) serialize through a per-connection lock;
* **admission** — per-tenant quotas/rate buckets
  (:mod:`repro.serve.quota`): ``block`` backpressures the connection,
  ``drop`` rejects the job, ``abort`` closes the connection;
* **scheduling** — an aging priority queue with per-tenant running
  caps (:mod:`repro.serve.scheduler`) feeding ``workers`` worker
  tasks;
* **execution** — job runners (:mod:`repro.serve.jobs`) bridge to the
  existing analysis/replay engines through a thread pool, streaming
  partial aggregates for analyze jobs;
* **shutdown** — ``drain`` finishes everything admitted, ``cancel``
  stops running jobs and answers queued ones deterministically; either
  way every spawned task is awaited, so a clean shutdown leaves zero
  pending asyncio tasks (asserted in the tests).

Time is injectable (``clock`` / ``sleep`` in :class:`ServeConfig`), so
the deterministic concurrency tests drive a virtual clock instead of
waiting out wall time.
"""

from __future__ import annotations

import asyncio
import logging
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Awaitable, Callable, Dict, Optional, Set, Union

from repro.obs.registry import MetricsRegistry, snapshot_to_json
from repro.serve import protocol
from repro.serve.jobs import JOB_RUNNERS, Job, JobError
from repro.serve.metrics import ServeMetrics
from repro.serve.protocol import (
    Accepted,
    Bye,
    Cancel,
    Cancelled,
    ErrorResponse,
    Hello,
    Partial,
    ProtocolError,
    Rejected,
    Result,
    ShutdownRequest,
    StatsRequest,
    StatsResponse,
    Submit,
    Welcome,
)
from repro.serve.quota import (
    ABORT,
    ACCEPT,
    REJECT,
    WAIT,
    QuotaManager,
    TenantQuota,
)
from repro.serve.scheduler import JobQueue

_LOG = logging.getLogger("repro.serve")

SHUTDOWN_MODES = ("drain", "cancel")


@dataclass(frozen=True)
class ServeConfig:
    """Everything a :class:`TraceServer` needs to run."""

    #: name -> path of the shared trace corpus (v2 traces)
    traces: Dict[str, Path] = field(default_factory=dict)
    host: str = "127.0.0.1"
    #: 0 = ephemeral (the bound port is reported by ``start()``)
    port: int = 0
    #: concurrent job slots (worker tasks)
    workers: int = 2
    #: default per-tenant quota; ``tenant_quotas`` overrides by name
    quota: TenantQuota = field(default_factory=TenantQuota)
    tenant_quotas: Dict[str, TenantQuota] = field(default_factory=dict)
    #: seconds of queue wait that cancel out one priority level
    aging_seconds: float = 30.0
    #: chunks per streamed analyze partial
    batch_chunks: int = 4
    #: partial-aggregate cache directory (None = no cache)
    cache_dir: Optional[Path] = None
    #: injectable time source (None = the event loop's clock)
    clock: Optional[Callable[[], float]] = None
    #: injectable async sleep (None = asyncio.sleep)
    sleep: Optional[Callable[[float], Awaitable[None]]] = None

    def validated(self) -> "ServeConfig":
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.aging_seconds <= 0:
            raise ValueError(f"aging_seconds must be > 0, got {self.aging_seconds}")
        if self.batch_chunks < 1:
            raise ValueError(f"batch_chunks must be >= 1, got {self.batch_chunks}")
        self.quota.validated()
        for quota in self.tenant_quotas.values():
            quota.validated()
        return self


class Connection:
    """One connected client; serializes writes and tracks its jobs."""

    _ids = 0

    def __init__(self, server: "TraceServer", reader, writer) -> None:
        Connection._ids += 1
        self.number = Connection._ids
        self.server = server
        self.reader = reader
        self.writer = writer
        self.tenant: Optional[str] = None
        self.closed = False
        self._send_lock = asyncio.Lock()
        #: client job id -> Job, for cancel and disconnect cleanup
        self.jobs: Dict[str, Job] = {}
        #: every id ever accepted here — ids are unique per connection
        self.used_ids: Set[str] = set()

    async def send(self, message: object) -> None:
        if self.closed:
            return
        async with self._send_lock:
            if self.closed:
                return
            try:
                self.writer.write(protocol.encode_message(message))
                await self.writer.drain()
            except (ConnectionError, OSError):
                self.closed = True

    def send_best_effort(self, message: object) -> None:
        """Non-awaiting write for paths that must not block (a worker
        task that is itself being cancelled)."""
        if self.closed:
            return
        try:
            self.writer.write(protocol.encode_message(message))
        except (ConnectionError, OSError):
            self.closed = True

    async def close(self, reason: str = "closed") -> None:
        if not self.closed:
            await self.send(Bye(reason=reason))
        self.closed = True
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class TraceServer:
    """The asyncio daemon behind ``repro serve``."""

    def __init__(
        self,
        config: ServeConfig,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config.validated()
        if registry is None:
            from repro.obs import get_registry

            registry = get_registry()
        self.registry = registry
        self.metrics = ServeMetrics(registry)
        self.batch_chunks = config.batch_chunks
        self.cache = None
        if config.cache_dir is not None:
            from repro.core.aggcache import AggregateCache

            self.cache = AggregateCache(config.cache_dir, registry=registry)
        self.pool = ThreadPoolExecutor(
            max_workers=max(2, config.workers), thread_name_prefix="repro-serve"
        )
        self._traces = {name: Path(path) for name, path in config.traces.items()}
        self._sleep = config.sleep or asyncio.sleep
        self._quotas = QuotaManager(
            config.quota, config.tenant_quotas, clock=self._lazy_clock
        )
        self._queue: Optional[JobQueue] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._tasks: Set[asyncio.Task] = set()
        self._connections: Set[Connection] = set()
        self._job_seq = 0
        self._draining = False
        self._stopped = asyncio.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # ------------------------------------------------------------------
    # time plumbing
    # ------------------------------------------------------------------

    def _lazy_clock(self) -> float:
        """The injected clock, or the loop's once it exists (quota
        buckets may be created before ``start()``)."""
        if self.config.clock is not None:
            return self.config.clock()
        if self._loop is not None:
            return self._loop.time()
        return 0.0

    async def sleep(self, seconds: float) -> None:
        """Sleep through the injectable shim (virtual-clock friendly)."""
        await self._sleep(seconds)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> int:
        """Bind the listener and start the workers; returns the port."""
        self._loop = asyncio.get_running_loop()
        self._queue = JobQueue(
            aging_seconds=self.config.aging_seconds,
            clock=self._lazy_clock,
            max_running=lambda tenant: self._quotas.tenant(tenant).quota.max_running,
        )
        self._server = await asyncio.start_server(
            self._handle_client,
            host=self.config.host,
            port=self.config.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        for index in range(self.config.workers):
            self._spawn(self._worker(index), name=f"repro-serve-worker-{index}")
        sockets = self._server.sockets or ()
        port = sockets[0].getsockname()[1] if sockets else self.config.port
        _LOG.info("serving on %s:%d", self.config.host, port)
        return port

    def _spawn(self, coro, name: str) -> asyncio.Task:
        task = asyncio.get_running_loop().create_task(coro, name=name)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    async def wait_closed(self) -> None:
        """Block until :meth:`shutdown` completes."""
        await self._stopped.wait()

    async def shutdown(self, mode: str = "drain") -> None:
        """Stop the service deterministically.

        ``drain``: stop accepting, let everything admitted finish, then
        tear down.  ``cancel``: queued jobs are answered ``cancelled``
        without running; running jobs' tasks are cancelled and answer
        ``cancelled`` best-effort.  Both paths await every task the
        server ever spawned, so afterwards no pending asyncio tasks
        remain.
        """
        if mode not in SHUTDOWN_MODES:
            raise ValueError(f"shutdown mode must be one of {SHUTDOWN_MODES}")
        if self._draining:
            await self._stopped.wait()
            return
        self._draining = True
        assert self._queue is not None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

        if mode == "cancel":
            for job in await self._queue.drain_queued():
                if not job.cancelled:
                    job.cancelled = True
                    self._release_slot(job)
                    self.metrics.cancelled(job.tenant, job.kind)
                    await job.conn.send(Cancelled(id=job.client_id))
            for connection in list(self._connections):
                for job in list(connection.jobs.values()):
                    # Skip jobs already cancelled: a second cancel()
                    # would land mid-unwind (e.g. on the worker's
                    # task_done await) and corrupt the queue counters.
                    if job.cancelled:
                        continue
                    if job.task is not None and not job.task.done():
                        job.cancelled = True
                        job.task.cancel()
        await self._queue.close()
        if mode == "drain":
            await self._queue.join()

        # Connections close only after the drain join: in-flight jobs
        # stream their terminal responses over live sockets.  Closing
        # unblocks the client handlers parked in readline.
        for connection in list(self._connections):
            await connection.close(reason=f"shutdown ({mode})")
        self._connections.clear()

        # Await every task the server ever spawned: workers (exit when
        # the closed queue runs dry), client handlers (exit on EOF), and
        # cancelled tasks alike — minus ourselves when shutdown itself
        # runs as a spawned task (client shutdown request).
        current = asyncio.current_task()
        pending = [
            task for task in self._tasks if task is not current and not task.done()
        ]
        await asyncio.gather(*pending, return_exceptions=True)
        self.pool.shutdown(wait=True)
        self.metrics.queue_sample(0, 0)
        self._stopped.set()

    # ------------------------------------------------------------------
    # trace corpus
    # ------------------------------------------------------------------

    def resolve_trace(self, name: object) -> Path:
        """Map a client-supplied trace name to a registered path."""
        if not isinstance(name, str) or not name:
            raise JobError("params must name a trace")
        path = self._traces.get(name)
        if path is None:
            known = ", ".join(sorted(self._traces)) or "(none)"
            raise JobError(f"unknown trace {name!r}; served traces: {known}")
        return path

    # ------------------------------------------------------------------
    # client handling
    # ------------------------------------------------------------------

    async def _handle_client(self, reader, writer) -> None:
        # start_server spawns this task itself; track it so shutdown's
        # zero-pending-tasks guarantee covers client handlers too.
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        connection = Connection(self, reader, writer)
        self._connections.add(connection)
        self.metrics.connection_opened()
        try:
            await self._client_loop(connection)
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass
        except asyncio.CancelledError:
            raise
        except Exception:  # never let one client kill the daemon
            _LOG.exception("connection %d crashed", connection.number)
        finally:
            self._connections.discard(connection)
            self.metrics.connection_closed()
            self._abandon_jobs(connection)
            await connection.close(reason="goodbye")

    def _release_slot(self, job: Job) -> None:
        """Give the tenant's pending-quota slot back, exactly once.

        Every terminal path funnels through here (worker finish, client
        cancel, disconnect abandon, shutdown cancel, lazy scheduler
        drop); the flag on the job makes overlapping observers — e.g. a
        cancel answered while queued and the scheduler's later lazy
        discard of the same entry — idempotent.  Without this, each
        disconnect with queued jobs would permanently consume
        ``max_pending`` slots and eventually lock the tenant out.
        """
        if not job.slot_released:
            job.slot_released = True
            self._quotas.job_dropped(job.tenant)

    def _abandon_jobs(self, connection: Connection) -> None:
        """A client vanished: cancel whatever it still had in flight."""
        for job in connection.jobs.values():
            if job.cancelled:
                continue
            job.cancelled = True
            if job.task is not None and not job.task.done():
                # Running: the worker's terminal path releases the slot.
                job.task.cancel()
            else:
                # Queued: release now — the scheduler only discards the
                # entry lazily, possibly much later (or never, if the
                # queue stays idle), and nobody else will.
                self._release_slot(job)
                self.metrics.cancelled(job.tenant, job.kind)

    async def _read_request(self, connection: Connection) -> Optional[object]:
        line = await connection.reader.readline()
        if not line:
            return None
        return protocol.decode_request(line)

    async def _client_loop(self, connection: Connection) -> None:
        try:
            hello = await self._read_request(connection)
            if hello is None:
                return
            protocol.check_hello(hello)
        except ProtocolError as exc:
            await connection.send(ErrorResponse(message=str(exc)))
            return
        connection.tenant = hello.tenant
        await connection.send(Welcome())
        while not connection.closed:
            try:
                request = await self._read_request(connection)
            except ProtocolError as exc:
                await connection.send(ErrorResponse(message=str(exc)))
                continue
            if request is None:
                return
            if isinstance(request, Submit):
                keep_open = await self._handle_submit(connection, request)
                if not keep_open:
                    return
            elif isinstance(request, Cancel):
                await self._handle_cancel(connection, request)
            elif isinstance(request, StatsRequest):
                await connection.send(
                    StatsResponse(data=snapshot_to_json(self.registry.snapshot()))
                )
            elif isinstance(request, ShutdownRequest):
                mode = request.mode if request.mode in SHUTDOWN_MODES else "drain"
                # Run in a fresh task: shutdown awaits this very handler.
                self._spawn(self.shutdown(mode), name="repro-serve-shutdown")
                return
            elif isinstance(request, Hello):
                await connection.send(
                    ErrorResponse(message="already said hello on this connection")
                )

    # ------------------------------------------------------------------
    # submission / admission
    # ------------------------------------------------------------------

    async def _handle_submit(self, connection: Connection, submit: Submit) -> bool:
        """Admit one submission; False closes the connection (abort)."""
        tenant = connection.tenant
        assert tenant is not None
        try:
            protocol.check_submit(submit)
        except ProtocolError as exc:
            await connection.send(
                Rejected(id=submit.id, reason="bad-request", detail=str(exc))
            )
            return True
        if submit.id in connection.used_ids:
            await connection.send(
                Rejected(
                    id=submit.id,
                    reason="bad-request",
                    detail=f"job id {submit.id!r} already used on this connection",
                )
            )
            return True
        if self._draining:
            self.metrics.rejected(tenant, "shutting-down")
            await connection.send(
                Rejected(
                    id=submit.id,
                    reason="shutting-down",
                    detail="server is shutting down",
                )
            )
            return True

        while True:
            decision = self._quotas.admit(tenant)
            if decision.verdict == ACCEPT:
                break
            if decision.verdict == WAIT:
                # block policy: backpressure this connection (no further
                # requests are read until the submit is admitted).
                await self.sleep(decision.delay)
                if self._draining or connection.closed:
                    self.metrics.rejected(tenant, "shutting-down")
                    await connection.send(
                        Rejected(
                            id=submit.id,
                            reason="shutting-down",
                            detail="server shut down while blocked on admission",
                        )
                    )
                    return True
                continue
            self._quotas.reject(tenant)
            self.metrics.rejected(tenant, decision.reason)
            if decision.verdict == REJECT:
                await connection.send(
                    Rejected(
                        id=submit.id, reason=decision.reason, detail=decision.detail
                    )
                )
                return True
            assert decision.verdict == ABORT
            await connection.send(
                ErrorResponse(
                    id=submit.id,
                    message=f"admission abort ({decision.reason}): {decision.detail}",
                )
            )
            return False

        self._quotas.commit(tenant)
        self._job_seq += 1
        job = Job(
            job_id=self._job_seq,
            client_id=submit.id,
            tenant=tenant,
            kind=submit.kind,
            params=dict(submit.params),
            priority=int(submit.priority),
            conn=connection,
            on_dropped=self._job_lazily_dropped,
        )
        connection.jobs[submit.id] = job
        connection.used_ids.add(submit.id)
        self.metrics.submitted(tenant, job.kind)
        assert self._queue is not None
        await self._queue.push(job)
        self.metrics.queue_sample(self._queue.queued, self._queue.active)
        await connection.send(Accepted(id=submit.id, job=job.job_id))
        return True

    def _job_lazily_dropped(self, job: Job) -> None:
        """A cancelled queued job was discarded by the scheduler;
        release its quota slot unless a cancel/disconnect already did
        (the check-and-set in :meth:`_release_slot` makes this safe)."""
        self._release_slot(job)

    async def _handle_cancel(self, connection: Connection, cancel: Cancel) -> None:
        job = connection.jobs.get(cancel.id)
        if job is None:
            await connection.send(
                ErrorResponse(id=cancel.id, message=f"unknown job id {cancel.id!r}")
            )
            return
        if job.cancelled:
            return
        job.cancelled = True
        if job.task is not None and not job.task.done():
            # Running: the worker answers when the cancellation lands.
            job.task.cancel()
            return
        # Queued: answer now; the scheduler discards the entry lazily.
        self._release_slot(job)
        self.metrics.cancelled(job.tenant, job.kind)
        await connection.send(Cancelled(id=cancel.id))

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------

    async def _worker(self, index: int) -> None:
        assert self._queue is not None
        while True:
            job = await self._queue.pop()
            if job is None:
                return
            self.metrics.queue_sample(self._queue.queued, self._queue.active)
            self._quotas.job_started(job.tenant)
            try:
                await self._execute(job)
            except asyncio.CancelledError:
                # A job cancellation landing on _execute's own terminal
                # send must not take the worker loop down with it; the
                # worker still exits normally once the queue closes.
                pass
            finally:
                self._quotas.job_finished(job.tenant)
                self._release_slot(job)
                # Shield the counter bookkeeping: a cancellation landing
                # on this await would otherwise kill the worker with
                # _active never decremented (a later join() would hang).
                done = asyncio.ensure_future(self._queue.task_done(job))
                try:
                    await asyncio.shield(done)
                except asyncio.CancelledError:
                    await done
                self.metrics.queue_sample(self._queue.queued, self._queue.active)

    async def _execute(self, job: Job) -> None:
        connection: Connection = job.conn
        if job.cancelled:
            # Cancelled in the pop-to-start gap: the canceller already
            # answered and released the slot — do not answer twice.
            connection.jobs.pop(job.client_id, None)
            return
        job.task = asyncio.current_task()
        started = perf_counter()
        try:
            runner = JOB_RUNNERS[job.kind]
            result = await runner(job, self)
        except asyncio.CancelledError:
            # A cancelled *job* must not kill the worker task hosting
            # it; the send is best-effort (no await) because this task
            # has a pending cancellation.
            self.metrics.cancelled(job.tenant, job.kind)
            connection.send_best_effort(Cancelled(id=job.client_id))
            return
        except JobError as exc:
            self.metrics.failed(job.tenant, job.kind)
            await connection.send(ErrorResponse(id=job.client_id, message=str(exc)))
        except Exception as exc:  # defensive: report, never crash the worker
            _LOG.exception("job %d (%s) crashed", job.job_id, job.kind)
            self.metrics.failed(job.tenant, job.kind)
            await connection.send(
                ErrorResponse(
                    id=job.client_id, message=f"internal error: {exc}"
                )
            )
        else:
            if job.cancelled:
                # cancel raced completion: a task.cancel() may already be
                # pending on this task, so the send must not await
                self.metrics.cancelled(job.tenant, job.kind)
                connection.send_best_effort(Cancelled(id=job.client_id))
            else:
                self.metrics.completed(job.tenant, job.kind, perf_counter() - started)
                await connection.send(Result(id=job.client_id, data=result))
        finally:
            job.task = None
            connection.jobs.pop(job.client_id, None)

    async def send_partial(self, job: Job, data: dict) -> None:
        """Stream one partial answer for a running job."""
        job.partials += 1
        self.metrics.partial(job.tenant)
        await job.conn.send(Partial(id=job.client_id, seq=job.partials, data=data))


def make_server(
    traces: Dict[str, Union[str, Path]],
    registry: Optional[MetricsRegistry] = None,
    **config_kwargs,
) -> TraceServer:
    """Convenience constructor used by the CLI and the test harness."""
    config = ServeConfig(
        traces={name: Path(path) for name, path in traces.items()}, **config_kwargs
    )
    return TraceServer(config, registry=registry)
