"""The concurrent trace-replay engine.

Streams a saved trace (format v1 or v2, chunk-at-a-time through the
footer-indexed columnar reader) and replays its operations against any
:class:`~repro.kvstore.api.KVStore` backend, under one of three
executors:

* **inline** (``workers=1``) — the serial reference: one store, every
  operation applied in trace order by the calling thread;
* **thread** — a dispatcher fans operations out to N worker threads
  through bounded queues, sharded by key hash
  (:mod:`repro.replay.partition`), each worker owning a private shard
  store.  Same key → same shard → FIFO queue, so every key observes
  its serial op order; SCANs take a *sequencing barrier* (all queues
  drained) and run against the merged shard stores, so ranged reads
  see a consistent global state.  This executor supports open-loop
  pacing (token bucket) and the drop/abort admission policies — it is
  the load-generation mode, not a throughput mode: under the GIL,
  threads add queue overhead without parallel speedup;
* **process** — the throughput mode: each of N processes re-reads the
  trace itself (cheap, vectorized chunk parsing), filters to its key
  shard, and replays into a private store, mirroring
  :mod:`repro.core.parallel`.  Per-key ordering holds structurally
  (one pass in trace order per shard); SCANs are applied against the
  local shard only (bounded scans see a keyspace slice; state is
  unaffected, and the serial-vs-sharded fingerprint differential in
  :mod:`repro.replay.verify` stays exact).

Metrics land in the PR-3 obs registry under fixed names/buckets
(:mod:`repro.replay.metrics`); worker registries are absorbed into the
caller's registry in shard order, so totals are byte-identical to a
serial run and ``repro stats`` merges any set of replay dumps.
"""

from __future__ import annotations

import heapq
import queue
import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from time import perf_counter
from typing import Callable, Optional, Union

import numpy as np

from repro.core.trace import open_trace_chunks
from repro.errors import ReplayError, ReplayOverloadError, TransientIOError
from repro.kvstore.api import KVStore
from repro.kvstore.lsm import LSMConfig
from repro.obs import MetricsRegistry, get_registry, use_registry
from repro.replay.apply import OP_NAMES, OP_READ, OP_SCAN, apply_op
from repro.replay.backends import make_store
from repro.replay.metrics import ReplayMetrics
from repro.replay.pacing import make_pacer
from repro.replay.partition import chunk_shards
from repro.replay.verify import StateFingerprint, store_fingerprint

_NUM_OPS = len(OP_NAMES)
_GAUGE_EVERY = 1024  # dispatcher records between queue-depth samples

EXECUTORS = ("thread", "process")
ADMISSION_POLICIES = ("block", "drop", "abort")


@dataclass(frozen=True)
class ReplayConfig:
    """How to replay one trace."""

    backend: str = "memdb"
    workers: int = 1
    #: "thread" (pacing/backpressure-capable) or "process" (throughput)
    executor: str = "thread"
    #: target ops/s (open loop); None = closed loop (as fast as possible)
    pace: Optional[float] = None
    #: bounded dispatch queue depth per worker (thread executor)
    queue_depth: int = 1024
    #: "block" (backpressure), "drop" (shed reads), "abort" (overload error)
    admission: str = "block"
    #: max pairs returned per replayed SCAN
    scan_limit: int = 64
    #: observe every Nth op's latency (1 = every op)
    latency_sample: int = 1
    #: fingerprint final contents (the differential's input)
    fingerprint: bool = True
    chunk_size: Optional[int] = None
    lenient: bool = False
    lsm_config: Optional[LSMConfig] = None
    #: optional PR-2 fault plan wrapped around every shard store
    fault_plan: object = None

    def validated(self) -> "ReplayConfig":
        if self.workers < 1:
            raise ReplayError(f"workers must be >= 1, got {self.workers}")
        if self.executor not in EXECUTORS:
            raise ReplayError(
                f"executor must be one of {EXECUTORS}, got {self.executor!r}"
            )
        if self.admission not in ADMISSION_POLICIES:
            raise ReplayError(
                f"admission must be one of {ADMISSION_POLICIES}, "
                f"got {self.admission!r}"
            )
        if self.queue_depth < 1:
            raise ReplayError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.scan_limit < 0:
            raise ReplayError(f"scan_limit must be >= 0, got {self.scan_limit}")
        if self.latency_sample < 1:
            raise ReplayError(
                f"latency_sample must be >= 1, got {self.latency_sample}"
            )
        if self.pace is not None and self.pace <= 0:
            raise ReplayError(f"pace must be > 0 ops/s, got {self.pace}")
        if self.workers > 1 and self.executor == "process" and self.pace is not None:
            raise ReplayError("open-loop pacing requires the thread executor")
        return self


StoreFactory = Callable[[int], KVStore]


@dataclass
class ReplayReport:
    """Outcome of one replay run."""

    backend: str
    executor: str
    workers: int
    #: records consumed by the dispatcher (applied + dropped + failed)
    total_records: int
    applied: int
    dropped: int
    failed: int
    fault_retries: int
    barriers: int
    elapsed_s: float
    final_len: int
    per_op: dict[str, int]
    shard_lens: tuple[int, ...]
    fingerprint: Optional[StateFingerprint] = None
    pace: Optional[float] = None

    @property
    def ops_per_s(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.applied / self.elapsed_s

    def summary_line(self) -> str:
        fp = f", state {self.fingerprint}" if self.fingerprint is not None else ""
        return (
            f"{self.applied:,} ops on {self.backend} "
            f"({self.executor} x{self.workers}) in {self.elapsed_s:.2f}s "
            f"({self.ops_per_s:,.0f} ops/s){fp}"
        )

    def render(self) -> str:
        lines = [
            f"replayed {self.applied:,}/{self.total_records:,} ops "
            f"against {self.backend} "
            f"[{self.executor} executor, {self.workers} worker(s)]",
            f"  elapsed       {self.elapsed_s:.3f}s  ({self.ops_per_s:,.0f} ops/s"
            + (f", paced at {self.pace:,.0f} ops/s" if self.pace else "")
            + ")",
            "  per-op        "
            + "  ".join(
                f"{name}={count:,}" for name, count in self.per_op.items() if count
            ),
            f"  dropped={self.dropped:,}  failed={self.failed:,}  "
            f"fault_retries={self.fault_retries:,}  barriers={self.barriers:,}",
            f"  final store   {self.final_len:,} live pairs "
            f"(shards: {', '.join(str(n) for n in self.shard_lens)})",
        ]
        if self.fingerprint is not None:
            lines.append(f"  fingerprint   {self.fingerprint}")
        return "\n".join(lines)


@dataclass
class _ShardOutcome:
    """Per-shard result (picklable — crosses the process boundary)."""

    shard: int
    applied: int = 0
    per_op: tuple[int, ...] = (0,) * _NUM_OPS
    bytes_per_op: tuple[int, ...] = (0,) * _NUM_OPS
    failed: int = 0
    fault_retries: int = 0
    shard_len: int = 0
    fingerprint: Optional[StateFingerprint] = None
    snapshot: object = None  # RegistrySnapshot (process executor only)


def _default_factory(config: ReplayConfig) -> StoreFactory:
    return lambda shard: make_store(
        config.backend, lsm_config=config.lsm_config, fault_plan=config.fault_plan
    )


class _OpApplier:
    """Shared per-op application loop state: fault retry, sampling."""

    __slots__ = (
        "metrics",
        "scan_limit",
        "sample",
        "tick",
        "per_op",
        "bytes_per_op",
        "failed",
        "fault_retries",
    )

    def __init__(self, metrics: ReplayMetrics, scan_limit: int, sample: int) -> None:
        self.metrics = metrics
        self.scan_limit = scan_limit
        self.sample = sample
        self.tick = 0
        self.per_op = [0] * _NUM_OPS
        self.bytes_per_op = [0] * _NUM_OPS
        self.failed = 0
        self.fault_retries = 0

    def apply(self, store: KVStore, op: int, key: bytes, value_size: int) -> None:
        self.tick += 1
        timed = self.tick % self.sample == 0
        start = perf_counter() if timed else 0.0
        try:
            touched = apply_op(store, op, key, value_size, self.scan_limit)
        except TransientIOError:
            self.fault_retries += 1
            self.metrics.faults[op].inc()
            try:
                touched = apply_op(store, op, key, value_size, self.scan_limit)
            except TransientIOError:
                self.failed += 1
                self.metrics.failed[op].inc()
                return
        if timed:
            self.metrics.latency[op].observe(perf_counter() - start)
        self.per_op[op] += 1
        self.bytes_per_op[op] += touched

    def flush_counters(self) -> None:
        """Fold the loop-local tallies into the registry counters."""
        for op in range(_NUM_OPS):
            if self.per_op[op]:
                self.metrics.ops[op].inc(self.per_op[op])
            if self.bytes_per_op[op]:
                self.metrics.bytes[op].inc(self.bytes_per_op[op])
        self.metrics.records.inc(sum(self.per_op) + self.failed)

    @property
    def applied(self) -> int:
        return sum(self.per_op)


# ---------------------------------------------------------------------------
# inline / process-shard execution
# ---------------------------------------------------------------------------


def _replay_shard(
    path: Union[str, Path],
    config: ReplayConfig,
    shard: int,
    num_shards: int,
    registry: MetricsRegistry,
    store: Optional[KVStore] = None,
    paced: bool = False,
) -> _ShardOutcome:
    """Replay one key shard of the trace into one store, in trace order."""
    metrics = ReplayMetrics(registry)
    if store is None:
        store = _default_factory(config)(shard)
    applier = _OpApplier(metrics, config.scan_limit, config.latency_sample)
    pacer = make_pacer(config.pace) if paced else None
    apply = applier.apply
    for chunk in open_trace_chunks(
        path, chunk_size=config.chunk_size, lenient=config.lenient
    ):
        if num_shards > 1:
            selected = np.nonzero(chunk_shards(chunk, num_shards) == shard)[0]
            metrics.count_classes(chunk.class_ids[selected])
            indices = selected.tolist()
        else:
            metrics.count_classes(chunk.class_ids)
            indices = range(len(chunk))
        ops = chunk.ops.tolist()
        value_sizes = chunk.value_sizes.tolist()
        key_ids = chunk.key_ids.tolist()
        keys = chunk.keys
        for i in indices:
            if pacer is not None:
                pacer.acquire(1)
            apply(store, ops[i], keys[key_ids[i]], value_sizes[i])
    applier.flush_counters()
    return _ShardOutcome(
        shard=shard,
        applied=applier.applied,
        per_op=tuple(applier.per_op),
        bytes_per_op=tuple(applier.bytes_per_op),
        failed=applier.failed,
        fault_retries=applier.fault_retries,
        shard_len=len(store),
        fingerprint=store_fingerprint(store) if config.fingerprint else None,
    )


def _process_shard_worker(
    path: str, config: ReplayConfig, shard: int, num_shards: int
) -> _ShardOutcome:
    """Top-level (picklable) process-executor worker."""
    registry = MetricsRegistry()
    # Swap the process-wide registry so the shard store's object
    # collectors (bind_store_metrics) land in the snapshot we ship back.
    with use_registry(registry):
        outcome = _replay_shard(path, config, shard, num_shards, registry)
        outcome.snapshot = registry.snapshot()
    return outcome


# ---------------------------------------------------------------------------
# thread executor
# ---------------------------------------------------------------------------


@dataclass
class _WorkerState:
    store: KVStore
    registry: MetricsRegistry
    applier: _OpApplier
    error: Optional[BaseException] = None
    done: threading.Event = field(default_factory=threading.Event)


def _worker_loop(
    state: _WorkerState, jobs: "queue.Queue", stop: threading.Event
) -> None:
    applier = state.applier
    store = state.store
    while True:
        try:
            item = jobs.get(timeout=0.05)
        except queue.Empty:
            if stop.is_set():
                break
            continue
        try:
            if item is None:
                return
            if state.error is None:
                op, key, value_size = item
                applier.apply(store, op, key, value_size)
        except BaseException as exc:  # keep consuming so the dispatcher
            state.error = exc  # never deadlocks on a full queue
        finally:
            jobs.task_done()


class _ThreadedReplay:
    """Dispatcher + N shard worker threads over bounded queues."""

    def __init__(
        self,
        path: Union[str, Path],
        config: ReplayConfig,
        store_factory: StoreFactory,
    ) -> None:
        self.path = path
        self.config = config
        self.coordinator_registry = MetricsRegistry()
        self.metrics = ReplayMetrics(self.coordinator_registry)
        self.states = [
            _WorkerState(
                store=store_factory(shard),
                registry=(registry := MetricsRegistry()),
                applier=_OpApplier(
                    ReplayMetrics(registry), config.scan_limit, config.latency_sample
                ),
            )
            for shard in range(config.workers)
        ]
        self.queues = [
            queue.Queue(maxsize=config.queue_depth) for _ in range(config.workers)
        ]
        self.stop = threading.Event()
        self.threads = [
            threading.Thread(
                target=_worker_loop,
                args=(state, jobs, self.stop),
                name=f"replay-worker-{i}",
                daemon=True,
            )
            for i, (state, jobs) in enumerate(zip(self.states, self.queues))
        ]
        self.dropped = [0] * _NUM_OPS
        self.barriers = 0

    def _first_error(self) -> Optional[BaseException]:
        for state in self.states:
            if state.error is not None:
                return state.error
        return None

    def _barrier(self) -> None:
        """Wait until every queue is drained and every worker is idle."""
        for jobs in self.queues:
            jobs.join()
        self.barriers += 1
        self.metrics.barriers.inc()

    def _merged_scan(self, applier: _OpApplier, key: bytes) -> None:
        """Execute a SCAN against the union of shard stores (holds only
        under the barrier: all workers idle, no in-flight mutations)."""
        applier.tick += 1
        timed = applier.tick % applier.sample == 0
        start = perf_counter() if timed else 0.0
        touched = 0
        merged = heapq.merge(
            *(state.store.scan(key) for state in self.states),
            key=lambda pair: pair[0],
        )
        for index, (_, value) in enumerate(merged):
            if index >= applier.scan_limit:
                break
            touched += len(value)
        if timed:
            applier.metrics.latency[OP_SCAN].observe(perf_counter() - start)
        applier.per_op[OP_SCAN] += 1
        applier.bytes_per_op[OP_SCAN] += touched

    def _sample_queue_depths(self) -> None:
        gauge = self.metrics.queue_depth
        for worker, jobs in enumerate(self.queues):
            gauge.labels(worker=str(worker)).set(jobs.qsize())

    def _dispatch(self, scan_applier: _OpApplier) -> int:
        config = self.config
        pacer = make_pacer(config.pace)
        admission = config.admission
        queues = self.queues
        dispatched = 0
        for chunk in open_trace_chunks(
            self.path, chunk_size=config.chunk_size, lenient=config.lenient
        ):
            self.metrics.count_classes(chunk.class_ids)
            shards = chunk_shards(chunk, config.workers).tolist()
            ops = chunk.ops.tolist()
            value_sizes = chunk.value_sizes.tolist()
            key_ids = chunk.key_ids.tolist()
            keys = chunk.keys
            for i in range(len(chunk)):
                op = ops[i]
                key = keys[key_ids[i]]
                pacer.acquire(1)
                dispatched += 1
                if op == OP_SCAN:
                    self._barrier()
                    error = self._first_error()
                    if error is not None:
                        return dispatched
                    self._merged_scan(scan_applier, key)
                else:
                    jobs = queues[shards[i]]
                    item = (op, key, value_sizes[i])
                    if admission == "block":
                        jobs.put(item)
                    elif admission == "drop":
                        # Only reads are sheddable: dropping a mutation
                        # would fork the final state from serial replay.
                        if op == OP_READ and jobs.full():
                            self.dropped[op] += 1
                            self.metrics.dropped[op].inc()
                        else:
                            jobs.put(item)
                    else:  # abort
                        try:
                            jobs.put_nowait(item)
                        except queue.Full:
                            raise ReplayOverloadError(
                                f"worker {shards[i]} queue full "
                                f"(depth {config.queue_depth}) after "
                                f"{dispatched:,} records under admission=abort"
                            ) from None
                if dispatched % _GAUGE_EVERY == 0:
                    self._sample_queue_depths()
                    error = self._first_error()
                    if error is not None:
                        return dispatched
        return dispatched

    def run(self, registry: MetricsRegistry) -> ReplayReport:
        config = self.config
        scan_applier = _OpApplier(
            self.metrics, config.scan_limit, config.latency_sample
        )
        for thread in self.threads:
            thread.start()
        start = perf_counter()
        overload: Optional[ReplayOverloadError] = None
        try:
            dispatched = self._dispatch(scan_applier)
            for jobs in self.queues:
                jobs.join()
        except ReplayOverloadError as exc:
            overload = exc
            dispatched = 0
        finally:
            self.stop.set()
            for jobs in self.queues:
                try:
                    jobs.put_nowait(None)
                except queue.Full:
                    pass  # workers drain via the stop event
            for thread in self.threads:
                thread.join()
        elapsed = perf_counter() - start
        self._sample_queue_depths()  # all zero now
        if overload is not None:
            raise overload
        error = self._first_error()
        if error is not None:
            raise ReplayError(
                f"replay worker failed: {error!r}"
            ) from error
        scan_applier.flush_counters()
        for state in self.states:
            state.applier.flush_counters()
        # Absorb in deterministic shard order: coordinator first.
        registry.absorb(self.coordinator_registry.snapshot())
        for state in self.states:
            registry.absorb(state.registry.snapshot())
        per_op = list(scan_applier.per_op)
        applied = scan_applier.applied
        failed = retries = 0
        shard_lens = []
        fingerprint = StateFingerprint() if config.fingerprint else None
        for state in self.states:
            applier = state.applier
            for op in range(_NUM_OPS):
                per_op[op] += applier.per_op[op]
            applied += applier.applied
            failed += applier.failed
            retries += applier.fault_retries
            shard_lens.append(len(state.store))
            if fingerprint is not None:
                fingerprint = fingerprint.combine(store_fingerprint(state.store))
        return ReplayReport(
            backend=config.backend,
            executor="thread",
            workers=config.workers,
            total_records=dispatched,
            applied=applied,
            dropped=sum(self.dropped),
            failed=failed,
            fault_retries=retries,
            barriers=self.barriers,
            elapsed_s=elapsed,
            final_len=sum(shard_lens),
            per_op=dict(zip(OP_NAMES, per_op)),
            shard_lens=tuple(shard_lens),
            fingerprint=fingerprint,
            pace=config.pace,
        )


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def _report_from_outcomes(
    config: ReplayConfig,
    executor: str,
    outcomes: list[_ShardOutcome],
    elapsed: float,
) -> ReplayReport:
    per_op = [0] * _NUM_OPS
    applied = failed = retries = 0
    fingerprint = StateFingerprint() if config.fingerprint else None
    for outcome in outcomes:
        for op in range(_NUM_OPS):
            per_op[op] += outcome.per_op[op]
        applied += outcome.applied
        failed += outcome.failed
        retries += outcome.fault_retries
        if fingerprint is not None and outcome.fingerprint is not None:
            fingerprint = fingerprint.combine(outcome.fingerprint)
    return ReplayReport(
        backend=config.backend,
        executor=executor,
        workers=config.workers,
        total_records=applied + failed,
        applied=applied,
        dropped=0,
        failed=failed,
        fault_retries=retries,
        barriers=0,
        elapsed_s=elapsed,
        final_len=sum(outcome.shard_len for outcome in outcomes),
        per_op=dict(zip(OP_NAMES, per_op)),
        shard_lens=tuple(outcome.shard_len for outcome in outcomes),
        fingerprint=fingerprint,
        pace=config.pace,
    )


def _replay_inline(
    path: Union[str, Path],
    config: ReplayConfig,
    registry: MetricsRegistry,
    store_factory: Optional[StoreFactory],
) -> ReplayReport:
    factory = store_factory if store_factory is not None else _default_factory(config)
    start = perf_counter()
    outcome = _replay_shard(
        path, config, 0, 1, registry, store=factory(0), paced=True
    )
    elapsed = perf_counter() - start
    return _report_from_outcomes(replace(config, workers=1), "inline", [outcome], elapsed)


def _replay_processes(
    path: Union[str, Path],
    config: ReplayConfig,
    registry: MetricsRegistry,
) -> ReplayReport:
    workers = config.workers
    start = perf_counter()
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_process_shard_worker, str(path), config, shard, workers)
                for shard in range(workers)
            ]
            outcomes = [future.result() for future in futures]
    except ReplayError:
        raise
    except Exception as exc:
        raise ReplayError(f"process-sharded replay failed: {exc!r}") from exc
    elapsed = perf_counter() - start
    outcomes.sort(key=lambda outcome: outcome.shard)
    for outcome in outcomes:  # deterministic shard-order absorption
        if outcome.snapshot is not None:
            registry.absorb(outcome.snapshot)
    return _report_from_outcomes(config, "process", outcomes, elapsed)


def replay_trace(
    path: Union[str, Path],
    config: Optional[ReplayConfig] = None,
    *,
    registry: Optional[MetricsRegistry] = None,
    store_factory: Optional[StoreFactory] = None,
) -> ReplayReport:
    """Replay a saved trace file against a KV backend.

    ``registry`` defaults to the process-wide obs registry.
    ``store_factory(shard)`` overrides backend construction (inline and
    thread executors only — process workers build their own stores).
    """
    config = (config if config is not None else ReplayConfig()).validated()
    if registry is None:
        registry = get_registry()
    make_store(config.backend)  # fail fast on unknown backends
    if config.workers == 1:
        return _replay_inline(path, config, registry, store_factory)
    if config.executor == "process":
        if store_factory is not None:
            raise ReplayError(
                "store_factory is not supported by the process executor"
            )
        return _replay_processes(path, config, registry)
    factory = store_factory if store_factory is not None else _default_factory(config)
    return _ThreadedReplay(path, config, factory).run(registry)
