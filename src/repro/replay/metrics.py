"""Replay metric families, declared against the PR-3 obs registry.

Every family uses *fixed* names, labels, and — critically — fixed
exponential histogram buckets built by
:func:`repro.obs.exponential_buckets` from constants, so a snapshot
produced by any replay run (any worker, any process, any run of
``repro replay --metrics-out``) merges associatively with any other:
``repro stats`` can fold an arbitrary set of replay dumps into one
view.  ``tests/test_obs.py`` locks the merge down by name.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.classes import CLASS_LIST
from repro.obs import MetricsRegistry, exponential_buckets

#: Fixed latency bounds: 100 ns .. ~13 s in powers of two.  Store point
#: ops land well inside the low buckets; injected latency spikes and
#: barrier scans use the top.  Never derive bounds from observed data —
#: merges require every producer to share these exact bounds.
REPLAY_LATENCY_BUCKETS = exponential_buckets(1e-7, 2.0, 28)

#: Class label values in dense-class-id order (CLASS_LIST order).
_CLASS_NAMES = tuple(cls.value for cls in CLASS_LIST)


class ReplayMetrics:
    """Cached children for the replay families on one registry."""

    def __init__(self, registry: MetricsRegistry, worker: Optional[str] = None) -> None:
        self.registry = registry
        ops = registry.counter(
            "repro_replay_ops_total", "replayed operations", ("op",)
        )
        replay_bytes = registry.counter(
            "repro_replay_bytes_total", "value bytes touched by replay", ("op",)
        )
        dropped = registry.counter(
            "repro_replay_dropped_total",
            "operations shed by the drop admission policy",
            ("op",),
        )
        faults = registry.counter(
            "repro_replay_faults_total",
            "injected faults absorbed (op retried once)",
            ("op",),
        )
        failed = registry.counter(
            "repro_replay_failed_total",
            "operations that still failed after the fault retry",
            ("op",),
        )
        latency = registry.histogram(
            "repro_replay_latency_seconds",
            "per-operation service latency",
            ("op",),
            buckets=REPLAY_LATENCY_BUCKETS,
        )
        from repro.core.trace import OpType

        names = tuple(op.name.lower() for op in OpType)
        self.ops = tuple(ops.labels(op=name) for name in names)
        self.bytes = tuple(replay_bytes.labels(op=name) for name in names)
        self.dropped = tuple(dropped.labels(op=name) for name in names)
        self.faults = tuple(faults.labels(op=name) for name in names)
        self.failed = tuple(failed.labels(op=name) for name in names)
        self.latency = tuple(latency.labels(op=name) for name in names)
        self.class_ops = registry.counter(
            "repro_replay_class_ops_total", "replayed operations per KV class", ("kv_class",)
        )
        self.records = registry.counter(
            "repro_replay_records_total", "trace records consumed by the dispatcher"
        )
        self.barriers = registry.counter(
            "repro_replay_barriers_total", "scan sequencing barriers taken"
        )
        self.queue_depth = registry.gauge(
            "repro_replay_queue_depth", "dispatch queue occupancy", ("worker",)
        )
        self.worker = worker

    def count_classes(self, class_ids: np.ndarray) -> None:
        """Fold a chunk's (or shard slice's) dense class ids into the
        per-class counters with one bincount."""
        if len(class_ids) == 0:
            return
        counts = np.bincount(class_ids, minlength=len(_CLASS_NAMES))
        class_ops = self.class_ops
        for class_id in np.nonzero(counts)[0].tolist():
            class_ops.labels(kv_class=_CLASS_NAMES[class_id]).inc(
                int(counts[class_id])
            )
