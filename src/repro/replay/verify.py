"""Replay verification: state fingerprints and differential replay.

A :class:`StateFingerprint` condenses a store's live contents into an
*order-independent* digest: each ``(key, value)`` pair hashes to a
256-bit integer and the fingerprint is their sum modulo ``2**256``
plus the pair count.  Order independence makes the fingerprint
shard-composable — each replay worker fingerprints only its own
shard's store and the partials combine associatively — while the sum
(rather than XOR) keeps duplicated pairs across shards detectable
through the count.

``differential_replay`` is the correctness harness the property tests
and ``repro replay --verify`` run: replay the same trace serially and
sharded, then compare fingerprints.  Values are synthesized
deterministically from ``(key, size)`` (:mod:`repro.replay.apply`), so
equal fingerprints mean the concurrent engine applied, per key, the
same mutations in the same order as the serial reference.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Union

from repro.kvstore.api import KVStore

_LEN = struct.Struct("<II")
_MOD = 1 << 256


def pair_hash(key: bytes, value: bytes) -> int:
    """A 256-bit hash of one live ``(key, value)`` pair."""
    h = hashlib.sha256(_LEN.pack(len(key), len(value)))
    h.update(key)
    h.update(value)
    return int.from_bytes(h.digest(), "big")


@dataclass(frozen=True)
class StateFingerprint:
    """Order-independent digest of a set of live pairs."""

    count: int = 0
    digest: int = 0

    def combine(self, other: "StateFingerprint") -> "StateFingerprint":
        return StateFingerprint(
            count=self.count + other.count,
            digest=(self.digest + other.digest) % _MOD,
        )

    @property
    def hex(self) -> str:
        return f"{self.digest:064x}"

    def __str__(self) -> str:
        return f"{self.count} pairs, {self.hex[:16]}…"


def fingerprint_pairs(pairs: Iterable[tuple[bytes, bytes]]) -> StateFingerprint:
    count = 0
    digest = 0
    for key, value in pairs:
        digest = (digest + pair_hash(key, value)) % _MOD
        count += 1
    return StateFingerprint(count=count, digest=digest)


def store_fingerprint(store: KVStore) -> StateFingerprint:
    """Fingerprint every live pair of one store."""
    return fingerprint_pairs(store.scan(b""))


def combined_fingerprint(stores: Iterable[KVStore]) -> StateFingerprint:
    """Fingerprint the union of several shard stores."""
    out = StateFingerprint()
    for store in stores:
        out = out.combine(store_fingerprint(store))
    return out


class RecordingStore(KVStore):
    """A KVStore decorator that logs point-op order (test instrument).

    Appends ``(op_name, key)`` to :attr:`log` for every get/put/delete
    crossing the interface — the observation the per-key ordering
    property test compares against serial replay.  Scans and the
    end-of-run fingerprint pass are not logged (scans are cross-shard
    reads; their ordering contract is the barrier, not the log).
    """

    def __init__(self, inner: KVStore) -> None:
        self.inner = inner
        self.log: list[tuple[str, bytes]] = []

    def get(self, key: bytes) -> bytes:
        self.log.append(("get", key))
        return self.inner.get(key)

    def put(self, key: bytes, value: bytes) -> None:
        self.log.append(("put", key))
        self.inner.put(key, value)

    def delete(self, key: bytes) -> None:
        self.log.append(("delete", key))
        self.inner.delete(key)

    def has(self, key: bytes) -> bool:
        return self.inner.has(key)

    def scan(
        self, start: bytes, end: Optional[bytes] = None
    ) -> Iterator[tuple[bytes, bytes]]:
        return self.inner.scan(start, end)

    def __len__(self) -> int:
        return len(self.inner)

    def close(self) -> None:
        self.inner.close()


@dataclass(frozen=True)
class DifferentialResult:
    """Outcome of a serial-vs-sharded differential replay."""

    serial: "object"  # ReplayReport (forward ref avoids an import cycle)
    sharded: "object"
    match: bool

    def render(self) -> str:
        lines = [
            f"serial : {self.serial.summary_line()}",
            f"sharded: {self.sharded.summary_line()}",
            "final state: "
            + ("IDENTICAL" if self.match else "DIVERGENT — replay is not order-safe"),
        ]
        return "\n".join(lines)


def differential_replay(
    path: Union[str, "object"],
    config,
    registry=None,
) -> DifferentialResult:
    """Replay ``path`` serially and with ``config``'s workers; compare.

    The serial reference uses the same backend and scan limit but one
    inline worker; both runs fingerprint their final contents.
    """
    from dataclasses import replace

    from repro.replay.engine import replay_trace

    serial_config = replace(
        config, workers=1, executor="thread", pace=None, fingerprint=True
    )
    sharded_config = replace(config, fingerprint=True)
    serial = replay_trace(path, serial_config, registry=registry)
    sharded = replay_trace(path, sharded_config, registry=registry)
    return DifferentialResult(
        serial=serial,
        sharded=sharded,
        match=serial.fingerprint == sharded.fingerprint,
    )
