"""Key-hash shard partitioning for concurrent replay.

Every key is mapped to one of ``num_shards`` shards by a *stable* hash
(CRC32 — Python's builtin ``hash`` is seed-randomized per process, so
it could never be used across the process-sharded executor).  All
operations on a key land on the same shard, and each shard applies its
operations in trace order — that pair of facts *is* the per-key
sequencing barrier: the sub-sequence of operations any single key
observes is exactly the serial trace order, whatever the worker count
(locked down by ``tests/test_replay_properties.py``).
"""

from __future__ import annotations

from zlib import crc32

import numpy as np

from repro.core.columnar import TraceChunk


def shard_of(key: bytes, num_shards: int) -> int:
    """The shard owning ``key`` (stable across processes and runs)."""
    if num_shards <= 1:
        return 0
    return crc32(key) % num_shards


def key_shards(keys, num_shards: int) -> np.ndarray:
    """Per-key shard ids for an interned key table (``u32``)."""
    n = len(keys)
    out = np.fromiter((crc32(k) for k in keys), dtype=np.uint32, count=n)
    if num_shards > 1:
        out %= np.uint32(num_shards)
    else:
        out[:] = 0
    return out


def chunk_shards(chunk: TraceChunk, num_shards: int) -> np.ndarray:
    """Per-record shard ids for one columnar chunk.

    The hash is computed once per interned key and broadcast to the
    records through the chunk's ``key_ids`` column.
    """
    return np.take(key_shards(chunk.keys, num_shards), chunk.key_ids)
