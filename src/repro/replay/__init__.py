"""Concurrent trace-replay engine.

Replays recorded workload traces against any shipped KV backend under
sharded, order-preserving load.  See :mod:`repro.replay.engine` for the
executor model, :mod:`repro.replay.partition` for the per-key ordering
argument, and :mod:`repro.replay.verify` for the serial-vs-sharded
differential that proves it.
"""

from repro.replay.apply import OP_NAMES, apply_op, synth_value
from repro.replay.backends import BACKEND_NAMES, make_store
from repro.replay.engine import (
    ADMISSION_POLICIES,
    EXECUTORS,
    ReplayConfig,
    ReplayReport,
    replay_trace,
)
from repro.replay.metrics import REPLAY_LATENCY_BUCKETS, ReplayMetrics
from repro.replay.pacing import ClosedLoopPacer, TokenBucketPacer, make_pacer
from repro.replay.partition import chunk_shards, key_shards, shard_of
from repro.replay.verify import (
    DifferentialResult,
    RecordingStore,
    StateFingerprint,
    combined_fingerprint,
    differential_replay,
    fingerprint_pairs,
    store_fingerprint,
)

__all__ = [
    "ADMISSION_POLICIES",
    "BACKEND_NAMES",
    "EXECUTORS",
    "OP_NAMES",
    "REPLAY_LATENCY_BUCKETS",
    "ClosedLoopPacer",
    "DifferentialResult",
    "RecordingStore",
    "ReplayConfig",
    "ReplayMetrics",
    "ReplayReport",
    "StateFingerprint",
    "TokenBucketPacer",
    "apply_op",
    "chunk_shards",
    "combined_fingerprint",
    "differential_replay",
    "fingerprint_pairs",
    "key_shards",
    "make_pacer",
    "make_store",
    "replay_trace",
    "shard_of",
    "store_fingerprint",
    "synth_value",
]
