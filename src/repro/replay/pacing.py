"""Open-loop and closed-loop pacing for replay.

Closed-loop replay issues the next operation as soon as the previous
completes — the as-fast-as-possible mode every throughput bench uses.
Open-loop replay issues operations at a *target* rate regardless of
completion, which is how real load arrives at a node: a token bucket
refills at ``rate`` ops/s up to a ``burst`` ceiling, and the dispatcher
sleeps only when the bucket runs dry.  Combined with bounded worker
queues, open-loop pacing is what makes backpressure and the
drop/abort admission policies observable (queues fill when the target
rate exceeds what the backend sustains).

The clock and sleep functions are injectable so tests pace virtual
time instead of wall time.
"""

from __future__ import annotations

import time
from typing import Callable, Optional


class ClosedLoopPacer:
    """No pacing: every acquire returns immediately."""

    def acquire(self, n: int = 1) -> None:
        pass

    def try_acquire(self, n: int = 1) -> float:
        return 0.0


class TokenBucketPacer:
    """Token bucket targeting ``rate`` operations per second.

    ``burst`` bounds how far the bucket can fill while the dispatcher
    is busy (default: 20 ms of tokens, at least 1), so a stall is not
    followed by an unbounded catch-up burst.
    """

    def __init__(
        self,
        rate: float,
        burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if rate <= 0:
            raise ValueError("pace rate must be > 0 ops/s")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, self.rate / 50.0)
        if self.burst <= 0:
            raise ValueError("burst must be > 0 tokens")
        self._clock = clock
        self._sleep = sleep
        self._tokens = self.burst
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        self._last = now

    def try_acquire(self, n: int = 1) -> float:
        """Consume ``n`` tokens if available; else say how long to wait.

        Returns ``0.0`` when the tokens were consumed, otherwise the
        seconds until ``n`` tokens will have accumulated (nothing is
        consumed on failure).  This is the non-blocking primitive the
        async admission path in :mod:`repro.serve` builds on: an event
        loop must never call the blocking :meth:`acquire`, so it calls
        ``try_acquire`` and awaits the returned delay itself.

        Tokens within 1e-9 of ``n`` count as available: without the
        tolerance, a float-absorbed refill (a sub-epsilon sleep that
        does not advance the clock) could spin forever at 0.999…
        tokens.
        """
        self._refill()
        if self._tokens >= n - 1e-9:
            self._tokens -= n
            return 0.0
        return (n - self._tokens) / self.rate

    def acquire(self, n: int = 1) -> None:
        """Block until ``n`` tokens are available, then consume them."""
        wait = self.try_acquire(n)
        while wait > 0.0:
            self._sleep(wait)
            wait = self.try_acquire(n)


def make_pacer(rate: Optional[float]):
    """A pacer for a target rate; ``None``/0 means closed-loop."""
    if rate:
        return TokenBucketPacer(rate)
    return ClosedLoopPacer()
