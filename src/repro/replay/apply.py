"""Applying trace records to a live KV store.

Traces record value *sizes*, not value bytes (the analyses never need
them), so replay synthesizes deterministic values: an 8-byte header
derived from the key's CRC32 and the recorded size, padded with a fill
byte.  Because the value is a pure function of ``(key, size)``, any
divergence in *which* put was applied last to a key shows up as a byte
difference in the final store contents — that is what makes the
serial-vs-sharded differential in :mod:`repro.replay.verify` meaningful
rather than vacuous.

Operation mapping (mirrors how the tracing layer produced the records):

* WRITE / UPDATE — ``put`` (the distinction was derived from key
  pre-existence at capture time; on replay both are puts);
* READ — ``get_or_none`` (a miss at capture time replays as a miss);
* DELETE — ``delete`` (blind delete, Pebble semantics);
* SCAN — a bounded range scan starting at the recorded key.
"""

from __future__ import annotations

import struct
from zlib import crc32

from repro.core.trace import OpType
from repro.kvstore.api import KVStore

_HEADER = struct.Struct("<II")
_FILL = b"\xa5"
_fill_cache: dict[int, bytes] = {}

#: int opcode constants (hot loops index by int, not enum)
OP_WRITE = int(OpType.WRITE)
OP_UPDATE = int(OpType.UPDATE)
OP_READ = int(OpType.READ)
OP_DELETE = int(OpType.DELETE)
OP_SCAN = int(OpType.SCAN)

#: op label values in OpType code order (metric label + report keys)
OP_NAMES = tuple(op.name.lower() for op in OpType)


def synth_value(key: bytes, size: int) -> bytes:
    """The deterministic replay value for ``(key, size)``."""
    if size <= 0:
        return b""
    header = _HEADER.pack(crc32(key), size & 0xFFFFFFFF)
    if size <= _HEADER.size:
        return header[:size]
    pad = size - _HEADER.size
    fill = _fill_cache.get(pad)
    if fill is None:
        # Cache pads only at modest sizes; huge one-off values are rare.
        fill = _FILL * pad
        if pad <= 1 << 20:
            _fill_cache[pad] = fill
    return header + fill


def apply_op(
    store: KVStore, op: int, key: bytes, value_size: int, scan_limit: int
) -> int:
    """Apply one trace operation; returns the value bytes touched."""
    if op == OP_WRITE or op == OP_UPDATE:
        store.put(key, synth_value(key, value_size))
        return value_size if value_size > 0 else 0
    if op == OP_READ:
        value = store.get_or_none(key)
        return len(value) if value is not None else 0
    if op == OP_DELETE:
        store.delete(key)
        return 0
    if op == OP_SCAN:
        touched = 0
        for index, (_, value) in enumerate(store.scan(key)):
            if index >= scan_limit:
                break
            touched += len(value)
        return touched
    raise ValueError(f"unknown trace opcode {op}")
