"""Backend factory: one name → one fresh ``KVStore``.

Replay drives any of the five shipped backends — the reference memdb,
the B+-tree, the hash-indexed log, the leveled LSM simulator, and the
paper's §V class-routed hybrid — through the one :class:`KVStore`
interface, optionally wrapped in the PR-2
:class:`~repro.faults.store.FaultInjectingStore` so recorded workloads
can be replayed against a misbehaving disk.
"""

from __future__ import annotations

from typing import Optional

from repro.kvstore.api import KVStore
from repro.kvstore.lsm import LSMConfig

#: Stable backend names, in documentation order.
BACKEND_NAMES = ("memdb", "btree", "hashlog", "lsm", "hybrid")


def make_store(
    name: str,
    *,
    lsm_config: Optional[LSMConfig] = None,
    fault_plan=None,
) -> KVStore:
    """A fresh store of the named backend.

    ``lsm_config`` shapes the LSM used by the ``lsm`` backend and by
    the ordered/default routes of ``hybrid``.  When ``fault_plan`` is
    given the store is wrapped in a
    :class:`~repro.faults.store.FaultInjectingStore`, composing replay
    with the fault-injection layer.
    """
    if name == "memdb":
        from repro.kvstore.memdb import MemoryKVStore

        store: KVStore = MemoryKVStore()
    elif name == "btree":
        from repro.kvstore.btree import BPlusTreeStore

        store = BPlusTreeStore()
    elif name == "hashlog":
        from repro.kvstore.hashlog import HashLogStore

        store = HashLogStore()
    elif name == "lsm":
        from repro.kvstore.lsm import LSMStore

        store = LSMStore(lsm_config)
    elif name == "hybrid":
        from repro.hybrid import HybridKVStore

        store = HybridKVStore(lsm_config=lsm_config)
    else:
        known = ", ".join(BACKEND_NAMES)
        raise ValueError(f"unknown replay backend {name!r}; known: {known}")
    if fault_plan is not None:
        from repro.faults.store import FaultInjectingStore

        store = FaultInjectingStore(store, fault_plan)
    return store
