"""Deterministic fault injection and crash-consistency testing.

The subsystem has three parts:

* :mod:`repro.faults.plan` — seeded fault schedules (:class:`FaultPlan`,
  :class:`FaultRule`) evaluated at named crash points and store ops;
* :mod:`repro.faults.store` — :class:`FaultInjectingStore`, a KVStore
  decorator that injects transient I/O errors, latency spikes, and
  kills under any backend;
* :mod:`repro.faults.harness` — the crash-consistency harness: kill a
  sync run at a sampled crash point, recover, and diff a structural
  digest against an uninterrupted reference run (the ``repro
  crashtest`` CLI verb).
"""

from repro.faults.harness import (
    CaseResult,
    ConsistencyDigest,
    CrashTestConfig,
    CrashTestReport,
    Divergence,
    compare_digests,
    consistency_digest,
    reference_digest,
    run_crash_case,
    run_crash_sweep,
    settle,
    sweep_points,
)
from repro.faults.plan import (
    FaultEvent,
    FaultKind,
    FaultPlan,
    FaultRule,
    LatencyModel,
    seeded_stream,
)
from repro.faults.store import FaultInjectingStore

__all__ = [
    "CaseResult",
    "ConsistencyDigest",
    "CrashTestConfig",
    "CrashTestReport",
    "Divergence",
    "FaultEvent",
    "FaultInjectingStore",
    "FaultKind",
    "FaultPlan",
    "FaultRule",
    "LatencyModel",
    "seeded_stream",
    "compare_digests",
    "consistency_digest",
    "reference_digest",
    "run_crash_case",
    "run_crash_sweep",
    "settle",
    "sweep_points",
]
