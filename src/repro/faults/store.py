"""A fault-injecting KVStore wrapper.

:class:`FaultInjectingStore` conforms to the :class:`~repro.kvstore.api.KVStore`
ABC and delegates every operation to an inner store after consulting a
:class:`~repro.faults.plan.FaultPlan` — so any backend (memdb, btree,
hashlog, LSM, hybrid) can run under injected transient I/O errors,
latency spikes, or kills without modification.

The wrapper composes with the tracing layer the same way the backends
do: ``GethDatabase(store=FaultInjectingStore(MemoryKVStore(), plan))``
yields ``TracingKVStore -> FaultInjectingStore -> MemoryKVStore``;
faults fire after trace capture, like a failing disk under a healthy
syscall layer.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.faults.plan import FaultPlan
from repro.kvstore.api import KVStore


class FaultInjectingStore(KVStore):
    """KVStore decorator that evaluates a fault plan on every operation."""

    def __init__(self, inner: KVStore, plan: Optional[FaultPlan] = None) -> None:
        self.inner = inner
        self.plan = plan if plan is not None else FaultPlan()
        #: callers may bump this so injected faults carry block context
        self.block_height = 0

    def _check(self, op: str, key: bytes = b"") -> None:
        self.plan.on_store_op(op, key, self.block_height)

    # -- KVStore interface ----------------------------------------------------

    def get(self, key: bytes) -> bytes:
        self._check("get", key)
        return self.inner.get(key)

    def put(self, key: bytes, value: bytes) -> None:
        self._check("put", key)
        self.inner.put(key, value)

    def delete(self, key: bytes) -> None:
        self._check("delete", key)
        self.inner.delete(key)

    def has(self, key: bytes) -> bool:
        self._check("has", key)
        return self.inner.has(key)

    def scan(
        self, start: bytes, end: Optional[bytes] = None
    ) -> Iterator[tuple[bytes, bytes]]:
        self._check("scan", start)
        return self.inner.scan(start, end)

    def __len__(self) -> int:
        return len(self.inner)

    def close(self) -> None:
        self.inner.close()

    def unwrap(self) -> KVStore:
        """The healthy store underneath (for post-mortem inspection)."""
        return self.inner
