"""Crash-consistency harness.

Runs the full-sync pipeline under a deterministic :class:`FaultPlan`,
kills it at a sampled crash point, drives the recovery path
(:func:`repro.sync.recovery.resume`) until the chain reaches the same
head an uninterrupted run would, and then compares a structural digest
of the recovered database against the reference run's digest.

The digest covers everything recovery is responsible for: the state
trie root, the flat snapshot contents, the freezer and tx-index
cursors, the canonical head, and per-class key counts.  A divergence
in any field means the crash left state that recovery failed to
repair — the exact bug class this harness exists to catch.

The sweep runs cached configurations (snapshot on/off).  The BareTrace
mode commits state mid-block and is deliberately excluded: path-keyed
trie nodes written by a torn mid-block commit cannot be rewound (there
is no flush-boundary discipline to rewind *to*), which mirrors why
Geth's path scheme requires the buffered commit discipline in the
first place.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Optional

from repro.core.classes import (
    SNAPSHOT_ACCOUNT_PREFIX,
    SNAPSHOT_STORAGE_PREFIX,
    classify_key,
)
from repro.errors import CrashPoint, SimulatedCrash
from repro.faults.plan import FaultKind, FaultPlan, FaultRule
from repro.gethdb import schema
from repro.gethdb.database import DBConfig, GethDatabase
from repro.kvstore.api import prefix_upper_bound
from repro.sync.driver import FullSyncDriver, SyncConfig
from repro.sync.recovery import resume
from repro.workload.generator import WorkloadConfig, WorkloadGenerator

#: crash points that only fire inside snapshot regeneration; they need
#: a preliminary unclean kill so the resume path actually regenerates
SNAPSHOT_REGEN_POINTS = (
    CrashPoint.SNAPSHOT_REGEN_WIPE,
    CrashPoint.SNAPSHOT_REGEN_WALK,
    CrashPoint.SNAPSHOT_REGEN_FINALIZE,
)


@dataclass(frozen=True)
class CrashTestConfig:
    """Scaled-down sync run sized so a full sweep stays CI-friendly."""

    blocks: int = 64
    warmup: int = 16
    seed: int = 7
    snapshot: bool = True
    accounts: int = 400
    contracts: int = 60
    txs_per_block: int = 8
    trie_flush_interval: int = 8
    cache_bytes: int = 4 * 1024 * 1024
    #: independent kill offsets sampled per crash point
    cases_per_point: int = 1
    #: recovery attempts before a case is declared stuck
    max_crashes: int = 12

    @property
    def target_head(self) -> int:
        return self.warmup + self.blocks

    def sync_config(self) -> SyncConfig:
        """Cadences scaled so freezing, unindexing, bloom sections and
        snapshot-root maintenance all happen inside the short run."""
        return SyncConfig(
            db=DBConfig(
                caching_enabled=True,
                snapshot_enabled=self.snapshot,
                cache_bytes=self.cache_bytes,
            ),
            warmup_blocks=self.warmup,
            freezer_threshold=24,
            freezer_batch=4,
            txlookup_limit=20,
            bloom_section_size=32,
            bloom_tracked_bits=8,
            stateid_retention=16,
            laststateid_flush_interval=16,
            skeleton_window=64,
            snapshot_root_interval=25,
            trie_flush_interval=self.trie_flush_interval,
        )

    def workload_config(self) -> WorkloadConfig:
        return WorkloadConfig(
            seed=self.seed,
            initial_eoa_accounts=self.accounts,
            initial_contracts=self.contracts,
            txs_per_block=self.txs_per_block,
        )


@dataclass(frozen=True)
class ConsistencyDigest:
    """Structural fingerprint of a settled database."""

    head_number: int
    head_hash: str
    state_root: str
    #: sha256 over the sorted flat-snapshot entries ("-" when disabled)
    snapshot_digest: str
    frozen_until: int
    txindex_tail: int
    #: per-class live key counts, sorted by class name
    class_counts: tuple[tuple[str, int], ...]


@dataclass(frozen=True)
class Divergence:
    """One digest field where recovery and reference disagree."""

    field: str
    reference: str
    observed: str

    def __str__(self) -> str:
        return f"{self.field}: reference={self.reference} observed={self.observed}"


@dataclass
class CaseResult:
    """Outcome of one crash/recover/verify cycle."""

    label: str
    point: str
    min_block: int
    crashes: int
    triggered: bool
    divergences: list[Divergence] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None and not self.divergences


@dataclass
class CrashTestReport:
    """All cases of one sweep."""

    config: CrashTestConfig
    cases: list[CaseResult] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.cases)

    @property
    def triggered(self) -> int:
        return sum(1 for case in self.cases if case.triggered)

    @property
    def divergent(self) -> int:
        return sum(1 for case in self.cases if not case.ok)

    @property
    def ok(self) -> bool:
        return self.divergent == 0

    def render(self) -> str:
        lines = [
            f"crash-consistency sweep: blocks={self.config.blocks} "
            f"warmup={self.config.warmup} seed={self.config.seed} "
            f"snapshot={'on' if self.config.snapshot else 'off'}",
            f"{'case':<34} {'kill>=blk':>9} {'crashes':>7} {'status':<10}",
        ]
        for case in self.cases:
            if case.error is not None:
                status = "ERROR"
            elif case.divergences:
                status = "DIVERGED"
            elif not case.triggered:
                status = "untriggered"
            else:
                status = "ok"
            lines.append(
                f"{case.label:<34} {case.min_block:>9} {case.crashes:>7} {status:<10}"
            )
            for div in case.divergences:
                lines.append(f"    {div}")
            if case.error is not None:
                lines.append(f"    {case.error}")
        lines.append(
            f"{self.total} cases, {self.triggered} triggered, "
            f"{self.divergent} divergent"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# digests
# ---------------------------------------------------------------------------


def settle(driver: FullSyncDriver) -> None:
    """Flush every in-memory layer so the store is directly comparable.

    The trie dirty buffer and the snapshot diff layers hold state that
    is durable-by-journal rather than durable-in-store; flushing both
    makes the digest independent of *where* each run happened to be in
    its flush cadence.
    """
    db = driver.db
    db.set_tracing(False)
    db.begin_block(driver._head_number)  # noqa: SLF001
    driver.state.flush_trie_nodes()
    if db.config.snapshot_enabled:
        driver.snapshots.flush_all()
    db.commit_batch()


def consistency_digest(driver: FullSyncDriver) -> ConsistencyDigest:
    """Settle the driver and fingerprint its database.

    ``SnapshotRoot`` is excluded from the key counts: Geth's maintenance
    deletes and rewrites it on its own cadence, and recovery legitimately
    resets that cadence — its presence is not a consistency property.
    """
    settle(driver)
    inner = driver.db.store.inner
    counts: dict[str, int] = {}
    for key, _ in inner.scan(b""):
        if key == schema.SNAPSHOT_ROOT_KEY:
            continue
        name = classify_key(key).value
        counts[name] = counts.get(name, 0) + 1

    snap = hashlib.sha256()
    entries = 0
    for prefix in (SNAPSHOT_ACCOUNT_PREFIX, SNAPSHOT_STORAGE_PREFIX):
        for key, value in inner.scan(prefix, prefix_upper_bound(prefix)):
            snap.update(len(key).to_bytes(4, "big"))
            snap.update(key)
            snap.update(len(value).to_bytes(4, "big"))
            snap.update(value)
            entries += 1
    snapshot_digest = snap.hexdigest() if entries else "-"

    return ConsistencyDigest(
        head_number=driver._head_number,  # noqa: SLF001
        head_hash=driver._head_hash.hex(),  # noqa: SLF001
        state_root=driver.state._account_trie.root_hash().hex(),  # noqa: SLF001
        snapshot_digest=snapshot_digest,
        frozen_until=driver.freezer.frozen_until,
        txindex_tail=driver.txindexer.tail,
        class_counts=tuple(sorted(counts.items())),
    )


def compare_digests(
    reference: ConsistencyDigest, observed: ConsistencyDigest
) -> list[Divergence]:
    divergences = []
    for name in (
        "head_number",
        "head_hash",
        "state_root",
        "snapshot_digest",
        "frozen_until",
        "txindex_tail",
    ):
        ref, obs = getattr(reference, name), getattr(observed, name)
        if ref != obs:
            divergences.append(Divergence(name, str(ref), str(obs)))
    ref_counts = dict(reference.class_counts)
    obs_counts = dict(observed.class_counts)
    for cls in sorted(set(ref_counts) | set(obs_counts)):
        if ref_counts.get(cls, 0) != obs_counts.get(cls, 0):
            divergences.append(
                Divergence(
                    f"count[{cls}]",
                    str(ref_counts.get(cls, 0)),
                    str(obs_counts.get(cls, 0)),
                )
            )
    return divergences


def reference_digest(config: CrashTestConfig) -> ConsistencyDigest:
    """Digest of the uninterrupted run every crash case must match."""
    driver = FullSyncDriver(
        config.sync_config(),
        WorkloadGenerator(config.workload_config()),
        name="reference",
    )
    driver.run(config.blocks)
    return consistency_digest(driver)


# ---------------------------------------------------------------------------
# case execution
# ---------------------------------------------------------------------------


def _persisted_head(db: GethDatabase) -> int:
    """Head block number as the durable store sees it (post-crash)."""
    inner = db.store.inner
    head_hash = inner.get_or_none(schema.LAST_BLOCK_KEY)
    if head_hash is None:
        raise SimulatedCrash(CrashPoint.BATCH_COMMIT_BEFORE, 0, "no LastBlock")
    number_blob = inner.get_or_none(schema.header_number_key(head_hash))
    if number_blob is None:
        raise SimulatedCrash(CrashPoint.BATCH_COMMIT_BEFORE, 0, "no HeaderNumber")
    return int.from_bytes(number_blob, "big")


def run_crash_case(
    config: CrashTestConfig,
    rules: list[FaultRule],
    label: str,
    reference: ConsistencyDigest,
) -> CaseResult:
    """Run to the target head through crashes, then diff against reference.

    The loop mirrors an operator restarting a crashed node: read the
    durable head, :func:`resume`, import until the target, shut down
    cleanly.  Crashes during recovery itself (e.g. inside snapshot
    regeneration) simply go around the loop again; one-shot rules
    guarantee progress, ``max_crashes`` guards against the ones that
    don't.
    """
    plan = FaultPlan(rules, seed=config.seed)
    plan.validate()
    sync_config = config.sync_config()
    workload_config = config.workload_config()
    min_block = min((rule.min_block for rule in rules), default=0)
    point = next(
        (rule.point.value for rule in rules if rule.point is not None), "store-op"
    )

    db = GethDatabase(sync_config.db, fault_plan=plan)
    driver = FullSyncDriver(
        sync_config, WorkloadGenerator(workload_config), name=label, database=db
    )
    crashes = 0
    clean = False
    try:
        driver.run(config.blocks)
        clean = True
    except SimulatedCrash:
        crashes += 1

    while not clean:
        if crashes > config.max_crashes:
            return CaseResult(
                label=label,
                point=point,
                min_block=min_block,
                crashes=crashes,
                triggered=bool(plan.events),
                error=f"exceeded {config.max_crashes} crash/recovery cycles",
            )
        try:
            head = _persisted_head(db)
            driver, _ = resume(db, sync_config, workload_config, head, name=label)
            while driver._head_number < config.target_head:  # noqa: SLF001
                driver._import_next_block()  # noqa: SLF001
            driver.shutdown()
            clean = True
        except SimulatedCrash:
            crashes += 1

    plan.disarm()
    divergences = compare_digests(reference, consistency_digest(driver))
    return CaseResult(
        label=label,
        point=point,
        min_block=min_block,
        crashes=crashes,
        triggered=bool(plan.events),
        divergences=divergences,
    )


# ---------------------------------------------------------------------------
# the sweep
# ---------------------------------------------------------------------------


def sweep_points(config: CrashTestConfig) -> list[CrashPoint]:
    """Crash points reachable under ``config``.

    Migration crash points live inside the ``repro.migrate`` engine
    and never fire during a sync run; they have their own sweep
    (:func:`repro.migrate.harness.run_migrate_crash_sweep`).
    """
    from repro.errors import MIGRATION_POINTS

    points = [p for p in CrashPoint if p not in MIGRATION_POINTS]
    if not config.snapshot:
        points = [p for p in points if p not in SNAPSHOT_REGEN_POINTS]
    return points


def _rules_for(
    point: CrashPoint, min_block: int, rng: random.Random
) -> list[FaultRule]:
    if point in SNAPSHOT_REGEN_POINTS:
        # Regeneration only runs after an unclean restart: pair an
        # in-run kill with the regen-point kill (fires during resume).
        return [
            FaultRule(
                kind=FaultKind.KILL,
                point=CrashPoint.BATCH_COMMIT_AFTER,
                min_block=min_block,
            ),
            FaultRule(kind=FaultKind.KILL, point=point),
        ]
    if point is CrashPoint.BATCH_COMMIT_TORN:
        return [
            FaultRule(
                kind=FaultKind.TORN_COMMIT,
                point=point,
                min_block=min_block,
                tear_fraction=rng.uniform(0.15, 0.85),
            )
        ]
    return [FaultRule(kind=FaultKind.KILL, point=point, min_block=min_block)]


def run_crash_sweep(
    config: Optional[CrashTestConfig] = None,
    points: Optional[list[CrashPoint]] = None,
) -> CrashTestReport:
    """One crash case per (point, sampled kill block); compare them all.

    Kill blocks are sampled inside the measured window with a seeded
    RNG, so the same seed always sweeps the same schedule.
    """
    config = config if config is not None else CrashTestConfig()
    rng = random.Random(config.seed)
    if points is None:
        points = sweep_points(config)
    reference = reference_digest(config)
    report = CrashTestReport(config=config)
    for point in points:
        for case_index in range(config.cases_per_point):
            offset = rng.randrange(1, config.blocks + 1)
            min_block = config.warmup + offset
            label = f"{point.value}@{min_block}"
            if config.cases_per_point > 1:
                label += f"#{case_index}"
            report.cases.append(
                run_crash_case(config, _rules_for(point, min_block, rng), label, reference)
            )
    return report
