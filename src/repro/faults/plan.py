"""Deterministic fault plans.

A :class:`FaultPlan` is a seeded schedule of failures evaluated at two
kinds of sites:

* **crash points** — named locations threaded through
  :class:`~repro.gethdb.database.GethDatabase` and the sync driver
  (see :class:`~repro.errors.CrashPoint`), where a plan may kill the
  run (:class:`~repro.errors.SimulatedCrash`) or tear a batch commit;
* **store operations** — every call crossing the
  :class:`~repro.faults.store.FaultInjectingStore` wrapper, where a
  plan may raise a transient :class:`~repro.errors.TransientIOError`,
  inject a latency spike, or kill the run.

Rules fire deterministically: each rule counts only its own matching
events (gated by ``min_block``) and triggers on the ``at_count``-th
one, so the same plan over the same workload always fails at the same
place.  Every evaluation that fires is recorded in :attr:`FaultPlan.events`
for harnesses and tests.
"""

from __future__ import annotations

import enum
import hashlib
import random
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import CrashPoint, FaultInjectionError, SimulatedCrash, TransientIOError


def seeded_stream(seed: int, *labels: object) -> random.Random:
    """A ``random.Random`` derived from ``seed`` and a label path.

    Hashing the labels gives every consumer (each fault rule, each
    simulated peer, each latency model) its own independent but fully
    reproducible stream: the same ``(seed, labels)`` always yields the
    same draws, and adding a consumer never perturbs any other stream.
    """
    digest = hashlib.sha256(
        b"\x00".join([str(seed).encode()] + [str(label).encode() for label in labels])
    ).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


@dataclass(frozen=True)
class LatencyModel:
    """A seeded base-plus-jitter latency distribution.

    Samples are ``base_s`` plus a uniform draw in ``[0, jitter_s)``
    from the supplied stream, all scaled by ``scale``.  Shared by
    :class:`~repro.faults.store.FaultInjectingStore` latency rules and
    the simulated peer network so neither duplicates seeding logic.
    """

    base_s: float = 0.01
    jitter_s: float = 0.005
    scale: float = 1.0

    def sample(self, rng: random.Random) -> float:
        jitter = rng.uniform(0.0, self.jitter_s) if self.jitter_s > 0 else 0.0
        return max(0.0, (self.base_s + jitter) * self.scale)

    def scaled(self, factor: float) -> "LatencyModel":
        return LatencyModel(self.base_s, self.jitter_s, self.scale * factor)


class FaultKind(enum.Enum):
    """What a rule does when it fires."""

    #: raise SimulatedCrash (process-kill analog)
    KILL = "kill"
    #: apply only a prefix of the batch, then raise SimulatedCrash
    #: (only meaningful at CrashPoint.BATCH_COMMIT_TORN)
    TORN_COMMIT = "torn-commit"
    #: raise TransientIOError from one store operation
    IO_ERROR = "io-error"
    #: sleep ``delay_s`` inside one store operation
    LATENCY = "latency"
    #: a simulated peer drops one request (no reply at all)
    PEER_DROP = "peer-drop"
    #: a simulated peer serves one request slowly (scaled latency)
    PEER_SLOW = "peer-slow"


@dataclass
class FaultRule:
    """One failure in a plan.

    ``point`` targets a crash point (KILL / TORN_COMMIT); ``op`` targets
    a store operation name (``"get"``, ``"put"``, ``"delete"``,
    ``"scan"``, ``"has"``, or ``"*"`` for any) for IO_ERROR / LATENCY /
    KILL.  The rule's private counter increments on each matching event
    with ``block >= min_block``; the rule fires on event number
    ``at_count`` (1-based) and, being one-shot, never again.
    """

    kind: FaultKind
    point: Optional[CrashPoint] = None
    op: Optional[str] = None
    #: peer id targeted by PEER_DROP / PEER_SLOW rules (``"*"`` = any)
    peer: Optional[str] = None
    at_count: int = 1
    min_block: int = 0
    #: latency injected by LATENCY rules, seconds (base of the jitter draw)
    delay_s: float = 0.0
    #: uniform jitter added on top of ``delay_s``, drawn per firing from
    #: the rule's private seeded stream
    jitter_s: float = 0.0
    #: latency multiplier applied by PEER_SLOW rules
    slow_factor: float = 4.0
    #: how many matching events the rule stays live for (one-shot by
    #: default; peer rules often want a burst)
    repeat: int = 1
    #: fraction of the batch applied before a TORN_COMMIT crash
    tear_fraction: float = 0.5
    seen: int = field(default=0, compare=False)
    fired: bool = field(default=False, compare=False)
    triggered: int = field(default=0, compare=False)

    def matches_point(self, point: CrashPoint, block: int) -> bool:
        return (
            not self.fired
            and self.point is point
            and block >= self.min_block
            and self.kind in (FaultKind.KILL, FaultKind.TORN_COMMIT)
        )

    def matches_op(self, op: str, block: int) -> bool:
        return (
            not self.fired
            and self.op is not None
            and (self.op == "*" or self.op == op)
            and block >= self.min_block
            and self.kind in (FaultKind.KILL, FaultKind.IO_ERROR, FaultKind.LATENCY)
        )

    def matches_peer(self, peer: str, block: int) -> bool:
        return (
            not self.fired
            and self.peer is not None
            and (self.peer == "*" or self.peer == peer)
            and block >= self.min_block
            and self.kind in (FaultKind.PEER_DROP, FaultKind.PEER_SLOW)
        )

    def tick(self) -> bool:
        """Count one matching event; return True when the rule fires.

        A rule fires on matching events ``at_count`` through
        ``at_count + repeat - 1`` (both 1-based), then retires.
        """
        self.seen += 1
        if self.seen >= self.at_count:
            self.triggered += 1
            if self.triggered >= self.repeat:
                self.fired = True
            return True
        return False


@dataclass(frozen=True)
class FaultEvent:
    """One rule firing, for harness reports and test assertions."""

    kind: FaultKind
    site: str
    block: int
    detail: str = ""


class FaultPlan:
    """A deterministic, disarmable schedule of :class:`FaultRule`\\ s."""

    def __init__(self, rules: Optional[list[FaultRule]] = None, seed: int = 0) -> None:
        self.rules: list[FaultRule] = list(rules) if rules else []
        self.seed = seed
        self.armed = True
        self.events: list[FaultEvent] = []
        self._streams: dict[int, random.Random] = {}

    def rule_stream(self, rule: FaultRule) -> random.Random:
        """The private seeded RNG stream for one rule's draws.

        Keyed by the rule's position in the plan so two otherwise-equal
        rules still draw independently.
        """
        index = next(i for i, r in enumerate(self.rules) if r is rule)
        if index not in self._streams:
            self._streams[index] = seeded_stream(self.seed, "rule", index)
        return self._streams[index]

    # -- construction helpers -------------------------------------------------

    @classmethod
    def kill_at(
        cls, point: CrashPoint, min_block: int = 0, at_count: int = 1, seed: int = 0
    ) -> "FaultPlan":
        """Plan with a single kill rule at ``point``."""
        kind = (
            FaultKind.TORN_COMMIT
            if point is CrashPoint.BATCH_COMMIT_TORN
            else FaultKind.KILL
        )
        return cls(
            [FaultRule(kind=kind, point=point, min_block=min_block, at_count=at_count)],
            seed=seed,
        )

    def add(self, rule: FaultRule) -> "FaultPlan":
        self.rules.append(rule)
        return self

    # -- lifecycle ------------------------------------------------------------

    def disarm(self) -> None:
        """Stop evaluating rules (used before reference/settle phases)."""
        self.armed = False

    def rearm(self) -> None:
        self.armed = True

    @property
    def pending_rules(self) -> int:
        return sum(1 for rule in self.rules if not rule.fired)

    # -- crash-point evaluation ----------------------------------------------

    def on_crash_point(self, point: CrashPoint, block: int = 0) -> None:
        """Evaluate KILL rules at a crash point; may raise SimulatedCrash."""
        if not self.armed:
            return
        for rule in self.rules:
            if rule.kind is FaultKind.KILL and rule.matches_point(point, block):
                if rule.tick():
                    self.events.append(FaultEvent(rule.kind, point.value, block))
                    raise SimulatedCrash(point, block)

    def torn_size(self, block: int, batch_size: int) -> Optional[int]:
        """How many batch ops to apply before a torn-commit crash.

        Returns ``None`` when no TORN_COMMIT rule fires at this commit.
        A tear needs at least two staged ops (otherwise the commit is
        trivially atomic and the rule stays armed for a later batch).
        """
        if not self.armed or batch_size < 2:
            return None
        for rule in self.rules:
            if rule.kind is FaultKind.TORN_COMMIT and rule.matches_point(
                CrashPoint.BATCH_COMMIT_TORN, block
            ):
                if rule.tick():
                    keep = max(1, min(batch_size - 1, int(batch_size * rule.tear_fraction)))
                    self.events.append(
                        FaultEvent(
                            rule.kind,
                            CrashPoint.BATCH_COMMIT_TORN.value,
                            block,
                            detail=f"applied {keep}/{batch_size} ops",
                        )
                    )
                    return keep
        return None

    # -- store-operation evaluation -------------------------------------------

    def on_store_op(self, op: str, key: bytes = b"", block: int = 0) -> None:
        """Evaluate store-op rules; may raise or sleep."""
        if not self.armed:
            return
        for rule in self.rules:
            if not rule.matches_op(op, block):
                continue
            if not rule.tick():
                continue
            detail = key[:8].hex()
            self.events.append(FaultEvent(rule.kind, f"store.{op}", block, detail))
            if rule.kind is FaultKind.IO_ERROR:
                raise TransientIOError(
                    f"injected I/O error on {op} (key {detail}..., block {block})"
                )
            if rule.kind is FaultKind.KILL:
                raise SimulatedCrash(CrashPoint.WRITE_NOW, block, detail=f"store.{op}")
            if rule.kind is FaultKind.LATENCY and (rule.delay_s > 0 or rule.jitter_s > 0):
                model = LatencyModel(base_s=rule.delay_s, jitter_s=rule.jitter_s)
                time.sleep(model.sample(self.rule_stream(rule)))

    # -- peer-request evaluation ----------------------------------------------

    def on_peer_request(self, peer: str, block: int = 0) -> Optional[FaultRule]:
        """Evaluate peer rules for one request to ``peer``.

        Returns the rule that fired (PEER_DROP or PEER_SLOW) so the
        caller — the simulated peer network or the snap-sync range
        fetcher — can apply the behavior itself; unlike store ops, peer
        faults are modeled in virtual time, so nothing sleeps or raises
        here.
        """
        if not self.armed:
            return None
        for rule in self.rules:
            if not rule.matches_peer(peer, block):
                continue
            if not rule.tick():
                continue
            self.events.append(FaultEvent(rule.kind, f"peer.{peer}", block))
            return rule
        return None

    def validate(self) -> None:
        """Reject rules that can never fire (bad targets)."""
        for rule in self.rules:
            if rule.kind in (FaultKind.KILL, FaultKind.TORN_COMMIT):
                if rule.point is None and rule.op is None:
                    raise FaultInjectionError(f"rule targets neither point nor op: {rule}")
            elif rule.kind in (FaultKind.PEER_DROP, FaultKind.PEER_SLOW):
                if rule.peer is None:
                    raise FaultInjectionError(
                        f"{rule.kind.value} rule needs a peer target: {rule}"
                    )
            elif rule.op is None:
                raise FaultInjectionError(f"{rule.kind.value} rule needs an op target: {rule}")
            if rule.at_count < 1:
                raise FaultInjectionError(f"at_count must be >= 1: {rule}")
            if rule.repeat < 1:
                raise FaultInjectionError(f"repeat must be >= 1: {rule}")
