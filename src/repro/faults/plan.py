"""Deterministic fault plans.

A :class:`FaultPlan` is a seeded schedule of failures evaluated at two
kinds of sites:

* **crash points** — named locations threaded through
  :class:`~repro.gethdb.database.GethDatabase` and the sync driver
  (see :class:`~repro.errors.CrashPoint`), where a plan may kill the
  run (:class:`~repro.errors.SimulatedCrash`) or tear a batch commit;
* **store operations** — every call crossing the
  :class:`~repro.faults.store.FaultInjectingStore` wrapper, where a
  plan may raise a transient :class:`~repro.errors.TransientIOError`,
  inject a latency spike, or kill the run.

Rules fire deterministically: each rule counts only its own matching
events (gated by ``min_block``) and triggers on the ``at_count``-th
one, so the same plan over the same workload always fails at the same
place.  Every evaluation that fires is recorded in :attr:`FaultPlan.events`
for harnesses and tests.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import CrashPoint, FaultInjectionError, SimulatedCrash, TransientIOError


class FaultKind(enum.Enum):
    """What a rule does when it fires."""

    #: raise SimulatedCrash (process-kill analog)
    KILL = "kill"
    #: apply only a prefix of the batch, then raise SimulatedCrash
    #: (only meaningful at CrashPoint.BATCH_COMMIT_TORN)
    TORN_COMMIT = "torn-commit"
    #: raise TransientIOError from one store operation
    IO_ERROR = "io-error"
    #: sleep ``delay_s`` inside one store operation
    LATENCY = "latency"


@dataclass
class FaultRule:
    """One failure in a plan.

    ``point`` targets a crash point (KILL / TORN_COMMIT); ``op`` targets
    a store operation name (``"get"``, ``"put"``, ``"delete"``,
    ``"scan"``, ``"has"``, or ``"*"`` for any) for IO_ERROR / LATENCY /
    KILL.  The rule's private counter increments on each matching event
    with ``block >= min_block``; the rule fires on event number
    ``at_count`` (1-based) and, being one-shot, never again.
    """

    kind: FaultKind
    point: Optional[CrashPoint] = None
    op: Optional[str] = None
    at_count: int = 1
    min_block: int = 0
    #: latency injected by LATENCY rules, seconds
    delay_s: float = 0.0
    #: fraction of the batch applied before a TORN_COMMIT crash
    tear_fraction: float = 0.5
    seen: int = field(default=0, compare=False)
    fired: bool = field(default=False, compare=False)

    def matches_point(self, point: CrashPoint, block: int) -> bool:
        return (
            not self.fired
            and self.point is point
            and block >= self.min_block
            and self.kind in (FaultKind.KILL, FaultKind.TORN_COMMIT)
        )

    def matches_op(self, op: str, block: int) -> bool:
        return (
            not self.fired
            and self.op is not None
            and (self.op == "*" or self.op == op)
            and block >= self.min_block
            and self.kind in (FaultKind.KILL, FaultKind.IO_ERROR, FaultKind.LATENCY)
        )

    def tick(self) -> bool:
        """Count one matching event; return True when the rule fires."""
        self.seen += 1
        if self.seen >= self.at_count:
            self.fired = True
            return True
        return False


@dataclass(frozen=True)
class FaultEvent:
    """One rule firing, for harness reports and test assertions."""

    kind: FaultKind
    site: str
    block: int
    detail: str = ""


class FaultPlan:
    """A deterministic, disarmable schedule of :class:`FaultRule`\\ s."""

    def __init__(self, rules: Optional[list[FaultRule]] = None, seed: int = 0) -> None:
        self.rules: list[FaultRule] = list(rules) if rules else []
        self.seed = seed
        self.armed = True
        self.events: list[FaultEvent] = []

    # -- construction helpers -------------------------------------------------

    @classmethod
    def kill_at(
        cls, point: CrashPoint, min_block: int = 0, at_count: int = 1, seed: int = 0
    ) -> "FaultPlan":
        """Plan with a single kill rule at ``point``."""
        kind = (
            FaultKind.TORN_COMMIT
            if point is CrashPoint.BATCH_COMMIT_TORN
            else FaultKind.KILL
        )
        return cls(
            [FaultRule(kind=kind, point=point, min_block=min_block, at_count=at_count)],
            seed=seed,
        )

    def add(self, rule: FaultRule) -> "FaultPlan":
        self.rules.append(rule)
        return self

    # -- lifecycle ------------------------------------------------------------

    def disarm(self) -> None:
        """Stop evaluating rules (used before reference/settle phases)."""
        self.armed = False

    def rearm(self) -> None:
        self.armed = True

    @property
    def pending_rules(self) -> int:
        return sum(1 for rule in self.rules if not rule.fired)

    # -- crash-point evaluation ----------------------------------------------

    def on_crash_point(self, point: CrashPoint, block: int = 0) -> None:
        """Evaluate KILL rules at a crash point; may raise SimulatedCrash."""
        if not self.armed:
            return
        for rule in self.rules:
            if rule.kind is FaultKind.KILL and rule.matches_point(point, block):
                if rule.tick():
                    self.events.append(FaultEvent(rule.kind, point.value, block))
                    raise SimulatedCrash(point, block)

    def torn_size(self, block: int, batch_size: int) -> Optional[int]:
        """How many batch ops to apply before a torn-commit crash.

        Returns ``None`` when no TORN_COMMIT rule fires at this commit.
        A tear needs at least two staged ops (otherwise the commit is
        trivially atomic and the rule stays armed for a later batch).
        """
        if not self.armed or batch_size < 2:
            return None
        for rule in self.rules:
            if rule.kind is FaultKind.TORN_COMMIT and rule.matches_point(
                CrashPoint.BATCH_COMMIT_TORN, block
            ):
                if rule.tick():
                    keep = max(1, min(batch_size - 1, int(batch_size * rule.tear_fraction)))
                    self.events.append(
                        FaultEvent(
                            rule.kind,
                            CrashPoint.BATCH_COMMIT_TORN.value,
                            block,
                            detail=f"applied {keep}/{batch_size} ops",
                        )
                    )
                    return keep
        return None

    # -- store-operation evaluation -------------------------------------------

    def on_store_op(self, op: str, key: bytes = b"", block: int = 0) -> None:
        """Evaluate store-op rules; may raise or sleep."""
        if not self.armed:
            return
        for rule in self.rules:
            if not rule.matches_op(op, block):
                continue
            if not rule.tick():
                continue
            detail = key[:8].hex()
            self.events.append(FaultEvent(rule.kind, f"store.{op}", block, detail))
            if rule.kind is FaultKind.IO_ERROR:
                raise TransientIOError(
                    f"injected I/O error on {op} (key {detail}..., block {block})"
                )
            if rule.kind is FaultKind.KILL:
                raise SimulatedCrash(CrashPoint.WRITE_NOW, block, detail=f"store.{op}")
            if rule.kind is FaultKind.LATENCY and rule.delay_s > 0:
                time.sleep(rule.delay_s)

    def validate(self) -> None:
        """Reject rules that can never fire (bad targets)."""
        for rule in self.rules:
            if rule.kind in (FaultKind.KILL, FaultKind.TORN_COMMIT):
                if rule.point is None and rule.op is None:
                    raise FaultInjectionError(f"rule targets neither point nor op: {rule}")
            elif rule.op is None:
                raise FaultInjectionError(f"{rule.kind.value} rule needs an op target: {rule}")
            if rule.at_count < 1:
                raise FaultInjectionError(f"at_count must be >= 1: {rule}")
