"""Cache policy simulation — the paper's correlation-aware caching.

Replays traces against pluggable cache policies to quantify the paper's
cache-management suggestions (§V):

* :class:`LRUPolicy` — Geth's baseline per-key LRU;
* :class:`SegmentedLRUPolicy` — Geth's actual design: one LRU per class
  with a shared budget;
* :class:`NoWriteAdmissionPolicy` — the paper's "exclude never-read
  pairs from admission on the write path" refinement (Finding 3 + 6);
* :class:`CorrelationAwareCache` — the paper's §V conceptual design:
  learn correlated pairs from history, prefetch partners on a read,
  and evict correlated groups together.

:class:`CacheSimulator` replays a trace against a policy and reports
hit rates and store-read counts overall and per class.
"""

from repro.cachesim.arc import ARCPolicy
from repro.cachesim.policies import (
    CachePolicy,
    LRUPolicy,
    NoWriteAdmissionPolicy,
    SegmentedLRUPolicy,
)
from repro.cachesim.correlation_cache import CorrelationAwareCache, CorrelationTable
from repro.cachesim.simulator import CacheSimulator, SimulationReport

__all__ = [
    "CachePolicy",
    "LRUPolicy",
    "SegmentedLRUPolicy",
    "NoWriteAdmissionPolicy",
    "ARCPolicy",
    "CorrelationAwareCache",
    "CorrelationTable",
    "CacheSimulator",
    "SimulationReport",
]
