"""Baseline cache policies.

All policies implement :class:`CachePolicy`: the simulator drives them
with ``on_read`` / ``on_write`` / ``on_delete`` events and they answer
whether each read hit.  Capacity is in entries (the simulator compares
policies at equal entry budgets; byte-budget effects are covered by the
live :mod:`repro.gethdb.caches` used in the sync stack).
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from typing import Optional

from repro.core.classes import KVClass, classify_key
from repro.errors import CacheSimError


class CachePolicy(abc.ABC):
    """Event-driven cache policy interface for trace replay."""

    name: str = "abstract"

    @abc.abstractmethod
    def on_read(self, key: bytes) -> bool:
        """Process a read; return True on hit.  Misses insert the key."""

    @abc.abstractmethod
    def on_write(self, key: bytes) -> None:
        """Process a write/update of ``key``."""

    @abc.abstractmethod
    def on_delete(self, key: bytes) -> None:
        """Process a deletion of ``key``."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Current number of cached entries."""


class LRUPolicy(CachePolicy):
    """Plain LRU over all classes with write-path admission (Geth-like)."""

    name = "lru"

    def __init__(self, capacity: int, admit_writes: bool = True) -> None:
        if capacity < 1:
            raise CacheSimError("capacity must be >= 1")
        self.capacity = capacity
        self.admit_writes = admit_writes
        self._entries: OrderedDict[bytes, None] = OrderedDict()

    def _touch(self, key: bytes) -> None:
        self._entries[key] = None
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def on_read(self, key: bytes) -> bool:
        if key in self._entries:
            self._entries.move_to_end(key)
            return True
        self._touch(key)
        return False

    def on_write(self, key: bytes) -> None:
        if self.admit_writes or key in self._entries:
            self._touch(key)

    def on_delete(self, key: bytes) -> None:
        self._entries.pop(key, None)

    def __len__(self) -> int:
        return len(self._entries)


class NoWriteAdmissionPolicy(LRUPolicy):
    """LRU that never admits on the write path.

    The paper's refinement (from Findings 3 and 6): most written pairs
    are never read, so admitting them on write only pollutes the cache.
    """

    name = "lru-no-write-admission"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity, admit_writes=False)


class SegmentedLRUPolicy(CachePolicy):
    """One LRU per KV class, sharing a fixed total entry budget.

    Mirrors Geth's per-class cache family.  Classes not listed in
    ``fractions`` fall into a shared residual segment.
    """

    name = "segmented-lru"

    DEFAULT_FRACTIONS = {
        KVClass.TRIE_NODE_ACCOUNT: 0.25,
        KVClass.TRIE_NODE_STORAGE: 0.25,
        KVClass.SNAPSHOT_ACCOUNT: 0.20,
        KVClass.SNAPSHOT_STORAGE: 0.20,
    }

    def __init__(
        self,
        capacity: int,
        fractions: Optional[dict[KVClass, float]] = None,
    ) -> None:
        if capacity < len(self.DEFAULT_FRACTIONS) + 1:
            raise CacheSimError("capacity too small to segment")
        fractions = fractions if fractions is not None else self.DEFAULT_FRACTIONS
        if sum(fractions.values()) > 1.0:
            raise CacheSimError("segment fractions exceed 1.0")
        self._segments: dict[KVClass, LRUPolicy] = {}
        used = 0
        for kv_class, fraction in fractions.items():
            entries = max(1, int(capacity * fraction))
            self._segments[kv_class] = LRUPolicy(entries)
            used += entries
        self._residual = LRUPolicy(max(1, capacity - used))

    def _segment(self, key: bytes) -> LRUPolicy:
        return self._segments.get(classify_key(key), self._residual)

    def on_read(self, key: bytes) -> bool:
        return self._segment(key).on_read(key)

    def on_write(self, key: bytes) -> None:
        self._segment(key).on_write(key)

    def on_delete(self, key: bytes) -> None:
        self._segment(key).on_delete(key)

    def __len__(self) -> int:
        return sum(len(seg) for seg in self._segments.values()) + len(self._residual)
