"""Adaptive Replacement Cache (ARC).

A stronger baseline for the cache ablation than plain LRU.  ARC splits
the cache between recency (T1: seen once) and frequency (T2: seen at
least twice) lists and self-tunes the split using ghost lists (B1/B2)
of recently evicted keys: a hit in B1 means recency deserved more
space, a hit in B2 means frequency did.

Interesting here because Ethereum's read stream is exactly the mixture
ARC targets — a huge once-read tail (Finding 3) that floods an LRU, and
a small repeatedly-read hot set — yet ARC, like every history-blind
policy, still cannot anticipate *correlated* first reads the way the
paper's prefetching design can (Ablation B).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cachesim.policies import CachePolicy
from repro.errors import CacheSimError


class ARCPolicy(CachePolicy):
    """ARC (Megiddo & Modha) over byte keys, entry-count capacity."""

    name = "arc"

    def __init__(self, capacity: int) -> None:
        if capacity < 2:
            raise CacheSimError("capacity must be >= 2")
        self.capacity = capacity
        #: target size of T1 (adapted online)
        self.p = 0
        self._t1: OrderedDict[bytes, None] = OrderedDict()  # recent, once
        self._t2: OrderedDict[bytes, None] = OrderedDict()  # frequent
        self._b1: OrderedDict[bytes, None] = OrderedDict()  # ghosts of T1
        self._b2: OrderedDict[bytes, None] = OrderedDict()  # ghosts of T2

    # ------------------------------------------------------------------

    def on_read(self, key: bytes) -> bool:
        # Case I: hit in T1 or T2 -> promote to MRU of T2.
        if key in self._t1:
            del self._t1[key]
            self._t2[key] = None
            return True
        if key in self._t2:
            self._t2.move_to_end(key)
            return True

        # Case II: ghost hit in B1 -> favor recency; fetch into T2.
        if key in self._b1:
            delta = max(1, len(self._b2) // max(1, len(self._b1)))
            self.p = min(self.capacity, self.p + delta)
            self._replace(in_b2=False)
            del self._b1[key]
            self._t2[key] = None
            return False

        # Case III: ghost hit in B2 -> favor frequency; fetch into T2.
        if key in self._b2:
            delta = max(1, len(self._b1) // max(1, len(self._b2)))
            self.p = max(0, self.p - delta)
            self._replace(in_b2=True)
            del self._b2[key]
            self._t2[key] = None
            return False

        # Case IV: full miss.
        l1 = len(self._t1) + len(self._b1)
        if l1 == self.capacity:
            if len(self._t1) < self.capacity:
                self._b1.popitem(last=False)
                self._replace(in_b2=False)
            else:
                self._t1.popitem(last=False)
        else:
            total = l1 + len(self._t2) + len(self._b2)
            if total >= self.capacity:
                if total == 2 * self.capacity:
                    self._b2.popitem(last=False)
                self._replace(in_b2=False)
        self._t1[key] = None
        return False

    def _replace(self, in_b2: bool) -> None:
        """Evict from T1 or T2 into the matching ghost list."""
        if self._t1 and (
            len(self._t1) > self.p or (in_b2 and len(self._t1) == self.p)
        ):
            victim, _ = self._t1.popitem(last=False)
            self._b1[victim] = None
        elif self._t2:
            victim, _ = self._t2.popitem(last=False)
            self._b2[victim] = None

    # ------------------------------------------------------------------

    def on_write(self, key: bytes) -> None:
        # Refresh a resident key; writes do not admit (Finding 3: most
        # written pairs are never read — admitting them pollutes).
        if key in self._t1:
            self._t1.move_to_end(key)
        elif key in self._t2:
            self._t2.move_to_end(key)

    def on_delete(self, key: bytes) -> None:
        for store in (self._t1, self._t2, self._b1, self._b2):
            store.pop(key, None)

    def __len__(self) -> int:
        return len(self._t1) + len(self._t2)
