"""Trace replay against cache policies."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.cachesim.correlation_cache import CorrelationAwareCache
from repro.cachesim.policies import CachePolicy
from repro.core.classes import KVClass, classify_key
from repro.core.trace import OpType, TraceRecord


@dataclass
class SimulationReport:
    """Outcome of replaying one trace against one policy."""

    policy_name: str
    reads: int = 0
    hits: int = 0
    #: reads issued to the backing store (misses + prefetch fetches)
    store_reads: int = 0
    prefetches: int = 0
    prefetch_hits: int = 0
    per_class_reads: Counter = field(default_factory=Counter)
    per_class_hits: Counter = field(default_factory=Counter)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.reads if self.reads else 0.0

    def class_hit_rate(self, kv_class: KVClass) -> float:
        reads = self.per_class_reads.get(kv_class, 0)
        if not reads:
            return 0.0
        return self.per_class_hits.get(kv_class, 0) / reads

    def render(self) -> str:
        lines = [
            f"policy={self.policy_name}  reads={self.reads}  "
            f"hit_rate={self.hit_rate:.3f}  store_reads={self.store_reads}"
        ]
        if self.prefetches:
            lines.append(
                f"  prefetches={self.prefetches}  prefetch_hits={self.prefetch_hits}"
            )
        for kv_class, reads in sorted(
            self.per_class_reads.items(), key=lambda kv: -kv[1]
        )[:6]:
            lines.append(
                f"  {kv_class.display_name:<20} reads={reads:<8} "
                f"hit_rate={self.class_hit_rate(kv_class):.3f}"
            )
        return "\n".join(lines)


class CacheSimulator:
    """Replays KV traces against a cache policy."""

    def __init__(self, policy: CachePolicy) -> None:
        self.policy = policy

    def replay(
        self,
        records: Iterable[TraceRecord],
        classes: Optional[set[KVClass]] = None,
    ) -> SimulationReport:
        """Replay a trace; restrict accounting to ``classes`` if given.

        Mutations still flow to the policy for all classes (they affect
        residency); only reads outside ``classes`` are skipped entirely.
        """
        report = SimulationReport(policy_name=self.policy.name)
        policy = self.policy
        for record in records:
            op = record.op
            if op is OpType.READ:
                kv_class = classify_key(record.key)
                if classes is not None and kv_class not in classes:
                    continue
                hit = policy.on_read(record.key)
                report.reads += 1
                report.per_class_reads[kv_class] += 1
                if hit:
                    report.hits += 1
                    report.per_class_hits[kv_class] += 1
                else:
                    report.store_reads += 1
            elif op is OpType.DELETE:
                policy.on_delete(record.key)
            elif op is not OpType.SCAN:
                policy.on_write(record.key)
        if isinstance(policy, CorrelationAwareCache):
            report.prefetches = policy.prefetches
            report.prefetch_hits = policy.prefetch_hits
            report.store_reads += policy.prefetches
        return report
