"""Correlation-aware caching — the paper's §V conceptual design.

Two pieces:

* :class:`CorrelationTable` — learns, from a history window of reads,
  which keys are read near which (within ``window`` positions), and
  keeps the strongest partners per key;
* :class:`CorrelationAwareCache` — an LRU variant that on every read
  *prefetches* the read key's learned partners into the cache and, when
  evicting, evicts a victim's correlated group together (correlated
  keys tend to be re-read together, so keeping half a group wastes
  space).

The simulator counts prefetches as store reads, so the reported I/O
properly charges the prefetch traffic against the saved misses.
"""

from __future__ import annotations

from collections import Counter, OrderedDict, defaultdict
from typing import Iterable, Optional

from repro.cachesim.policies import CachePolicy
from repro.errors import CacheSimError


class CorrelationTable:
    """Co-occurrence statistics over a read history."""

    def __init__(
        self,
        window: int = 4,
        max_partners: int = 3,
        min_occurrence: int = 2,
    ) -> None:
        self.window = window
        self.max_partners = max_partners
        self.min_occurrence = min_occurrence
        self._pair_counts: Counter = Counter()
        self._partners: Optional[dict[bytes, tuple[bytes, ...]]] = None

    def learn(self, reads: Iterable[bytes]) -> None:
        """Accumulate co-occurrence counts from a read sequence."""
        recent: list[bytes] = []
        for key in reads:
            for other in recent:
                if other != key:
                    pair = (key, other) if key <= other else (other, key)
                    self._pair_counts[pair] += 1
            recent.append(key)
            if len(recent) > self.window:
                recent.pop(0)
        self._partners = None  # invalidate compiled table

    def partners_of(self, key: bytes) -> tuple[bytes, ...]:
        """The strongest learned partners of ``key`` (possibly empty)."""
        if self._partners is None:
            self._compile()
        return self._partners.get(key, ())  # type: ignore[union-attr]

    def _compile(self) -> None:
        by_key: dict[bytes, list[tuple[int, bytes]]] = defaultdict(list)
        for (a, b), count in self._pair_counts.items():
            if count < self.min_occurrence:
                continue
            by_key[a].append((count, b))
            by_key[b].append((count, a))
        compiled: dict[bytes, tuple[bytes, ...]] = {}
        for key, partners in by_key.items():
            partners.sort(key=lambda cb: (-cb[0], cb[1]))
            compiled[key] = tuple(p for _, p in partners[: self.max_partners])
        self._partners = compiled

    @property
    def num_correlated_pairs(self) -> int:
        return sum(1 for c in self._pair_counts.values() if c >= self.min_occurrence)


class CorrelationAwareCache(CachePolicy):
    """LRU + correlation-driven prefetch and group eviction."""

    name = "correlation-aware"

    def __init__(
        self,
        capacity: int,
        table: CorrelationTable,
        group_evict: bool = True,
    ) -> None:
        if capacity < 2:
            raise CacheSimError("capacity must be >= 2")
        self.capacity = capacity
        self.table = table
        self.group_evict = group_evict
        self._entries: OrderedDict[bytes, None] = OrderedDict()
        #: store reads issued for prefetching (charged as I/O)
        self.prefetches = 0
        #: prefetched keys that were later read while still cached
        self.prefetch_hits = 0
        self._prefetched: set[bytes] = set()

    def _insert(self, key: bytes) -> None:
        self._entries[key] = None
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            victim, _ = self._entries.popitem(last=False)
            self._prefetched.discard(victim)
            if self.group_evict:
                for partner in self.table.partners_of(victim):
                    if partner in self._entries:
                        del self._entries[partner]
                        self._prefetched.discard(partner)

    def on_read(self, key: bytes) -> bool:
        hit = key in self._entries
        if hit:
            self._entries.move_to_end(key)
            if key in self._prefetched:
                self.prefetch_hits += 1
                self._prefetched.discard(key)
        else:
            self._insert(key)
        # Prefetch learned partners not already cached.
        for partner in self.table.partners_of(key):
            if partner not in self._entries:
                self.prefetches += 1
                self._insert(partner)
                self._prefetched.add(partner)
        return hit

    def on_write(self, key: bytes) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)

    def on_delete(self, key: bytes) -> None:
        self._entries.pop(key, None)
        self._prefetched.discard(key)

    def __len__(self) -> int:
        return len(self._entries)
