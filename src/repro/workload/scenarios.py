"""Named workload scenarios.

The paper's introduction motivates the analysis with the application
classes blockchains serve — payments, smart contracts, DeFi.  These
presets configure the generator toward those mixes so downstream users
can ask "does the storage shape change under a DeFi-heavy epoch?"
without hand-tuning a dozen knobs.

All presets share the calibrated structural parameters (slot footprint,
code sizes, clear fraction); they differ in the *traffic mix*.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workload.generator import WorkloadConfig

#: The calibrated default — a mainnet-like blend during the paper's
#: capture window (half transfers, ~42-55% contract calls, a trickle of
#: deployments and self-destructs).
MAINNET = WorkloadConfig(seed=2024)

#: DeFi-heavy epoch: almost all traffic is contract calls against a
#: small, very hot contract set (DEX routers, stablecoins), touching
#: many storage slots per call with frequent allowance-style clears.
DEFI = WorkloadConfig(
    seed=2024,
    contract_call_fraction=0.85,
    creation_fraction=0.01,
    destruct_fraction=0.001,
    contract_zipf_s=1.3,
    slots_read_per_call=12,
    slots_written_per_call=7,
    slot_clear_fraction=0.25,
    logs_per_call_mean=3.0,
)

#: Payments epoch: dominated by plain value transfers between EOAs with
#: steady new-account creation (onboarding), barely touching contract
#: storage.
PAYMENTS = WorkloadConfig(
    seed=2024,
    contract_call_fraction=0.10,
    creation_fraction=0.002,
    destruct_fraction=0.0,
    new_account_fraction=0.15,
    account_zipf_s=0.7,
)

#: NFT-mint epoch: bursts of contract creations deploying near-identical
#: code (the paper's Code-update mechanism) plus call traffic writing
#: fresh slots (mint -> new token ids -> new storage).
NFT_MINT = WorkloadConfig(
    seed=2024,
    contract_call_fraction=0.60,
    creation_fraction=0.08,
    destruct_fraction=0.001,
    code_reuse_fraction=0.97,
    slots_written_per_call=6,
    slot_clear_fraction=0.05,
)

SCENARIOS: dict[str, WorkloadConfig] = {
    "mainnet": MAINNET,
    "defi": DEFI,
    "payments": PAYMENTS,
    "nft-mint": NFT_MINT,
}


def scenario(name: str, **overrides) -> WorkloadConfig:
    """Look up a preset by name, optionally overriding fields.

    >>> cfg = scenario("defi", seed=7, txs_per_block=32)
    """
    try:
        base = SCENARIOS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None
    if not overrides:
        return base
    from dataclasses import replace

    return replace(base, **overrides)
