"""Block and transaction plan generation.

A :class:`TxPlan` pairs a wire-format transaction with its *semantic
effects* — which accounts it touches, which storage slots it reads and
writes, what code it deploys — standing in for EVM execution.  The sync
driver applies these effects to the StateDB, so the KV traffic emerges
from real storage-layer mechanics; only the computation inside the EVM
is skipped.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Optional

from repro.chain.blocks import Block, BlockBody, Header
from repro.chain.transactions import Log, Transaction
from repro.errors import WorkloadError
from repro.workload.sampler import ZipfSampler


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the synthetic transaction mix.

    Defaults approximate the mainnet mix during the paper's window:
    roughly half simple transfers, most of the rest contract calls,
    a ~1-2% trickle of creations, and rare self-destructs.
    """

    seed: int = 2024
    initial_eoa_accounts: int = 2000
    initial_contracts: int = 300
    txs_per_block: int = 24
    #: transaction-kind mix (must sum to <= 1; remainder = transfers)
    contract_call_fraction: float = 0.55
    creation_fraction: float = 0.015
    destruct_fraction: float = 0.003
    #: probability a transfer recipient is a brand-new account
    new_account_fraction: float = 0.06
    #: Zipf exponents for account and contract popularity
    account_zipf_s: float = 0.9
    contract_zipf_s: float = 1.05
    #: storage slots read / written per contract call (means)
    slots_read_per_call: int = 8
    slots_written_per_call: int = 5
    #: per-contract storage footprint for slot locality
    slots_per_contract: int = 64
    #: probability a slot write clears the slot (value -> empty), e.g.
    #: allowance resets and reentrancy locks; cleared slots are deleted
    #: from the storage trie and snapshot, and often reinserted later —
    #: the paper's repeated delete+reinsert pattern (Finding 5)
    slot_clear_fraction: float = 0.18
    #: contract code size model (lognormal-ish around the paper's 6.6 KiB)
    code_size_mean: int = 6600
    code_size_jitter: int = 5000
    #: probability a creation re-deploys an existing code template
    code_reuse_fraction: float = 0.90
    logs_per_call_mean: float = 1.8
    calldata_mean: int = 180

    def __post_init__(self) -> None:
        total = (
            self.contract_call_fraction
            + self.creation_fraction
            + self.destruct_fraction
        )
        if total > 1.0:
            raise WorkloadError(f"tx kind fractions sum to {total} > 1")


@dataclass
class TxPlan:
    """A transaction plus the state effects its execution produces."""

    tx: Transaction
    kind: str  # "transfer" | "call" | "create" | "destruct"
    sender: bytes
    recipient: Optional[bytes]
    #: (contract_address, slot) storage reads
    slot_reads: list[tuple[bytes, bytes]] = field(default_factory=list)
    #: (contract_address, slot, value) storage writes
    slot_writes: list[tuple[bytes, bytes, bytes]] = field(default_factory=list)
    #: code deployed by a creation (None = not a creation)
    deployed_code: Optional[bytes] = None
    #: address being self-destructed
    destruct_target: Optional[bytes] = None
    logs: list[Log] = field(default_factory=list)


@dataclass
class BlockPlan:
    """One block's transactions with their effect plans.

    The header is partially filled: ``state_root`` is stamped by the
    sync driver after execution.
    """

    number: int
    timestamp: int
    tx_plans: list[TxPlan]

    def build_block(
        self,
        parent_hash: bytes,
        state_root: bytes,
        receipts: Optional[list] = None,
    ) -> Block:
        """Assemble the block; with ``receipts`` the header commits to the
        derived transactions/receipts roots and logs bloom (validatable
        via :mod:`repro.chain.validation`)."""
        body = BlockBody(transactions=[plan.tx for plan in self.tx_plans])
        header = Header(
            number=self.number,
            parent_hash=parent_hash,
            state_root=state_root,
            timestamp=self.timestamp,
            gas_used=sum(p.tx.gas_limit for p in self.tx_plans) // 2,
        )
        if receipts is not None:
            from repro.chain.transactions import block_bloom
            from repro.chain.validation import (
                derive_receipts_root,
                derive_transactions_root,
            )

            header.transactions_root = derive_transactions_root(body)
            header.receipts_root = derive_receipts_root(receipts)
            header.logs_bloom = block_bloom(receipts).to_bytes()
        return Block(header=header, body=body, receipts=list(receipts or ()))


def _address(kind: bytes, index: int) -> bytes:
    return hashlib.sha3_256(kind + index.to_bytes(8, "big")).digest()[:20]


class WorkloadGenerator:
    """Generates a deterministic stream of :class:`BlockPlan` objects.

    Two generators constructed with the same config produce identical
    plans — the property that lets the CacheTrace and BareTrace runs
    replay the *same* logical workload.
    """

    def __init__(self, config: Optional[WorkloadConfig] = None) -> None:
        self.config = config if config is not None else WorkloadConfig()
        self._rng = random.Random(self.config.seed)
        self._eoas: list[bytes] = [
            _address(b"eoa", i) for i in range(self.config.initial_eoa_accounts)
        ]
        self._contracts: list[bytes] = [
            _address(b"contract", i) for i in range(self.config.initial_contracts)
        ]
        self._code_templates: list[bytes] = []
        self._nonces: dict[bytes, int] = {}
        self._next_eoa = self.config.initial_eoa_accounts
        self._next_contract = self.config.initial_contracts
        self._account_sampler = ZipfSampler(
            len(self._eoas), self.config.account_zipf_s, self._rng
        )
        self._contract_sampler = ZipfSampler(
            len(self._contracts), self.config.contract_zipf_s, self._rng
        )
        # Seed a pool of code templates that creations mostly reuse.
        for i in range(max(8, self.config.initial_contracts // 10)):
            self._code_templates.append(self._make_code(i))

    # -- population accessors (used by the driver for genesis) -------------

    @property
    def eoa_addresses(self) -> list[bytes]:
        return list(self._eoas)

    @property
    def contract_addresses(self) -> list[bytes]:
        return list(self._contracts)

    def initial_code_for(self, contract: bytes) -> bytes:
        """Deterministic code blob for a genesis contract."""
        index = int.from_bytes(contract[:4], "big") % max(1, len(self._code_templates))
        return self._code_templates[index]

    def initial_slots_for(self, contract: bytes) -> list[tuple[bytes, bytes]]:
        """Deterministic initial storage for a genesis contract.

        Most of the contract's slot range is pre-populated: mainnet
        contracts at block 20.5M have years of accumulated storage, so
        slot writes during the measured window overwhelmingly hit
        existing slots (updates, not writes — Table II's TrieNodeStorage
        split).
        """
        count = max(1, int(self.config.slots_per_contract * 0.85))
        slots = []
        for i in range(count):
            slot = hashlib.sha3_256(contract + b"slot" + i.to_bytes(4, "big")).digest()
            value = hashlib.sha3_256(slot).digest()[: 8 + i % 24]
            slots.append((slot, value))
        return slots

    # -- block generation -----------------------------------------------------

    def skip_blocks(self, count: int, start_number: int = 1) -> int:
        """Fast-forward past ``count`` blocks, discarding their plans.

        A snap-syncing node joins mid-chain: it needs the generator's
        RNG state advanced to the pivot so the blocks it *does* process
        match what a full-syncing peer produced for those heights.
        Returns the next block number to generate.
        """
        number = start_number
        for _ in range(count):
            self.make_block_plan(number)
            number += 1
        return number

    def make_block_plan(self, number: int) -> BlockPlan:
        rng = self._rng
        count = max(1, int(rng.gauss(self.config.txs_per_block, self.config.txs_per_block * 0.2)))
        plans = [self._make_tx() for _ in range(count)]
        return BlockPlan(
            number=number,
            timestamp=1_723_000_000 + number * 12,
            tx_plans=plans,
        )

    def _make_tx(self) -> TxPlan:
        rng = self._rng
        roll = rng.random()
        cfg = self.config
        if roll < cfg.destruct_fraction and len(self._contracts) > cfg.initial_contracts // 2:
            return self._make_destruct()
        roll -= cfg.destruct_fraction
        if roll < cfg.creation_fraction:
            return self._make_creation()
        roll -= cfg.creation_fraction
        if roll < cfg.contract_call_fraction:
            return self._make_call()
        return self._make_transfer()

    def _pick_eoa(self) -> bytes:
        return self._eoas[self._account_sampler.sample()]

    def _pick_contract(self) -> bytes:
        # The sampler's support only grows; destructions shrink the list,
        # so clamp the sampled rank to the live population.
        rank = self._contract_sampler.sample()
        return self._contracts[min(rank, len(self._contracts) - 1)]

    def _next_nonce(self, sender: bytes) -> int:
        nonce = self._nonces.get(sender, 0)
        self._nonces[sender] = nonce + 1
        return nonce

    def _make_transfer(self) -> TxPlan:
        rng = self._rng
        sender = self._pick_eoa()
        if rng.random() < self.config.new_account_fraction:
            recipient = _address(b"eoa", self._next_eoa)
            self._next_eoa += 1
            self._eoas.append(recipient)
            self._account_sampler.grow(len(self._eoas))
        else:
            recipient = self._pick_eoa()
        tx = Transaction(
            nonce=self._next_nonce(sender),
            sender=sender,
            to=recipient,
            value=rng.randrange(1, 10**18),
            gas_limit=21_000,
        )
        return TxPlan(tx=tx, kind="transfer", sender=sender, recipient=recipient)

    def _make_call(self) -> TxPlan:
        rng = self._rng
        sender = self._pick_eoa()
        contract = self._pick_contract()
        calldata = rng.randbytes(max(4, int(rng.gauss(self.config.calldata_mean, 80))))
        tx = Transaction(
            nonce=self._next_nonce(sender),
            sender=sender,
            to=contract,
            value=0,
            gas_limit=rng.randrange(60_000, 400_000),
            data=calldata,
        )
        reads = self._sample_slots(contract, self.config.slots_read_per_call)
        writes = []
        for addr, slot in self._sample_slots(
            contract, self.config.slots_written_per_call
        ):
            if rng.random() < self.config.slot_clear_fraction:
                writes.append((addr, slot, b""))  # slot clear -> delete
            else:
                writes.append((addr, slot, rng.randbytes(rng.randrange(1, 32))))
        logs = []
        for _ in range(self._poissonish(self.config.logs_per_call_mean)):
            logs.append(
                Log(
                    address=contract,
                    topics=[rng.randbytes(32) for _ in range(rng.randrange(1, 4))],
                    data=rng.randbytes(rng.randrange(0, 128)),
                )
            )
        return TxPlan(
            tx=tx,
            kind="call",
            sender=sender,
            recipient=contract,
            slot_reads=reads,
            slot_writes=writes,
            logs=logs,
        )

    def _sample_slots(self, contract: bytes, mean: int) -> list[tuple[bytes, bytes]]:
        rng = self._rng
        count = max(1, int(rng.gauss(mean, mean * 0.5)))
        slots = []
        for _ in range(count):
            index = rng.randrange(self.config.slots_per_contract)
            slot = hashlib.sha3_256(
                contract + b"slot" + index.to_bytes(4, "big")
            ).digest()
            slots.append((contract, slot))
        return slots

    def _make_creation(self) -> TxPlan:
        rng = self._rng
        sender = self._pick_eoa()
        if rng.random() < self.config.code_reuse_fraction and self._code_templates:
            code = rng.choice(self._code_templates)
        else:
            code = self._make_code(len(self._code_templates))
            self._code_templates.append(code)
        new_contract = _address(b"contract", self._next_contract)
        self._next_contract += 1
        self._contracts.append(new_contract)
        self._contract_sampler.grow(len(self._contracts))
        tx = Transaction(
            nonce=self._next_nonce(sender),
            sender=sender,
            to=None,
            value=0,
            gas_limit=1_500_000,
            data=code[: min(len(code), 2048)],
        )
        writes = [
            (new_contract, slot, hashlib.sha3_256(slot).digest()[:16])
            for _, slot in self._sample_slots(new_contract, 2)
        ]
        return TxPlan(
            tx=tx,
            kind="create",
            sender=sender,
            recipient=new_contract,
            deployed_code=code,
            slot_writes=writes,
        )

    def _make_destruct(self) -> TxPlan:
        rng = self._rng
        sender = self._pick_eoa()
        # Destruct a cold contract (hot ones survive on mainnet too).
        index = len(self._contracts) - 1 - rng.randrange(len(self._contracts) // 4)
        target = self._contracts.pop(index)
        tx = Transaction(
            nonce=self._next_nonce(sender),
            sender=sender,
            to=target,
            value=0,
            gas_limit=100_000,
            data=b"\xff",
        )
        return TxPlan(
            tx=tx,
            kind="destruct",
            sender=sender,
            recipient=target,
            destruct_target=target,
        )

    def _make_code(self, index: int) -> bytes:
        rng = self._rng
        size = max(
            128, int(rng.gauss(self.config.code_size_mean, self.config.code_size_jitter))
        )
        seed = hashlib.sha3_256(b"code" + index.to_bytes(8, "big")).digest()
        return (seed * (size // len(seed) + 1))[:size]

    def _poissonish(self, mean: float) -> int:
        # Cheap Poisson stand-in adequate for log counts.
        value = 0
        remaining = mean
        while remaining > 0:
            if self._rng.random() < min(1.0, remaining):
                value += 1
            remaining -= 1.0
        return value
