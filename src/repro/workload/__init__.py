"""Synthetic Ethereum workload generation.

The paper's traces come from replaying 1M mainnet blocks; without
network access we generate blocks whose *logical event mix* matches
mainnet transaction processing: mostly transfers and contract calls
over a Zipf-skewed account/contract population, a trickle of contract
creations (frequently re-deploying popular code templates, e.g.
proxies) and rare self-destructs.  The storage findings depend on this
event mix plus Geth's storage semantics, not on specific mainnet
values.
"""

from repro.workload.generator import BlockPlan, TxPlan, WorkloadConfig, WorkloadGenerator
from repro.workload.sampler import ZipfSampler
from repro.workload.scenarios import SCENARIOS, scenario

__all__ = [
    "WorkloadConfig",
    "WorkloadGenerator",
    "BlockPlan",
    "TxPlan",
    "ZipfSampler",
    "SCENARIOS",
    "scenario",
]
