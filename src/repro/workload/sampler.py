"""Zipfian sampling over a growing population.

Account/contract popularity on Ethereum is heavy-tailed: a few hot
contracts (DEX routers, stablecoins) absorb most traffic while the long
tail is touched rarely — the property behind the paper's read-frequency
skew (Finding 3, Figure 3) and cache behaviour (Finding 6).

The sampler draws ranks by inverse-CDF over precomputed Zipf weights;
the CDF is rebuilt lazily when the population has grown enough, keeping
amortized cost low for dynamic populations.
"""

from __future__ import annotations

import random
from typing import Optional

import numpy as np

from repro.errors import WorkloadError


class ZipfSampler:
    """Bounded Zipf(s) sampler with lazily growing support."""

    def __init__(self, population: int, s: float = 1.0, rng: Optional[random.Random] = None) -> None:
        if population < 1:
            raise WorkloadError("population must be >= 1")
        if s <= 0:
            raise WorkloadError("zipf exponent must be positive")
        self._population = population
        self._s = s
        self._rng = rng if rng is not None else random.Random()
        self._cdf: Optional[np.ndarray] = None
        self._cdf_size = 0

    @property
    def population(self) -> int:
        return self._population

    def grow(self, new_population: int) -> None:
        """Extend the support (new items become the coldest ranks).

        A no-op when ``new_population`` is not larger — callers whose
        item list shrank (contract destructions) and re-grew simply keep
        the wider support and clamp sampled ranks to their live list.
        """
        if new_population > self._population:
            self._population = new_population

    def _ensure_cdf(self) -> np.ndarray:
        # Rebuild when stale by more than 10% (amortizes the cumsum).
        if self._cdf is None or self._population > self._cdf_size * 1.1:
            ranks = np.arange(1, self._population + 1, dtype=np.float64)
            weights = ranks ** (-self._s)
            self._cdf = np.cumsum(weights)
            self._cdf /= self._cdf[-1]
            self._cdf_size = self._population
        return self._cdf

    def sample(self) -> int:
        """Draw a rank in [0, population); rank 0 is the hottest item."""
        cdf = self._ensure_cdf()
        u = self._rng.random()
        rank = int(np.searchsorted(cdf, u, side="left"))
        # The CDF may lag the true population slightly; clamp.
        return min(rank, self._population - 1)

    def sample_many(self, count: int) -> list[int]:
        return [self.sample() for _ in range(count)]
