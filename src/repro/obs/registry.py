"""Process-wide metrics registry: counters, gauges, histograms.

The paper's whole methodology is measurement at the KV interface; this
module gives the runtime itself the same treatment.  A
:class:`MetricsRegistry` holds labeled metric families:

* **counter** — monotonically increasing totals (ops, bytes, retries);
* **gauge** — point-in-time values (cache occupancy, pending layers);
* **histogram** — value distributions over *fixed* exponential bucket
  bounds, so two histograms produced independently (e.g. by sharded
  worker processes) always share bucket boundaries and merge
  deterministically.

Registries snapshot into plain picklable :class:`RegistrySnapshot`
values; snapshots merge associatively (``merge_snapshots``), round-trip
through JSON (``snapshot_to_json`` / ``snapshot_from_json``), and render
to Prometheus text via :mod:`repro.obs.export`.  Sharded workers each
fill a private registry, ship its snapshot back, and the parent absorbs
them into one view — by construction the merged totals equal a serial
run's (asserted in ``tests/test_parallel.py``).

Hot-path cost is one dict-free attribute add per event: metric children
are resolved once and cached, so instrumented loops pay ``child.inc()``
only.  Subsystems that already keep their own counters (e.g.
:class:`~repro.kvstore.metrics.StoreMetrics`) register *object
collectors* instead: the registry holds a weak reference and reads the
live counters only at snapshot time, for zero steady-state overhead.
"""

from __future__ import annotations

import threading
import weakref
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Optional, Sequence, Union

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

_KINDS = (COUNTER, GAUGE, HISTOGRAM)


def exponential_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """``count`` upper bounds growing geometrically from ``start``.

    The bounds are computed as ``start * factor**i`` — a pure function
    of the arguments — so every process that asks for the same shape
    gets bit-identical boundaries (the precondition for deterministic
    histogram merges).
    """
    if start <= 0:
        raise ValueError("bucket start must be > 0")
    if factor <= 1:
        raise ValueError("bucket growth factor must be > 1")
    if count < 1:
        raise ValueError("bucket count must be >= 1")
    return tuple(start * factor**i for i in range(count))


#: Default duration buckets: 10 µs .. ~84 s in powers of two.
DEFAULT_TIME_BUCKETS = exponential_buckets(1e-5, 2.0, 24)
#: Default size/count buckets: 1 .. ~1 Gi in powers of four.
DEFAULT_SIZE_BUCKETS = exponential_buckets(1.0, 4.0, 16)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bound histogram (non-cumulative internal counts).

    ``bounds`` are inclusive upper bounds; an observation lands in the
    first bucket whose bound is ``>= value``, or the implicit +Inf
    bucket past the last bound (Prometheus ``le`` semantics).
    """

    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self, bounds: Sequence[float]) -> None:
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    def value_snapshot(self) -> "HistogramValue":
        return HistogramValue(
            bounds=self.bounds,
            counts=tuple(self.counts),
            total=self.total,
            count=self.count,
        )


@dataclass(frozen=True)
class HistogramValue:
    """Immutable histogram contents inside a snapshot."""

    bounds: tuple[float, ...]
    #: per-bucket counts, len(bounds)+1 (last entry is the +Inf bucket)
    counts: tuple[int, ...]
    total: float
    count: int

    def merged(self, other: "HistogramValue") -> "HistogramValue":
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        return HistogramValue(
            bounds=self.bounds,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            total=self.total + other.total,
            count=self.count + other.count,
        )


SeriesValue = Union[float, HistogramValue]
LabelValues = tuple[str, ...]


@dataclass(frozen=True)
class Sample:
    """One reading contributed by an object collector at snapshot time.

    Only counters and gauges can be contributed this way; subsystems
    needing histograms use first-class registry histograms.
    """

    name: str
    kind: str
    labels: tuple[tuple[str, str], ...]
    value: float
    help: str = ""


class MetricFamily:
    """All series of one metric name (one per distinct label set)."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(buckets) if buckets is not None else None
        if kind == HISTOGRAM and self.buckets is None:
            self.buckets = DEFAULT_TIME_BUCKETS
        self._children: dict[LabelValues, object] = {}

    def _make_child(self):
        if self.kind == COUNTER:
            return Counter()
        if self.kind == GAUGE:
            return Gauge()
        return Histogram(self.buckets)

    def labels(self, **labels: str):
        """The child for one label-value combination (created on first use)."""
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, got {tuple(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make_child()
        return child

    # Label-less convenience passthroughs -------------------------------

    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def series_snapshot(self) -> dict[LabelValues, SeriesValue]:
        out: dict[LabelValues, SeriesValue] = {}
        for key, child in self._children.items():
            if self.kind == HISTOGRAM:
                out[key] = child.value_snapshot()
            else:
                out[key] = child.value
        return out


@dataclass
class FamilySnapshot:
    """Frozen view of one metric family."""

    name: str
    kind: str
    help: str
    labelnames: tuple[str, ...]
    series: dict[LabelValues, SeriesValue] = field(default_factory=dict)

    def _check_compatible(self, other: "FamilySnapshot") -> None:
        if other.kind != self.kind:
            raise ValueError(
                f"{self.name}: kind mismatch ({self.kind} vs {other.kind})"
            )
        if other.labelnames != self.labelnames:
            raise ValueError(
                f"{self.name}: label mismatch "
                f"({self.labelnames} vs {other.labelnames})"
            )

    def merged(self, other: "FamilySnapshot") -> "FamilySnapshot":
        self._check_compatible(other)
        series = dict(self.series)
        for key, value in other.series.items():
            mine = series.get(key)
            if mine is None:
                series[key] = value
            elif isinstance(value, HistogramValue):
                series[key] = mine.merged(value)
            else:
                series[key] = mine + value
        return FamilySnapshot(
            name=self.name,
            kind=self.kind,
            help=self.help or other.help,
            labelnames=self.labelnames,
            series=series,
        )


@dataclass
class RegistrySnapshot:
    """Picklable, mergeable, JSON-able view of a registry."""

    families: dict[str, FamilySnapshot] = field(default_factory=dict)

    def merged(self, other: "RegistrySnapshot") -> "RegistrySnapshot":
        """A new snapshot with every series summed (associative)."""
        families = dict(self.families)
        for name, family in other.families.items():
            mine = families.get(name)
            families[name] = family if mine is None else mine.merged(family)
        return RegistrySnapshot(families=families)

    def family(self, name: str) -> FamilySnapshot:
        return self.families[name]

    def value(self, name: str, **labels: str) -> SeriesValue:
        """One series' value; raises KeyError when absent."""
        family = self.families[name]
        key = tuple(str(labels[label]) for label in family.labelnames)
        return family.series[key]

    def get_value(self, name: str, default: float = 0.0, **labels: str) -> SeriesValue:
        try:
            return self.value(name, **labels)
        except KeyError:
            return default


def diff_snapshots(
    before: RegistrySnapshot, after: RegistrySnapshot
) -> RegistrySnapshot:
    """What happened between two snapshots of the same registry.

    Counters subtract (clamped at zero, so a registry swap mid-window
    can't produce negative totals); gauges keep the ``after`` reading
    (a gauge is a level, not a flow); histograms subtract per-bucket
    counts.  Families or series absent from ``before`` pass through
    unchanged.  This is what lets the benchmark runner attribute
    registry activity to exactly the measured iterations.
    """
    families: dict[str, FamilySnapshot] = {}
    for name, family in after.families.items():
        base = before.families.get(name)
        if base is not None:
            family._check_compatible(base)
        series: dict[LabelValues, SeriesValue] = {}
        for key, value in family.series.items():
            prior = base.series.get(key) if base is not None else None
            if prior is None:
                series[key] = value
            elif isinstance(value, HistogramValue):
                if prior.bounds != value.bounds:
                    series[key] = value
                    continue
                series[key] = HistogramValue(
                    bounds=value.bounds,
                    counts=tuple(
                        max(0, a - b) for a, b in zip(value.counts, prior.counts)
                    ),
                    total=max(0.0, value.total - prior.total),
                    count=max(0, value.count - prior.count),
                )
            elif family.kind == GAUGE:
                series[key] = value
            else:
                series[key] = max(0.0, value - prior)
        families[name] = FamilySnapshot(
            name=family.name,
            kind=family.kind,
            help=family.help,
            labelnames=family.labelnames,
            series=series,
        )
    return RegistrySnapshot(families=families)


def counter_deltas(snapshot: RegistrySnapshot) -> dict[str, float]:
    """Flatten a snapshot's counter series to ``name{a=b,...}`` → value.

    Non-zero counters only; histograms contribute their ``_count`` and
    ``_sum`` series.  The flat keys sort deterministically, which is
    what the bench-result schema stores per benchmark.
    """
    out: dict[str, float] = {}

    def flat_key(name: str, labelnames: LabelValues, key: LabelValues) -> str:
        if not labelnames:
            return name
        labels = ",".join(
            f"{label}={value}" for label, value in zip(labelnames, key)
        )
        return f"{name}{{{labels}}}"

    for name, family in snapshot.families.items():
        for key, value in family.series.items():
            if isinstance(value, HistogramValue):
                if value.count:
                    out[flat_key(f"{name}_count", family.labelnames, key)] = float(
                        value.count
                    )
                    out[flat_key(f"{name}_sum", family.labelnames, key)] = value.total
            elif family.kind == COUNTER and value:
                out[flat_key(name, family.labelnames, key)] = float(value)
    return dict(sorted(out.items()))


def merge_snapshots(snapshots: Iterable[RegistrySnapshot]) -> RegistrySnapshot:
    """Left fold of :meth:`RegistrySnapshot.merged` (order-insensitive
    for the totals; associativity is locked down in ``tests/test_obs.py``)."""
    merged = RegistrySnapshot()
    for snapshot in snapshots:
        merged = merged.merged(snapshot)
    return merged


class MetricsRegistry:
    """A family table plus weakly referenced object collectors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}
        #: (weakref to owner, collect(owner) -> Iterable[Sample])
        self._collectors: list[tuple[weakref.ref, Callable]] = []

    # ------------------------------------------------------------------
    # declaration (idempotent; conflicting redeclaration raises)
    # ------------------------------------------------------------------

    def _declare(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, kind, help, labelnames, buckets)
                self._families[name] = family
                return family
            if family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already declared as {family.kind}, not {kind}"
                )
            if family.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already declared with labels "
                    f"{family.labelnames}, not {tuple(labelnames)}"
                )
            if (
                kind == HISTOGRAM
                and buckets is not None
                and family.buckets != tuple(buckets)
            ):
                raise ValueError(f"metric {name!r} already declared with other buckets")
            return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._declare(name, COUNTER, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._declare(name, GAUGE, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        return self._declare(name, HISTOGRAM, help, labelnames, buckets)

    # ------------------------------------------------------------------
    # object collectors (zero hot-path cost; read at snapshot time)
    # ------------------------------------------------------------------

    def register_object_collector(
        self, owner: object, collect: Callable[[object], Iterable[Sample]]
    ) -> None:
        """Read ``collect(owner)`` at every snapshot while ``owner`` is
        alive.  Only a weak reference is kept, so registration never
        extends the owner's lifetime; dead entries are pruned lazily."""
        with self._lock:
            self._collectors.append((weakref.ref(owner), collect))

    def _collect_samples(self) -> list[Sample]:
        with self._lock:
            collectors = list(self._collectors)
        samples: list[Sample] = []
        dead = False
        for ref, collect in collectors:
            owner = ref()
            if owner is None:
                dead = True
                continue
            samples.extend(collect(owner))
        if dead:
            with self._lock:
                self._collectors = [
                    entry for entry in self._collectors if entry[0]() is not None
                ]
        return samples

    # ------------------------------------------------------------------
    # snapshot / absorb
    # ------------------------------------------------------------------

    def snapshot(self) -> RegistrySnapshot:
        """Materialize families and collector samples into one view."""
        with self._lock:
            families = list(self._families.values())
        out: dict[str, FamilySnapshot] = {}
        for family in families:
            out[family.name] = FamilySnapshot(
                name=family.name,
                kind=family.kind,
                help=family.help,
                labelnames=family.labelnames,
                series=family.series_snapshot(),
            )
        for sample in self._collect_samples():
            labelnames = tuple(name for name, _ in sample.labels)
            key = tuple(value for _, value in sample.labels)
            family = out.get(sample.name)
            if family is None:
                family = out[sample.name] = FamilySnapshot(
                    name=sample.name,
                    kind=sample.kind,
                    help=sample.help,
                    labelnames=labelnames,
                )
            elif family.labelnames != labelnames or family.kind != sample.kind:
                raise ValueError(f"collector sample conflicts with {sample.name!r}")
            family.series[key] = family.series.get(key, 0.0) + sample.value
        return RegistrySnapshot(families=out)

    def absorb(self, snapshot: RegistrySnapshot) -> None:
        """Fold a snapshot's totals into this registry's live families.

        The shard-merge primitive: a worker ships its snapshot, the
        parent absorbs it.  Counter/gauge series add; histogram buckets
        add element-wise (bounds must match).
        """
        for fam_snap in snapshot.families.values():
            buckets = None
            if fam_snap.kind == HISTOGRAM:
                for value in fam_snap.series.values():
                    buckets = value.bounds
                    break
            family = self._declare(
                fam_snap.name,
                fam_snap.kind,
                fam_snap.help,
                fam_snap.labelnames,
                buckets=buckets,
            )
            for key, value in fam_snap.series.items():
                labels = dict(zip(family.labelnames, key))
                child = family.labels(**labels)
                if isinstance(value, HistogramValue):
                    if child.bounds != value.bounds:
                        raise ValueError(
                            f"{fam_snap.name}: histogram bounds mismatch on absorb"
                        )
                    for index, count in enumerate(value.counts):
                        child.counts[index] += count
                    child.total += value.total
                    child.count += value.count
                elif fam_snap.kind == COUNTER:
                    child.inc(value)
                else:
                    child.inc(value)  # gauges merge additively (sharded sums)


# ---------------------------------------------------------------------------
# JSON round trip
# ---------------------------------------------------------------------------

SNAPSHOT_FORMAT = "repro-metrics-v1"


def snapshot_to_json(snapshot: RegistrySnapshot) -> dict:
    """A deterministic (sorted) plain-dict rendering of a snapshot."""
    families = []
    for name in sorted(snapshot.families):
        family = snapshot.families[name]
        series = []
        for key in sorted(family.series):
            value = family.series[key]
            entry: dict = {"labels": list(key)}
            if isinstance(value, HistogramValue):
                entry["buckets"] = {
                    "bounds": list(value.bounds),
                    "counts": list(value.counts),
                }
                entry["sum"] = value.total
                entry["count"] = value.count
            else:
                entry["value"] = value
            series.append(entry)
        families.append(
            {
                "name": family.name,
                "kind": family.kind,
                "help": family.help,
                "labelnames": list(family.labelnames),
                "series": series,
            }
        )
    return {"format": SNAPSHOT_FORMAT, "families": families}


def snapshot_from_json(data: Mapping) -> RegistrySnapshot:
    """Inverse of :func:`snapshot_to_json`; validates the format tag."""
    if not isinstance(data, Mapping) or data.get("format") != SNAPSHOT_FORMAT:
        raise ValueError(
            f"not a {SNAPSHOT_FORMAT} snapshot (format={data.get('format')!r})"
            if isinstance(data, Mapping)
            else "not a metrics snapshot object"
        )
    families: dict[str, FamilySnapshot] = {}
    for item in data["families"]:
        series: dict[LabelValues, SeriesValue] = {}
        for entry in item["series"]:
            key = tuple(str(value) for value in entry["labels"])
            if "buckets" in entry:
                series[key] = HistogramValue(
                    bounds=tuple(entry["buckets"]["bounds"]),
                    counts=tuple(entry["buckets"]["counts"]),
                    total=entry["sum"],
                    count=entry["count"],
                )
            else:
                series[key] = entry["value"]
        families[item["name"]] = FamilySnapshot(
            name=item["name"],
            kind=item["kind"],
            help=item.get("help", ""),
            labelnames=tuple(item["labelnames"]),
            series=series,
        )
    return RegistrySnapshot(families=families)


# ---------------------------------------------------------------------------
# Disabled registry (for overhead measurements / opt-out)
# ---------------------------------------------------------------------------


class _NullChild:
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def labels(self, **labels: str) -> "_NullChild":
        return self

    @property
    def value(self) -> float:
        return 0.0


_NULL_CHILD = _NullChild()


class NullRegistry(MetricsRegistry):
    """A registry that records nothing (instrumentation switched off)."""

    def _declare(self, name, kind, help, labelnames, buckets=None):  # type: ignore[override]
        return _NULL_CHILD

    def register_object_collector(self, owner, collect) -> None:  # type: ignore[override]
        pass

    def snapshot(self) -> RegistrySnapshot:  # type: ignore[override]
        return RegistrySnapshot()

    def absorb(self, snapshot: RegistrySnapshot) -> None:  # type: ignore[override]
        pass


NULL_REGISTRY = NullRegistry()
