"""Phase spans: nested, named timers with context-manager ergonomics.

A :class:`Span` measures one phase of work and records its duration
into a registry histogram labeled by the span's *path* — the ``/``-
joined names of every enclosing span on the same thread, so nested
phases show up as ``import_block/execute`` rather than a flat name.

The clock is injectable (any ``() -> float``), which is what makes span
behavior unit-testable with deterministic durations.

Usage::

    with span("import_block"):
        with span("execute"):
            ...  # recorded as repro_span_seconds{span="import_block/execute"}
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional, Sequence

from repro.obs.registry import DEFAULT_TIME_BUCKETS, MetricsRegistry

#: Histogram of span durations, labeled by span path.
SPAN_SECONDS = "repro_span_seconds"
#: Companion counter of completed spans, labeled by span path.
SPANS_TOTAL = "repro_spans_total"

_STATE = threading.local()


def _stack() -> list["Span"]:
    stack = getattr(_STATE, "stack", None)
    if stack is None:
        stack = _STATE.stack = []
    return stack


def current_span() -> Optional["Span"]:
    """The innermost active span on this thread, if any."""
    stack = _stack()
    return stack[-1] if stack else None


def current_span_path() -> Optional[str]:
    """The active span path (``a/b/c``) on this thread, if any."""
    active = current_span()
    return active.path if active is not None else None


class Span:
    """One timed phase; records on exit, even when the body raises."""

    __slots__ = ("name", "path", "elapsed", "_registry", "_clock", "_metric", "_buckets", "_start")

    def __init__(
        self,
        name: str,
        registry: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.perf_counter,
        metric: str = SPAN_SECONDS,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        if "/" in name:
            raise ValueError("span names must not contain '/' (path separator)")
        self.name = name
        self.path: Optional[str] = None
        #: seconds, available after exit
        self.elapsed: Optional[float] = None
        self._registry = registry
        self._clock = clock
        self._metric = metric
        self._buckets = tuple(buckets)
        self._start: Optional[float] = None

    def __enter__(self) -> "Span":
        stack = _stack()
        parent = stack[-1] if stack else None
        self.path = f"{parent.path}/{self.name}" if parent is not None else self.name
        stack.append(self)
        self._start = self._clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        end = self._clock()
        stack = _stack()
        if not stack or stack[-1] is not self:
            raise RuntimeError(f"span {self.name!r} exited out of order")
        stack.pop()
        self.elapsed = end - self._start
        registry = self._registry
        if registry is None:
            from repro.obs import get_registry

            registry = get_registry()
        registry.histogram(
            self._metric,
            help="Span durations by phase path",
            labelnames=("span",),
            buckets=self._buckets,
        ).labels(span=self.path).observe(self.elapsed)
        registry.counter(
            SPANS_TOTAL, help="Completed spans by phase path", labelnames=("span",)
        ).labels(span=self.path).inc()


def span(
    name: str,
    registry: Optional[MetricsRegistry] = None,
    clock: Callable[[], float] = time.perf_counter,
) -> Span:
    """Shorthand constructor: ``with span("execute"): ...``."""
    return Span(name, registry=registry, clock=clock)
