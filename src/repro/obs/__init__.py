"""Unified observability layer: metrics registry, spans, exporters.

One process-wide :class:`~repro.obs.registry.MetricsRegistry` (swap it
with :func:`set_registry` or scope it with :func:`use_registry` in
tests) collects counters, gauges, and fixed-bucket histograms from the
instrumented hot paths — KV store backends, the Geth database caches,
freezer/txindexer/snapshot maintenance, the sync driver's per-block
phase spans, and the parallel analysis scheduler.  Snapshots merge
deterministically across processes and export to Prometheus text and
JSON (``repro stats`` / ``--metrics-out``).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs.registry import (
    COUNTER,
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    GAUGE,
    HISTOGRAM,
    NULL_REGISTRY,
    FamilySnapshot,
    HistogramValue,
    MetricsRegistry,
    NullRegistry,
    RegistrySnapshot,
    Sample,
    counter_deltas,
    diff_snapshots,
    exponential_buckets,
    merge_snapshots,
    snapshot_from_json,
    snapshot_to_json,
)
from repro.obs.export import (
    read_snapshot_json,
    to_prometheus_text,
    write_snapshot_json,
)
from repro.obs.span import Span, current_span, current_span_path, span

__all__ = [
    "COUNTER",
    "GAUGE",
    "HISTOGRAM",
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "NULL_REGISTRY",
    "FamilySnapshot",
    "HistogramValue",
    "MetricsRegistry",
    "NullRegistry",
    "RegistrySnapshot",
    "Sample",
    "Span",
    "counter_deltas",
    "current_span",
    "current_span_path",
    "diff_snapshots",
    "exponential_buckets",
    "get_registry",
    "merge_snapshots",
    "read_snapshot_json",
    "set_registry",
    "snapshot_from_json",
    "snapshot_to_json",
    "span",
    "to_prometheus_text",
    "use_registry",
    "write_snapshot_json",
]

_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide registry; returns the previous one."""
    global _registry
    previous = _registry
    _registry = registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Temporarily swap the process-wide registry (test isolation)."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
