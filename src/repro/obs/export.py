"""Snapshot exporters: Prometheus text exposition format and JSON files.

The Prometheus renderer follows the text exposition format (``# HELP`` /
``# TYPE`` headers, cumulative ``_bucket{le=...}`` series plus ``_sum``
and ``_count`` for histograms) and emits families and series in sorted
order, so the same snapshot always produces byte-identical output —
which is what lets golden/CI checks diff it directly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.obs.registry import (
    HISTOGRAM,
    HistogramValue,
    RegistrySnapshot,
    snapshot_from_json,
    snapshot_to_json,
)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_number(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    as_int = int(value)
    if value == as_int:
        return str(as_int)
    return repr(float(value))


def _labels_text(labelnames, labelvalues, extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, labelvalues)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def to_prometheus_text(snapshot: RegistrySnapshot) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: list[str] = []
    for name in sorted(snapshot.families):
        family = snapshot.families[name]
        if family.help:
            lines.append(f"# HELP {name} {family.help}")
        lines.append(f"# TYPE {name} {family.kind}")
        for key in sorted(family.series):
            value = family.series[key]
            if family.kind == HISTOGRAM:
                assert isinstance(value, HistogramValue)
                cumulative = 0
                for bound, count in zip(value.bounds, value.counts):
                    cumulative += count
                    le = _format_number(bound)
                    labels = _labels_text(family.labelnames, key, f'le="{le}"')
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                cumulative += value.counts[-1]
                labels = _labels_text(family.labelnames, key, 'le="+Inf"')
                lines.append(f"{name}_bucket{labels} {cumulative}")
                plain = _labels_text(family.labelnames, key)
                lines.append(f"{name}_sum{plain} {_format_number(value.total)}")
                lines.append(f"{name}_count{plain} {value.count}")
            else:
                labels = _labels_text(family.labelnames, key)
                lines.append(f"{name}{labels} {_format_number(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_snapshot_json(path: Union[str, Path], snapshot: RegistrySnapshot) -> None:
    """Write a snapshot as a deterministic JSON document."""
    with open(path, "w", encoding="ascii") as stream:
        json.dump(snapshot_to_json(snapshot), stream, indent=2, sort_keys=True)
        stream.write("\n")


def read_snapshot_json(path: Union[str, Path]) -> RegistrySnapshot:
    """Read a snapshot written by :func:`write_snapshot_json`."""
    with open(path, "r", encoding="ascii") as stream:
        return snapshot_from_json(json.load(stream))
