"""Command-line interface.

Mirrors the paper artifact's script surface as one CLI::

    python -m repro findings  [--blocks N] [--json OUT]
    python -m repro tables    [--blocks N]
    python -m repro sync      --mode cache|bare --out TRACE.bin
    python -m repro beamsync  [--profiles healthy,slow,dropping] [--compare-full]
    python -m repro analyze   TRACE.bin [--correlate read|update] [--no-cache]
    python -m repro cache     show|clear [--cache-dir DIR]
    python -m repro export    --outdir DIR [--blocks N]
    python -m repro crashtest [--crash-points all] [--seed N]
    python -m repro replay    TRACE.bin [--backend B] [--workers N] [--pace R]
    python -m repro migrate   SRC.kvimg DST.kvimg --backend-from X --backend-to Y
    python -m repro serve     NAME=TRACE.bin... [--port P] [--workers N]
    python -m repro stats     METRICS.json... [--format prom|json]
    python -m repro bench     run|compare|report ...

``beamsync`` beam-syncs from a simulated multi-peer network: execution
starts at a pivot with an empty state store, pauses on every missing
trie node or bytecode, fetches it from seeded latency/failure-modelled
peers, and resumes — ``--compare-full`` prints the class-mix and
read-correlation contrast against a full-sync trace of the same chain.

``sync`` collects a trace to disk; ``analyze`` re-reads any trace file
(ours or one converted from the artifact's format) and prints the
operation-distribution table, optionally with a correlation pass —
re-runs over an unchanged or grown v2 trace are served from the
per-chunk partial-aggregate cache unless ``--no-cache`` forces a cold
scan (``repro cache show|clear`` inspects and resets that cache);
``export`` writes the artifact-compatible output files plus CSV/JSON;
``crashtest`` sweeps the fault-injection crash points and verifies the
recovered database converges to the uninterrupted reference.

``replay`` streams a saved trace through the concurrent replay engine
against any of the five KV backends — serially, thread-sharded with
open-loop pacing and bounded-queue admission, or process-sharded for
throughput — and ``--verify`` runs the serial-vs-sharded differential.

``migrate`` moves a serialized store image (``repro replay
--dump-store`` writes one) between backends with the online migration
engine: ranged bulk copy, mirrored delta catch-up, and an atomic
paused cutover, optionally under live ``--traffic`` and with the
three-level ``--verify`` equivalence check.

``serve`` runs the multi-tenant asyncio trace service: many concurrent
clients submit analyze/replay/crashtest jobs against the served traces
over a newline-delimited-JSON TCP protocol (``serve-v1``), with
per-tenant quotas, aging priority scheduling, and streamed partial
aggregates (see ``docs/ARCHITECTURE.md``, Serving).

``sync``/``analyze``/``crashtest``/``replay`` accept ``--metrics-out PATH`` to
dump the run's observability registry as JSON; ``stats`` merges any
number of such dumps and renders them as Prometheus text or JSON.

``bench run`` executes the registered benchmark suite and writes a
``bench-result-v1`` JSON file; ``bench compare`` diffs a result
against a committed baseline with a noise-aware threshold (exit 1 only
on a confirmed regression); ``bench report`` renders one or more
results as an ascii/markdown trajectory table.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.core.analysis import TraceAnalysis
from repro.core.classes import KVClass
from repro.core.findings import evaluate_findings
from repro.core.report import (
    render_op_table,
    render_read_ratio_table,
    render_table1,
)
from repro.core.columnar import DEFAULT_CHUNK_SIZE
from repro.core.trace import OpType, read_trace, write_trace, write_trace_v2
from repro.gethdb.database import DBConfig
from repro.sync.driver import FullSyncDriver, SyncConfig, run_trace_pair
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


def _add_metrics_out_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        help="write the run's metrics registry as JSON (merge with `repro stats`)",
    )


def _write_metrics(args: argparse.Namespace) -> None:
    if getattr(args, "metrics_out", None) is None:
        return
    from repro.obs import get_registry
    from repro.obs.export import write_snapshot_json

    write_snapshot_json(args.metrics_out, get_registry().snapshot())
    print(f"wrote metrics to {args.metrics_out}", file=sys.stderr)


def _workload_from_args(args: argparse.Namespace) -> WorkloadConfig:
    return WorkloadConfig(
        seed=args.seed,
        initial_eoa_accounts=args.accounts,
        initial_contracts=args.contracts,
        txs_per_block=args.txs,
    )


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--blocks", type=int, default=150, help="measured blocks")
    parser.add_argument("--warmup", type=int, default=60, help="warmup blocks")
    parser.add_argument("--accounts", type=int, default=6000)
    parser.add_argument("--contracts", type=int, default=700)
    parser.add_argument("--txs", type=int, default=24, help="mean txs per block")
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument(
        "--cache-bytes", type=int, default=256 * 1024, help="CacheTrace cache budget"
    )


def _run_pair(args: argparse.Namespace):
    print("Synchronizing both capture modes...", file=sys.stderr)
    start = time.time()
    cache_result, bare_result = run_trace_pair(
        _workload_from_args(args),
        num_blocks=args.blocks,
        warmup_blocks=args.warmup,
        cache_bytes=args.cache_bytes,
    )
    print(f"  done in {time.time() - start:.1f}s", file=sys.stderr)
    cache = TraceAnalysis(
        "CacheTrace", cache_result.records, cache_result.store_snapshot
    )
    bare = TraceAnalysis("BareTrace", bare_result.records, bare_result.store_snapshot)
    return cache, bare


def cmd_findings(args: argparse.Namespace) -> int:
    cache, bare = _run_pair(args)
    report = evaluate_findings(cache, bare)
    print(report.render())
    if args.json:
        from repro.core.export import findings_to_json

        findings_to_json(report, args.json)
        print(f"wrote {args.json}", file=sys.stderr)
    return 0 if report.all_passed else 1


def cmd_tables(args: argparse.Namespace) -> int:
    cache, bare = _run_pair(args)
    print(render_table1(cache.sizes, "Table I analog"))
    print()
    print(render_op_table(cache.opdist, "Table II analog (CacheTrace)"))
    print()
    print(render_op_table(bare.opdist, "Table III analog (BareTrace)"))
    print()
    classes = (
        KVClass.SNAPSHOT_ACCOUNT,
        KVClass.SNAPSHOT_STORAGE,
        KVClass.TRIE_NODE_ACCOUNT,
        KVClass.TRIE_NODE_STORAGE,
    )
    print(render_read_ratio_table(bare, cache, classes))
    return 0


def cmd_sync(args: argparse.Namespace) -> int:
    db_config = (
        DBConfig.cache_trace_config(args.cache_bytes)
        if args.mode == "cache"
        else DBConfig.bare_trace_config()
    )
    driver = FullSyncDriver(
        SyncConfig(db=db_config, warmup_blocks=args.warmup),
        WorkloadGenerator(_workload_from_args(args)),
        name=f"{args.mode}-trace",
    )
    print(f"Running {args.mode}-mode full sync...", file=sys.stderr)
    result = driver.run(args.blocks)
    if args.format == "v1":
        count = write_trace(args.out, result.records)
    else:
        count = write_trace_v2(args.out, result.records, chunk_size=args.chunk_size)
    print(
        f"wrote {count:,} records to {args.out} "
        f"({Path(args.out).stat().st_size:,} bytes); "
        f"store holds {result.total_store_pairs:,} pairs"
    )
    _write_metrics(args)
    return 0


def _parse_peer_rule(spec: str, slow: bool):
    """Parse ``PEER:AT[:REPEAT[:FACTOR]]`` into a FaultRule."""
    from repro.faults.plan import FaultKind, FaultRule

    parts = spec.split(":")
    if len(parts) < 2 or len(parts) > (4 if slow else 3):
        raise ValueError(f"bad peer rule {spec!r} (want PEER:AT[:REPEAT[:FACTOR]])")
    peer = parts[0] or "*"
    at_count = int(parts[1])
    repeat = int(parts[2]) if len(parts) > 2 else 1
    kind = FaultKind.PEER_SLOW if slow else FaultKind.PEER_DROP
    extra = {}
    if slow and len(parts) > 3:
        extra["slow_factor"] = float(parts[3])
    return FaultRule(kind, peer=peer, at_count=at_count, repeat=repeat, **extra)


def _read_correlation_lines(name: str, records) -> list[str]:
    from repro.core.correlation import (
        CorrelationAnalyzer,
        CorrelationConfig,
        format_class_pair,
    )

    analyzer = CorrelationAnalyzer(CorrelationConfig(op=OpType.READ))
    analyzer.consume(records)
    results = analyzer.compute()
    top = results[0].top_pairs(3, cross_class=True)
    lines = [f"  {name}:"]
    if not top:
        lines.append("    (no correlated read pairs)")
    for pair, count in top:
        lines.append(f"    {format_class_pair(pair)}: {count:,}")
    return lines


def cmd_beamsync(args: argparse.Namespace) -> int:
    from repro.core.compare import compare_traces
    from repro.faults.plan import FaultPlan
    from repro.peers import PEER_PROFILES, SchedulerConfig, build_peer_network
    from repro.sync.beamsync import BeamSyncConfig, BeamSyncDriver

    profiles = [name.strip() for name in args.profiles.split(",") if name.strip()]
    if not profiles:
        print("beamsync: --profiles needs at least one profile", file=sys.stderr)
        return 2
    unknown = sorted(set(profiles) - set(PEER_PROFILES))
    if unknown:
        print(
            f"beamsync: unknown peer profiles {', '.join(unknown)}; "
            f"choose from {', '.join(sorted(PEER_PROFILES))}",
            file=sys.stderr,
        )
        return 2
    if args.blocks < 1 or args.warmup < 1:
        print("beamsync: --blocks and --warmup must be >= 1", file=sys.stderr)
        return 2

    fault_plan = None
    try:
        rules = [_parse_peer_rule(spec, slow=False) for spec in args.peer_drop]
        rules += [_parse_peer_rule(spec, slow=True) for spec in args.peer_slow]
    except ValueError as exc:
        print(f"beamsync: {exc}", file=sys.stderr)
        return 2
    if rules:
        fault_plan = FaultPlan(rules, seed=args.seed)
        fault_plan.validate()

    workload = _workload_from_args(args)

    # The serving peer is a full node synced past the pivot; the beam
    # node joins at the pivot (= the peer's head after warmup blocks).
    print(
        f"Full-syncing the serving peer to the pivot (block {args.warmup})...",
        file=sys.stderr,
    )
    start = time.time()
    peer_node = FullSyncDriver(
        SyncConfig(db=DBConfig.bare_trace_config(), warmup_blocks=args.warmup),
        WorkloadGenerator(workload),
        name="beam-peer",
    )
    peer_node.run(0)
    peers = build_peer_network(peer_node, profiles, seed=args.peer_seed)
    print(
        f"  peer ready in {time.time() - start:.1f}s; network: "
        + ", ".join(peer.peer_id for peer in peers),
        file=sys.stderr,
    )

    beam_config = BeamSyncConfig(
        scheduler=SchedulerConfig(
            timeout_s=args.timeout,
            max_attempts=args.max_attempts,
            per_peer_outstanding=args.outstanding,
        ),
        prefetch=not args.no_prefetch,
    )
    driver = BeamSyncDriver(
        workload_config=workload, beam_config=beam_config, fault_plan=fault_plan
    )
    print(f"Beam-syncing {args.blocks} blocks from the pivot...", file=sys.stderr)
    start = time.time()
    result = driver.sync_from(peers, beam_blocks=args.blocks)
    elapsed = time.time() - start

    print(
        f"BeamSync: pivot block {result.pivot_number}, executed "
        f"{result.blocks_processed} blocks in {elapsed:.1f}s "
        f"({result.simulated_seconds:.2f}s simulated network time)"
    )
    print(f"  state root   {result.state_root.hex()}")
    print(
        f"  healed       {result.nodes_fetched:,} nodes fetched "
        f"({result.healed_account_nodes:,} account, "
        f"{result.healed_storage_nodes:,} storage, "
        f"{result.healed_codes:,} bytecode); "
        f"{result.pauses:,} execution pauses"
    )
    print(
        f"  network      {result.retries:,} retries, "
        f"{result.demotions:,} peer demotions; "
        f"store holds {result.total_store_pairs:,} pairs"
    )

    if args.out is not None:
        count = write_trace_v2(args.out, result.records, chunk_size=args.chunk_size)
        print(
            f"wrote {count:,} records to {args.out} "
            f"({Path(args.out).stat().st_size:,} bytes)"
        )

    exit_code = 0
    if args.compare_full:
        print("Running the full-sync reference over the same chain...", file=sys.stderr)
        reference = FullSyncDriver(
            SyncConfig(db=DBConfig.bare_trace_config(), warmup_blocks=args.warmup),
            WorkloadGenerator(workload),
            name="full-ref",
        )
        full_result = reference.run(args.blocks)
        full_root = reference.state._account_trie.root_hash()  # noqa: SLF001
        roots_match = result.state_root == full_root
        print()
        print(compare_traces(result.records, full_result.records, "BeamSync", "FullSync").render())
        print()
        print("Top cross-class read correlations (distance 0):")
        for line in _read_correlation_lines("BeamSync", result.records):
            print(line)
        for line in _read_correlation_lines("FullSync", full_result.records):
            print(line)
        print()
        if roots_match:
            print(f"state roots MATCH ({result.state_root.hex()[:16]}...)")
        else:
            print(
                f"state roots DIFFER: beam {result.state_root.hex()} "
                f"!= full {full_root.hex()}"
            )
            exit_code = 1

    _write_metrics(args)
    return exit_code


def _cache_from_args(args: argparse.Namespace):
    from repro.core.aggcache import AggregateCache

    if getattr(args, "no_cache", False):
        return None
    return AggregateCache(args.cache_dir)


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.core.aggcache import analyze_trace_maybe_cached

    if not Path(args.trace).exists():
        print(f"analyze: trace not found: {args.trace}", file=sys.stderr)
        return 2
    print(f"Reading {args.trace}...", file=sys.stderr)
    start = time.time()
    try:
        cache = _cache_from_args(args)
    except ValueError as exc:
        print(f"analyze: {exc}", file=sys.stderr)
        return 2
    analysis = None
    if args.correlate:
        # The correlation passes retain the columnar trace, so build the
        # full bundle once and reuse its opdist.
        analysis = TraceAnalysis(
            "trace", args.trace, chunk_size=args.chunk_size, cache=cache
        )
        opdist = analysis.opdist
    else:
        opdist = analyze_trace_maybe_cached(
            args.trace,
            cache=cache,
            workers=args.workers,
            chunk_size=args.chunk_size,
            analyzers=("opdist",),
            lenient=args.lenient,
        )["opdist"]
    elapsed = time.time() - start
    if elapsed > 0:
        print(
            f"  {opdist.total_ops:,} records in {elapsed:.2f}s "
            f"({opdist.total_ops / elapsed / 1e6:.2f} M records/s, "
            f"workers={args.workers})",
            file=sys.stderr,
        )
    print(render_op_table(opdist, f"Operation distribution ({args.trace})"))
    if args.correlate:
        op = OpType.READ if args.correlate == "read" else OpType.UPDATE
        results = analysis.correlation(op)
        from repro.core.report import render_correlation_distance_series

        top = results[0].top_pairs(3, cross_class=True)
        top += results[0].top_pairs(3, cross_class=False)
        print()
        print(
            render_correlation_distance_series(
                results,
                [pair for pair, _ in top],
                f"{args.correlate} correlations (top pairs)",
            )
        )
    _write_metrics(args)
    return 0


def cmd_crashtest(args: argparse.Namespace) -> int:
    from repro.errors import MIGRATION_POINTS, CrashPoint
    from repro.faults import CrashTestConfig, run_crash_sweep, sweep_points
    from repro.migrate import run_migrate_crash_sweep

    snapshot_modes = {
        "on": (True,),
        "off": (False,),
        "both": (True, False),
    }[args.snapshot]

    # Migration crash points live in their own kill-and-resume sweep
    # (snapshot modes do not apply to it); split the request.
    if args.crash_points == "all":
        requested_sync = None  # sweep_points(config) per snapshot mode
        requested_migrate = list(MIGRATION_POINTS)
    else:
        by_value = {point.value: point for point in CrashPoint}
        try:
            requested = [by_value[name] for name in args.crash_points.split(",")]
        except KeyError as exc:
            known = ", ".join(sorted(by_value))
            print(f"unknown crash point {exc}; known: {known}", file=sys.stderr)
            return 2
        requested_sync = [p for p in requested if p not in MIGRATION_POINTS]
        requested_migrate = [p for p in requested if p in MIGRATION_POINTS]

    exit_code = 0
    if requested_sync is None or requested_sync:
        for snapshot in snapshot_modes:
            config = CrashTestConfig(
                blocks=args.blocks,
                warmup=args.warmup,
                seed=args.seed,
                snapshot=snapshot,
                trie_flush_interval=args.flush_interval,
                cases_per_point=args.cases_per_point,
            )
            points = sweep_points(config) if requested_sync is None else requested_sync
            print(
                f"Sweeping {len(points)} crash points "
                f"(snapshot={'on' if snapshot else 'off'}, seed={args.seed})...",
                file=sys.stderr,
            )
            start = time.time()
            report = run_crash_sweep(config, points)
            print(f"  done in {time.time() - start:.1f}s", file=sys.stderr)
            print(report.render())
            if report.divergent or report.triggered < report.total:
                exit_code = 1
    if requested_migrate:
        backend_from, _, backend_to = args.migrate_pair.partition(":")
        print(
            f"Sweeping {len(requested_migrate)} migration crash points "
            f"({backend_from}->{backend_to}, seed={args.seed})...",
            file=sys.stderr,
        )
        start = time.time()
        migrate_report = run_migrate_crash_sweep(
            requested_migrate,
            backend_from=backend_from,
            backend_to=backend_to,
            seed=args.seed,
        )
        print(f"  done in {time.time() - start:.1f}s", file=sys.stderr)
        print(migrate_report.render())
        if not migrate_report.ok:
            exit_code = 1
    _write_metrics(args)
    return exit_code


def cmd_replay(args: argparse.Namespace) -> int:
    """Replay a saved trace against a KV backend under concurrent load."""
    from repro.errors import ReplayError, ReplayOverloadError, TraceFormatError
    from repro.replay import (
        BACKEND_NAMES,
        ReplayConfig,
        differential_replay,
        replay_trace,
    )

    if not args.trace.exists():
        print(f"replay: trace file not found: {args.trace}", file=sys.stderr)
        return 2
    if args.backend not in BACKEND_NAMES:
        known = ", ".join(BACKEND_NAMES)
        print(f"replay: unknown backend {args.backend!r}; known: {known}", file=sys.stderr)
        return 2
    config = ReplayConfig(
        backend=args.backend,
        workers=args.workers,
        executor=args.executor,
        pace=args.pace,
        queue_depth=args.queue_depth,
        admission=args.admission,
        scan_limit=args.scan_limit,
        latency_sample=args.latency_sample,
        fingerprint=not args.no_fingerprint,
        lenient=args.lenient,
    )
    try:
        config = config.validated()
    except ReplayError as exc:
        print(f"replay: {exc}", file=sys.stderr)
        return 2
    store_factory = None
    captured_stores: list = []
    if args.dump_store is not None:
        if args.verify:
            print("replay: --dump-store and --verify are exclusive", file=sys.stderr)
            return 2
        if config.workers > 1 and config.executor == "process":
            print(
                "replay: --dump-store needs the inline or thread executor "
                "(process workers build their own stores)",
                file=sys.stderr,
            )
            return 2
        from repro.replay.backends import make_store

        def store_factory(shard: int):
            store = make_store(
                config.backend,
                lsm_config=config.lsm_config,
                fault_plan=config.fault_plan,
            )
            captured_stores.append(store)
            return store

    exit_code = 0
    start = time.time()
    try:
        if args.verify:
            print(
                f"Differential replay on {args.backend} "
                f"(serial vs {args.executor} x{args.workers})...",
                file=sys.stderr,
            )
            result = differential_replay(args.trace, config)
            print(result.render())
            if not result.match:
                exit_code = 1
        else:
            print(
                f"Replaying {args.trace} on {args.backend} "
                f"({args.executor} x{args.workers})...",
                file=sys.stderr,
            )
            report = replay_trace(args.trace, config, store_factory=store_factory)
            print(report.render())
            if args.dump_store is not None:
                import heapq

                from repro.migrate import write_image

                # Shards partition keys by CRC32, so the per-shard scans
                # are disjoint and their merge is the full final state.
                pairs = heapq.merge(*(s.scan(b"") for s in captured_stores))
                dumped = write_image(args.dump_store, pairs)
                print(
                    f"dumped {dumped:,} pairs to {args.dump_store}", file=sys.stderr
                )
    except ReplayOverloadError as exc:
        print(f"replay: overloaded: {exc}", file=sys.stderr)
        exit_code = 1
    except ReplayError as exc:
        print(f"replay: {exc}", file=sys.stderr)
        return 1
    except (OSError, ValueError, TraceFormatError) as exc:
        print(f"replay: cannot read trace: {exc}", file=sys.stderr)
        return 2
    print(f"  done in {time.time() - start:.1f}s", file=sys.stderr)
    _write_metrics(args)
    return exit_code


def cmd_migrate(args: argparse.Namespace) -> int:
    """Migrate a store image between backends with the online engine."""
    from repro.errors import MigrationError, SimulatedCrash
    from repro.migrate import MigrateJob, MigrationConfig, run_migrate_job

    config = MigrationConfig(
        backend_from=args.backend_from,
        backend_to=args.backend_to,
        range_pairs=args.range_pairs,
        copy_workers=args.copy_workers,
        batch_pairs=args.batch_pairs,
        delta_shards=args.delta_shards,
        lag_threshold=args.lag_threshold,
        max_delta_rounds=args.max_delta_rounds,
        verify=args.verify,
        pause_timeout=args.pause_timeout,
    )
    job = MigrateJob(
        src=args.src,
        dst=args.dst,
        config=config,
        mirror=args.mirror,
        traffic=args.traffic,
        traffic_pace=args.traffic_pace,
        traffic_scan_limit=args.traffic_scan_limit,
        resume=args.resume,
    )
    print(
        f"Migrating {args.src} ({args.backend_from}) -> {args.dst} "
        f"({args.backend_to})"
        + (" with live traffic" if args.traffic else "")
        + "...",
        file=sys.stderr,
    )
    start = time.time()
    try:
        report = run_migrate_job(job)
    except SimulatedCrash as exc:
        print(f"migrate: simulated crash: {exc}", file=sys.stderr)
        return 1
    except MigrationError as exc:
        print(f"migrate: {exc}", file=sys.stderr)
        return 2
    print(f"  done in {time.time() - start:.1f}s", file=sys.stderr)
    print(report.render())
    _write_metrics(args)
    return 0 if report.completed else 1


def _parse_trace_specs(specs) -> dict:
    """``NAME=PATH`` pairs (a bare ``PATH`` serves under its stem)."""
    traces: dict = {}
    for spec in specs:
        if "=" in spec:
            name, _, path_str = spec.partition("=")
        else:
            name, path_str = Path(spec).stem, spec
        if not name or not path_str:
            raise ValueError(f"bad trace spec {spec!r}; use NAME=PATH")
        if name in traces:
            raise ValueError(f"duplicate trace name {name!r}")
        path = Path(path_str)
        if not path.is_file():
            raise ValueError(f"trace not found: {path}")
        traces[name] = path
    return traces


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the multi-tenant asyncio trace service daemon."""
    import asyncio

    from repro.serve import ServeConfig, TenantQuota, TraceServer

    try:
        traces = _parse_trace_specs(args.traces)
        quota = TenantQuota(
            max_pending=args.max_pending,
            max_running=args.max_running,
            rate=args.rate,
            admission=args.admission,
        )
        config = ServeConfig(
            traces=traces,
            host=args.host,
            port=args.port,
            workers=args.workers,
            quota=quota,
            aging_seconds=args.aging_seconds,
            batch_chunks=args.batch_chunks,
            cache_dir=args.cache_dir,
        ).validated()
    except ValueError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2

    async def _run() -> None:
        import signal

        server = TraceServer(config)
        port = await server.start()
        print(
            f"repro serve: listening on {config.host}:{port} "
            f"({len(traces)} traces, {config.workers} workers); "
            "Ctrl-C drains and exits",
            file=sys.stderr,
        )
        loop = asyncio.get_running_loop()
        interrupted = asyncio.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, interrupted.set)
            except (NotImplementedError, RuntimeError):
                pass
        stop_task = loop.create_task(interrupted.wait())
        closed_task = loop.create_task(server.wait_closed())
        await asyncio.wait(
            {stop_task, closed_task}, return_when=asyncio.FIRST_COMPLETED
        )
        if stop_task.done():
            print("repro serve: draining...", file=sys.stderr)
        # Idempotent: a no-op wait if a client's shutdown request beat us.
        await server.shutdown("drain")
        await closed_task
        stop_task.cancel()
        try:
            await stop_task
        except asyncio.CancelledError:
            pass

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    print("repro serve: stopped", file=sys.stderr)
    _write_metrics(args)
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or clear the partial-aggregate analysis cache."""
    from repro.core.aggcache import AggregateCache, default_cache_dir

    directory = args.cache_dir if args.cache_dir is not None else default_cache_dir()
    try:
        cache = AggregateCache(directory)
    except ValueError as exc:
        print(f"cache: {exc}", file=sys.stderr)
        return 2
    if args.cache_command == "show":
        entries, total = cache.stats()
        print(f"cache directory: {cache.directory}")
        print(f"entries: {entries}")
        print(f"bytes:   {total}")
        return 0
    removed = cache.clear()
    print(f"removed {removed} entries from {cache.directory}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Merge ``--metrics-out`` JSON dumps and render them."""
    from repro.obs.export import read_snapshot_json, to_prometheus_text, write_snapshot_json
    from repro.obs.registry import merge_snapshots, snapshot_to_json

    if not args.files:
        print("stats: no metrics files given", file=sys.stderr)
        return 2
    snapshots = []
    for path in args.files:
        try:
            snapshots.append(read_snapshot_json(path))
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"stats: cannot read {path}: {exc}", file=sys.stderr)
            return 2
    try:
        merged = merge_snapshots(snapshots)
    except ValueError as exc:
        print(f"stats: cannot merge snapshots: {exc}", file=sys.stderr)
        return 2
    if args.format == "prom":
        rendered = to_prometheus_text(merged)
    else:
        import json as _json

        rendered = _json.dumps(snapshot_to_json(merged), indent=2, sort_keys=True) + "\n"
    if args.out is not None:
        if args.format == "json":
            write_snapshot_json(args.out, merged)
        else:
            Path(args.out).write_text(rendered, encoding="ascii")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(rendered)
    return 0


def _resolve_baseline(path: Path, profile: str) -> Path:
    """A baseline argument may be a file or a directory of baselines
    named ``baseline-<profile>.json``."""
    if path.is_dir():
        return path / f"baseline-{profile}.json"
    return path


def cmd_bench_run(args: argparse.Namespace) -> int:
    from repro.bench import (
        BenchContext,
        RunnerConfig,
        compare_results,
        load_default_suite,
        read_result_json,
        render_result,
        run_suite,
        write_result_json,
    )

    registry = load_default_suite()
    specs = registry.select(args.filter, include_slow=args.include_slow)
    if args.list:
        for spec in specs:
            slow = "  [slow]" if spec.slow else ""
            print(f"{spec.group}/{spec.name}{slow}  {spec.doc}")
        return 0
    if not specs:
        print(f"bench: no benchmarks match filter {args.filter!r}", file=sys.stderr)
        return 2
    try:
        config = RunnerConfig(
            repeats=args.repeats, warmup=args.warmup, min_time=args.min_time
        )
        ctx = BenchContext(args.profile, seed=args.seed)
    except ValueError as exc:
        print(f"bench: {exc}", file=sys.stderr)
        return 2
    print(
        f"Running {len(specs)} benchmarks "
        f"(profile={args.profile}, repeats={config.repeats})...",
        file=sys.stderr,
    )

    def progress(spec, result) -> None:
        rate = f", {result.rate / 1e6:.2f} M ops/s" if result.rate else ""
        print(
            f"  {spec.name}: median {result.stats.median * 1e3:.3f} ms "
            f"(loops={result.loops}{rate})",
            file=sys.stderr,
        )

    with ctx:
        start = time.time()
        result = run_suite(specs, ctx, config, progress=progress)
        print(f"  done in {time.time() - start:.1f}s", file=sys.stderr)

    out = args.out if args.out else Path(f"BENCH_bench_{args.profile}.json")
    write_result_json(out, result)
    print(f"wrote {out}", file=sys.stderr)
    print(render_result(result, fmt=args.format))

    if args.compare is None:
        return 0
    baseline_path = _resolve_baseline(args.compare, args.profile)
    try:
        baseline = read_result_json(baseline_path)
        report = compare_results(baseline, result, threshold_pct=args.threshold)
    except (OSError, ValueError) as exc:
        print(f"bench: cannot compare against {baseline_path}: {exc}", file=sys.stderr)
        return 2
    print()
    print(report.render())
    return 1 if report.regressed else 0


def cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.bench import compare_results, read_result_json

    try:
        candidate = read_result_json(args.candidate)
        baseline = read_result_json(
            _resolve_baseline(args.baseline, candidate.profile)
        )
        report = compare_results(baseline, candidate, threshold_pct=args.threshold)
    except (OSError, ValueError) as exc:
        print(f"bench compare: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    return 1 if report.regressed else 0


def cmd_bench_report(args: argparse.Namespace) -> int:
    from repro.bench import read_result_json, render_result, render_trajectory

    try:
        results = [read_result_json(path) for path in args.results]
        if len(results) == 1:
            rendered = render_result(results[0], fmt=args.format)
        else:
            rendered = render_trajectory(results, fmt=args.format)
    except (OSError, ValueError) as exc:
        print(f"bench report: {exc}", file=sys.stderr)
        return 2
    print(rendered)
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.core.compare import compare_traces

    print(f"Reading {args.trace_a} and {args.trace_b}...", file=sys.stderr)
    comparison = compare_traces(
        read_trace(args.trace_a),
        read_trace(args.trace_b),
        name_a=args.trace_a.name,
        name_b=args.trace_b.name,
    )
    print(comparison.render())
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    cache, bare = _run_pair(args)
    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)

    from repro.core.artifact import (
        write_correlation_output,
        write_kv_size_distribution,
        write_op_distribution,
    )
    from repro.core.export import (
        correlation_to_csv,
        findings_to_json,
        opdist_to_csv,
        sizes_to_csv,
    )

    write_kv_size_distribution(cache.sizes, outdir / "kvSizeDistribution")
    write_op_distribution(cache.opdist, outdir / "mergedKVOpDistribution")
    write_correlation_output(
        cache.correlation(OpType.READ), outdir / "readCorrelationOutput"
    )
    write_correlation_output(
        cache.correlation(OpType.UPDATE), outdir / "updateCorrelationOutput"
    )
    sizes_to_csv(cache.sizes, outdir / "table1.csv")
    opdist_to_csv(cache.opdist, outdir / "table2_cachetrace.csv")
    opdist_to_csv(bare.opdist, outdir / "table3_baretrace.csv")
    correlation_to_csv(cache.correlation(OpType.READ), outdir / "fig4_cache_reads.csv")
    findings_to_json(evaluate_findings(cache, bare), outdir / "findings.json")
    print(f"wrote artifact-compatible outputs under {outdir}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Ethereum KV workload analysis (IISWC 2025 repro)"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    p_findings = subparsers.add_parser(
        "findings", help="run a trace pair and evaluate Findings 1-11"
    )
    _add_workload_args(p_findings)
    p_findings.add_argument("--json", type=Path, help="also write findings JSON")
    p_findings.set_defaults(func=cmd_findings)

    p_tables = subparsers.add_parser("tables", help="print Tables I-IV analogs")
    _add_workload_args(p_tables)
    p_tables.set_defaults(func=cmd_tables)

    p_sync = subparsers.add_parser("sync", help="run one sync and save the trace")
    _add_workload_args(p_sync)
    p_sync.add_argument("--mode", choices=("cache", "bare"), default="cache")
    p_sync.add_argument("--out", type=Path, required=True, help="trace output path")
    p_sync.add_argument(
        "--format",
        choices=("v1", "v2"),
        default="v2",
        help="trace file format: v2 = chunked columnar (default), v1 = legacy",
    )
    p_sync.add_argument(
        "--chunk-size",
        type=int,
        default=DEFAULT_CHUNK_SIZE,
        help="records per columnar chunk (v2 format)",
    )
    _add_metrics_out_arg(p_sync)
    p_sync.set_defaults(func=cmd_sync)

    p_beam = subparsers.add_parser(
        "beamsync",
        help="beam-sync from simulated peers, healing missing state on demand",
    )
    _add_workload_args(p_beam)
    p_beam.add_argument(
        "--profiles",
        default="healthy,healthy,healthy",
        help="comma-separated peer profiles "
        "(healthy, slow, dropping, stale, flaky); one peer per entry",
    )
    p_beam.add_argument(
        "--peer-seed", type=int, default=7, help="seed for peer latency/failure draws"
    )
    p_beam.add_argument(
        "--timeout", type=float, default=0.25, help="per-request deadline (virtual s)"
    )
    p_beam.add_argument(
        "--max-attempts", type=int, default=10, help="tries per request before giving up"
    )
    p_beam.add_argument(
        "--outstanding", type=int, default=4, help="per-peer outstanding-request limit"
    )
    p_beam.add_argument(
        "--no-prefetch",
        action="store_true",
        help="disable block prefetch (every miss pauses execution)",
    )
    p_beam.add_argument(
        "--peer-drop",
        action="append",
        default=[],
        metavar="PEER:AT[:REPEAT]",
        help="inject PEER_DROP faults (peer id or *, 1-based request count)",
    )
    p_beam.add_argument(
        "--peer-slow",
        action="append",
        default=[],
        metavar="PEER:AT[:REPEAT[:FACTOR]]",
        help="inject PEER_SLOW faults (latency multiplied by FACTOR)",
    )
    p_beam.add_argument(
        "--compare-full",
        action="store_true",
        help="run a full-sync reference over the same chain and print the "
        "class-mix + read-correlation comparison (exit 1 on root mismatch)",
    )
    p_beam.add_argument("--out", type=Path, default=None, help="trace output path (v2)")
    p_beam.add_argument(
        "--chunk-size",
        type=int,
        default=DEFAULT_CHUNK_SIZE,
        help="records per columnar chunk (v2 format)",
    )
    _add_metrics_out_arg(p_beam)
    p_beam.set_defaults(func=cmd_beamsync)

    p_analyze = subparsers.add_parser("analyze", help="analyze a saved trace file")
    p_analyze.add_argument("trace", type=Path)
    p_analyze.add_argument(
        "--correlate", choices=("read", "update"), help="add a correlation pass"
    )
    p_analyze.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the sharded analysis (1 = in-process)",
    )
    p_analyze.add_argument(
        "--chunk-size",
        type=int,
        default=DEFAULT_CHUNK_SIZE,
        help="records per columnar chunk",
    )
    p_analyze.add_argument(
        "--lenient",
        action="store_true",
        help="skip corrupt v2 chunks (logged) instead of failing",
    )
    p_analyze.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the partial-aggregate cache (force a cold scan)",
    )
    p_analyze.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="partial-aggregate cache directory "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro/aggcache)",
    )
    _add_metrics_out_arg(p_analyze)
    p_analyze.set_defaults(func=cmd_analyze)

    p_cache = subparsers.add_parser(
        "cache", help="inspect or clear the partial-aggregate analysis cache"
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    for cache_cmd, cache_help in (
        ("show", "print the cache directory, entry count, and total bytes"),
        ("clear", "delete every cache entry"),
    ):
        c_sub = cache_sub.add_parser(cache_cmd, help=cache_help)
        c_sub.add_argument(
            "--cache-dir",
            type=Path,
            default=None,
            help="cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro/aggcache)",
        )
        c_sub.set_defaults(func=cmd_cache)

    p_crash = subparsers.add_parser(
        "crashtest", help="sweep crash points and verify recovery converges"
    )
    p_crash.add_argument("--blocks", type=int, default=64, help="measured blocks")
    p_crash.add_argument("--warmup", type=int, default=16, help="warmup blocks")
    p_crash.add_argument("--seed", type=int, default=7)
    p_crash.add_argument(
        "--crash-points",
        default="all",
        help='"all" or a comma-separated list of crash-point names',
    )
    p_crash.add_argument(
        "--cases-per-point",
        type=int,
        default=1,
        help="independent kill offsets sampled per crash point",
    )
    p_crash.add_argument(
        "--snapshot",
        choices=("on", "off", "both"),
        default="on",
        help="sweep with snapshot acceleration on, off, or both",
    )
    p_crash.add_argument(
        "--flush-interval",
        type=int,
        default=8,
        help="trie flush interval (blocks) for the swept configuration",
    )
    p_crash.add_argument(
        "--migrate-pair",
        default="lsm:hybrid",
        metavar="FROM:TO",
        help="backend pair swept by the migration crash points",
    )
    _add_metrics_out_arg(p_crash)
    p_crash.set_defaults(func=cmd_crashtest)

    p_replay = subparsers.add_parser(
        "replay", help="replay a saved trace against a KV backend"
    )
    p_replay.add_argument("trace", type=Path, help="trace file (v1 or v2)")
    p_replay.add_argument(
        "--backend",
        default="memdb",
        help="target backend: memdb (default), btree, hashlog, lsm, hybrid",
    )
    p_replay.add_argument(
        "--workers", type=int, default=1, help="shard workers (1 = serial inline)"
    )
    p_replay.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help="thread (pacing/backpressure) or process (throughput) sharding",
    )
    p_replay.add_argument(
        "--pace",
        type=float,
        default=None,
        help="open-loop target ops/s (default: closed loop, as fast as possible)",
    )
    p_replay.add_argument(
        "--queue-depth", type=int, default=1024, help="bounded dispatch queue depth"
    )
    p_replay.add_argument(
        "--admission",
        choices=("block", "drop", "abort"),
        default="block",
        help="full-queue policy: backpressure, shed reads, or abort the run",
    )
    p_replay.add_argument(
        "--scan-limit", type=int, default=64, help="max pairs per replayed scan"
    )
    p_replay.add_argument(
        "--latency-sample",
        type=int,
        default=1,
        help="observe every Nth op's latency (1 = every op)",
    )
    p_replay.add_argument(
        "--no-fingerprint",
        action="store_true",
        help="skip the final-state fingerprint pass",
    )
    p_replay.add_argument(
        "--lenient",
        action="store_true",
        help="salvage readable chunks from a truncated/corrupt trace",
    )
    p_replay.add_argument(
        "--verify",
        action="store_true",
        help="differential mode: serial vs sharded replay, compare final state",
    )
    p_replay.add_argument(
        "--dump-store",
        type=Path,
        default=None,
        metavar="IMAGE",
        help="write the final store state as a kvimage (input for `repro migrate`; "
        "inline/thread executors only)",
    )
    _add_metrics_out_arg(p_replay)
    p_replay.set_defaults(func=cmd_replay)

    p_migrate = subparsers.add_parser(
        "migrate", help="migrate a store image between backends (online engine)"
    )
    p_migrate.add_argument("src", type=Path, help="source kvimage (never modified)")
    p_migrate.add_argument(
        "dst", type=Path, help="destination kvimage (published atomically)"
    )
    p_migrate.add_argument(
        "--backend-from", default="memdb", help="backend the source image loads into"
    )
    p_migrate.add_argument(
        "--backend-to", default="memdb", help="backend being migrated to"
    )
    p_migrate.add_argument(
        "--mirror",
        action="store_true",
        help="live-migration mode: arm the write-mirror tap (required for --traffic)",
    )
    p_migrate.add_argument(
        "--verify",
        action="store_true",
        help="run the three-level equivalence check inside the cutover pause "
        "(a divergence aborts the cutover)",
    )
    p_migrate.add_argument(
        "--traffic",
        type=Path,
        default=None,
        metavar="TRACE",
        help="replay this trace through the mirror while migrating",
    )
    p_migrate.add_argument(
        "--traffic-pace",
        type=float,
        default=None,
        help="traffic ops/s (default: as fast as the gate admits)",
    )
    p_migrate.add_argument(
        "--traffic-scan-limit", type=int, default=64, help="max keys per mirrored scan"
    )
    p_migrate.add_argument(
        "--range-pairs", type=int, default=2048, help="pairs per bulk-copy range"
    )
    p_migrate.add_argument(
        "--copy-workers", type=int, default=1, help="parallel range-snapshot threads"
    )
    p_migrate.add_argument(
        "--batch-pairs", type=int, default=2048, help="pairs per atomic write batch"
    )
    p_migrate.add_argument(
        "--delta-shards", type=int, default=4, help="delta-log shards (CRC32 keyed)"
    )
    p_migrate.add_argument(
        "--lag-threshold",
        type=int,
        default=64,
        help="cut over once a catch-up round leaves at most this much lag",
    )
    p_migrate.add_argument(
        "--max-delta-rounds",
        type=int,
        default=16,
        help="force the cutover after this many catch-up rounds",
    )
    p_migrate.add_argument(
        "--pause-timeout",
        type=float,
        default=30.0,
        help="seconds to wait for in-flight ops to drain at cutover",
    )
    p_migrate.add_argument(
        "--resume",
        action="store_true",
        help="continue from the durable spill left by a killed migration",
    )
    _add_metrics_out_arg(p_migrate)
    p_migrate.set_defaults(func=cmd_migrate)

    p_serve = subparsers.add_parser(
        "serve", help="run the multi-tenant trace service daemon"
    )
    p_serve.add_argument(
        "traces",
        nargs="+",
        metavar="NAME=PATH",
        help="traces to serve (a bare PATH serves under its file stem)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=7950, help="TCP port (0 = pick an ephemeral port)"
    )
    p_serve.add_argument(
        "--workers", type=int, default=2, help="concurrent job slots"
    )
    p_serve.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="per-tenant bound on admitted-but-unfinished jobs",
    )
    p_serve.add_argument(
        "--max-running",
        type=int,
        default=2,
        help="per-tenant bound on concurrently executing jobs",
    )
    p_serve.add_argument(
        "--rate",
        type=float,
        default=None,
        help="per-tenant submissions per second (default: unlimited)",
    )
    p_serve.add_argument(
        "--admission",
        choices=("block", "drop", "abort"),
        default="block",
        help="over-quota policy: backpressure, reject, or drop the connection",
    )
    p_serve.add_argument(
        "--aging-seconds",
        type=float,
        default=30.0,
        help="queue-wait seconds that cancel out one priority level",
    )
    p_serve.add_argument(
        "--batch-chunks",
        type=int,
        default=4,
        help="trace chunks per streamed analyze partial",
    )
    p_serve.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="partial-aggregate cache directory (default: no cache)",
    )
    _add_metrics_out_arg(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_export = subparsers.add_parser(
        "export", help="write artifact-compatible output files + CSV/JSON"
    )
    _add_workload_args(p_export)
    p_export.add_argument("--outdir", type=Path, required=True)
    p_export.set_defaults(func=cmd_export)

    p_stats = subparsers.add_parser(
        "stats", help="merge and render --metrics-out JSON dumps"
    )
    p_stats.add_argument(
        "files", type=Path, nargs="*", help="metrics JSON files to merge"
    )
    p_stats.add_argument(
        "--format",
        choices=("prom", "json"),
        default="prom",
        help="output format: Prometheus text (default) or snapshot JSON",
    )
    p_stats.add_argument(
        "--out", type=Path, default=None, help="write to a file instead of stdout"
    )
    p_stats.set_defaults(func=cmd_stats)

    p_bench = subparsers.add_parser(
        "bench", help="run, compare, and report statistical benchmarks"
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)

    b_run = bench_sub.add_parser("run", help="run the benchmark suite")
    b_run.add_argument(
        "--profile",
        default="quick",
        help="workload scale: full, quick (default), or smoke",
    )
    b_run.add_argument(
        "--filter",
        default=None,
        help="only run benchmarks matching this glob/substring (name or group/name)",
    )
    b_run.add_argument("--repeats", type=int, default=5, help="measured repeats")
    b_run.add_argument(
        "--warmup", type=int, default=1, help="discarded warmup measurements"
    )
    b_run.add_argument(
        "--min-time",
        type=float,
        default=0.05,
        help="calibration target seconds per measurement",
    )
    b_run.add_argument(
        "--include-slow", action="store_true", help="also run slow benchmarks"
    )
    b_run.add_argument("--seed", type=int, default=2024, help="workload seed")
    b_run.add_argument(
        "--out",
        type=Path,
        default=None,
        help="result path (default BENCH_bench_<profile>.json)",
    )
    b_run.add_argument(
        "--compare",
        type=Path,
        default=None,
        help="baseline file or directory to diff against after the run",
    )
    b_run.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        help="regression threshold in percent (with CI separation)",
    )
    b_run.add_argument(
        "--format", choices=("ascii", "md"), default="ascii", help="table format"
    )
    b_run.add_argument(
        "--list", action="store_true", help="list matching benchmarks and exit"
    )
    b_run.set_defaults(func=cmd_bench_run)

    b_compare = bench_sub.add_parser(
        "compare", help="diff a result against a baseline (exit 1 on regression)"
    )
    b_compare.add_argument(
        "baseline", type=Path, help="baseline result file or baselines directory"
    )
    b_compare.add_argument("candidate", type=Path, help="candidate result file")
    b_compare.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        help="regression threshold in percent (with CI separation)",
    )
    b_compare.set_defaults(func=cmd_bench_compare)

    b_report = bench_sub.add_parser(
        "report", help="render result file(s) as a summary/trajectory table"
    )
    b_report.add_argument("results", type=Path, nargs="+", help="bench result files")
    b_report.add_argument(
        "--format", choices=("ascii", "md"), default="ascii", help="table format"
    )
    b_report.set_defaults(func=cmd_bench_report)

    p_compare = subparsers.add_parser(
        "compare", help="diff two saved traces' class distributions"
    )
    p_compare.add_argument("trace_a", type=Path)
    p_compare.add_argument("trace_b", type=Path)
    p_compare.set_defaults(func=cmd_compare)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
