"""Recursive Length Prefix (RLP) serialization.

RLP is Ethereum's canonical wire/storage serialization.  It encodes two
kinds of items: byte strings and (recursively) lists of items.  Geth
stores block headers, bodies, receipts, accounts, and trie nodes as RLP
blobs, so the value sizes observed at the KV interface are RLP sizes —
this package makes the simulated value sizes mechanically realistic.

Public API::

    encode(item)          -> bytes
    decode(blob)          -> item (bytes or nested lists of bytes)
    encode_uint(n)        -> bytes   # big-endian minimal integer payload
    decode_uint(payload)  -> int
    length_of(item)       -> int     # encoded size without materializing
"""

from repro.rlp.codec import (
    decode,
    decode_uint,
    encode,
    encode_uint,
    length_of,
)

__all__ = ["encode", "decode", "encode_uint", "decode_uint", "length_of"]
